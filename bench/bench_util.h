// Shared helpers for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md §3). These helpers centralise tier construction, the default
// LargeEA configuration per tier, and table formatting, so every bench
// reports comparable numbers.
#ifndef LARGEEA_BENCH_BENCH_UTIL_H_
#define LARGEEA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/macros.h"
#include "src/core/config.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/obs/json_writer.h"

namespace largeea::bench {

/// The three benchmark tiers of the paper.
enum class Tier { kIds15k, kIds100k, kDbp1m };

inline const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kIds15k:
      return "IDS15K";
    case Tier::kIds100k:
      return "IDS100K";
    case Tier::kDbp1m:
      return "DBP1M";
  }
  return "?";
}

/// Builds the spec for a tier/pair at the given scale.
inline BenchmarkSpec TierSpec(Tier tier, LanguagePair pair, double scale) {
  switch (tier) {
    case Tier::kIds15k:
      return Ids15kSpec(pair, scale);
    case Tier::kIds100k:
      return Ids100kSpec(pair, scale);
    case Tier::kDbp1m:
      return Dbp1mSpec(pair, scale);
  }
  return Ids15kSpec(pair, scale);
}

/// The paper's per-tier mini-batch counts (Section 3.1).
inline int32_t TierBatchCount(Tier tier) {
  switch (tier) {
    case Tier::kIds15k:
      return 5;
    case Tier::kIds100k:
      return 10;
    case Tier::kDbp1m:
      return 20;
  }
  return 5;
}

/// LSH table width scaled so the expected bucket occupancy stays ~4
/// points regardless of dataset size — this is what keeps the ANN path's
/// per-query cost near-constant and Figure 4 near-linear.
inline int32_t LshBitsForSize(int32_t n) {
  int32_t bits = 8;
  while ((n >> bits) > 4 && bits < 16) ++bits;
  return bits;
}

/// Default configuration for a generated dataset: the paper's K per
/// tier, and the approximate (LSH) semantic search once exact search
/// stops being affordable — the role Faiss-IVF plays in the paper.
/// Built through largeea::Config (the same aggregate the CLI parses),
/// so bench defaults and CLI defaults share one source of truth.
inline Config DefaultConfig(Tier tier, const EaDataset& dataset,
                            ModelKind model, int32_t epochs) {
  Config config;
  switch (model) {
    case ModelKind::kRrea:
      config.model = "rrea";
      break;
    case ModelKind::kGcnAlign:
      config.model = "gcn";
      break;
    case ModelKind::kTransE:
      config.model = "transe";
      break;
  }
  config.pipeline.structure_channel.train.epochs = epochs;
  const int32_t n = std::max(dataset.source.num_entities(),
                             dataset.target.num_entities());
  // The paper's K per tier, capped so that scaled-down runs (--scale < 1)
  // keep mini-batches large enough to train on (>= ~600 entities).
  config.pipeline.structure_channel.num_batches =
      std::max(2, std::min(TierBatchCount(tier), n / 600));
  if (n > 8000) {
    auto& sens = config.pipeline.name_channel.nff.sens;
    sens.use_lsh = true;
    sens.lsh.bits_per_table = LshBitsForSize(n);
    sens.lsh.num_tables = 24;
  }
  const Status valid = config.Validate();
  LARGEEA_CHECK(valid.ok());
  return config;
}

/// The pipeline slice of DefaultConfig, for benches that hand the
/// options straight to RunLargeEa.
inline LargeEaOptions DefaultOptions(Tier tier, const EaDataset& dataset,
                                     ModelKind model, int32_t epochs) {
  return DefaultConfig(tier, dataset, model, epochs).pipeline;
}

/// Formats bytes as "12.3MB" ("0B" for zero; negative values — e.g. a
/// delta between two phases — keep their sign).
inline std::string FormatBytes(int64_t bytes) {
  // Negate in floating point so INT64_MIN cannot overflow.
  const double magnitude =
      bytes < 0 ? -static_cast<double>(bytes) : static_cast<double>(bytes);
  const char* sign = bytes < 0 ? "-" : "";
  char buf[32];
  if (magnitude >= static_cast<double>(1LL << 30)) {
    std::snprintf(buf, sizeof(buf), "%s%.2fGB", sign,
                  magnitude / (1LL << 30));
  } else if (magnitude >= static_cast<double>(1LL << 20)) {
    std::snprintf(buf, sizeof(buf), "%s%.1fMB", sign,
                  magnitude / (1LL << 20));
  } else if (magnitude >= static_cast<double>(1LL << 10)) {
    std::snprintf(buf, sizeof(buf), "%s%.1fKB", sign,
                  magnitude / (1LL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.0fB", sign, magnitude);
  }
  return buf;
}

/// Prints a horizontal rule sized for the standard result table.
inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Machine-readable twin of a bench's printed table (--json-out=FILE).
///
/// Every PrintMetricsRow-style call also adds a flat JSON object here;
/// on destruction (or an explicit Write()) the collected rows land at
/// the --json-out path as {"bench": ..., "schema_version": 1,
/// "rows": [...]}, ready for the BENCH_*.json perf trajectory. With no
/// --json-out flag the collector is inert.
class BenchJson {
 public:
  /// One table row under construction. Set() calls may repeat keys only
  /// by caller error; values are written in call order.
  class Row {
   public:
    Row() { writer_.BeginObject(); }
    Row& Set(std::string_view key, std::string_view value) {
      writer_.Key(key).String(value);
      return *this;
    }
    Row& Set(std::string_view key, const char* value) {
      return Set(key, std::string_view(value));
    }
    Row& Set(std::string_view key, double value) {
      writer_.Key(key).Double(value);
      return *this;
    }
    Row& Set(std::string_view key, int64_t value) {
      writer_.Key(key).Int(value);
      return *this;
    }
    Row& Set(std::string_view key, int value) {
      return Set(key, static_cast<int64_t>(value));
    }
    Row& Set(std::string_view key, bool value) {
      writer_.Key(key).Bool(value);
      return *this;
    }

   private:
    friend class BenchJson;
    obs::JsonWriter writer_;
  };

  BenchJson(const Flags& flags, std::string bench_name)
      : name_(std::move(bench_name)),
        path_(flags.GetString("json-out", "")) {}

  ~BenchJson() { Write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(Row&& row) {
    if (!enabled()) return;
    row.writer_.EndObject();
    rows_.push_back(row.writer_.str());
  }

  /// Writes the document now (idempotent; also called by the dtor).
  void Write() {
    if (!enabled() || written_) return;
    written_ = true;
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("schema_version").Int(1);
    w.Key("rows").BeginArray();
    for (const std::string& row : rows_) w.Raw(row);
    w.EndArray();
    w.EndObject();
    if (obs::WriteStringToFile(path_, w.str())) {
      std::fprintf(stderr, "wrote %zu rows to %s\n", rows_.size(),
                   path_.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write --json-out=%s\n",
                   path_.c_str());
    }
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

/// Language pairs selected by --pair=enfr|ende|both (default both).
inline std::vector<LanguagePair> SelectedPairs(const Flags& flags) {
  const std::string pair = flags.GetString("pair", "both");
  if (pair == "enfr") return {LanguagePair::kEnFr};
  if (pair == "ende") return {LanguagePair::kEnDe};
  return {LanguagePair::kEnFr, LanguagePair::kEnDe};
}

}  // namespace largeea::bench

#endif  // LARGEEA_BENCH_BENCH_UTIL_H_
