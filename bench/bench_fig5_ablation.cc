// Reproduces Figure 5: ablation studies (H@1 on every dataset).
//
// Four configurations per dataset: full LargeEA, w/o structure channel,
// w/o name channel, and w/o name-based data augmentation (DA). The paper
// observes: removing the name channel hurts most (3-37%), removing DA
// hurts 2-14% (more on IDS than DBP1M), removing the structure channel
// hurts least on DBP1M.
//
// Flags: --scale, --pair, --epochs, --tier=ids15k|ids100k|dbp1m|all.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

using namespace largeea;
using namespace largeea::bench;

namespace {

double RunWith(Tier tier, const EaDataset& dataset, int32_t epochs,
               bool fuse_name, bool structure_channel, bool augment) {
  LargeEaOptions options =
      DefaultOptions(tier, dataset, ModelKind::kRrea, epochs);
  // "w/o name channel" in the paper removes M_n from the fusion but keeps
  // Algorithm 1 intact — the name-based DA still supplies pseudo seeds
  // (DA removal is its own ablation).
  options.fuse_name_similarity = fuse_name;
  options.use_structure_channel = structure_channel;
  options.name_channel.enable_augmentation = augment;
  return RunLargeEa(dataset, options).value().metrics.hits_at_1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.6);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 50));
  const std::string tier_filter = flags.GetString("tier", "all");

  std::printf("=== Figure 5: Ablation studies (H@1, LargeEA-R) ===\n");
  std::printf("%-18s %8s %14s %12s %15s %10s\n", "Dataset", "Full",
              "w/o structure", "w/o name", "w/o name&DA", "w/o DA");
  PrintRule(82);
  for (const Tier tier : {Tier::kIds15k, Tier::kIds100k, Tier::kDbp1m}) {
    if (tier_filter != "all" && tier_filter != AsciiToLower(TierName(tier))) {
      continue;
    }
    for (const LanguagePair pair : SelectedPairs(flags)) {
      const EaDataset dataset =
          GenerateBenchmark(TierSpec(tier, pair, scale));
      const double full = RunWith(tier, dataset, epochs, true, true, true);
      const double wo_structure =
          RunWith(tier, dataset, epochs, true, false, true);
      // Two readings of "w/o name channel": keep the DA pseudo seeds
      // (Algorithm 1 still runs; only the M_n fusion is dropped) or
      // remove the name channel entirely (structure + human seeds only).
      const double wo_name = RunWith(tier, dataset, epochs, false, true,
                                     /*augment=*/true);
      const double wo_name_da = RunWith(tier, dataset, epochs, false, true,
                                        /*augment=*/false);
      const double wo_da = RunWith(tier, dataset, epochs, true, true, false);
      std::printf("%-18s %7.1f%% %13.1f%% %11.1f%% %14.1f%% %9.1f%%\n",
                  dataset.name.c_str(), 100 * full, 100 * wo_structure,
                  100 * wo_name, 100 * wo_name_da, 100 * wo_da);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nShape checks: every ablation drops H@1; removing the name channel\n"
      "entirely (w/o name&DA) hurts by far the most; w/o DA hurts more on\n"
      "IDS than on DBP1M; w/o structure hurts least on DBP1M\n"
      "(heterogeneity limits what structure can add there).\n");
  return 0;
}
