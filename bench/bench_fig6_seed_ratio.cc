// Reproduces Figure 6: METIS-CPS performance vs. seed alignment.
//
// Sweeps the seed ratio from 10% to 50% and reports the *structure
// channel only* H@1 and running time for METIS-CPS, VPS, and no partition
// ("w/o p."). The paper's findings: H@1 rises with seeds for both
// strategies; METIS-CPS always beats VPS; w/o partition is the accuracy
// ceiling but trains much slower; VPS partitions fastest.
//
// Flags: --scale, --pair (default enfr), --epochs, --tier.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/core/evaluator.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 50));
  const LanguagePair pair = SelectedPairs(flags).front();
  const Tier tier = Tier::kIds15k;

  std::printf(
      "=== Figure 6: METIS-CPS performance vs. seed alignment "
      "(structure channel only, RREA) ===\n");
  std::printf("%-6s | %9s %9s %9s | %9s %9s %9s\n", "seeds", "CPS H@1",
              "VPS H@1", "w/o p.", "CPS t(s)", "VPS t(s)", "w/o p.(s)");
  PrintRule(72);

  BenchmarkSpec spec = TierSpec(tier, pair, scale);
  for (const double ratio : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    spec.train_ratio = ratio;
    const EaDataset dataset = GenerateBenchmark(spec);
    double h1[3], secs[3];
    const PartitionStrategy strategies[] = {PartitionStrategy::kMetisCps,
                                            PartitionStrategy::kVps,
                                            PartitionStrategy::kNone};
    for (int i = 0; i < 3; ++i) {
      StructureChannelOptions options;
      options.model = ModelKind::kRrea;
      options.strategy = strategies[i];
      options.num_batches = TierBatchCount(tier);
      options.train.epochs = epochs;
      Timer timer;
      const StructureChannelResult result =
          RunStructureChannel(dataset.source, dataset.target,
                              dataset.split.train, options)
              .value();
      secs[i] = timer.Seconds();
      h1[i] = Evaluate(result.similarity, dataset.split.test).hits_at_1;
    }
    std::printf("%-5.0f%% | %8.1f%% %8.1f%% %8.1f%% | %9.2f %9.2f %9.2f\n",
                100 * ratio, 100 * h1[0], 100 * h1[1], 100 * h1[2], secs[0],
                secs[1], secs[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape checks: H@1 increases with the seed ratio; METIS-CPS > VPS\n"
      "at every ratio; w/o partition is most accurate but slowest to\n"
      "train; VPS partitions fastest (random assignment).\n");
  return 0;
}
