// Component micro-benchmarks (google-benchmark): scaling behaviour of the
// substrates behind the headline experiments — the multilevel
// partitioner, top-k similarity search (exact vs. LSH), MinHash,
// Levenshtein, the semantic encoder, and one training epoch per model.
#include <benchmark/benchmark.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/gen/benchmark_gen.h"
#include "src/la/ops.h"
#include "src/name/levenshtein.h"
#include "src/name/minhash.h"
#include "src/name/semantic_encoder.h"
#include "src/nn/batch_graph.h"
#include "src/nn/ea_model.h"
#include "src/partition/metis.h"
#include "src/sim/lsh.h"
#include "src/sim/topk_search.h"

namespace largeea {
namespace {

CsrGraph RandomGraph(int32_t n, int32_t edges_per_vertex, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<size_t>(n) * edges_per_vertex);
  for (int32_t v = 1; v < n; ++v) {
    for (int32_t j = 0; j < edges_per_vertex; ++j) {
      edges.push_back({v, static_cast<int32_t>(rng.Uniform(v)), 1});
    }
  }
  return CsrGraph::FromEdges(n, edges);
}

void BM_MetisPartition(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  const CsrGraph graph = RandomGraph(n, 3, 11);
  MetisOptions options;
  options.num_parts = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MetisPartition(graph, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MetisPartition)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_ExactTopK(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(13);
  Matrix a(n, 64), b(n, 64);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  const TopKOptions options{.k = 50, .metric = SimMetric::kManhattan};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactTopK(a, b, options));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n);
}
BENCHMARK(BM_ExactTopK)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_LshTopK(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(13);
  Matrix a(n, 64), b(n, 64);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  L2NormalizeRows(a);
  L2NormalizeRows(b);
  const LshIndex index(b, LshOptions{});
  std::vector<EntityId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const TopKOptions options{.k = 50, .metric = SimMetric::kManhattan};
  for (auto _ : state) {
    SparseSimMatrix out(n, n, options.k);
    LshTopKInto(a, ids, b, ids, index, options, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n);
}
BENCHMARK(BM_LshTopK)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_MinHashSignature(benchmark::State& state) {
  const MinHasher hasher(64, 7);
  const std::vector<std::string> tokens = TokenizeName(
      "a moderately long entity name with several words attached");
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a(state.range(0), 'a');
  std::string b(state.range(0), 'a');
  for (size_t i = 0; i < b.size(); i += 3) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(16)->Arg(64)->Arg(256);

void BM_SemanticEncode(benchmark::State& state) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> out(encoder.dim());
  for (auto _ : state) {
    encoder.EncodeName("barack hussein obama the second", out.data());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SemanticEncode);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(17);
  Matrix a(n, n), b(n, n), c(n, n);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TrainEpoch(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities = 1000;
  const EaDataset ds = GenerateBenchmark(spec);
  std::vector<EntityId> all_s(ds.source.num_entities());
  std::iota(all_s.begin(), all_s.end(), 0);
  std::vector<EntityId> all_t(ds.target.num_entities());
  std::iota(all_t.begin(), all_t.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_s);
  const LocalGraph target = BuildLocalGraph(ds.target, all_t);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);
  TrainOptions options;
  options.epochs = 1;
  const auto model = MakeModel(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Train(source, target, seeds, options));
  }
  state.SetLabel(ModelKindName(kind));
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(static_cast<int>(ModelKind::kGcnAlign))
    ->Arg(static_cast<int>(ModelKind::kRrea))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace largeea

BENCHMARK_MAIN();
