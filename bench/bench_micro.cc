// Component micro-benchmarks (google-benchmark): scaling behaviour of the
// substrates behind the headline experiments — the multilevel
// partitioner, top-k similarity search (exact vs. LSH), MinHash,
// Levenshtein, the semantic encoder, and one training epoch per model.
//
// Three modes:
//   * default — the google-benchmark suite below, all its flags intact;
//   * --json-out=FILE — a hand-timed kernel-scaling harness instead:
//     threads x {gemm, topk, sinkhorn, minhash} rows (seconds,
//     items/sec, speedup vs 1 thread), written through BenchJson. The
//     perf trajectory invokes it as `--json-out=BENCH_par.json`;
//     --threads-list=1,2,4,8 and --min-time=0.3 tune the sweep;
//   * --json-out=FILE --mode=backend — a SIMD backend x kernel matrix at
//     one thread: every available backend (scalar, sse2, avx2) times
//     {dot, manhattan, gemm, gemm_tb, sinkhorn, topk, levenshtein} on
//     identical inputs, rows carry speedup vs the scalar backend. The
//     perf trajectory invokes it as
//     `--mode=backend --json-out=BENCH_simd.json`;
//   * --json-out=FILE --mode=stream — a memory-budget sweep of the
//     streaming layer (DESIGN.md §10): the name-channel pipeline runs
//     unbudgeted to record its tracked peak and fused-matrix hash, then
//     again under budgets of 1/2, 1/4, and 1/8 of that peak. Rows carry
//     the observed peak, wall time, and whether the fused matrix stayed
//     bit-identical. The perf trajectory invokes it as
//     `--mode=stream --json-out=BENCH_stream.json`;
//   * --json-out=FILE --mode=profile — the kernel-scaling sweep with the
//     profiler (DESIGN.md §11) enabled: the same threads x kernels grid,
//     but each row additionally carries the profiler's utilization,
//     chunk-imbalance ratio, declared-traffic GB/s, and arithmetic
//     intensity, so a kernel that stops scaling is classifiable
//     (bandwidth-bound vs imbalanced vs merge-serialised) from the JSON
//     alone. The perf trajectory invokes it as
//     `--mode=profile --json-out=BENCH_profile.json`;
//   * --json-out=FILE --mode=tune — the autotune sweep (DESIGN.md §13):
//     every tunable parameter's candidate list timed on representative
//     shapes, one row per (param, candidate) with the winner flagged.
//     --scale shrinks the shapes (CI uses a tiny scale) and --min-time
//     sets the per-candidate timing window. --tune-out additionally
//     persists the winners as a checksummed tuning file loadable via
//     `largeea_cli --tune-file`. The perf trajectory invokes it as
//     `--mode=tune --json-out=BENCH_tune.json`;
//   * --json-out=FILE --mode=dag — serial vs operator-DAG executor
//     (DESIGN.md §14) on the full two-channel pipeline: wall clock for
//     both schedules, bit-identity of the fused matrix, per-node
//     seconds/peaks from the scheduler, and the measured critical path
//     (the wall-time floor at infinite concurrency). The perf
//     trajectory invokes it as `--mode=dag --json-out=BENCH_dag.json`;
//   * --json-out=FILE --mode=serve — single-query latency/throughput of
//     the serving layer (DESIGN.md §15) across index sizes
//     (--targets-list). Per size, three rows keyed (targets, path):
//     `entity` (fused-row read), `name_ann` (encode + HNSW/LSH
//     shortlist + exact re-rank), `name_exact` (encode + full scan, the
//     reference path). Rows carry QPS and p50/p99/p999 latency; the
//     name_ann row additionally carries recall@k against the exact
//     scan, the top-1 agreement rate, and its p50 speedup over the
//     scan. The sweep asserts that every served entity answer equals
//     the batch fused row and, at the largest size, that the ANN p50 is
//     at least --min-ann-speedup (default 10) times faster than the
//     scan. The perf trajectory invokes it as
//     `--mode=serve --json-out=BENCH_serve.json`.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/macros.h"
#include "src/common/rng.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/la/ops.h"
#include "src/name/levenshtein.h"
#include "src/name/minhash.h"
#include "src/name/semantic_encoder.h"
#include "src/nn/batch_graph.h"
#include "src/nn/ea_model.h"
#include "src/obs/profiler.h"
#include "src/par/parallel_for.h"
#include "src/par/thread_pool.h"
#include "src/partition/metis.h"
#include "src/rt/io_util.h"
#include "src/serve/index_artifact.h"
#include "src/serve/index_manager.h"
#include "src/serve/query_engine.h"
#include "src/sim/lsh.h"
#include "src/sim/sinkhorn.h"
#include "src/sim/topk_search.h"
#include "src/simd/simd.h"
#include "src/tune/autotune.h"
#include "src/tune/tune_table.h"

namespace largeea {
namespace {

CsrGraph RandomGraph(int32_t n, int32_t edges_per_vertex, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<size_t>(n) * edges_per_vertex);
  for (int32_t v = 1; v < n; ++v) {
    for (int32_t j = 0; j < edges_per_vertex; ++j) {
      edges.push_back({v, static_cast<int32_t>(rng.Uniform(v)), 1});
    }
  }
  return CsrGraph::FromEdges(n, edges);
}

void BM_MetisPartition(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  const CsrGraph graph = RandomGraph(n, 3, 11);
  MetisOptions options;
  options.num_parts = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MetisPartition(graph, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MetisPartition)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_ExactTopK(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(13);
  Matrix a(n, 64), b(n, 64);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  const TopKOptions options{.k = 50, .metric = SimMetric::kManhattan};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactTopK(a, b, options));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n);
}
BENCHMARK(BM_ExactTopK)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_LshTopK(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(13);
  Matrix a(n, 64), b(n, 64);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  L2NormalizeRows(a);
  L2NormalizeRows(b);
  const LshIndex index(b, LshOptions{});
  std::vector<EntityId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const TopKOptions options{.k = 50, .metric = SimMetric::kManhattan};
  for (auto _ : state) {
    SparseSimMatrix out(n, n, options.k);
    LshTopKInto(a, ids, b, ids, index, options, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n);
}
BENCHMARK(BM_LshTopK)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_MinHashSignature(benchmark::State& state) {
  const MinHasher hasher(64, 7);
  const std::vector<std::string> tokens = TokenizeName(
      "a moderately long entity name with several words attached");
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a(state.range(0), 'a');
  std::string b(state.range(0), 'a');
  for (size_t i = 0; i < b.size(); i += 3) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(16)->Arg(64)->Arg(256);

void BM_SemanticEncode(benchmark::State& state) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> out(encoder.dim());
  for (auto _ : state) {
    encoder.EncodeName("barack hussein obama the second", out.data());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SemanticEncode);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(17);
  Matrix a(n, n), b(n, n), c(n, n);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TrainEpoch(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities = 1000;
  const EaDataset ds = GenerateBenchmark(spec);
  std::vector<EntityId> all_s(ds.source.num_entities());
  std::iota(all_s.begin(), all_s.end(), 0);
  std::vector<EntityId> all_t(ds.target.num_entities());
  std::iota(all_t.begin(), all_t.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_s);
  const LocalGraph target = BuildLocalGraph(ds.target, all_t);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);
  TrainOptions options;
  options.epochs = 1;
  const auto model = MakeModel(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Train(source, target, seeds, options));
  }
  state.SetLabel(ModelKindName(kind));
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(static_cast<int>(ModelKind::kGcnAlign))
    ->Arg(static_cast<int>(ModelKind::kRrea))
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Kernel-scaling harness (--json-out mode): how the par-wired kernels
// scale with the worker pool. Each kernel is timed at every requested
// thread count on identical inputs; the determinism contract (DESIGN.md
// §8) means only the wall-clock may change between rows.

/// Seconds per iteration of `fn`, averaged over at least `min_seconds`
/// of repeated calls after one warm-up run.
double TimeKernel(const std::function<void()>& fn, double min_seconds) {
  fn();  // warm-up: faults pages, starts pool workers
  int64_t iters = 0;
  double elapsed = 0.0;
  const auto start = std::chrono::steady_clock::now();
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iters);
}

std::vector<int32_t> ParseThreadsList(const std::string& list) {
  std::vector<int32_t> threads;
  size_t pos = 0;
  while (pos < list.size()) {
    const size_t comma = list.find(',', pos);
    const std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int32_t n = static_cast<int32_t>(std::atoi(item.c_str()));
    if (n >= 1) threads.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

// Problem sizes for the scaling/profile sweeps: DBP1M-representative
// magnitudes (PAPER.md), i.e. what one mini-batch of the real workload
// looks like, not toy shapes. A training batch on DBP1M holds ~20k
// entities at dim 128, so the gemm row count, the sinkhorn row count,
// and the minhash name count all sit at 20k; the brute-force top-k grid
// is 4000^2 because the exact path is only ever used on sub-batch
// candidate sets (the full graphs go through LSH).
constexpr int64_t kScaleGemmRows = 20000;
constexpr int64_t kScaleGemmDim = 128;
constexpr int64_t kScaleTopKRows = 4000;
constexpr int64_t kScaleTopKDim = 64;
constexpr int32_t kScaleSinkRows = 20000;
constexpr int32_t kScaleSinkEntries = 50;
constexpr int64_t kScaleMinHashNames = 20000;

struct ScalingKernel {
  const char* name;          // row name in the JSON
  const char* profile_name;  // the profiler attribution it runs under
  int64_t items;             // per iteration, for items_per_sec
  std::function<void()> fn;
};

// Inputs and kernel closures shared by the scaling and profile sweeps,
// identical for every thread count (and between the two modes, so their
// seconds columns are directly comparable).
struct ScalingBench {
  Rng rng{13};
  Matrix gemm_a{kScaleGemmRows, kScaleGemmDim};
  Matrix gemm_b{kScaleGemmDim, kScaleGemmDim};
  Matrix gemm_c{kScaleGemmRows, kScaleGemmDim};
  Matrix topk_a{kScaleTopKRows, kScaleTopKDim};
  Matrix topk_b{kScaleTopKRows, kScaleTopKDim};
  TopKOptions topk{.k = 50, .metric = SimMetric::kManhattan};
  SparseSimMatrix sink_in{kScaleSinkRows, kScaleSinkRows, kScaleSinkEntries};
  SinkhornOptions sink;
  MinHasher hasher{64, 7};
  std::vector<std::vector<std::string>> names;
  std::vector<std::vector<uint64_t>> signatures;
  std::vector<ScalingKernel> kernels;

  ScalingBench() {
    gemm_a.GlorotInit(rng);
    gemm_b.GlorotInit(rng);
    topk_a.GlorotInit(rng);
    topk_b.GlorotInit(rng);
    for (int32_t r = 0; r < kScaleSinkRows; ++r) {
      for (int32_t e = 0; e < kScaleSinkEntries; ++e) {
        sink_in.Accumulate(
            r, static_cast<EntityId>(rng.Uniform(kScaleSinkRows)),
            static_cast<float>(rng.Uniform(1000)) * 1e-3f);
      }
    }
    names.resize(static_cast<size_t>(kScaleMinHashNames));
    for (size_t i = 0; i < names.size(); ++i) {
      names[i] = TokenizeName("entity name number " + std::to_string(i) +
                              " with a few more tokens " +
                              std::to_string(rng.Next() % 99991));
    }
    signatures.resize(names.size());
    kernels = {
        {"gemm", "la.gemm", kScaleGemmRows * kScaleGemmDim * kScaleGemmDim,
         [this] { Gemm(gemm_a, gemm_b, gemm_c); }},
        {"topk", "sim.topk.exact", kScaleTopKRows * kScaleTopKRows,
         [this] {
           benchmark::DoNotOptimize(ExactTopK(topk_a, topk_b, topk));
         }},
        {"sinkhorn", "sim.sinkhorn",
         int64_t{kScaleSinkRows} * kScaleSinkEntries * sink.iterations,
         [this] {
           benchmark::DoNotOptimize(SinkhornNormalize(sink_in, sink));
         }},
        {"minhash", "bench.minhash", kScaleMinHashNames, [this] {
           // Mirrors string_sim.cc's signature-build loop, annotated the
           // same way so the profile sweep can attribute its pool jobs.
           obs::ProfileScope prof("bench.minhash");
           prof.AddBytes(0, kScaleMinHashNames * 64 * 8);
           par::ParallelFor(
               0, static_cast<int64_t>(names.size()), 256,
               [&](const par::ChunkRange& range) {
                 for (int64_t t = range.begin; t < range.end; ++t) {
                   signatures[t] = hasher.Signature(names[t]);
                 }
               });
           benchmark::DoNotOptimize(signatures);
         }}};
  }
};

int RunKernelScaling(const Flags& flags) {
  bench::BenchJson json(flags, "par");
  const std::vector<int32_t> thread_counts =
      ParseThreadsList(flags.GetString("threads-list", "1,2,4,8"));
  const double min_time = flags.GetDouble("min-time", 0.3);
  ScalingBench bench;

  std::printf("%-10s %8s %14s %16s %12s\n", "kernel", "threads",
              "sec/iter", "items/sec", "speedup_1t");
  std::vector<double> base_seconds(bench.kernels.size(), 0.0);
  for (const int32_t threads : thread_counts) {
    par::ThreadPool::Get().SetNumThreads(threads);
    for (size_t k = 0; k < bench.kernels.size(); ++k) {
      const double seconds = TimeKernel(bench.kernels[k].fn, min_time);
      if (threads == thread_counts.front()) base_seconds[k] = seconds;
      const double speedup =
          seconds > 0.0 ? base_seconds[k] / seconds : 0.0;
      const double items_per_sec =
          seconds > 0.0
              ? static_cast<double>(bench.kernels[k].items) / seconds
              : 0.0;
      std::printf("%-10s %8d %14.6f %16.0f %12.2f\n", bench.kernels[k].name,
                  threads, seconds, items_per_sec, speedup);
      bench::BenchJson::Row row;
      row.Set("kernel", bench.kernels[k].name)
          .Set("threads", threads)
          .Set("seconds", seconds)
          .Set("items_per_sec", items_per_sec)
          .Set("speedup_vs_1t", speedup);
      json.Add(std::move(row));
    }
  }
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// Profile sweep (--mode=profile): the scaling grid re-run under the
// profiler. The wall-clock column still comes from TimeKernel (the
// profiler's own timing is per-scope, not per-sweep-iteration); the
// utilization/imbalance/GB-per-sec columns come from the profiler
// records accumulated while the cell ran. Ratios are insensitive to the
// iteration count, so TimeKernel's adaptive looping does not skew them.

int RunProfileSweep(const Flags& flags) {
  bench::BenchJson json(flags, "profile");
  const std::vector<int32_t> thread_counts =
      ParseThreadsList(flags.GetString("threads-list", "1,2,4,8"));
  const double min_time = flags.GetDouble("min-time", 0.3);
  ScalingBench bench;
  obs::Profiler& profiler = obs::Profiler::Get();

  std::printf("%-10s %8s %12s %8s %8s %10s %10s %8s\n", "kernel", "threads",
              "sec/iter", "util", "imbal", "GB/s", "flop/B", "chunks");
  for (const int32_t threads : thread_counts) {
    par::ThreadPool::Get().SetNumThreads(threads);
    for (const ScalingKernel& kernel : bench.kernels) {
      kernel.fn();  // warm-up outside the profiled window
      profiler.Clear();
      profiler.Enable();
      const double seconds = TimeKernel(kernel.fn, min_time);
      profiler.Disable();

      obs::KernelProfile kp;
      for (const obs::KernelProfile& k : profiler.KernelTotals()) {
        if (k.kernel == kernel.profile_name) kp = k;
      }
      obs::PoolKernelTotal pt;
      for (const obs::PoolKernelTotal& t : profiler.PoolTotals()) {
        if (t.kernel == kernel.profile_name) pt = t;
      }
      const double chunks_per_job =
          pt.jobs > 0 ? static_cast<double>(pt.chunks) /
                            static_cast<double>(pt.jobs)
                      : 0.0;
      const double items_per_sec =
          seconds > 0.0 ? static_cast<double>(kernel.items) / seconds : 0.0;
      std::printf("%-10s %8d %12.6f %8.2f %8.2f %10.2f %10.2f %8.0f\n",
                  kernel.name, threads, seconds, pt.Utilization(),
                  pt.max_imbalance, kp.GBPerSec(), kp.ArithmeticIntensity(),
                  chunks_per_job);
      bench::BenchJson::Row row;
      row.Set("kernel", kernel.name)
          .Set("threads", threads)
          .Set("seconds", seconds)
          .Set("items_per_sec", items_per_sec)
          .Set("utilization", pt.Utilization())
          .Set("imbalance_ratio", pt.max_imbalance)
          .Set("gb_per_sec", kp.GBPerSec())
          .Set("arithmetic_intensity", kp.ArithmeticIntensity())
          .Set("chunks_per_job", chunks_per_job)
          .Set("chunk_cov", pt.max_chunk_cov)
          .Set("grain", pt.last_grain)
          .Set("merge_seconds", pt.merge_seconds);
      json.Add(std::move(row));
    }
  }
  profiler.Clear();
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// Autotune sweep (--mode=tune): tune::RunAutotune's candidate timings as
// JSON rows, one per (param, candidate). candidate=0 is the analytic
// default; `winner` marks the value RunAutotune would install. The pool
// size is whatever --threads requests (0 = hardware), matching how the
// CLI's --autotune runs.

int RunTuneSweep(const Flags& flags) {
  bench::BenchJson json(flags, "tune");
  par::ThreadPool::Get().SetNumThreads(
      static_cast<int32_t>(flags.GetInt("threads", 0)));
  tune::AutotuneOptions options;
  options.scale = flags.GetDouble("scale", 1.0);
  options.min_seconds = flags.GetDouble("min-time", 0.05);
  const tune::AutotuneResult result = tune::RunAutotune(options);

  std::printf("%-22s %12s %14s %8s\n", "param", "candidate", "sec/iter",
              "winner");
  for (const tune::AutotuneRow& r : result.rows) {
    std::printf("%-22s %12lld %14.6f %8s\n", r.param.c_str(),
                static_cast<long long>(r.candidate), r.seconds,
                r.winner ? "yes" : "");
    bench::BenchJson::Row row;
    row.Set("param", r.param)
        .Set("candidate", r.candidate)
        .Set("seconds", r.seconds)
        .Set("winner", r.winner);
    json.Add(std::move(row));
  }
  const std::string tune_out = flags.GetString("tune-out", "");
  if (!tune_out.empty()) {
    const Status saved = tune::SaveTuneFile(tune_out, result.winners);
    if (!saved.ok()) {
      std::fprintf(stderr, "tune-out: %s\n",
                   std::string(saved.message()).c_str());
      return 1;
    }
    std::printf("winners -> %s\n", tune_out.c_str());
  }
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// SIMD backend matrix (--mode=backend): the same kernel on the same
// inputs under every backend the CPU supports, at one thread, so the
// rows isolate the ISA effect. The determinism contract (DESIGN.md §9)
// means only the wall-clock may change between rows. The levenshtein
// kernel is integer and backend-independent; its "scalar" row times the
// classic DP (the pre-bit-parallel baseline) and the native rows time
// Myers, so that row pair records the bit-parallel speedup instead.

int RunBackendMatrix(const Flags& flags) {
  bench::BenchJson json(flags, "simd");
  const double min_time = flags.GetDouble("min-time", 0.3);
  par::ThreadPool::Get().SetNumThreads(1);

  // Identical inputs for every backend. The dot/manhattan working set
  // (2 x 256KB) stays L2-resident so those rows measure compute, not
  // memory bandwidth.
  Rng rng(13);
  constexpr int32_t kVecRows = 256;
  constexpr int32_t kVecDim = 256;
  Matrix vec_a(kVecRows, kVecDim), vec_b(kVecRows, kVecDim);
  vec_a.GlorotInit(rng);
  vec_b.GlorotInit(rng);
  Matrix gemm_a(256, 256), gemm_b(256, 256), gemm_c(256, 256);
  gemm_a.GlorotInit(rng);
  gemm_b.GlorotInit(rng);
  Matrix topk_a(1000, 64), topk_b(1000, 64);
  topk_a.GlorotInit(rng);
  topk_b.GlorotInit(rng);
  const TopKOptions topk{.k = 50, .metric = SimMetric::kManhattan};
  SparseSimMatrix sink_in(2000, 2000, 50);
  for (int32_t r = 0; r < 2000; ++r) {
    for (int32_t e = 0; e < 50; ++e) {
      sink_in.Accumulate(r, static_cast<EntityId>(rng.Uniform(2000)),
                         static_cast<float>(rng.Uniform(1000)) * 1e-3f);
    }
  }
  SinkhornOptions sink;
  constexpr int32_t kNamePairs = 400;
  std::vector<std::pair<std::string, std::string>> name_pairs;
  int64_t name_cells = 0;  // DP cells per iteration, for items/sec
  for (int32_t i = 0; i < kNamePairs; ++i) {
    std::string a, b;
    const int32_t len = 24 + static_cast<int32_t>(rng.Uniform(40));
    for (int32_t c = 0; c < len; ++c) {
      a.push_back(static_cast<char>('a' + rng.Uniform(6)));
      b.push_back(static_cast<char>('a' + rng.Uniform(6)));
    }
    name_cells += int64_t{len} * len;
    name_pairs.emplace_back(std::move(a), std::move(b));
  }

  struct Kernel {
    const char* name;
    int64_t items;  // per iteration, for items_per_sec
    std::function<void()> fn;
    std::function<void()> scalar_fn;  // nullptr = same as fn
  };
  float acc_sink = 0.0f;
  const std::vector<Kernel> kernels = {
      {"dot", int64_t{kVecRows} * kVecDim,
       [&] {
         float acc = 0.0f;
         for (int32_t r = 0; r < kVecRows; ++r) {
           acc += Dot(vec_a.Row(r), vec_b.Row(r), kVecDim);
         }
         benchmark::DoNotOptimize(acc);
       },
       nullptr},
      {"manhattan", int64_t{kVecRows} * kVecDim,
       [&] {
         float acc = 0.0f;
         for (int32_t r = 0; r < kVecRows; ++r) {
           acc += ManhattanDistance(vec_a.Row(r), vec_b.Row(r), kVecDim);
         }
         benchmark::DoNotOptimize(acc);
       },
       nullptr},
      {"gemm", int64_t{256} * 256 * 256,
       [&] { Gemm(gemm_a, gemm_b, gemm_c); }, nullptr},
      {"gemm_tb", int64_t{256} * 256 * 256,
       [&] { GemmTransposeB(gemm_a, gemm_b, gemm_c); }, nullptr},
      {"sinkhorn", int64_t{2000} * 50 * sink.iterations,
       [&] {
         benchmark::DoNotOptimize(acc_sink +=
                                  SinkhornNormalize(sink_in, sink)
                                      .Row(0)
                                      .front()
                                      .score);
       },
       nullptr},
      {"topk", int64_t{1000} * 1000,
       [&] { benchmark::DoNotOptimize(ExactTopK(topk_a, topk_b, topk)); },
       nullptr},
      {"levenshtein", name_cells,
       [&] {
         int64_t acc = 0;
         for (const auto& [a, b] : name_pairs) {
           acc += LevenshteinDistance(a, b);
         }
         benchmark::DoNotOptimize(acc);
       },
       [&] {
         int64_t acc = 0;
         for (const auto& [a, b] : name_pairs) {
           acc += LevenshteinDistanceDp(a, b);
         }
         benchmark::DoNotOptimize(acc);
       }}};

  const std::vector<simd::Backend> backends = simd::AvailableBackends();
  std::printf("%-12s %8s %14s %16s %16s\n", "kernel", "backend",
              "sec/iter", "items/sec", "speedup_scalar");
  std::vector<double> scalar_seconds(kernels.size(), 0.0);
  for (const simd::Backend backend : backends) {
    simd::SetBackend(backend);
    const bool is_scalar = backend == simd::Backend::kScalar;
    for (size_t k = 0; k < kernels.size(); ++k) {
      const Kernel& kernel = kernels[k];
      const auto& fn =
          is_scalar && kernel.scalar_fn ? kernel.scalar_fn : kernel.fn;
      const double seconds = TimeKernel(fn, min_time);
      if (is_scalar) scalar_seconds[k] = seconds;
      const double speedup =
          seconds > 0.0 && scalar_seconds[k] > 0.0
              ? scalar_seconds[k] / seconds
              : 0.0;
      const double items_per_sec =
          seconds > 0.0 ? static_cast<double>(kernel.items) / seconds : 0.0;
      std::printf("%-12s %8s %14.6f %16.0f %16.2f\n", kernel.name,
                  simd::BackendName(backend), seconds, items_per_sec,
                  speedup);
      bench::BenchJson::Row row;
      row.Set("kernel", kernel.name)
          .Set("backend", simd::BackendName(backend))
          .Set("seconds", seconds)
          .Set("items_per_sec", items_per_sec)
          .Set("speedup_vs_scalar", speedup);
      json.Add(std::move(row));
    }
  }
  simd::SetBackend(simd::BestBackend());
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// Streaming budget sweep (--mode=stream): the name-channel pipeline on a
// generated dataset, first unbudgeted (recording the tracked peak and
// the fused matrix's hash), then under successively tighter budgets.
// The determinism contract extends to streaming (DESIGN.md §10): every
// budgeted row must reproduce the unbudgeted fused matrix bit-for-bit.

uint64_t FusedMatrixHash(const SparseSimMatrix& m) {
  std::string bytes;
  bytes.reserve(static_cast<size_t>(m.TotalEntries()) * sizeof(SimEntry));
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    bytes.append(reinterpret_cast<const char*>(row.data()),
                 row.size_bytes());
  }
  return rt::Fnv1a64(bytes);
}

int RunStreamSweep(const Flags& flags) {
  bench::BenchJson json(flags, "stream");
  const double scale = flags.GetDouble("scale", 0.2);
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr, scale);
  const EaDataset dataset = GenerateBenchmark(spec);

  // Name channel only: those are the streamed whole-graph phases
  // (semantic top-k, NFF fusion, fused-matrix construction); structure
  // training would just add budget-independent wall time.
  LargeEaOptions options;
  options.use_structure_channel = false;
  options.name_channel.nff.sens.use_lsh = flags.GetBool("use-lsh", false);

  struct RunResult {
    double seconds = 0.0;
    int64_t peak_bytes = 0;
    uint64_t fused_hash = 0;
  };
  const auto run_once = [&](int64_t budget_mb) -> RunResult {
    LargeEaOptions run_options = options;
    // 0 disables streaming explicitly (the env var only applies to the
    // unset sentinel -1), so the baseline is the historical path.
    run_options.stream.memory_budget_mb = budget_mb;
    auto run = RunLargeEa(dataset, run_options);
    LARGEEA_CHECK(run.ok());
    return RunResult{run->total_seconds, run->peak_bytes,
                     FusedMatrixHash(run->fused)};
  };

  std::printf("%-12s %12s %12s %10s %10s\n", "budget_mb", "peak",
              "seconds", "identical", "compliant");
  const RunResult baseline = run_once(0);
  std::printf("%-12s %12s %12.3f %10s %10s\n", "unbudgeted",
              bench::FormatBytes(baseline.peak_bytes).c_str(),
              baseline.seconds, "-", "-");
  {
    bench::BenchJson::Row row;
    row.Set("budget_mb", int64_t{0})
        .Set("peak_bytes", baseline.peak_bytes)
        .Set("seconds", baseline.seconds)
        .Set("identical", true)
        .Set("compliant", true);
    json.Add(std::move(row));
  }
  for (const int64_t divisor : {2, 4, 8}) {
    const int64_t budget_mb =
        std::max<int64_t>(1, baseline.peak_bytes / divisor / (1 << 20));
    const RunResult budgeted = run_once(budget_mb);
    const bool identical = budgeted.fused_hash == baseline.fused_hash;
    const bool compliant = budgeted.peak_bytes <= budget_mb * (1 << 20);
    std::printf("%-12lld %12s %12.3f %10s %10s\n",
                static_cast<long long>(budget_mb),
                bench::FormatBytes(budgeted.peak_bytes).c_str(),
                budgeted.seconds, identical ? "yes" : "NO",
                compliant ? "yes" : "NO");
    bench::BenchJson::Row row;
    row.Set("budget_mb", budget_mb)
        .Set("peak_bytes", budgeted.peak_bytes)
        .Set("seconds", budgeted.seconds)
        .Set("identical", identical)
        .Set("compliant", compliant);
    json.Add(std::move(row));
  }
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// DAG executor sweep (--mode=dag): the full two-channel pipeline run
// serially and through the operator-DAG scheduler on the same dataset.
// The value of the DAG is overlap (name channel x structure partition),
// so the headline numbers are the two wall clocks plus the node-level
// critical path — the floor the schedule is converging towards. Every
// row reasserts the determinism contract: the DAG fused matrix must be
// bit-identical to the serial one.

int RunDagSweep(const Flags& flags) {
  bench::BenchJson json(flags, "dag");
  const double scale = flags.GetDouble("scale", 0.2);
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr, scale);
  const EaDataset dataset = GenerateBenchmark(spec);

  LargeEaOptions options;
  options.structure_channel.train.epochs =
      static_cast<int32_t>(flags.GetInt("epochs", 5));
  options.structure_channel.num_batches =
      static_cast<int32_t>(flags.GetInt("batches", 4));
  options.stream.memory_budget_mb = flags.GetInt("budget-mb", 0);

  options.dag = false;
  auto serial = RunLargeEa(dataset, options);
  LARGEEA_CHECK(serial.ok());
  const uint64_t serial_hash = FusedMatrixHash(serial->fused);

  options.dag = true;
  auto dag = RunLargeEa(dataset, options);
  LARGEEA_CHECK(dag.ok());
  const bool identical = FusedMatrixHash(dag->fused) == serial_hash;
  const double speedup =
      dag->total_seconds > 0.0 ? serial->total_seconds / dag->total_seconds
                               : 0.0;

  std::printf("%-24s %10s %12s\n", "row", "seconds", "identical");
  std::printf("%-24s %10.3f %12s\n", "serial", serial->total_seconds, "-");
  std::printf("%-24s %10.3f %12s\n", "dag", dag->total_seconds,
              identical ? "yes" : "NO");
  {
    bench::BenchJson::Row row;
    row.Set("row", "serial")
        .Set("seconds", serial->total_seconds)
        .Set("peak_bytes", serial->peak_bytes)
        .Set("identical", true);
    json.Add(std::move(row));
  }
  {
    bench::BenchJson::Row row;
    row.Set("row", "dag")
        .Set("seconds", dag->total_seconds)
        .Set("peak_bytes", dag->peak_bytes)
        .Set("identical", identical)
        .Set("speedup", speedup)
        .Set("deferrals", dag->dag_deferrals);
    json.Add(std::move(row));
  }
  for (const DagNodeStats& node : dag->dag_nodes) {
    std::printf("%-24s %10.3f %12s\n", ("node:" + node.name).c_str(),
                node.seconds, "-");
    bench::BenchJson::Row row;
    row.Set("row", "node:" + node.name)
        .Set("seconds", node.seconds)
        .Set("peak_bytes", node.peak_bytes)
        .Set("estimated_bytes", node.estimated_bytes)
        .Set("from_checkpoint", node.from_checkpoint);
    json.Add(std::move(row));
  }
  {
    std::string path;
    for (const std::string& name : dag->dag_critical_path) {
      if (!path.empty()) path += " -> ";
      path += name;
    }
    std::printf("%-24s %10.3f %12s  %s\n", "critical_path",
                dag->dag_critical_path_seconds, "-", path.c_str());
    bench::BenchJson::Row row;
    row.Set("row", "critical_path")
        .Set("seconds", dag->dag_critical_path_seconds)
        .Set("path", path);
    json.Add(std::move(row));
  }
  LARGEEA_CHECK(identical);
  par::ThreadPool::Get().Shutdown();
  json.Write();
  return 0;
}

// ---------------------------------------------------------------------
// Serve sweep (--mode=serve): single-query latency of the serving layer
// across index sizes, through the real IndexManager -> QueryEngine path
// (snapshot per query, serve.* histograms live). Synthetic fused matrix
// and names, same generators as tests/serve_test.cc.

std::vector<std::string> ServeNames(int32_t n, uint64_t seed) {
  // Three words from a 24-word vocabulary plus a unique suffix: mostly
  // distinct strings with realistic token overlap (the DBpedia regime),
  // not a handful of giant near-duplicate clusters — those would
  // degenerate both the LSH buckets and the HNSW beam into linear
  // scans, which is not the workload the serving layer is sized for.
  static const char* const kWords[] = {
      "alda", "brin",  "ceto",  "doral", "evik", "fenor", "gil",  "hasem",
      "irol", "jun",   "kolv",  "lira",  "moth", "nerel", "ospa", "pran",
      "quel", "rosta", "sivel", "tor",   "ulm",  "vask",  "wex",  "yole"};
  constexpr int32_t kVocab = 24;
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    std::string name = kWords[rng.Uniform(kVocab)];
    name += ' ';
    name += kWords[rng.Uniform(kVocab)];
    name += ' ';
    name += kWords[rng.Uniform(kVocab)];
    name += ' ';
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return names;
}

SparseSimMatrix ServeFused(int32_t num_source, int32_t num_target,
                           uint64_t seed) {
  SparseSimMatrix fused(num_source, num_target, 8);
  Rng rng(seed);
  for (int32_t s = 0; s < num_source; ++s) {
    for (int32_t j = 0; j < 6; ++j) {
      fused.Accumulate(s, static_cast<EntityId>(rng.Uniform(num_target)),
                       static_cast<float>(rng.UniformDouble()));
    }
  }
  return fused;
}

struct ServeLatency {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Times `fn(i)` one call at a time for at least `min_seconds` after a
/// short warm-up; QPS from the wall clock, percentiles from the
/// individual samples (this is a latency bench, not an averaging one).
ServeLatency TimeQueries(const std::function<void(int64_t)>& fn,
                         double min_seconds) {
  for (int64_t i = 0; i < 16; ++i) fn(i);
  std::vector<double> samples_us;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  int64_t count = 0;
  do {
    const auto t0 = std::chrono::steady_clock::now();
    fn(count);
    const auto t1 = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++count;
    elapsed = std::chrono::duration<double>(t1 - start).count();
  } while (elapsed < min_seconds);
  std::sort(samples_us.begin(), samples_us.end());
  ServeLatency out;
  out.qps = static_cast<double>(count) / elapsed;
  out.p50_us = SortedPercentile(samples_us, 0.5);
  out.p99_us = SortedPercentile(samples_us, 0.99);
  out.p999_us = SortedPercentile(samples_us, 0.999);
  return out;
}

int RunServeSweep(const Flags& flags) {
  bench::BenchJson json(flags, "serve");
  const double min_time = flags.GetDouble("min-time", 0.3);
  const auto k = static_cast<int32_t>(flags.GetInt("k", 10));
  const double min_ann_speedup = flags.GetDouble("min-ann-speedup", 10.0);
  const std::vector<int32_t> sizes = ParseThreadsList(
      flags.GetString("targets-list", "2000,8000,32000,256000"));

  std::printf("%8s %-12s %14s %10s %10s %10s\n", "targets", "path",
              "items_per_sec", "p50_us", "p99_us", "p999_us");
  const auto print_row = [](int32_t targets, const char* path,
                            const ServeLatency& lat) {
    std::printf("%8d %-12s %14.0f %10.1f %10.1f %10.1f\n", targets, path,
                lat.qps, lat.p50_us, lat.p99_us, lat.p999_us);
  };

  double last_speedup = 0.0;
  int32_t last_targets = 0;
  for (const int32_t targets : sizes) {
    const int32_t sources = std::max<int32_t>(64, targets / 4);
    serve::ServeIndexOptions options;
    options.encoder.dim = static_cast<int32_t>(flags.GetInt("dim", 64));
    auto built = serve::ServeIndex::Build(
        ServeFused(sources, targets, 101), ServeNames(sources, 7),
        ServeNames(targets, 8),
        /*pipeline_fingerprint=*/static_cast<uint64_t>(targets), options);
    LARGEEA_CHECK(built.ok());
    serve::IndexManager manager(std::move(built).value());
    const serve::QueryEngine engine(&manager);
    const auto index = manager.Current();

    // Entity path correctness: every served top-1 is the batch fused
    // row's top-1 — serving re-serves the pipeline answer exactly.
    for (int32_t s = 0; s < sources; ++s) {
      const auto row = index->fused().Row(s);
      if (row.empty()) continue;
      serve::QueryRequest request;
      request.kind = serve::QueryRequest::Kind::kEntity;
      request.entity = s;
      request.k = 1;
      const auto response = engine.Execute(request);
      LARGEEA_CHECK(response.status.ok());
      LARGEEA_CHECK(!response.candidates.empty());
      LARGEEA_CHECK(response.candidates[0].target == row[0].column);
      LARGEEA_CHECK(response.candidates[0].score == row[0].score);
    }

    const std::vector<std::string> queries =
        ServeNames(std::min<int32_t>(256, targets), 9);
    const auto name_query = [&](int64_t i, bool exact) {
      serve::QueryRequest request;
      request.kind = serve::QueryRequest::Kind::kName;
      request.name = queries[static_cast<size_t>(i) % queries.size()];
      request.k = k;
      request.exact = exact;
      const auto response = engine.Execute(request);
      LARGEEA_CHECK(response.status.ok());
    };

    // Component sub-timings of the name path (printf diagnostics only):
    // where does a name query spend its time — encode, graph walk, or
    // the string shortlist + re-rank?
    {
      std::vector<float> qvec(index->encoder().dim());
      std::vector<SimEntry> scratch;
      int64_t shortlist_total = 0, shortlist_calls = 0;
      const ServeLatency enc = TimeQueries(
          [&](int64_t i) {
            index->encoder().EncodeName(
                queries[static_cast<size_t>(i) % queries.size()], qvec.data());
          },
          min_time / 4);
      const ServeLatency graph = TimeQueries(
          [&](int64_t i) {
            index->encoder().EncodeName(
                queries[static_cast<size_t>(i) % queries.size()], qvec.data());
            index->ann().QueryTopK(qvec, k, scratch);
          },
          min_time / 4);
      const int32_t shortlist_cap = std::max(4 * k, 64);  // engine's cap
      const ServeLatency shortlist = TimeQueries(
          [&](int64_t i) {
            shortlist_total += static_cast<int64_t>(
                index
                    ->StringShortlist(
                        queries[static_cast<size_t>(i) % queries.size()],
                        shortlist_cap)
                    .size());
            ++shortlist_calls;
          },
          min_time / 4);
      std::printf(
          "%8d %-12s encode %.1fus  encode+graph %.1fus  shortlist %.1fus "
          "(avg %lld ids)\n",
          targets, "ann_parts", enc.p50_us, graph.p50_us, shortlist.p50_us,
          static_cast<long long>(shortlist_total /
                                 std::max<int64_t>(1, shortlist_calls)));
    }

    const ServeLatency entity = TimeQueries(
        [&](int64_t i) {
          serve::QueryRequest request;
          request.kind = serve::QueryRequest::Kind::kEntity;
          request.entity = static_cast<EntityId>(i % sources);
          request.k = k;
          const auto response = engine.Execute(request);
          LARGEEA_CHECK(response.status.ok());
        },
        min_time);
    const ServeLatency ann =
        TimeQueries([&](int64_t i) { name_query(i, /*exact=*/false); },
                    min_time);
    const ServeLatency exact =
        TimeQueries([&](int64_t i) { name_query(i, /*exact=*/true); },
                    min_time);

    // Recall of the ANN shortlist against the full scan, same queries,
    // same k, same exact re-rank scores on both sides.
    int64_t recalled = 0, expected = 0, top1_match = 0, top1_total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      serve::QueryRequest request;
      request.kind = serve::QueryRequest::Kind::kName;
      request.name = queries[i];
      request.k = k;
      request.exact = true;
      const auto exact_response = engine.Execute(request);
      request.exact = false;
      const auto ann_response = engine.Execute(request);
      LARGEEA_CHECK(exact_response.status.ok());
      LARGEEA_CHECK(ann_response.status.ok());
      expected += static_cast<int64_t>(exact_response.candidates.size());
      for (const serve::Candidate& c : ann_response.candidates) {
        for (const serve::Candidate& e : exact_response.candidates) {
          if (e.target == c.target) {
            ++recalled;
            break;
          }
        }
      }
      if (!exact_response.candidates.empty() &&
          !ann_response.candidates.empty()) {
        ++top1_total;
        if (ann_response.candidates[0].target ==
            exact_response.candidates[0].target) {
          ++top1_match;
        }
      }
    }
    const double recall =
        expected > 0
            ? static_cast<double>(recalled) / static_cast<double>(expected)
            : 0.0;
    const double top1_rate =
        top1_total > 0
            ? static_cast<double>(top1_match) / static_cast<double>(top1_total)
            : 0.0;
    const double speedup = ann.p50_us > 0.0 ? exact.p50_us / ann.p50_us : 0.0;
    last_speedup = speedup;
    last_targets = targets;

    print_row(targets, "entity", entity);
    print_row(targets, "name_ann", ann);
    print_row(targets, "name_exact", exact);
    std::printf("%8d %-12s recall@%d %.3f  top1 %.3f  speedup %.1fx\n",
                targets, "ann_quality", k, recall, top1_rate, speedup);

    {
      bench::BenchJson::Row row;
      row.Set("targets", targets)
          .Set("path", "entity")
          .Set("items_per_sec", entity.qps)
          .Set("p50_us", entity.p50_us)
          .Set("p99_us", entity.p99_us)
          .Set("p999_us", entity.p999_us)
          .Set("k", k);
      json.Add(std::move(row));
    }
    {
      bench::BenchJson::Row row;
      row.Set("targets", targets)
          .Set("path", "name_ann")
          .Set("items_per_sec", ann.qps)
          .Set("p50_us", ann.p50_us)
          .Set("p99_us", ann.p99_us)
          .Set("p999_us", ann.p999_us)
          .Set("k", k)
          .Set("recall_at_k", recall)
          .Set("top1_match", top1_rate)
          .Set("ann_speedup_vs_scan", speedup);
      json.Add(std::move(row));
    }
    {
      bench::BenchJson::Row row;
      row.Set("targets", targets)
          .Set("path", "name_exact")
          .Set("items_per_sec", exact.qps)
          .Set("p50_us", exact.p50_us)
          .Set("p99_us", exact.p99_us)
          .Set("p999_us", exact.p999_us)
          .Set("k", k);
      json.Add(std::move(row));
    }
  }

  par::ThreadPool::Get().Shutdown();
  json.Write();
  if (min_ann_speedup > 0.0 && last_speedup < min_ann_speedup) {
    std::fprintf(stderr,
                 "serve sweep: ANN p50 speedup %.1fx at %d targets is below "
                 "the required %.1fx\n",
                 last_speedup, last_targets, min_ann_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace largeea

int main(int argc, char** argv) {
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json-out", 0) == 0) {
      json_mode = true;
    }
  }
  if (json_mode) {
    const largeea::Flags flags(argc, argv);
    const std::string mode = flags.GetString("mode", "threads");
    if (mode == "backend") return largeea::RunBackendMatrix(flags);
    if (mode == "stream") return largeea::RunStreamSweep(flags);
    if (mode == "dag") return largeea::RunDagSweep(flags);
    if (mode == "profile") return largeea::RunProfileSweep(flags);
    if (mode == "tune") return largeea::RunTuneSweep(flags);
    if (mode == "serve") return largeea::RunServeSweep(flags);
    return largeea::RunKernelScaling(flags);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
