// Design-choice ablation (DESIGN.md §4): similarity calibration and
// channel-fusion strategies.
//
// The paper fuses M = M_s + M_n with equal weights and decodes by row
// argmax. This bench isolates the calibration/decoding choices this
// implementation makes on top:
//   * CSLS hubness correction of M_s (on by default) vs. raw M_s;
//   * Sinkhorn (approximately 1-to-1) decoding of the fused matrix vs.
//     plain argmax;
//   * the name-fusion weight γ of STNS inside NFF;
//   * structural-model choice (RREA vs. GCN vs. TransE) under identical
//     channels.
//
// Flags: --scale, --pair (default enfr), --epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/sim/sinkhorn.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 50));
  const LanguagePair pair = SelectedPairs(flags).front();
  const Tier tier = Tier::kIds15k;
  const EaDataset dataset = GenerateBenchmark(TierSpec(tier, pair, scale));

  std::printf("=== Fusion/calibration ablation (%s) ===\n",
              dataset.name.c_str());
  std::printf("%-44s %7s %7s %7s\n", "Configuration", "H@1", "H@5", "MRR");
  PrintRule(70);
  const auto report = [](const char* label, const EvalMetrics& m) {
    std::printf("%-44s %6.1f%% %6.1f%% %7.3f\n", label, 100 * m.hits_at_1,
                100 * m.hits_at_5, m.mrr);
    std::fflush(stdout);
  };

  // Baseline configuration.
  const LargeEaOptions base =
      DefaultOptions(tier, dataset, ModelKind::kRrea, epochs);
  const LargeEaResult with_csls = RunLargeEa(dataset, base).value();
  report("default (RREA, CSLS on M_s, argmax)", with_csls.metrics);

  {
    LargeEaOptions options = base;
    options.structure_channel.apply_csls = false;
    report("w/o CSLS on M_s",
           RunLargeEa(dataset, options).value().metrics);
  }
  {
    const SparseSimMatrix sinkhorn = SinkhornNormalize(with_csls.fused);
    report("+ Sinkhorn decoding of fused M",
           Evaluate(sinkhorn, dataset.split.test));
  }
  for (const float gamma : {0.0f, 0.05f, 0.3f}) {
    LargeEaOptions options = base;
    options.name_channel.nff.string_weight = gamma;
    char label[64];
    std::snprintf(label, sizeof(label), "NFF string weight gamma = %.2f",
                  gamma);
    report(label, RunLargeEa(dataset, options).value().metrics);
  }
  for (const ModelKind model :
       {ModelKind::kGcnAlign, ModelKind::kTransE}) {
    LargeEaOptions options =
        DefaultOptions(tier, dataset, model, epochs);
    char label[64];
    std::snprintf(label, sizeof(label), "structural model = %s",
                  ModelKindName(model));
    report(label, RunLargeEa(dataset, options).value().metrics);
  }

  std::printf(
      "\nReading guide: CSLS calibration matters when the structure channel\n"
      "is weak/noisy (small batches; see tests) and is ~neutral when it is\n"
      "strong; Sinkhorn's global 1-to-1 competition typically gains a few\n"
      "H@1 points over per-row argmax; gamma = 0.05 (the paper's choice)\n"
      "sits near the optimum; RREA > GCN > TransE as the structural\n"
      "plug-in, matching the EA literature.\n");
  return 0;
}
