// Reproduces Table 1: statistics of the datasets used in experiments.
//
// Generates the six benchmark datasets (IDS15K / IDS100K / DBP1M, each
// EN-FR and EN-DE) and prints entity/relation/triple counts per side,
// plus the size of the EA ground truth. Our tiers are scaled for a single
// CPU core; the "paper" column shows the entity counts of the original
// datasets each tier models.
//
// Flags: --scale (default 1.0), --pair=enfr|ende|both.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/timer.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);

  std::printf("=== Table 1: Statistics of the datasets ===\n");
  std::printf("%-18s %21s %13s %19s %11s %21s\n", "Dataset",
              "#Entities(src-tgt)", "#Relations", "#Triples", "#Aligned",
              "paper #entities");
  PrintRule(110);
  for (const Tier tier : {Tier::kIds15k, Tier::kIds100k, Tier::kDbp1m}) {
    for (const LanguagePair pair : SelectedPairs(flags)) {
      const BenchmarkSpec spec = TierSpec(tier, pair, scale);
      Timer timer;
      const EaDataset dataset = GenerateBenchmark(spec);
      const DatasetStats stats = ComputeStats(dataset);
      std::printf(
          "%-18s %10d-%-10d %6d-%-6d %9ld-%-9ld %11ld %10ld-%-10ld\n",
          dataset.name.c_str(), stats.source_entities, stats.target_entities,
          stats.source_relations, stats.target_relations,
          static_cast<long>(stats.source_triples),
          static_cast<long>(stats.target_triples),
          static_cast<long>(stats.alignment_pairs),
          static_cast<long>(spec.paper_source_entities),
          static_cast<long>(spec.paper_target_entities));
      std::fflush(stdout);
      (void)timer;
    }
  }
  PrintRule(110);
  std::printf(
      "Shape checks vs. the paper: EN sides have more relations/triples;\n"
      "DBP1M sides are unbalanced and contain unknown entities (aligned <\n"
      "entities); DE KGs are sparser than FR KGs at the same tier.\n");
  return 0;
}
