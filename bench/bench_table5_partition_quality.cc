// Reproduces Table 5 (Appendix D): percentage of equivalent entities
// placed into the same mini-batch.
//
// For every dataset and both directions, reports the same-batch fraction
// of all / training / test pairs under METIS-CPS and VPS. The paper's
// findings: VPS is perfect on the training set (by construction) but
// collapses to ~1/K on the test set; METIS-CPS sacrifices some training
// retention to preserve far more *test* pairs — the ones that actually
// matter for alignment.
//
// Flags: --scale, --pair.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/partition/metis_cps.h"
#include "src/partition/vps.h"

using namespace largeea;
using namespace largeea::bench;

namespace {

struct Fractions {
  double total, train, test;
};

Fractions Measure(const MiniBatchSet& batches, const EaDataset& ds) {
  const int32_t ns = ds.source.num_entities();
  const int32_t nt = ds.target.num_entities();
  return Fractions{
      SameBatchFraction(batches, ds.split.All(), ns, nt),
      SameBatchFraction(batches, ds.split.train, ns, nt),
      SameBatchFraction(batches, ds.split.test, ns, nt),
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);

  std::printf(
      "=== Table 5: %% of equivalent entities placed into the same "
      "mini-batch ===\n");
  std::printf("%-18s %-6s %-10s | %7s %7s %7s\n", "Dataset", "dir",
              "method", "Total", "Train", "Test");
  PrintRule(70);
  for (const Tier tier : {Tier::kIds15k, Tier::kIds100k, Tier::kDbp1m}) {
    for (const LanguagePair pair : SelectedPairs(flags)) {
      const EaDataset forward =
          GenerateBenchmark(TierSpec(tier, pair, scale));
      const int32_t k = TierBatchCount(tier);
      for (const bool reversed : {false, true}) {
        const EaDataset& ds = reversed
                                  ? forward.Reversed()
                                  : forward;
        const char* dir = reversed ? "L->EN" : "EN->L";

        MetisCpsOptions cps_options;
        cps_options.num_batches = k;
        const Fractions cps = Measure(
            MetisCpsPartition(ds.source, ds.target, ds.split.train,
                              cps_options)
                .value(),
            ds);
        VpsOptions vps_options;
        vps_options.num_batches = k;
        const Fractions vps = Measure(
            VpsPartition(ds.source, ds.target, ds.split.train, vps_options),
            ds);
        std::printf("%-18s %-6s %-10s | %6.1f%% %6.1f%% %6.1f%%\n",
                    forward.name.c_str(), dir, "METIS-CPS", 100 * cps.total,
                    100 * cps.train, 100 * cps.test);
        std::printf("%-18s %-6s %-10s | %6.1f%% %6.1f%% %6.1f%%\n",
                    forward.name.c_str(), dir, "VPS", 100 * vps.total,
                    100 * vps.train, 100 * vps.test);
        std::fflush(stdout);
      }
    }
  }
  std::printf(
      "\nShape checks: VPS = 100%% on Train and ~1/K on Test; METIS-CPS\n"
      "keeps most Train pairs and several times VPS's Test retention;\n"
      "DBP1M retention is below IDS (sparser, more heterogeneous KGs).\n");
  return 0;
}
