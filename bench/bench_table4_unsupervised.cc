// Reproduces Table 4 + the Section 3.5 case study: unsupervised EA on
// DBP1M.
//
// No human seed alignment at all: the name-based data augmentation
// generates pseudo seeds (the case study reports ~500k seeds at ~94%
// precision at paper scale), and the full pipeline runs on them alone.
// The paper's claim: unsupervised results are comparable to supervised.
//
// Flags: --scale, --pair, --epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/name/data_augmentation.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.6);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 50));

  std::printf("=== Table 4: Unsupervised EA results on DBP1M ===\n");
  for (const LanguagePair pair : SelectedPairs(flags)) {
    const EaDataset supervised =
        GenerateBenchmark(TierSpec(Tier::kDbp1m, pair, scale));
    // Unsupervised variant: every ground-truth pair is held out.
    EaDataset dataset = supervised;
    dataset.split.test.insert(dataset.split.test.end(),
                              dataset.split.train.begin(),
                              dataset.split.train.end());
    dataset.split.train.clear();

    std::printf("\n--- %s ---\n", dataset.name.c_str());
    std::printf("%-22s %6s %6s %6s %9s %10s\n", "Method", "H@1", "H@5",
                "MRR", "Time(s)", "Mem(meas)");
    PrintRule();

    struct Run {
      ModelKind model;
      bool reversed;
      const char* label;
    };
    const Run runs[] = {
        {ModelKind::kGcnAlign, false, "LargeEA-G EN->L"},
        {ModelKind::kGcnAlign, true, "LargeEA-G L->EN"},
        {ModelKind::kRrea, false, "LargeEA-R EN->L"},
        {ModelKind::kRrea, true, "LargeEA-R L->EN"},
    };
    bool reported_da = false;
    for (const Run& run : runs) {
      const EaDataset working = run.reversed ? dataset.Reversed() : dataset;
      const LargeEaOptions options =
          DefaultOptions(Tier::kDbp1m, working, run.model, epochs);
      Timer timer;
      const LargeEaResult result = RunLargeEa(working, options).value();
      if (!reported_da) {
        // Section 3.5's case-study numbers: pseudo-seed count + precision.
        const EntityPairList& truth = run.reversed
                                          ? working.split.test
                                          : dataset.split.test;
        const double precision =
            PseudoSeedPrecision(result.name_channel.pseudo_seeds, truth);
        std::printf(
            "data augmentation: %zu pseudo seeds, precision %.2f%%\n",
            result.name_channel.pseudo_seeds.size(), 100.0 * precision);
        reported_da = true;
      }
      std::printf("%-22s %6.1f %6.1f %6.3f %9.2f %10s\n", run.label,
                  100.0 * result.metrics.hits_at_1,
                  100.0 * result.metrics.hits_at_5, result.metrics.mrr,
                  timer.Seconds(),
                  FormatBytes(result.peak_bytes).c_str());
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nShape checks: pseudo-seed precision is high (paper: ~94%%) and the\n"
      "unsupervised H@1/H@5/MRR sit within a point or two of the\n"
      "supervised Table 3 numbers.\n");
  return 0;
}
