// Reproduces Table 6 (Appendix E): the memory usage of LargeEA.
//
// For every dataset, reports the measured peak tracked working set of the
// name channel and of the structure channel (LargeEA-R and LargeEA-G),
// with METIS-CPS partitioning versus without partition. The paper's
// observations to reproduce: the structure channel dominates memory on
// the large tier; partitioning cuts the structure channel's working set
// by a large factor; whole-graph training at the DBP1M tier is the
// configuration that dies on real hardware (we report its paper-scale
// estimate next to the measured value).
//
// Flags: --scale, --pair, --epochs, --skip_whole (skip w/o-partition
// runs), --json-out (machine-readable rows alongside the printed table).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/core/name_channel.h"
#include "src/core/structure_channel.h"

using namespace largeea;
using namespace largeea::bench;

namespace {

int64_t StructurePeak(Tier tier, const EaDataset& ds, ModelKind model,
                      PartitionStrategy strategy, int32_t epochs) {
  StructureChannelOptions options;
  options.model = model;
  options.strategy = strategy;
  options.num_batches = TierBatchCount(tier);
  options.train.epochs = epochs;
  const StructureChannelResult result =
      RunStructureChannel(ds.source, ds.target, ds.split.train, options)
          .value();
  return result.peak_training_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.8);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 15));
  const bool skip_whole = flags.GetBool("skip_whole", false);
  BenchJson json(flags, "table6_memory");

  std::printf("=== Table 6: The memory usage of LargeEA ===\n");
  std::printf("(structure channel cells: with METIS-CPS / without partition)\n");
  std::printf("%-18s %12s %24s %24s\n", "Dataset", "Name channel",
              "Structure (LargeEA-R)", "Structure (LargeEA-G)");
  PrintRule(84);
  for (const Tier tier : {Tier::kIds15k, Tier::kIds100k, Tier::kDbp1m}) {
    for (const LanguagePair pair : SelectedPairs(flags)) {
      const EaDataset ds = GenerateBenchmark(TierSpec(tier, pair, scale));

      NameChannelOptions name_options;
      if (ds.source.num_entities() > 8000) {
        name_options.nff.sens.use_lsh = true;
      }
      const NameChannelResult name =
          RunNameChannel(ds.source, ds.target, ds.split.train,
                         name_options)
              .value();

      const int64_t r_batched = StructurePeak(
          tier, ds, ModelKind::kRrea, PartitionStrategy::kMetisCps, epochs);
      const int64_t g_batched = StructurePeak(
          tier, ds, ModelKind::kGcnAlign, PartitionStrategy::kMetisCps,
          epochs);
      int64_t r_whole = -1, g_whole = -1;
      if (!skip_whole) {
        r_whole = StructurePeak(tier, ds, ModelKind::kRrea,
                                PartitionStrategy::kNone, epochs);
        g_whole = StructurePeak(tier, ds, ModelKind::kGcnAlign,
                                PartitionStrategy::kNone, epochs);
      }
      const auto cell = [](int64_t batched, int64_t whole) {
        std::string s = FormatBytes(batched) + " / ";
        s += whole < 0 ? "(skipped)" : FormatBytes(whole);
        return s;
      };
      std::printf("%-18s %12s %24s %24s\n", ds.name.c_str(),
                  FormatBytes(name.peak_bytes).c_str(),
                  cell(r_batched, r_whole).c_str(),
                  cell(g_batched, g_whole).c_str());
      if (!skip_whole && r_whole > 0) {
        std::printf("%-18s   batching saves: LargeEA-R %.1fx, LargeEA-G %.1fx\n",
                    "", static_cast<double>(r_whole) / r_batched,
                    static_cast<double>(g_whole) / g_batched);
      }
      std::fflush(stdout);
      BenchJson::Row row;
      row.Set("dataset", ds.name)
          .Set("name_channel_peak_bytes", name.peak_bytes)
          .Set("rrea_batched_peak_bytes", r_batched)
          .Set("rrea_whole_peak_bytes", r_whole)
          .Set("gcn_batched_peak_bytes", g_batched)
          .Set("gcn_whole_peak_bytes", g_whole);
      json.Add(std::move(row));
    }
  }
  std::printf(
      "\nShape checks: METIS-CPS batching shrinks the structure channel's\n"
      "peak by several x (the paper's '-' cells are whole-graph runs that\n"
      "no longer fit); the structure channel out-weighs the name channel\n"
      "at the DBP1M tier.\n");
  return 0;
}
