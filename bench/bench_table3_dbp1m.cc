// Reproduces Table 3: overall EA results on DBP1M.
//
// Only LargeEA-G / LargeEA-R rows carry numbers — every competitor's
// paper-scale working set exceeds the paper's hardware, so they are
// printed as OOM (Table 3 omits them for the same reason). Both language
// pairs and both directions are reported.
//
// Flags: --scale, --pair, --epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/common/timer.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 50));

  std::printf("=== Table 3: Overall EA results on DBP1M ===\n");
  for (const LanguagePair pair : SelectedPairs(flags)) {
    const BenchmarkSpec spec = TierSpec(Tier::kDbp1m, pair, scale);
    const EaDataset dataset = GenerateBenchmark(spec);
    std::printf("\n--- %s (%d-%d entities, %ld-%ld triples) ---\n",
                dataset.name.c_str(), dataset.source.num_entities(),
                dataset.target.num_entities(),
                static_cast<long>(dataset.source.num_triples()),
                static_cast<long>(dataset.target.num_triples()));
    std::printf("%-22s %6s %6s %6s %9s %10s\n", "Method", "H@1", "H@5",
                "MRR", "Time(s)", "Mem(meas)");
    PrintRule();

    // Competitors: paper-scale OOM, as in the paper.
    for (const BaselineKind kind :
         {BaselineKind::kGcnAlign, BaselineKind::kMultiKeLike,
          BaselineKind::kRdgcnLike, BaselineKind::kRrea,
          BaselineKind::kBertIntLike}) {
      const PaperCost cost = EstimatePaperCost(
          kind, spec.paper_source_entities, spec.paper_target_entities);
      std::printf("%-22s %6s %6s %6s %9s %10s   (paper-scale %.0fGB: OOM)\n",
                  BaselineKindName(kind), "-", "-", "-", "-", "-",
                  static_cast<double>(cost.gpu_bytes + cost.ram_bytes) /
                      (1LL << 30));
    }

    struct Run {
      ModelKind model;
      bool reversed;
      const char* label;
    };
    const Run runs[] = {
        {ModelKind::kGcnAlign, false, "LargeEA-G EN->L"},
        {ModelKind::kGcnAlign, true, "LargeEA-G L->EN"},
        {ModelKind::kRrea, false, "LargeEA-R EN->L"},
        {ModelKind::kRrea, true, "LargeEA-R L->EN"},
    };
    for (const Run& run : runs) {
      const EaDataset working = run.reversed ? dataset.Reversed() : dataset;
      const LargeEaOptions options =
          DefaultOptions(Tier::kDbp1m, working, run.model, epochs);
      Timer timer;
      const LargeEaResult result = RunLargeEa(working, options).value();
      std::printf("%-22s %6.1f %6.1f %6.3f %9.2f %10s\n", run.label,
                  100.0 * result.metrics.hits_at_1,
                  100.0 * result.metrics.hits_at_5, result.metrics.mrr,
                  timer.Seconds(),
                  FormatBytes(result.peak_bytes).c_str());
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nShape checks: H@1 sits far below the IDS tiers (unknown entities\n"
      "and heterogeneity), EN-DE slightly above EN-FR, and LargeEA-R edges\n"
      "out LargeEA-G — all as in the paper's Table 3.\n");
  return 0;
}
