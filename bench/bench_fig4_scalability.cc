// Reproduces Figure 4: scalability analysis vs. data size.
//
// Sweeps dataset size across the three tiers (plus an extra-small point)
// and reports the wall time of each LargeEA component: SENS and STNS in
// the name channel, METIS-CPS mini-batch generation and EA-model training
// in the structure channel. The paper's claim is near-linear growth of
// every component.
//
// Flags: --pair (default enfr), --scale, --epochs, --json-out
// (machine-readable rows alongside the printed table).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 40));
  const LanguagePair pair = SelectedPairs(flags).front();
  BenchJson json(flags, "fig4_scalability");

  std::printf("=== Figure 4: Scalability analysis vs. data size ===\n");
  std::printf("%-12s %10s | %10s %10s %12s %12s\n", "Dataset", "#entities",
              "SENS(s)", "STNS(s)", "METIS-CPS(s)", "Training(s)");
  PrintRule(84);

  struct Point {
    Tier tier;
    double tier_scale;
    const char* label;
  };
  const std::vector<Point> points{
      {Tier::kIds15k, 0.5, "IDS7K"},
      {Tier::kIds15k, 1.0, "IDS15K"},
      {Tier::kIds100k, 1.0, "IDS100K"},
      {Tier::kDbp1m, 1.0, "DBP1M"},
  };

  double prev_entities = 0.0, prev_total = 0.0;
  for (const Point& point : points) {
    const BenchmarkSpec spec =
        TierSpec(point.tier, pair, point.tier_scale * scale);
    const EaDataset dataset = GenerateBenchmark(spec);
    LargeEaOptions options =
        DefaultOptions(point.tier, dataset, ModelKind::kRrea, epochs);
    // This figure is about the scalable configuration, so the ANN path
    // (the paper's Faiss) is on at every size; exact search would insert
    // a quadratic segment below the default activation threshold.
    options.name_channel.nff.sens.use_lsh = true;
    options.name_channel.nff.sens.lsh.bits_per_table = LshBitsForSize(
        std::max(dataset.source.num_entities(),
                 dataset.target.num_entities()));
    const LargeEaResult result = RunLargeEa(dataset, options).value();

    const double entities = dataset.source.num_entities() +
                            dataset.target.num_entities();
    const double total = result.name_channel.nff.sens_seconds +
                         result.name_channel.nff.stns_seconds +
                         result.structure_channel.partition_seconds +
                         result.structure_channel.training_seconds;
    std::printf("%-12s %10.0f | %10.2f %10.2f %12.2f %12.2f", point.label,
                entities, result.name_channel.nff.sens_seconds,
                result.name_channel.nff.stns_seconds,
                result.structure_channel.partition_seconds,
                result.structure_channel.training_seconds);
    if (prev_entities > 0) {
      std::printf("   (size x%.1f, time x%.1f)", entities / prev_entities,
                  total / prev_total);
    }
    std::printf("\n");
    std::fflush(stdout);
    BenchJson::Row row;
    row.Set("dataset", point.label)
        .Set("entities", static_cast<int64_t>(entities))
        .Set("sens_seconds", result.name_channel.nff.sens_seconds)
        .Set("stns_seconds", result.name_channel.nff.stns_seconds)
        .Set("partition_seconds", result.structure_channel.partition_seconds)
        .Set("training_seconds", result.structure_channel.training_seconds);
    json.Add(std::move(row));
    prev_entities = entities;
    prev_total = total;
  }
  std::printf(
      "\nShape check: component times grow roughly in proportion to data\n"
      "size (the time multiplier tracks the size multiplier), confirming\n"
      "near-linear scalability as in Figure 4.\n");
  return 0;
}
