// Reproduces Figure 8 (Appendix C): overlapping mini-batches.
//
// Sweeps the overlap degree D_ov and reports structure-channel H@1 plus
// per-batch sizes. The paper's observation: accuracy stays essentially
// flat as D_ov grows (more equivalent entities co-batched, but more
// invalid candidates too), while batches — and therefore training memory
// — grow, which is why LargeEA uses disjoint batches.
//
// Flags: --scale, --pair, --epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"

using namespace largeea;
using namespace largeea::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 40));
  const LanguagePair pair = SelectedPairs(flags).front();

  const EaDataset dataset =
      GenerateBenchmark(TierSpec(Tier::kIds15k, pair, scale));
  std::printf(
      "=== Figure 8: mini-batch generation vs. overlapping (%s) ===\n",
      dataset.name.c_str());
  std::printf("%-5s %10s %16s %18s %14s\n", "D_ov", "H@1",
              "avg batch size", "test same-batch", "train time(s)");
  PrintRule(70);

  for (const int32_t d_ov : {1, 2, 3}) {
    StructureChannelOptions options;
    options.model = ModelKind::kRrea;
    options.num_batches = TierBatchCount(Tier::kIds15k);
    options.overlap_degree = d_ov;
    options.train.epochs = epochs;
    const StructureChannelResult result =
        RunStructureChannel(dataset.source, dataset.target,
                            dataset.split.train, options)
            .value();
    const double h1 =
        Evaluate(result.similarity, dataset.split.test).hits_at_1;
    int64_t total_entities = 0;
    for (const auto& [s, t] : BatchSizes(result.batches)) {
      total_entities += s + t;
    }
    const double retention = SameBatchFraction(
        result.batches, dataset.split.test, dataset.source.num_entities(),
        dataset.target.num_entities());
    std::printf("%-5d %9.1f%% %16ld %17.1f%% %14.2f\n", d_ov, 100 * h1,
                static_cast<long>(total_entities /
                                  static_cast<int64_t>(
                                      result.batches.size())),
                100 * retention, result.training_seconds);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape notes: batches, training time, and memory all grow with\n"
      "D_ov — the cost half of the paper's argument for disjoint batches\n"
      "reproduces directly. The accuracy half diverges at our scale: the\n"
      "paper measures H@1 as almost flat, while here overlap still helps\n"
      "because same-batch retention (not in-batch discrimination) is the\n"
      "binding constraint for the scaled-down KGs; see EXPERIMENTS.md.\n");
  return 0;
}
