// Reproduces Figure 7 (Appendix B): mini-batch generation vs. mini-batch
// number K, on the DBP1M tier.
//
// Sweeps K and reports structure-channel H@1 plus the edge-cut rate R_ec
// for METIS-CPS and VPS. Additionally runs the METIS-CPS phase ablation
// called out in DESIGN.md §4 (phase 1 virtual hubs off / phase 2 zero
// weights off) to isolate each phase's contribution.
//
// Expected shape: METIS-CPS H@1 decreases as K grows (more edges cut) but
// stays above VPS at every K; R_ec grows with K and is far lower for
// METIS-CPS than for VPS.
//
// Flags: --scale (default 0.5 of the DBP1M tier), --pair, --epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/partition/metis_cps.h"

using namespace largeea;
using namespace largeea::bench;

namespace {

double StructureH1(const EaDataset& dataset, const EntityPairList& seeds,
                   PartitionStrategy strategy, int32_t k, int32_t epochs,
                   const MetisCpsOptions* cps) {
  StructureChannelOptions options;
  options.model = ModelKind::kRrea;
  options.strategy = strategy;
  options.num_batches = k;
  options.train.epochs = epochs;
  if (cps != nullptr) options.metis_cps = *cps;
  const StructureChannelResult result =
      RunStructureChannel(dataset.source, dataset.target, seeds, options)
          .value();
  return Evaluate(result.similarity, dataset.split.test).hits_at_1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.4);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 40));
  const LanguagePair pair = SelectedPairs(flags).front();

  const EaDataset dataset =
      GenerateBenchmark(TierSpec(Tier::kDbp1m, pair, scale));
  // Like Figure 6, this appendix isolates the *partitioning* effect, so
  // ψ' is the human seed alignment only. (With DA pseudo seeds included,
  // VPS would win trivially by co-batching every DA pair — co-batched
  // seeds are recalled through M_s regardless of graph structure — which
  // contradicts the figure's purpose and the paper's own ordering.)
  const EntityPairList& seeds = dataset.split.train;
  std::printf(
      "=== Figure 7: mini-batch generation vs. mini-batch number "
      "(%s, %d-%d entities) ===\n",
      dataset.name.c_str(), dataset.source.num_entities(),
      dataset.target.num_entities());
  std::printf("%-4s | %9s %9s | %9s %9s | %11s %11s\n", "K", "CPS H@1",
              "VPS H@1", "CPS R_ec", "VPS R_ec", "w/o phase1", "w/o phase2");
  PrintRule(84);

  for (const int32_t k : {4, 8, 12, 16}) {
    // Edge-cut rates straight from the partitioners.
    MetisCpsOptions cps_options;
    cps_options.num_batches = k;
    MetisCpsReport report;
    (void)MetisCpsPartition(dataset.source, dataset.target, seeds,
                            cps_options, &report)
        .value();
    const double cps_rec =
        0.5 * (report.source_edge_cut_rate + report.target_edge_cut_rate);
    // VPS R_ec: edges with endpoints in different random batches,
    // measured through the structure channel's quality metric.
    VpsOptions vps_options;
    vps_options.num_batches = k;
    const MiniBatchSet vps_batches =
        VpsPartition(dataset.source, dataset.target, seeds, vps_options);
    std::vector<int32_t> vps_src(dataset.source.num_entities());
    std::vector<int32_t> vps_tgt(dataset.target.num_entities());
    for (size_t b = 0; b < vps_batches.size(); ++b) {
      for (const EntityId e : vps_batches[b].source_entities) {
        vps_src[e] = static_cast<int32_t>(b);
      }
      for (const EntityId e : vps_batches[b].target_entities) {
        vps_tgt[e] = static_cast<int32_t>(b);
      }
    }
    const double vps_rec =
        0.5 * (EdgeCutRate(dataset.source.ToUndirectedGraph(), vps_src) +
               EdgeCutRate(dataset.target.ToUndirectedGraph(), vps_tgt));

    const double cps_h1 = StructureH1(
        dataset, seeds, PartitionStrategy::kMetisCps, k, epochs, nullptr);
    const double vps_h1 = StructureH1(dataset, seeds,
                                      PartitionStrategy::kVps, k, epochs,
                                      nullptr);
    MetisCpsOptions no_p1;
    no_p1.enable_phase1 = false;
    const double h1_no_p1 = StructureH1(
        dataset, seeds, PartitionStrategy::kMetisCps, k, epochs, &no_p1);
    MetisCpsOptions no_p2;
    no_p2.enable_phase2 = false;
    const double h1_no_p2 = StructureH1(
        dataset, seeds, PartitionStrategy::kMetisCps, k, epochs, &no_p2);

    std::printf("%-4d | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | %10.1f%% %10.1f%%\n",
                k, 100 * cps_h1, 100 * vps_h1, 100 * cps_rec, 100 * vps_rec,
                100 * h1_no_p1, 100 * h1_no_p2);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape checks: METIS-CPS H@1 declines as K grows yet beats VPS at\n"
      "every K; R_ec grows with K and METIS-CPS cuts far fewer edges than\n"
      "VPS; disabling either CPS phase loses accuracy at most K.\n");
  return 0;
}
