// Reproduces Table 2: overall EA results on IDS15K and IDS100K.
//
// For each dataset (tier x language pair) runs the five competitors
// (GCNAlign, RREA, RDGCN*, MultiKE*, BERT-INT*) and LargeEA-G / LargeEA-R
// in both directions (EN->L and L->EN), reporting H@1, H@5, MRR, wall
// time, and measured working-set peak. A competitor whose paper-scale
// working set exceeds the paper's hardware (RREA at IDS100K) is reported
// as "-", exactly like the paper's OOM cells.
//
// Expected shape (not absolute numbers): BERT-INT* is the accuracy
// ceiling but the heaviest; both LargeEA variants approach it at a small
// fraction of the memory and beat every structural competitor; RREA
// cannot run IDS100K.
//
// Flags: --scale, --pair, --epochs (structural epochs), --skip_baselines,
// --json-out (machine-readable rows alongside the printed table).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/common/memory_tracker.h"
#include "src/common/timer.h"

using namespace largeea;
using namespace largeea::bench;

namespace {

void PrintHeader() {
  std::printf("%-22s %6s %6s %6s %9s %10s %12s\n", "Method", "H@1", "H@5",
              "MRR", "Time(s)", "Mem(meas)", "paper-scale");
  PrintRule();
}

void PrintMetricsRow(BenchJson& json, const std::string& dataset,
                     const std::string& name, const EvalMetrics& metrics,
                     double seconds, int64_t bytes,
                     const std::string& paper_note) {
  std::printf("%-22s %6.1f %6.1f %6.3f %9.2f %10s %12s\n", name.c_str(),
              100.0 * metrics.hits_at_1, 100.0 * metrics.hits_at_5,
              metrics.mrr, seconds, FormatBytes(bytes).c_str(),
              paper_note.c_str());
  std::fflush(stdout);
  BenchJson::Row row;
  row.Set("dataset", dataset)
      .Set("method", name)
      .Set("hits_at_1", metrics.hits_at_1)
      .Set("hits_at_5", metrics.hits_at_5)
      .Set("mrr", metrics.mrr)
      .Set("seconds", seconds)
      .Set("peak_bytes", bytes)
      .Set("paper_note", paper_note);
  json.Add(std::move(row));
}

void RunLargeEaRows(BenchJson& json, Tier tier, const EaDataset& dataset,
                    const std::string& dataset_name,
                    const std::string& direction, int32_t epochs) {
  for (const ModelKind model : {ModelKind::kGcnAlign, ModelKind::kRrea}) {
    const LargeEaOptions options =
        DefaultOptions(tier, dataset, model, epochs);
    Timer timer;
    const LargeEaResult result = RunLargeEa(dataset, options).value();
    const std::string name =
        std::string(model == ModelKind::kGcnAlign ? "LargeEA-G" : "LargeEA-R") +
        " " + direction;
    PrintMetricsRow(json, dataset_name, name, result.metrics,
                    timer.Seconds(), result.peak_bytes, "fits");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.75);
  const auto epochs = static_cast<int32_t>(flags.GetInt("epochs", 60));
  const bool skip_baselines = flags.GetBool("skip_baselines", false);
  BenchJson json(flags, "table2_ids");

  std::printf("=== Table 2: Overall EA results on IDS15K and IDS100K ===\n");
  for (const Tier tier : {Tier::kIds15k, Tier::kIds100k}) {
    for (const LanguagePair pair : SelectedPairs(flags)) {
      const BenchmarkSpec spec = TierSpec(tier, pair, scale);
      const EaDataset dataset = GenerateBenchmark(spec);
      std::printf("\n--- %s (%d-%d entities) ---\n", dataset.name.c_str(),
                  dataset.source.num_entities(),
                  dataset.target.num_entities());
      PrintHeader();

      if (!skip_baselines) {
        BaselineOptions baseline_options;
        // Whole-graph training benefits from a wider model and a longer
        // schedule than the per-batch defaults (tuned on held-out data).
        baseline_options.train.dim = 96;
        baseline_options.train.margin = 1.0f;
        baseline_options.train.epochs =
            static_cast<int32_t>(flags.GetInt("baseline_epochs", 150));
        for (const BaselineKind kind :
             {BaselineKind::kGcnAlign, BaselineKind::kMultiKeLike,
              BaselineKind::kRdgcnLike, BaselineKind::kRrea,
              BaselineKind::kBertIntLike}) {
          const PaperCost paper_cost = EstimatePaperCost(
              kind, spec.paper_source_entities, spec.paper_target_entities);
          char note[32];
          std::snprintf(note, sizeof(note), "%.1fGB",
                        static_cast<double>(paper_cost.gpu_bytes +
                                            paper_cost.ram_bytes) /
                            (1LL << 30));
          if (!FitsPaperHardware(paper_cost)) {
            std::printf("%-22s %6s %6s %6s %9s %10s %12s\n",
                        BaselineKindName(kind), "-", "-", "-", "-", "-",
                        (std::string(note) + " OOM").c_str());
            std::fflush(stdout);
            BenchJson::Row row;
            row.Set("dataset", dataset.name)
                .Set("method", BaselineKindName(kind))
                .Set("oom", true)
                .Set("paper_note", std::string(note) + " OOM");
            json.Add(std::move(row));
            continue;
          }
          const BaselineResult result =
              RunBaseline(kind, dataset, baseline_options);
          PrintMetricsRow(json, dataset.name, result.name, result.metrics,
                          result.seconds, result.peak_bytes, note);
        }
      }

      // LargeEA in both directions.
      RunLargeEaRows(json, tier, dataset, dataset.name, "EN->L", epochs);
      RunLargeEaRows(json, tier, dataset.Reversed(), dataset.name, "L->EN",
                     epochs);
    }
  }
  std::printf(
      "\nShape checks: BERT-INT* leads on accuracy at the highest memory;\n"
      "LargeEA-G/R come close at a fraction of the working set; RREA's\n"
      "paper-scale estimate exceeds 24GB at IDS100K (the paper's '-').\n");
  return 0;
}
