// Partition explorer: inspects what METIS-CPS actually does to a KG pair.
//
// Compares METIS-CPS against VPS and plain (non-collaborative) METIS on
// the mini-batch quality metrics that drive EA accuracy: edge-cut rate,
// batch balance, and the fraction of seed/test pairs kept co-batched.
// Also demonstrates the phase-1/phase-2 ablation switches.
//
//   ./build/examples/partition_explorer [--entities 4000] [--batches 5]
#include <cstdio>

#include "src/common/flags.h"
#include "src/gen/benchmark_gen.h"
#include "src/partition/metis.h"
#include "src/partition/metis_cps.h"
#include "src/partition/vps.h"

using namespace largeea;

namespace {

void Report(const char* label, const MiniBatchSet& batches,
            const EaDataset& ds) {
  const int32_t ns = ds.source.num_entities();
  const int32_t nt = ds.target.num_entities();
  int64_t min_size = INT64_MAX, max_size = 0;
  for (const auto& [s, t] : BatchSizes(batches)) {
    min_size = std::min(min_size, s + t);
    max_size = std::max(max_size, s + t);
  }
  std::printf("%-24s train %5.1f%%  test %5.1f%%  batch sizes %ld..%ld\n",
              label,
              100 * SameBatchFraction(batches, ds.split.train, ns, nt),
              100 * SameBatchFraction(batches, ds.split.test, ns, nt),
              static_cast<long>(min_size), static_cast<long>(max_size));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities =
      static_cast<int32_t>(flags.GetInt("entities", 4000));
  const auto k = static_cast<int32_t>(flags.GetInt("batches", 5));
  const EaDataset ds = GenerateBenchmark(spec);

  std::printf("KG pair: %d vs %d entities, %ld vs %ld triples, K=%d\n",
              ds.source.num_entities(), ds.target.num_entities(),
              static_cast<long>(ds.source.num_triples()),
              static_cast<long>(ds.target.num_triples()), k);

  // Raw METIS quality on each side, for reference.
  for (const auto* side : {&ds.source, &ds.target}) {
    const CsrGraph graph = side->ToUndirectedGraph();
    MetisOptions metis;
    metis.num_parts = k;
    const PartitionResult result = MetisPartition(graph, metis);
    std::printf("raw METIS (%s side): edge-cut rate %.1f%%, components %d\n",
                side == &ds.source ? "source" : "target",
                100 * EdgeCutRate(graph, result.assignment),
                graph.CountConnectedComponents());
  }
  std::printf("\nsame-batch retention by strategy:\n");

  MetisCpsOptions cps;
  cps.num_batches = k;
  Report("METIS-CPS",
         MetisCpsPartition(ds.source, ds.target, ds.split.train, cps)
             .value(),
         ds);

  MetisCpsOptions no_p1 = cps;
  no_p1.enable_phase1 = false;
  Report("METIS-CPS w/o phase 1",
         MetisCpsPartition(ds.source, ds.target, ds.split.train, no_p1)
             .value(),
         ds);

  MetisCpsOptions no_p2 = cps;
  no_p2.enable_phase2 = false;
  Report("METIS-CPS w/o phase 2",
         MetisCpsPartition(ds.source, ds.target, ds.split.train, no_p2)
             .value(),
         ds);

  MetisCpsOptions independent = cps;
  independent.enable_phase1 = false;
  independent.enable_phase2 = false;
  Report("independent METIS",
         MetisCpsPartition(ds.source, ds.target, ds.split.train,
                           independent)
             .value(),
         ds);

  VpsOptions vps;
  vps.num_batches = k;
  Report("VPS (random)",
         VpsPartition(ds.source, ds.target, ds.split.train, vps), ds);

  std::printf(
      "\nReading guide: collaborative reweighting (phases 1+2) is what\n"
      "lifts test retention above independent METIS; VPS is perfect on\n"
      "train (by construction) but near 1/K on test.\n");
  return 0;
}
