// Structure-only EA via bootstrapped self-training — the direction the
// paper's conclusion names as future work ("EA approaches that solely
// rely on the KG's structure, to support EA between KGs whose entities do
// not share the same naming convention").
//
// The name channel is never used: starting from a small human seed set,
// each round trains the structure channel, harvests confident mutual-
// nearest structural matches as new pseudo seeds, and retrains.
//
//   ./build/examples/structure_only_bootstrap [--entities 2000]
//       [--rounds 4] [--seed_ratio 0.2]
#include <cstdio>

#include "src/common/flags.h"
#include "src/core/bootstrap.h"
#include "src/core/evaluator.h"
#include "src/gen/benchmark_gen.h"

using namespace largeea;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities =
      static_cast<int32_t>(flags.GetInt("entities", 2000));
  spec.train_ratio = flags.GetDouble("seed_ratio", 0.2);
  const EaDataset dataset = GenerateBenchmark(spec);
  std::printf(
      "structure-only EA on %s: %d vs %d entities, %zu seeds, no names\n",
      dataset.name.c_str(), dataset.source.num_entities(),
      dataset.target.num_entities(), dataset.split.train.size());

  BootstrapOptions options;
  options.structure.model = ModelKind::kRrea;
  options.structure.num_batches =
      static_cast<int32_t>(flags.GetInt("batches", 3));
  options.structure.train.epochs =
      static_cast<int32_t>(flags.GetInt("epochs", 60));
  options.rounds = static_cast<int32_t>(flags.GetInt("rounds", 4));

  // Baseline: one plain round, no self-training.
  const StructureChannelResult plain =
      RunStructureChannel(dataset.source, dataset.target,
                          dataset.split.train, options.structure)
          .value();
  const double plain_h1 =
      Evaluate(plain.similarity, dataset.split.test).hits_at_1;
  std::printf("single round (no bootstrapping): H@1 %.1f%%\n",
              100 * plain_h1);

  const BootstrapResult result = RunBootstrappedStructureChannel(
      dataset.source, dataset.target, dataset.split.train, options);
  for (size_t r = 0; r < result.seeds_per_round.size(); ++r) {
    std::printf("round %zu: %ld seeds\n", r + 1,
                static_cast<long>(result.seeds_per_round[r]));
  }
  const double boot_h1 =
      Evaluate(result.similarity, dataset.split.test).hits_at_1;
  std::printf("after %d self-training rounds: H@1 %.1f%% (%+.1f points)\n",
              options.rounds, 100 * boot_h1,
              100 * (boot_h1 - plain_h1));
  std::printf(
      "(no entity name was read at any point — this is the paper's\n"
      " future-work setting for KGs without a shared naming convention)\n");
  return 0;
}
