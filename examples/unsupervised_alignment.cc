// Unsupervised entity alignment (the paper's Section 3.5 case study).
//
// No seed alignment is provided at all. The name-based data augmentation
// manufactures pseudo seeds from mutual-nearest name matches, the
// structure channel trains on those, and the fused result is evaluated
// against the full ground truth.
//
//   ./build/examples/unsupervised_alignment [--entities 3000]
#include <cstdio>

#include "src/common/flags.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/name/data_augmentation.h"

using namespace largeea;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchmarkSpec spec = Dbp1mSpec(LanguagePair::kEnFr, 0.15);
  if (flags.Has("entities")) {
    spec.world.num_entities =
        static_cast<int32_t>(flags.GetInt("entities", 3000));
  }
  spec.train_ratio = 0.0;  // every ground-truth pair is held out
  const EaDataset dataset = GenerateBenchmark(spec);
  std::printf("unsupervised EA on %s: %d vs %d entities, 0 seeds\n",
              dataset.name.c_str(), dataset.source.num_entities(),
              dataset.target.num_entities());

  LargeEaOptions options;
  options.structure_channel.model = ModelKind::kRrea;
  options.structure_channel.num_batches =
      static_cast<int32_t>(flags.GetInt("batches", 4));
  options.structure_channel.train.epochs =
      static_cast<int32_t>(flags.GetInt("epochs", 50));
  const LargeEaResult result = RunLargeEa(dataset, options).value();

  const double precision = PseudoSeedPrecision(
      result.name_channel.pseudo_seeds, dataset.split.test);
  std::printf(
      "data augmentation generated %zu pseudo seeds at %.1f%% precision\n",
      result.name_channel.pseudo_seeds.size(), 100 * precision);
  std::printf("unsupervised result: H@1 %.1f%%  H@5 %.1f%%  MRR %.3f\n",
              100 * result.metrics.hits_at_1,
              100 * result.metrics.hits_at_5, result.metrics.mrr);

  // Compare with the supervised run (20% seeds) on the same data.
  BenchmarkSpec supervised_spec = spec;
  supervised_spec.train_ratio = 0.2;
  const EaDataset supervised = GenerateBenchmark(supervised_spec);
  const LargeEaResult supervised_result =
      RunLargeEa(supervised, options).value();
  std::printf("supervised (20%% seeds) for comparison: H@1 %.1f%%\n",
              100 * supervised_result.metrics.hits_at_1);
  std::printf(
      "(the paper's Table 4 finding: the two are nearly identical)\n");
  return 0;
}
