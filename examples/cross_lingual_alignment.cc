// Cross-lingual alignment at the DBP1M tier — the paper's headline
// workload: unbalanced KGs, unknown entities, mini-batch training.
//
// Demonstrates the full public API surface: dataset generation (or TSV
// loading), per-channel execution, channel fusion, evaluation, and
// exporting the predicted alignment to a TSV file.
//
//   ./build/examples/cross_lingual_alignment [--scale 0.5] [--pair ende]
//       [--out /tmp/predicted_alignment.tsv]
//       [--source triples_a.tsv --target triples_b.tsv --seeds seeds.tsv]
#include <cstdio>

#include "src/common/flags.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/kg/kg_io.h"

using namespace largeea;

namespace {

// Assembles the EA task either from TSV files or from the generator.
EaDataset BuildDataset(const Flags& flags) {
  const std::string source_path = flags.GetString("source", "");
  if (!source_path.empty()) {
    EaDatasetPaths paths;
    paths.source_triples = source_path;
    paths.target_triples = flags.GetString("target", "");
    paths.train_pairs = flags.GetString("seeds", "");
    auto dataset = LoadEaDataset(paths, {}, "user-supplied");
    if (!dataset.ok()) {
      std::fprintf(stderr, "failed to load dataset: %s\n",
                   dataset.status().ToString().c_str());
      std::exit(1);
    }
    // Everything supplied is training data (no held-out test split).
    return std::move(dataset).value();
  }
  const LanguagePair pair = flags.GetString("pair", "enfr") == "ende"
                                ? LanguagePair::kEnDe
                                : LanguagePair::kEnFr;
  return GenerateBenchmark(Dbp1mSpec(pair, flags.GetDouble("scale", 0.5)));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const EaDataset dataset = BuildDataset(flags);
  std::printf("dataset %s: %d vs %d entities, %ld vs %ld triples, %zu seeds\n",
              dataset.name.c_str(), dataset.source.num_entities(),
              dataset.target.num_entities(),
              static_cast<long>(dataset.source.num_triples()),
              static_cast<long>(dataset.target.num_triples()),
              dataset.split.train.size());

  LargeEaOptions options;
  options.structure_channel.model = ModelKind::kRrea;
  options.structure_channel.num_batches =
      static_cast<int32_t>(flags.GetInt("batches", 8));
  options.structure_channel.train.epochs =
      static_cast<int32_t>(flags.GetInt("epochs", 50));
  if (dataset.source.num_entities() > 8000) {
    options.name_channel.nff.sens.use_lsh = true;  // Faiss-style ANN path
  }

  const LargeEaResult result = RunLargeEa(dataset, options).value();
  std::printf("\nchannel breakdown:\n");
  std::printf("  SENS (semantic names): %.2fs, %ld candidates\n",
              result.name_channel.nff.sens_seconds,
              static_cast<long>(result.name_channel.nff.semantic
                                    .TotalEntries()));
  std::printf("  STNS (string names):   %.2fs, %ld candidates\n",
              result.name_channel.nff.stns_seconds,
              static_cast<long>(result.name_channel.nff.string
                                    .TotalEntries()));
  std::printf("  data augmentation:     %zu pseudo seeds\n",
              result.name_channel.pseudo_seeds.size());
  std::printf("  METIS-CPS partition:   %.2fs, %zu batches\n",
              result.structure_channel.partition_seconds,
              result.structure_channel.batches.size());
  std::printf("  mini-batch training:   %.2fs\n",
              result.structure_channel.training_seconds);

  if (result.metrics.num_test_pairs > 0) {
    std::printf("\nevaluation: H@1 %.1f%%  H@5 %.1f%%  MRR %.3f\n",
                100 * result.metrics.hits_at_1,
                100 * result.metrics.hits_at_5, result.metrics.mrr);
  }

  // Export the predicted 1-best alignment for every source entity whose
  // fused row is non-empty.
  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    EntityPairList predictions;
    for (int32_t s = 0; s < result.fused.num_rows(); ++s) {
      const EntityId t = result.fused.ArgmaxOfRow(s);
      if (t != kInvalidEntity) predictions.push_back(EntityPair{s, t});
    }
    if (SaveAlignment(predictions, dataset.source, dataset.target, out)
            .ok()) {
      std::printf("wrote %zu predicted pairs to %s\n", predictions.size(),
                  out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
  }
  return 0;
}
