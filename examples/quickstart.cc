// Quickstart: generate a small synthetic cross-lingual EA benchmark and
// run the full LargeEA pipeline on it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--entities 2000] [--batches 4]
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/timer.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"

int main(int argc, char** argv) {
  using namespace largeea;
  const Flags flags(argc, argv);

  // 1. Build (or load — see kg_io.h) an EA dataset: two KGs + seeds.
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities =
      static_cast<int32_t>(flags.GetInt("entities", 2000));
  std::printf("generating %s with ~%d entities per side...\n",
              spec.name.c_str(), spec.world.num_entities);
  const EaDataset dataset = GenerateBenchmark(spec);
  const DatasetStats stats = ComputeStats(dataset);
  std::printf("  source: %d entities, %d relations, %ld triples\n",
              stats.source_entities, stats.source_relations,
              static_cast<long>(stats.source_triples));
  std::printf("  target: %d entities, %d relations, %ld triples\n",
              stats.target_entities, stats.target_relations,
              static_cast<long>(stats.target_triples));
  std::printf("  alignment: %ld pairs (%ld seeds)\n",
              static_cast<long>(stats.alignment_pairs),
              static_cast<long>(stats.seed_pairs));

  // 2. Configure LargeEA: RREA structural model, METIS-CPS mini-batches,
  //    NFF name features, name-based data augmentation.
  LargeEaOptions options;
  options.structure_channel.model = ModelKind::kRrea;
  options.structure_channel.num_batches =
      static_cast<int32_t>(flags.GetInt("batches", 4));
  options.structure_channel.train.epochs =
      static_cast<int32_t>(flags.GetInt("epochs", 50));

  // 3. Run and inspect.
  Timer timer;
  const LargeEaResult result = RunLargeEa(dataset, options).value();
  std::printf("\nname channel: SENS %.2fs, STNS %.2fs, %zu pseudo seeds\n",
              result.name_channel.nff.sens_seconds,
              result.name_channel.nff.stns_seconds,
              result.name_channel.pseudo_seeds.size());
  std::printf("structure channel: partition %.2fs, training %.2fs\n",
              result.structure_channel.partition_seconds,
              result.structure_channel.training_seconds);
  std::printf("\nLargeEA-R results (%.1fs total):\n", timer.Seconds());
  std::printf("  H@1 = %.1f%%  H@5 = %.1f%%  MRR = %.3f  (on %ld test pairs)\n",
              100.0 * result.metrics.hits_at_1,
              100.0 * result.metrics.hits_at_5, result.metrics.mrr,
              static_cast<long>(result.metrics.num_test_pairs));
  return 0;
}
