// largeea_cli — command-line front end for the library.
//
//   largeea_cli generate    --tier ids15k|ids100k|dbp1m --pair enfr|ende
//                           [--scale 1.0] --out_dir DIR
//       writes source.tsv / target.tsv / train.tsv / test.tsv
//
//   largeea_cli run         --source A.tsv --target B.tsv --seeds S.tsv
//                           [--test T.tsv] [any Config flag, see --help]
//       runs LargeEA end to end, optionally evaluates and/or writes
//       predictions. Every pipeline/runtime knob is a largeea::Config
//       flag (src/core/config.h) — `largeea_cli --help` lists them all
//       with defaults. Highlights: --model rrea|gcn|transe, --batches,
//       --epochs, --memory-budget-mb (stream whole-graph phases under a
//       tracked-memory budget, DESIGN.md §10), --checkpoint-dir /
//       --resume (DESIGN.md "Failure model"), --trace-out /
//       --report-out (DESIGN.md "Observability"), --threads / --simd
//       (bit-identical results either way, DESIGN.md "Execution
//       model" / "SIMD kernels"), --strict-io.
//       (`align`, and invoking with bare flags and no subcommand, are
//       deprecated spellings of `run`.)
//
//   largeea_cli index-build --source A.tsv --target B.tsv [--seeds S.tsv]
//                           --index-out INDEX [any Config flag]
//       runs the pipeline, then packs the fused matrix, name tables,
//       target-name embeddings + HNSW graph, and MinHash/LSH structures
//       into one checksummed serve-index artifact (DESIGN.md §15).
//
//   largeea_cli serve       --index INDEX [--serve-batch N] [--k K]
//                           [--expect-fingerprint HEX]
//       answers alignment queries over stdin/stdout (line-delimited
//       JSON, see src/serve/serve_loop.h). SIGTERM/SIGINT drain
//       in-flight queries, flush the run report (with a `serve`
//       section), and exit 128+signal.
//
//   largeea_cli query       --index INDEX (--entity ID | --name STR)
//                           [--k K] [--exact]
//       one-shot query against an index artifact; prints the same JSON
//       response line the serve protocol emits.
//
//   largeea_cli partition   --source A.tsv --target B.tsv --seeds S.tsv
//                           [--batches K]
//       reports METIS-CPS vs VPS partition quality
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/core/config.h"
#include "src/core/large_ea.h"
#include "src/core/pipeline_fingerprint.h"
#include "src/gen/benchmark_gen.h"
#include "src/kg/kg_io.h"
#include "src/obs/json_writer.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/obs/trace_merge.h"
#include "src/partition/metis_cps.h"
#include "src/partition/vps.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"
#include "src/serve/index_artifact.h"
#include "src/serve/index_manager.h"
#include "src/serve/serve_loop.h"
#include "src/shard/orchestrator.h"
#include "src/shard/worker.h"
#include "src/simd/simd.h"
#include "src/tune/tune_table.h"

using namespace largeea;

namespace {

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

// Graceful SIGTERM/SIGINT: the async-signal handler only records the
// signal; a watcher thread does the non-reentrant work — flushing the
// run report (with an `interrupted` marker), the Chrome trace, and the
// metrics snapshot the report carries — then exits with the shell
// convention 128+signal (143 for SIGTERM, 130 for SIGINT). A second
// signal while flushing is ignored; the orchestrator escalates to
// SIGKILL for workers that truly stop responding.
std::atomic<int> g_shutdown_signal{0};

void OnShutdownSignal(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

void StartShutdownWatcher(const Config& config_in, const char* tool) {
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::thread([config = config_in, tool]() {
    int sig;
    while ((sig = g_shutdown_signal.load(std::memory_order_relaxed)) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    const char* name = sig == SIGTERM ? "SIGTERM" : "SIGINT";
    std::fprintf(stderr, "largeea_cli: caught %s, flushing outputs\n", name);
    if (!config.report_out.empty()) {
      obs::RunReport report;
      report.SetTool(tool);
      config.WriteTo(report);
      report.AddConfig("interrupted", name);
      report.IngestMemoryPhases();
      report.IngestTraceTotals();
      (void)report.WriteJson(config.report_out);
    }
    if (!config.trace_out.empty()) {
      (void)obs::TraceRecorder::Get().WriteChromeTrace(config.trace_out);
    }
    std::_Exit(128 + sig);
  }).detach();
}

// The command line to re-invoke this binary as a shard worker: the real
// executable (argv[0] may be PATH-relative and the worker inherits a
// different cwd-independent spawn) plus the user's original arguments.
// The orchestrator appends its per-worker overrides after these; the
// flag parser is last-wins.
std::vector<std::string> WorkerCommand(int argc, char** argv) {
  std::vector<std::string> cmd;
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  cmd.push_back(ec ? std::string(argv[0]) : self.string());
  for (int i = 1; i < argc; ++i) cmd.emplace_back(argv[i]);
  return cmd;
}

EaDataset LoadDatasetOrDie(const Flags& flags, bool need_seeds,
                           bool strict_io) {
  if (need_seeds && flags.GetString("seeds", "").empty()) {
    std::fprintf(stderr, "error: --seeds is required\n");
    std::exit(1);
  }
  EaDatasetPaths paths;
  paths.source_triples = flags.GetString("source", "");
  paths.target_triples = flags.GetString("target", "");
  paths.train_pairs = flags.GetString("seeds", "");
  paths.test_pairs = flags.GetString("test", "");
  TsvReadOptions io;
  io.strict = strict_io;
  auto dataset = LoadEaDataset(paths, io, "cli");
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(dataset).value();
}

int CmdGenerate(const Flags& flags) {
  const std::string tier = flags.GetString("tier", "ids15k");
  const LanguagePair pair = flags.GetString("pair", "enfr") == "ende"
                                ? LanguagePair::kEnDe
                                : LanguagePair::kEnFr;
  const double scale = flags.GetDouble("scale", 1.0);
  BenchmarkSpec spec;
  if (tier == "ids15k") {
    spec = Ids15kSpec(pair, scale);
  } else if (tier == "ids100k") {
    spec = Ids100kSpec(pair, scale);
  } else if (tier == "dbp1m") {
    spec = Dbp1mSpec(pair, scale);
  } else {
    return Fail("--tier must be ids15k, ids100k, or dbp1m");
  }
  const std::string dir = flags.GetString("out_dir", "");
  if (dir.empty()) return Fail("--out_dir is required");

  const EaDataset dataset = GenerateBenchmark(spec);
  if (!SaveTriples(dataset.source, dir + "/source.tsv").ok() ||
      !SaveTriples(dataset.target, dir + "/target.tsv").ok() ||
      !SaveAlignment(dataset.split.train, dataset.source, dataset.target,
                     dir + "/train.tsv")
           .ok() ||
      !SaveAlignment(dataset.split.test, dataset.source, dataset.target,
                     dir + "/test.tsv")
           .ok()) {
    return Fail("failed to write output files (does --out_dir exist?)");
  }
  std::printf("%s: wrote %d+%d entities, %ld+%ld triples, %zu/%zu pairs\n",
              dataset.name.c_str(), dataset.source.num_entities(),
              dataset.target.num_entities(),
              static_cast<long>(dataset.source.num_triples()),
              static_cast<long>(dataset.target.num_triples()),
              dataset.split.train.size(), dataset.split.test.size());
  return 0;
}

// Prints the per-phase wall-time/memory table and mirrors the same
// numbers into `report`, so the printed table and the JSON report can
// never disagree (they share one source: the result structs, which are
// themselves filled from the instrumentation spans).
void ReportPhases(const LargeEaResult& result, obs::RunReport& report) {
  struct PhaseRow {
    const char* name;
    double seconds;
    int64_t peak_bytes;  // -1 = not tracked for this phase
  };
  const PhaseRow rows[] = {
      {"name_channel", result.name_channel.total_seconds,
       result.name_channel.peak_bytes},
      {"structure/partition", result.structure_channel.partition_seconds,
       -1},
      {"structure/train", result.structure_channel.training_seconds,
       result.structure_channel.peak_training_bytes},
  };
  std::printf("%-22s %10s %12s\n", "Phase", "Time(s)", "PeakMem");
  for (const PhaseRow& row : rows) {
    char mem[32];
    if (row.peak_bytes >= 0) {
      std::snprintf(mem, sizeof(mem), "%.1fMB",
                    static_cast<double>(row.peak_bytes) / (1 << 20));
    } else {
      std::snprintf(mem, sizeof(mem), "%s", "-");
    }
    std::printf("%-22s %10.3f %12s\n", row.name, row.seconds, mem);
    report.AddPhase(row.name, row.seconds, row.peak_bytes);
  }
  // DAG-executor node stats (empty on --no-dag): per-operator wall
  // time and tracked peak, plus the measured critical path — the wall
  // clock floor at infinite concurrency.
  for (const DagNodeStats& node : result.dag_nodes) {
    char mem[32];
    std::snprintf(mem, sizeof(mem), "%.1fMB",
                  static_cast<double>(node.peak_bytes) / (1 << 20));
    const std::string name = "dag/" + node.name;
    std::printf("%-22s %10.3f %12s%s\n", name.c_str(), node.seconds, mem,
                node.from_checkpoint ? "  (checkpoint)" : "");
    report.AddPhase(name, node.seconds, node.peak_bytes);
  }
  if (!result.dag_critical_path.empty()) {
    std::string path;
    for (const std::string& name : result.dag_critical_path) {
      if (!path.empty()) path += " -> ";
      path += name;
    }
    std::printf("%-22s %10.3f              %s\n", "dag/critical_path",
                result.dag_critical_path_seconds, path.c_str());
    report.AddPhase("dag/critical_path", result.dag_critical_path_seconds,
                    -1);
  }
  std::printf("%-22s %10.3f %12.1fMB\n", "total", result.total_seconds,
              static_cast<double>(result.peak_bytes) / (1 << 20));
  report.SetTotal(result.total_seconds, result.peak_bytes);
}

// Prints the --profile summary: the per-kernel roofline columns and the
// pool utilization/imbalance aggregates. The same numbers land in the
// report's `profile` section (RunReport::ToJson splices them there), so
// this table is just the human-readable view.
void PrintProfileSummary() {
  const obs::Profiler& profiler = obs::Profiler::Get();
  std::printf("\n%-24s %8s %10s %10s %10s %8s\n", "Kernel", "Calls",
              "Time(s)", "GB/s", "Flop/B", "MB");
  for (const obs::KernelProfile& k : profiler.KernelTotals()) {
    std::printf("%-24s %8ld %10.4f %10.2f %10.2f %8.1f\n", k.kernel.c_str(),
                static_cast<long>(k.calls), k.seconds, k.GBPerSec(),
                k.ArithmeticIntensity(), k.TotalBytes() / (1 << 20));
  }
  std::printf("%-24s %8s %10s %10s %10s\n", "Pool (by kernel)", "Jobs",
              "Busy(s)", "Util", "Imbal");
  for (const obs::PoolKernelTotal& t : profiler.PoolTotals()) {
    std::printf("%-24s %8ld %10.4f %10.2f %10.2f\n",
                t.kernel.empty() ? "(unattributed)" : t.kernel.c_str(),
                static_cast<long>(t.jobs), t.busy_seconds, t.Utilization(),
                t.max_imbalance);
  }
}

int CmdRun(const Flags& flags, Config config, int argc, char** argv) {
  if (!config.trace_out.empty()) {
    obs::TraceRecorder::Get().Clear();
    obs::TraceRecorder::Get().Enable();
  }
  StartShutdownWatcher(config, "largeea_cli run");

  const EaDataset dataset =
      LoadDatasetOrDie(flags, /*need_seeds=*/false, config.strict_io);
  // Large graphs default to the approximate LSH path (the DBP1M-tier
  // setting); an explicit --use-lsh in either direction wins. This runs
  // before the shard-worker branch on purpose: the decision enters the
  // config fingerprint, and orchestrator and workers see the same
  // dataset and flags, so they land on the same fingerprint.
  if (!flags.Has("use-lsh") &&
      std::max(dataset.source.num_entities(),
               dataset.target.num_entities()) > 8000) {
    config.pipeline.name_channel.nff.sens.use_lsh = true;
  }
  const LargeEaOptions& options = config.pipeline;

  if (config.shard_worker >= 0) {
    shard::ShardWorkerOptions worker;
    worker.shard_index = config.shard_worker;
    worker.shard_count = config.shards;
    worker.heartbeat_file = config.shard_heartbeat_file;
    worker.heartbeat_interval_ms = config.shard_heartbeat_ms;
    const Status status = shard::RunShardWorker(dataset, options, worker);
    if (!config.trace_out.empty()) {
      (void)obs::TraceRecorder::Get().WriteChromeTrace(config.trace_out);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  LARGEEA_LOG_INFO("run: %d+%d entities, model=%s, batches=%d, epochs=%d",
                   dataset.source.num_entities(),
                   dataset.target.num_entities(), config.model.c_str(),
                   options.structure_channel.num_batches,
                   options.structure_channel.train.epochs);

  shard::ShardRunStats shard_stats;
  StatusOr<LargeEaResult> run = [&]() {
    if (config.shards <= 0) return RunLargeEa(dataset, options);
    shard::ShardOptions sharding;
    sharding.num_shards = config.shards;
    sharding.max_shard_retries = config.shard_max_retries;
    sharding.retry_backoff_ms = config.shard_backoff_ms;
    sharding.heartbeat_interval_ms = config.shard_heartbeat_ms;
    sharding.heartbeat_timeout_ms = config.shard_heartbeat_timeout_ms;
    sharding.shard_deadline_s = config.shard_deadline_s;
    sharding.degrade_failed_shards = config.shard_degrade;
    sharding.capture_worker_traces = !config.trace_out.empty();
    sharding.worker_command = WorkerCommand(argc, argv);
    return shard::RunShardedLargeEa(dataset, options, sharding,
                                    &shard_stats);
  }();
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    if (!options.fault_tolerance.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "hint: re-run with --resume to pick up from the last "
                   "completed phase in %s\n",
                   options.fault_tolerance.checkpoint_dir.c_str());
    }
    return 1;
  }
  const LargeEaResult& result = *run;
  std::printf("pseudo seeds: %zu; effective seeds: %zu\n",
              result.name_channel.pseudo_seeds.size(),
              result.effective_seeds.size());
  if (result.structure_channel.batches_resumed > 0 ||
      result.structure_channel.batches_dropped > 0) {
    std::printf("batches resumed: %d; retried: %d; dropped: %d\n",
                result.structure_channel.batches_resumed,
                result.structure_channel.batches_retried,
                result.structure_channel.batches_dropped);
  }
  if (config.shards > 0) {
    std::printf(
        "shards: %d workers launched, %d retried, %d degraded, %d resumed\n",
        shard_stats.workers_launched, shard_stats.workers_retried,
        shard_stats.shards_degraded, shard_stats.shards_resumed);
  }
  if (result.metrics.num_test_pairs > 0) {
    std::printf("H@1 %.2f%%  H@5 %.2f%%  MRR %.4f  (%ld test pairs)\n",
                100 * result.metrics.hits_at_1,
                100 * result.metrics.hits_at_5, result.metrics.mrr,
                static_cast<long>(result.metrics.num_test_pairs));
  }

  obs::RunReport report;
  report.SetTool("largeea_cli run");
  report.SetDataset(dataset.name, dataset.source.num_entities(),
                    dataset.target.num_entities(),
                    dataset.source.num_triples(),
                    dataset.target.num_triples(),
                    static_cast<int64_t>(dataset.split.train.size()),
                    static_cast<int64_t>(dataset.split.test.size()));
  // The full effective configuration — every Config flag, including the
  // auto-LSH decision above — plus the backend actually dispatched.
  config.WriteTo(report);
  report.AddConfig("simd.active", simd::BackendName(simd::ActiveBackend()));
  ReportPhases(result, report);
  if (result.metrics.num_test_pairs > 0) report.SetEval(result.metrics);
  report.IngestMemoryPhases();
  report.IngestTraceTotals();
  if (config.profile) PrintProfileSummary();

  if (!config.trace_out.empty()) {
    // A sharded run merges the orchestrator's own timeline with every
    // worker trace into one multi-process document; pid 1 stays the
    // orchestrator, workers get pids 2..N+1.
    std::string trace = obs::TraceRecorder::Get().ToChromeTraceJson();
    if (!shard_stats.worker_trace_files.empty()) {
      std::vector<obs::TraceProcess> processes;
      processes.push_back(obs::TraceProcess{"orchestrator", 1,
                                            std::move(trace)});
      int32_t pid = 2;
      for (const std::string& path : shard_stats.worker_trace_files) {
        auto json = rt::ReadFileToString(path);
        // "worker-3-trace.json" -> track label "worker-3".
        std::string label = std::filesystem::path(path).stem().string();
        if (const size_t pos = label.rfind("-trace"); pos != std::string::npos) {
          label.resize(pos);
        }
        processes.push_back(obs::TraceProcess{
            std::move(label), pid++,
            json.ok() ? std::move(json).value() : std::string()});
      }
      trace = obs::MergeChromeTraces(processes);
    }
    if (!obs::WriteStringToFile(config.trace_out, trace)) {
      return Fail("failed to write --trace-out");
    }
    std::printf("wrote trace to %s\n", config.trace_out.c_str());
  }
  if (!config.report_out.empty()) {
    if (!report.WriteJson(config.report_out)) {
      return Fail("failed to write --report-out");
    }
    std::printf("wrote run report to %s\n", config.report_out.c_str());
  }

  const std::string& out = config.out;
  if (!out.empty()) {
    EntityPairList predictions;
    for (int32_t s = 0; s < result.fused.num_rows(); ++s) {
      const EntityId t = result.fused.ArgmaxOfRow(s);
      if (t != kInvalidEntity) predictions.push_back(EntityPair{s, t});
    }
    if (!SaveAlignment(predictions, dataset.source, dataset.target, out)
             .ok()) {
      return Fail("failed to write --out");
    }
    std::printf("wrote %zu predictions to %s\n", predictions.size(),
                out.c_str());
  }
  return 0;
}

// Serve-index options derived from the effective pipeline config: the
// encoder/metric MUST be the pipeline's own (they define the embedding
// space the stored target vectors live in); the HNSW shape is a
// serve-side choice bound to binary-local flags.
serve::ServeIndexOptions ServeOptionsFrom(const Config& config,
                                          const Flags& flags) {
  serve::ServeIndexOptions options;
  options.encoder = config.pipeline.name_channel.nff.sens.encoder;
  options.metric = config.pipeline.name_channel.nff.sens.metric;
  options.hnsw.max_neighbors =
      static_cast<int32_t>(flags.GetInt("hnsw-neighbors", 12));
  options.hnsw.ef_construction =
      static_cast<int32_t>(flags.GetInt("ef-construction", 80));
  options.hnsw.ef_search = static_cast<int32_t>(flags.GetInt("ef-search", 64));
  return options;
}

// --expect-fingerprint=<hex16> -> value, empty/absent -> nullopt.
std::optional<uint64_t> ExpectedFingerprint(const Flags& flags) {
  const std::string hex = flags.GetString("expect-fingerprint", "");
  if (hex.empty()) return std::nullopt;
  uint64_t value = 0;
  if (std::sscanf(hex.c_str(), "%" SCNx64, &value) != 1) {
    std::fprintf(stderr, "error: --expect-fingerprint is not hex: %s\n",
                 hex.c_str());
    std::exit(2);
  }
  return value;
}

int CmdIndexBuild(const Flags& flags, Config config) {
  const std::string out = flags.GetString("index-out", "");
  if (out.empty()) return Fail("--index-out is required");
  StartShutdownWatcher(config, "largeea_cli index-build");

  const EaDataset dataset =
      LoadDatasetOrDie(flags, /*need_seeds=*/false, config.strict_io);
  // Same auto-LSH decision as `run`, so the fingerprint stamped into
  // the artifact matches the one an equivalent `run` reports.
  if (!flags.Has("use-lsh") &&
      std::max(dataset.source.num_entities(),
               dataset.target.num_entities()) > 8000) {
    config.pipeline.name_channel.nff.sens.use_lsh = true;
  }

  auto run = RunLargeEa(dataset, config.pipeline);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const PipelineFingerprints fingerprints =
      ComputePipelineFingerprints(dataset, config.pipeline);

  std::vector<std::string> source_names, target_names;
  source_names.reserve(dataset.source.num_entities());
  for (int32_t e = 0; e < dataset.source.num_entities(); ++e) {
    source_names.push_back(dataset.source.EntityName(e));
  }
  target_names.reserve(dataset.target.num_entities());
  for (int32_t e = 0; e < dataset.target.num_entities(); ++e) {
    target_names.push_back(dataset.target.EntityName(e));
  }

  auto index = serve::ServeIndex::Build(
      run->fused, std::move(source_names), std::move(target_names),
      fingerprints.fused, ServeOptionsFrom(config, flags));
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const Status saved = (*index)->Save(out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote serve index to %s: %ld+%ld entities, fingerprint %016" PRIx64
      ", %.1fMB resident\n",
      out.c_str(), static_cast<long>((*index)->num_source_entities()),
      static_cast<long>((*index)->num_target_entities()),
      fingerprints.fused,
      static_cast<double>((*index)->MemoryBytes()) / (1 << 20));
  return 0;
}

int CmdServe(const Flags& flags, const Config& config) {
  const std::string path = flags.GetString("index", "");
  if (path.empty()) return Fail("--index is required");

  // Signals must wake the blocking stdin read: sigaction WITHOUT
  // SA_RESTART, so read(2) fails with EINTR, getline() sees a failed
  // stream, and the loop falls into its drain path (std::signal on
  // glibc sets SA_RESTART, which would sleep until the next request).
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  if (!config.trace_out.empty()) {
    obs::TraceRecorder::Get().Clear();
    obs::TraceRecorder::Get().Enable();
  }

  serve::IndexManager manager;
  const Status loaded = manager.LoadAndSwap(path, ExpectedFingerprint(flags));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  const auto index = manager.Current();
  std::fprintf(stderr,
               "largeea_cli serve: index %016" PRIx64
               " (%ld targets), ready on stdin\n",
               index->fingerprint(),
               static_cast<long>(index->num_target_entities()));

  serve::ServeLoopOptions loop_options;
  loop_options.batch_size =
      static_cast<int32_t>(flags.GetInt("serve-batch", 64));
  loop_options.default_k = static_cast<int32_t>(flags.GetInt("k", 10));
  serve::ServeLoop loop(&manager, loop_options);

  const auto start = std::chrono::steady_clock::now();
  const serve::ServeLoopStats stats =
      loop.Run(std::cin, std::cout, &g_shutdown_signal);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  if (!config.report_out.empty()) {
    obs::RunReport report;
    report.SetTool("largeea_cli serve");
    config.WriteTo(report);
    report.AddConfig("index", path);
    auto& histogram =
        obs::MetricsRegistry::Get().GetHistogram("serve.query_us");
    obs::RunReport::ServeStats serve_stats;
    serve_stats.queries = stats.queries;
    serve_stats.failed = stats.failed;
    serve_stats.version_swaps = stats.swaps;
    serve_stats.batches = stats.batches;
    serve_stats.p50_us = histogram.Percentile(0.5);
    serve_stats.p99_us = histogram.Percentile(0.99);
    serve_stats.p999_us = histogram.Percentile(0.999);
    report.SetServe(serve_stats);
    report.SetTotal(seconds, -1);
    report.IngestTraceTotals();
    if (!report.WriteJson(config.report_out)) {
      return Fail("failed to write --report-out");
    }
  }
  if (!config.trace_out.empty()) {
    (void)obs::TraceRecorder::Get().WriteChromeTrace(config.trace_out);
  }

  const int sig = g_shutdown_signal.load(std::memory_order_relaxed);
  if (stats.saw_stop && sig != 0) {
    std::fprintf(stderr,
                 "largeea_cli serve: caught %s, drained %ld in-flight "
                 "queries, exiting\n",
                 sig == SIGTERM ? "SIGTERM" : "SIGINT",
                 static_cast<long>(stats.queries));
    return 128 + sig;
  }
  return 0;
}

int CmdQuery(const Flags& flags, const Config& config) {
  const std::string path = flags.GetString("index", "");
  if (path.empty()) return Fail("--index is required");
  const bool has_entity = flags.Has("entity");
  const bool has_name = flags.Has("name");
  if (has_entity == has_name) {
    return Fail("exactly one of --entity or --name is required");
  }

  serve::IndexManager manager;
  const Status loaded = manager.LoadAndSwap(path, ExpectedFingerprint(flags));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
    return 1;
  }

  // One request through the same protocol path the serve loop uses, so
  // `query` output is byte-identical to a served response.
  obs::JsonWriter request;
  request.BeginObject().Key("op").String("query");
  if (has_entity) {
    request.Key("entity").Int(flags.GetInt("entity", 0));
  } else {
    request.Key("name").String(flags.GetString("name", ""));
  }
  request.Key("k").Int(flags.GetInt("k", 10));
  if (flags.GetBool("exact", false)) request.Key("exact").Bool(true);
  request.EndObject();

  std::istringstream in(request.str() + "\n");
  serve::ServeLoop loop(&manager, serve::ServeLoopOptions{});
  const serve::ServeLoopStats stats = loop.Run(in, std::cout);
  return stats.failed == 0 ? 0 : 1;
}

int CmdPartition(const Flags& flags, const Config& config) {
  const EaDataset dataset =
      LoadDatasetOrDie(flags, /*need_seeds=*/true, config.strict_io);
  const auto k = static_cast<int32_t>(flags.GetInt("batches", 5));
  const int32_t ns = dataset.source.num_entities();
  const int32_t nt = dataset.target.num_entities();

  MetisCpsOptions cps;
  cps.num_batches = k;
  MetisCpsReport report;
  auto cps_result = MetisCpsPartition(dataset.source, dataset.target,
                                      dataset.split.train, cps, &report);
  if (!cps_result.ok()) {
    return Fail(cps_result.status().ToString().c_str());
  }
  const MiniBatchSet cps_batches = std::move(cps_result).value();
  VpsOptions vps;
  vps.num_batches = k;
  const MiniBatchSet vps_batches = VpsPartition(
      dataset.source, dataset.target, dataset.split.train, vps);

  std::printf("METIS-CPS: seed retention %.1f%%, edge-cut rate %.1f%%/%.1f%%\n",
              100 * SameBatchFraction(cps_batches, dataset.split.train, ns,
                                      nt),
              100 * report.source_edge_cut_rate,
              100 * report.target_edge_cut_rate);
  std::printf("VPS:       seed retention %.1f%%\n",
              100 * SameBatchFraction(vps_batches, dataset.split.train, ns,
                                      nt));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: largeea_cli generate|run|index-build|serve|query|partition"
        " [--flags]\n"
        "       largeea_cli --help\n");
    return 2;
  }
  std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::printf(
        "usage: largeea_cli generate|run|index-build|serve|query|partition"
        " [--flags]\n\n"
        "Config flags (any command; run uses them all):\n%s",
        ConfigHelp().c_str());
    return 0;
  }
  // Legacy spellings: `align` and the original bare-flag invocation
  // (no subcommand at all) both mean `run`. Kept as aliases so scripts
  // and the shard orchestrator's re-invocations keep working.
  int flag_argc = argc - 1;
  char** flag_argv = argv + 1;
  if (command.size() > 1 && command[0] == '-') {
    std::fprintf(stderr,
                 "largeea_cli: invoking without a subcommand is deprecated; "
                 "assuming 'run' (see --help)\n");
    command = "run";
    flag_argc = argc;  // Flags skips element 0, which is now the binary.
    flag_argv = argv;
  } else if (command == "align") {
    std::fprintf(stderr,
                 "largeea_cli: 'align' is deprecated, use 'run'\n");
    command = "run";
  }
  const Flags flags(flag_argc, flag_argv);
  // All commands share one configuration surface: every pipeline,
  // runtime, and I/O knob parses through largeea::Config exactly once.
  // Binary-local inputs (--source, --tier, ...) stay on `flags`.
  auto config = ConfigFromFlags(flags);
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 2;
  }
  obs::SetCurrentThreadName("main");
  const Status runtime = config->ApplyRuntime();
  if (!runtime.ok()) {
    std::fprintf(stderr, "error: %s\n", runtime.ToString().c_str());
    return 2;
  }
  // ApplyRuntime installed the tune table (analytic defaults layered
  // with --tune-file / --tune-override, then --autotune winners); echo
  // the effective state whenever the user asked for anything non-default.
  if (config->autotune || !config->tune_file.empty() ||
      !config->tune_override.empty()) {
    std::printf("%s\n", tune::TuneTable::Get().Describe().c_str());
  }
  // Deterministic chaos testing: LARGEEA_FAULTS (gated per shard by
  // LARGEEA_FAULTS_SHARD) arms named fault points in this process.
  (void)rt::ArmFaultsFromEnv(config->shard_worker);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "run") {
    return CmdRun(flags, std::move(*config), argc, argv);
  }
  if (command == "index-build") {
    return CmdIndexBuild(flags, std::move(*config));
  }
  if (command == "serve") return CmdServe(flags, *config);
  if (command == "query") return CmdQuery(flags, *config);
  if (command == "partition") return CmdPartition(flags, *config);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
