file(REMOVE_RECURSE
  "CMakeFiles/largeea_tests.dir/baselines_test.cc.o"
  "CMakeFiles/largeea_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/common_test.cc.o"
  "CMakeFiles/largeea_tests.dir/common_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/core_test.cc.o"
  "CMakeFiles/largeea_tests.dir/core_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/extensions_test.cc.o"
  "CMakeFiles/largeea_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/gen_test.cc.o"
  "CMakeFiles/largeea_tests.dir/gen_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/graph_test.cc.o"
  "CMakeFiles/largeea_tests.dir/graph_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/integration_test.cc.o"
  "CMakeFiles/largeea_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/kg_test.cc.o"
  "CMakeFiles/largeea_tests.dir/kg_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/la_test.cc.o"
  "CMakeFiles/largeea_tests.dir/la_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/metis_property_test.cc.o"
  "CMakeFiles/largeea_tests.dir/metis_property_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/name_test.cc.o"
  "CMakeFiles/largeea_tests.dir/name_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/nn_test.cc.o"
  "CMakeFiles/largeea_tests.dir/nn_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/partition_test.cc.o"
  "CMakeFiles/largeea_tests.dir/partition_test.cc.o.d"
  "CMakeFiles/largeea_tests.dir/sim_test.cc.o"
  "CMakeFiles/largeea_tests.dir/sim_test.cc.o.d"
  "largeea_tests"
  "largeea_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/largeea_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
