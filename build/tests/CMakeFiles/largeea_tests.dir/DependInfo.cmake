
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/largeea_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/largeea_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/largeea_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/largeea_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/largeea_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/largeea_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/largeea_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kg_test.cc" "tests/CMakeFiles/largeea_tests.dir/kg_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/kg_test.cc.o.d"
  "/root/repo/tests/la_test.cc" "tests/CMakeFiles/largeea_tests.dir/la_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/la_test.cc.o.d"
  "/root/repo/tests/metis_property_test.cc" "tests/CMakeFiles/largeea_tests.dir/metis_property_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/metis_property_test.cc.o.d"
  "/root/repo/tests/name_test.cc" "tests/CMakeFiles/largeea_tests.dir/name_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/name_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/largeea_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/largeea_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/largeea_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/largeea_tests.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/largeea.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
