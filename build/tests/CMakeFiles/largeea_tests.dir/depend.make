# Empty dependencies file for largeea_tests.
# This may be replaced when dependencies are built.
