file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_unsupervised.dir/bench_table4_unsupervised.cc.o"
  "CMakeFiles/bench_table4_unsupervised.dir/bench_table4_unsupervised.cc.o.d"
  "bench_table4_unsupervised"
  "bench_table4_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
