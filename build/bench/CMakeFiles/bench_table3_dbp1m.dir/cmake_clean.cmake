file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dbp1m.dir/bench_table3_dbp1m.cc.o"
  "CMakeFiles/bench_table3_dbp1m.dir/bench_table3_dbp1m.cc.o.d"
  "bench_table3_dbp1m"
  "bench_table3_dbp1m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dbp1m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
