# Empty dependencies file for bench_table3_dbp1m.
# This may be replaced when dependencies are built.
