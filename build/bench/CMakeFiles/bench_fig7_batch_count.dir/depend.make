# Empty dependencies file for bench_fig7_batch_count.
# This may be replaced when dependencies are built.
