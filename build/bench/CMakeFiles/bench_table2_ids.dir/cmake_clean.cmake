file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ids.dir/bench_table2_ids.cc.o"
  "CMakeFiles/bench_table2_ids.dir/bench_table2_ids.cc.o.d"
  "bench_table2_ids"
  "bench_table2_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
