# Empty compiler generated dependencies file for bench_table5_partition_quality.
# This may be replaced when dependencies are built.
