# Empty dependencies file for unsupervised_alignment.
# This may be replaced when dependencies are built.
