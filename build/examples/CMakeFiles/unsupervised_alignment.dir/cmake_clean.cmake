file(REMOVE_RECURSE
  "CMakeFiles/unsupervised_alignment.dir/unsupervised_alignment.cc.o"
  "CMakeFiles/unsupervised_alignment.dir/unsupervised_alignment.cc.o.d"
  "unsupervised_alignment"
  "unsupervised_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsupervised_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
