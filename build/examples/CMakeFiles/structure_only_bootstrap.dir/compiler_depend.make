# Empty compiler generated dependencies file for structure_only_bootstrap.
# This may be replaced when dependencies are built.
