file(REMOVE_RECURSE
  "CMakeFiles/structure_only_bootstrap.dir/structure_only_bootstrap.cc.o"
  "CMakeFiles/structure_only_bootstrap.dir/structure_only_bootstrap.cc.o.d"
  "structure_only_bootstrap"
  "structure_only_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_only_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
