# Empty dependencies file for structure_only_bootstrap.
# This may be replaced when dependencies are built.
