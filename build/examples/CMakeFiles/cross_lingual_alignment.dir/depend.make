# Empty dependencies file for cross_lingual_alignment.
# This may be replaced when dependencies are built.
