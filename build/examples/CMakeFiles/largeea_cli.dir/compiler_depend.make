# Empty compiler generated dependencies file for largeea_cli.
# This may be replaced when dependencies are built.
