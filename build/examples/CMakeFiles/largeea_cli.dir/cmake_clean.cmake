file(REMOVE_RECURSE
  "CMakeFiles/largeea_cli.dir/largeea_cli.cc.o"
  "CMakeFiles/largeea_cli.dir/largeea_cli.cc.o.d"
  "largeea_cli"
  "largeea_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/largeea_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
