
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/largeea.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/largeea.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/largeea.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/largeea.dir/common/flags.cc.o.d"
  "/root/repo/src/common/memory_tracker.cc" "src/CMakeFiles/largeea.dir/common/memory_tracker.cc.o" "gcc" "src/CMakeFiles/largeea.dir/common/memory_tracker.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/largeea.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/largeea.dir/common/rng.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/largeea.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/largeea.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/bootstrap.cc" "src/CMakeFiles/largeea.dir/core/bootstrap.cc.o" "gcc" "src/CMakeFiles/largeea.dir/core/bootstrap.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/largeea.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/largeea.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/large_ea.cc" "src/CMakeFiles/largeea.dir/core/large_ea.cc.o" "gcc" "src/CMakeFiles/largeea.dir/core/large_ea.cc.o.d"
  "/root/repo/src/core/name_channel.cc" "src/CMakeFiles/largeea.dir/core/name_channel.cc.o" "gcc" "src/CMakeFiles/largeea.dir/core/name_channel.cc.o.d"
  "/root/repo/src/core/structure_channel.cc" "src/CMakeFiles/largeea.dir/core/structure_channel.cc.o" "gcc" "src/CMakeFiles/largeea.dir/core/structure_channel.cc.o.d"
  "/root/repo/src/gen/benchmark_gen.cc" "src/CMakeFiles/largeea.dir/gen/benchmark_gen.cc.o" "gcc" "src/CMakeFiles/largeea.dir/gen/benchmark_gen.cc.o.d"
  "/root/repo/src/gen/name_model.cc" "src/CMakeFiles/largeea.dir/gen/name_model.cc.o" "gcc" "src/CMakeFiles/largeea.dir/gen/name_model.cc.o.d"
  "/root/repo/src/gen/world_graph.cc" "src/CMakeFiles/largeea.dir/gen/world_graph.cc.o" "gcc" "src/CMakeFiles/largeea.dir/gen/world_graph.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/largeea.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/largeea.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/kg/alignment.cc" "src/CMakeFiles/largeea.dir/kg/alignment.cc.o" "gcc" "src/CMakeFiles/largeea.dir/kg/alignment.cc.o.d"
  "/root/repo/src/kg/dataset.cc" "src/CMakeFiles/largeea.dir/kg/dataset.cc.o" "gcc" "src/CMakeFiles/largeea.dir/kg/dataset.cc.o.d"
  "/root/repo/src/kg/kg_io.cc" "src/CMakeFiles/largeea.dir/kg/kg_io.cc.o" "gcc" "src/CMakeFiles/largeea.dir/kg/kg_io.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/CMakeFiles/largeea.dir/kg/knowledge_graph.cc.o" "gcc" "src/CMakeFiles/largeea.dir/kg/knowledge_graph.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/CMakeFiles/largeea.dir/la/matrix.cc.o" "gcc" "src/CMakeFiles/largeea.dir/la/matrix.cc.o.d"
  "/root/repo/src/la/ops.cc" "src/CMakeFiles/largeea.dir/la/ops.cc.o" "gcc" "src/CMakeFiles/largeea.dir/la/ops.cc.o.d"
  "/root/repo/src/name/data_augmentation.cc" "src/CMakeFiles/largeea.dir/name/data_augmentation.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/data_augmentation.cc.o.d"
  "/root/repo/src/name/levenshtein.cc" "src/CMakeFiles/largeea.dir/name/levenshtein.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/levenshtein.cc.o.d"
  "/root/repo/src/name/minhash.cc" "src/CMakeFiles/largeea.dir/name/minhash.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/minhash.cc.o.d"
  "/root/repo/src/name/nff.cc" "src/CMakeFiles/largeea.dir/name/nff.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/nff.cc.o.d"
  "/root/repo/src/name/semantic_encoder.cc" "src/CMakeFiles/largeea.dir/name/semantic_encoder.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/semantic_encoder.cc.o.d"
  "/root/repo/src/name/semantic_sim.cc" "src/CMakeFiles/largeea.dir/name/semantic_sim.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/semantic_sim.cc.o.d"
  "/root/repo/src/name/string_sim.cc" "src/CMakeFiles/largeea.dir/name/string_sim.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/string_sim.cc.o.d"
  "/root/repo/src/name/tokenizer.cc" "src/CMakeFiles/largeea.dir/name/tokenizer.cc.o" "gcc" "src/CMakeFiles/largeea.dir/name/tokenizer.cc.o.d"
  "/root/repo/src/nn/adam.cc" "src/CMakeFiles/largeea.dir/nn/adam.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/adam.cc.o.d"
  "/root/repo/src/nn/aggregation.cc" "src/CMakeFiles/largeea.dir/nn/aggregation.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/aggregation.cc.o.d"
  "/root/repo/src/nn/batch_graph.cc" "src/CMakeFiles/largeea.dir/nn/batch_graph.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/batch_graph.cc.o.d"
  "/root/repo/src/nn/gcn_align.cc" "src/CMakeFiles/largeea.dir/nn/gcn_align.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/gcn_align.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/largeea.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/negative_sampler.cc" "src/CMakeFiles/largeea.dir/nn/negative_sampler.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/negative_sampler.cc.o.d"
  "/root/repo/src/nn/rrea.cc" "src/CMakeFiles/largeea.dir/nn/rrea.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/rrea.cc.o.d"
  "/root/repo/src/nn/transe.cc" "src/CMakeFiles/largeea.dir/nn/transe.cc.o" "gcc" "src/CMakeFiles/largeea.dir/nn/transe.cc.o.d"
  "/root/repo/src/partition/metis.cc" "src/CMakeFiles/largeea.dir/partition/metis.cc.o" "gcc" "src/CMakeFiles/largeea.dir/partition/metis.cc.o.d"
  "/root/repo/src/partition/metis_cps.cc" "src/CMakeFiles/largeea.dir/partition/metis_cps.cc.o" "gcc" "src/CMakeFiles/largeea.dir/partition/metis_cps.cc.o.d"
  "/root/repo/src/partition/mini_batch.cc" "src/CMakeFiles/largeea.dir/partition/mini_batch.cc.o" "gcc" "src/CMakeFiles/largeea.dir/partition/mini_batch.cc.o.d"
  "/root/repo/src/partition/overlap.cc" "src/CMakeFiles/largeea.dir/partition/overlap.cc.o" "gcc" "src/CMakeFiles/largeea.dir/partition/overlap.cc.o.d"
  "/root/repo/src/partition/vps.cc" "src/CMakeFiles/largeea.dir/partition/vps.cc.o" "gcc" "src/CMakeFiles/largeea.dir/partition/vps.cc.o.d"
  "/root/repo/src/sim/csls.cc" "src/CMakeFiles/largeea.dir/sim/csls.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/csls.cc.o.d"
  "/root/repo/src/sim/lsh.cc" "src/CMakeFiles/largeea.dir/sim/lsh.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/lsh.cc.o.d"
  "/root/repo/src/sim/sim_io.cc" "src/CMakeFiles/largeea.dir/sim/sim_io.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/sim_io.cc.o.d"
  "/root/repo/src/sim/sinkhorn.cc" "src/CMakeFiles/largeea.dir/sim/sinkhorn.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/sinkhorn.cc.o.d"
  "/root/repo/src/sim/sparse_sim.cc" "src/CMakeFiles/largeea.dir/sim/sparse_sim.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/sparse_sim.cc.o.d"
  "/root/repo/src/sim/topk_search.cc" "src/CMakeFiles/largeea.dir/sim/topk_search.cc.o" "gcc" "src/CMakeFiles/largeea.dir/sim/topk_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
