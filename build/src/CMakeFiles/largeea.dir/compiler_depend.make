# Empty compiler generated dependencies file for largeea.
# This may be replaced when dependencies are built.
