file(REMOVE_RECURSE
  "liblargeea.a"
)
