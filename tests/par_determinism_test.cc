// Thread-count invariance of the full pipeline (DESIGN.md §8): the same
// dataset and options must produce a bit-identical fused matrix — and
// byte-identical checkpoint artifacts — at --threads 1, 2, and 8. This
// is the integration-level proof of the determinism contract the par/
// layer promises; the unit-level pieces live in par_test.cc.
//
// Note the host may have a single core: SetNumThreads(2/8) still starts
// real workers, so tier-1 ctest exercises the parallel code paths (and
// their merges) even on one-CPU machines.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/par/thread_pool.h"
#include "src/rt/fault_injection.h"
#include "src/tune/tune_table.h"

namespace largeea {
namespace {

namespace fs = std::filesystem;

void ExpectBitIdentical(const LargeEaResult& a, const LargeEaResult& b) {
  ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
  ASSERT_EQ(a.fused.num_cols(), b.fused.num_cols());
  for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
    const auto ra = a.fused.Row(r);
    const auto rb = b.fused.Row(r);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column) << "row " << r;
      // Bit-exact, deliberately not EXPECT_FLOAT_EQ: thread count must
      // not perturb a single ulp anywhere in the pipeline.
      EXPECT_EQ(ra[i].score, rb[i].score) << "row " << r;
    }
  }
  EXPECT_EQ(a.effective_seeds, b.effective_seeds);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
  EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
}

/// Reads every regular file under `dir` into a filename -> bytes map.
std::map<std::string, std::string> ReadDirBytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[entry.path().filename().string()] = std::move(bytes);
  }
  return files;
}

class ParDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

  void SetUp() override {
    saved_threads_ = par::ThreadPool::Get().num_threads();
#if LARGEEA_FAULT_INJECTION
    rt::FaultInjector::Get().Reset();
#endif
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
#if LARGEEA_FAULT_INJECTION
    rt::FaultInjector::Get().Reset();
#endif
    for (const std::string& dir : dirs_) fs::remove_all(dir);
  }

  static LargeEaOptions Options() {
    LargeEaOptions options;
    options.structure_channel.num_batches = 3;
    options.structure_channel.train.epochs = 10;
    options.structure_channel.retry_backoff_ms = 0;
    return options;
  }

  std::string CheckpointDir(const std::string& name) {
    std::string dir =
        (fs::temp_directory_path() / ("largeea_par_" + name)).string();
    fs::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  /// Runs the pipeline with the pool pinned to `threads`.
  LargeEaResult RunAt(int32_t threads, const LargeEaOptions& options) {
    par::ThreadPool::Get().SetNumThreads(threads);
    auto result = RunLargeEa(dataset(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::vector<std::string> dirs_;
  int32_t saved_threads_ = 1;

 private:
  static const EaDataset* dataset_;
};

const EaDataset* ParDeterminismTest::dataset_ = nullptr;

TEST_F(ParDeterminismTest, FusedMatrixBitIdenticalAcrossThreadCounts) {
  const LargeEaOptions options = Options();
  const LargeEaResult at1 = RunAt(1, options);
  const LargeEaResult at2 = RunAt(2, options);
  const LargeEaResult at8 = RunAt(8, options);
  {
    SCOPED_TRACE("threads=2 vs threads=1");
    ExpectBitIdentical(at1, at2);
  }
  {
    SCOPED_TRACE("threads=8 vs threads=1");
    ExpectBitIdentical(at1, at8);
  }
}

TEST_F(ParDeterminismTest, CheckpointArtifactsByteIdenticalAcrossThreadCounts) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("ckpt_t1");
  RunAt(1, options);
  const auto files_t1 = ReadDirBytes(options.fault_tolerance.checkpoint_dir);

  options.fault_tolerance.checkpoint_dir = CheckpointDir("ckpt_t8");
  RunAt(8, options);
  const auto files_t8 = ReadDirBytes(options.fault_tolerance.checkpoint_dir);

  ASSERT_FALSE(files_t1.empty());
  ASSERT_EQ(files_t1.size(), files_t8.size());
  for (const auto& [name, bytes] : files_t1) {
    const auto it = files_t8.find(name);
    ASSERT_NE(it, files_t8.end()) << "missing at threads=8: " << name;
    EXPECT_EQ(bytes, it->second) << "artifact differs: " << name;
  }
}

/// Restores the default (analytic) tune table on scope exit so a tuned
/// test cannot leak its table into the rest of the suite.
class ScopedTuneFile {
 public:
  explicit ScopedTuneFile(const tune::TuneOverrides& overrides) {
    path_ = (fs::temp_directory_path() / "largeea_tune_det.json").string();
    const Status saved = tune::SaveTuneFile(path_, overrides);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    auto loaded = tune::LoadTuneFile(path_);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    if (loaded.ok()) EXPECT_TRUE(*loaded == overrides);
    tune::TuneTable::Set(loaded.ok() ? *loaded : overrides);
  }
  ~ScopedTuneFile() {
    tune::TuneTable::Set(tune::TuneOverrides{});
    fs::remove(path_);
  }

 private:
  std::string path_;
};

/// A deliberately non-default table: every order-neutral parameter is
/// moved off its analytic value (odd grains included, so chunk layouts
/// genuinely differ from the defaults).
tune::TuneOverrides NonDefaultOverrides() {
  tune::TuneOverrides overrides;
  overrides.gemm_row_grain = 48;
  overrides.gemm_panel = 96;
  overrides.gemm_tile_cols = 24;
  overrides.elem_grain = 4096;
  overrides.norm_row_grain = 33;
  overrides.sinkhorn_row_grain = 100;
  overrides.topk_row_grain = 17;
  overrides.chunks_per_thread = 8;
  return overrides;
}

TEST_F(ParDeterminismTest, TuningFileBitIdenticalAcrossThreadCountsAndTables) {
  // The tuning-file determinism contract (DESIGN.md §13): every
  // file-tunable parameter is reduction-order-neutral, so a run under a
  // non-default tuning file must be bit-identical to the untuned run —
  // at every thread count.
  const LargeEaOptions options = Options();
  const LargeEaResult untuned = RunAt(1, options);

  ScopedTuneFile tuned_table(NonDefaultOverrides());
  const LargeEaResult tuned1 = RunAt(1, options);
  const LargeEaResult tuned2 = RunAt(2, options);
  const LargeEaResult tuned8 = RunAt(8, options);
  {
    SCOPED_TRACE("tuned threads=1 vs untuned threads=1");
    ExpectBitIdentical(untuned, tuned1);
  }
  {
    SCOPED_TRACE("tuned threads=2 vs untuned threads=1");
    ExpectBitIdentical(untuned, tuned2);
  }
  {
    SCOPED_TRACE("tuned threads=8 vs untuned threads=1");
    ExpectBitIdentical(untuned, tuned8);
  }
}

TEST_F(ParDeterminismTest, CheckpointBytesIdenticalUnderTuningFile) {
  // Checkpoint artifacts are the other half of the contract: the tuning
  // file is excluded from the config fingerprint precisely because it
  // cannot change any artifact byte — a tuned resume must be able to
  // pick up an untuned run's checkpoints and vice versa.
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("ckpt_untuned");
  RunAt(1, options);
  const auto untuned = ReadDirBytes(options.fault_tolerance.checkpoint_dir);

  ScopedTuneFile tuned_table(NonDefaultOverrides());
  options.fault_tolerance.checkpoint_dir = CheckpointDir("ckpt_tuned");
  RunAt(8, options);
  const auto tuned = ReadDirBytes(options.fault_tolerance.checkpoint_dir);

  ASSERT_FALSE(untuned.empty());
  ASSERT_EQ(untuned.size(), tuned.size());
  for (const auto& [name, bytes] : untuned) {
    const auto it = tuned.find(name);
    ASSERT_NE(it, tuned.end()) << "missing under tuning file: " << name;
    EXPECT_EQ(bytes, it->second) << "artifact differs: " << name;
  }
}

#if LARGEEA_FAULT_INJECTION
TEST_F(ParDeterminismTest, CrashThenResumeUnderDifferentThreadCount) {
  const LargeEaResult baseline = RunAt(1, Options());

  LargeEaOptions options = Options();
  options.structure_channel.max_batch_retries = 0;      // crash,
  options.structure_channel.drop_failed_batches = false;  // don't degrade
  options.fault_tolerance.checkpoint_dir = CheckpointDir("crash_resume");

  // Crash mid-structure-channel at threads=1 (hit order is deterministic
  // there), then resume at threads=8: the restored run must be
  // indistinguishable from the uninterrupted single-threaded baseline.
  rt::FaultSpec spec;
  spec.code = StatusCode::kAborted;
  spec.message = "simulated crash";
  spec.trigger_on_hit = 2;  // batch 0 completes, batch 1 dies
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  par::ThreadPool::Get().SetNumThreads(1);
  const auto crashed = RunLargeEa(dataset(), options);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  rt::FaultInjector::Get().Disarm("structure.batch.train");

  options.fault_tolerance.resume = true;
  const LargeEaResult resumed = RunAt(8, options);
  ExpectBitIdentical(baseline, resumed);
}
#endif  // LARGEEA_FAULT_INJECTION

}  // namespace
}  // namespace largeea
