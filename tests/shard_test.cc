// Unit tests for the multi-process shard layer (src/shard/, DESIGN.md
// §12): the batch->shard plan, heartbeat writer/monitor pair, the POSIX
// subprocess supervision primitives, the multi-process Chrome trace
// merge, and the orchestrator's argument validation. Whole-pipeline
// chaos scenarios (SIGKILL mid-phase, hangs, corrupt checkpoints,
// resume) live in fault_tolerance_test.cc, where a dataset and the real
// largeea_cli binary are available.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/trace_merge.h"
#include "src/rt/checkpoint.h"
#include "src/rt/io_util.h"
#include "src/shard/heartbeat.h"
#include "src/shard/orchestrator.h"
#include "src/shard/shard_plan.h"
#include "src/shard/subprocess.h"
#include "src/shard/worker.h"

namespace largeea::shard {
namespace {

namespace fs = std::filesystem;

MiniBatch BatchOfSize(int32_t n) {
  MiniBatch b;
  for (int32_t i = 0; i < n; ++i) {
    b.source_entities.push_back(i);
    b.target_entities.push_back(i);
  }
  return b;
}

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("shard_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ShardPlanTest, RoundRobinsByIndexSkippingUntrainableBatches) {
  MiniBatchSet batches;
  batches.push_back(BatchOfSize(4));  // 0: trainable -> shard 0
  batches.push_back(BatchOfSize(1));  // 1: too small, unassigned
  batches.push_back(BatchOfSize(4));  // 2: trainable -> shard 0
  batches.push_back(BatchOfSize(4));  // 3: trainable -> shard 1
  const ShardPlan plan = PlanShards(batches, 2);
  ASSERT_EQ(plan.num_shards, 2);
  // Assignment keys on the batch INDEX (b % shards), so a batch's owner
  // never depends on which other batches happen to be trainable.
  EXPECT_EQ(plan.batches_of[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(plan.batches_of[1], (std::vector<size_t>{3}));
  EXPECT_EQ(plan.total_batches(), 3);
}

TEST(ShardPlanTest, OneShardOwnsEverything) {
  MiniBatchSet batches(3, BatchOfSize(4));
  const ShardPlan plan = PlanShards(batches, 1);
  EXPECT_EQ(plan.batches_of[0], (std::vector<size_t>{0, 1, 2}));
}

TEST(ShardPlanTest, MoreShardsThanBatchesLeavesEmptyShards) {
  MiniBatchSet batches(2, BatchOfSize(4));
  const ShardPlan plan = PlanShards(batches, 5);
  EXPECT_EQ(plan.batches_of[0], (std::vector<size_t>{0}));
  EXPECT_EQ(plan.batches_of[1], (std::vector<size_t>{1}));
  for (size_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(plan.batches_of[i].empty()) << "shard " << i;
  }
}

TEST(ShardPlanTest, EmptyBatchSetYieldsEmptyPlan) {
  const ShardPlan plan = PlanShards({}, 3);
  EXPECT_EQ(plan.total_batches(), 0);
  for (const auto& shard : plan.batches_of) EXPECT_TRUE(shard.empty());
}

TEST(ShardCompleteTest, TrueOnlyWhenEveryArtifactLoads) {
  const std::string dir = TempDir("complete");
  rt::CheckpointManager ckpt(dir, 7, /*resume=*/true);
  SparseSimMatrix m(2, 2, 1);
  m.Accumulate(0, 1, 1.0f);
  ASSERT_TRUE(ckpt.SaveMatrix(StructureBatchArtifactKind(0), m).ok());
  EXPECT_TRUE(ShardComplete(ckpt, {0}));
  EXPECT_FALSE(ShardComplete(ckpt, {0, 2}));
  EXPECT_TRUE(ShardComplete(ckpt, {}));  // an empty shard is complete
}

TEST(HeartbeatTest, MonitorSeesContentChangesNotTime) {
  const std::string dir = TempDir("heartbeat");
  const std::string path = dir + "/hb.txt";
  HeartbeatMonitor monitor(path);
  EXPECT_FALSE(monitor.Poll());  // missing file: no progress
  {
    // Long interval: only the synchronous beats (construction and
    // SetPhase) fire during the test, so change counts are exact.
    HeartbeatWriter writer(path, /*interval_ms=*/60000);
    EXPECT_TRUE(monitor.Poll());   // first beat
    EXPECT_FALSE(monitor.Poll());  // unchanged since
    writer.SetPhase("finalize");
    EXPECT_TRUE(monitor.Poll());
    EXPECT_NE(monitor.last_content().find("finalize"), std::string::npos);
  }
  EXPECT_TRUE(fs::exists(path));  // the file outlives the writer
}

TEST(SubprocessTest, ExitCodeAndOutputCaptured) {
  const std::string dir = TempDir("subprocess");
  const std::string log = dir + "/out.log";
  auto pid = SpawnProcess({"/bin/sh", "-c", "echo captured; exit 7"}, {},
                          log);
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();
  const ProcessStatus status = WaitProcess(*pid);
  EXPECT_EQ(status.state, ProcessStatus::State::kExited);
  EXPECT_EQ(status.exit_code, 7);
  const auto captured = rt::ReadFileToString(log);
  ASSERT_TRUE(captured.ok());
  EXPECT_NE(captured->find("captured"), std::string::npos);
}

TEST(SubprocessTest, ExtraEnvReachesTheChild) {
  const std::string dir = TempDir("subprocess_env");
  const std::string log = dir + "/out.log";
  auto pid = SpawnProcess({"/bin/sh", "-c", "echo \"v=$SHARD_TEST_VAR\""},
                          {"SHARD_TEST_VAR=hello"}, log);
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(WaitProcess(*pid).succeeded());
  const auto captured = rt::ReadFileToString(log);
  ASSERT_TRUE(captured.ok());
  EXPECT_NE(captured->find("v=hello"), std::string::npos);
}

TEST(SubprocessTest, KillIsReportedAsSignaled) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "sleep 30"}, {}, "");
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(PollProcess(*pid).running());
  KillProcess(*pid);
  const ProcessStatus status = WaitProcess(*pid);
  EXPECT_EQ(status.state, ProcessStatus::State::kSignaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
}

TEST(SubprocessTest, ExecFailureExits127) {
  auto pid = SpawnProcess({"/no/such/binary"}, {}, "");
  ASSERT_TRUE(pid.ok());  // fork succeeded; exec fails in the child
  const ProcessStatus status = WaitProcess(*pid);
  EXPECT_EQ(status.state, ProcessStatus::State::kExited);
  EXPECT_EQ(status.exit_code, 127);
}

TEST(TraceMergeTest, RewritesPidsAndLabelsProcesses) {
  const std::string doc_a =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"pipeline","ph":"X","ts":0,"dur":5,"pid":1,"tid":0}]})";
  const std::string doc_b =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"shard/worker","ph":"X","ts":1,"dur":2,"pid":1,"tid":0}]})";
  const std::string merged = obs::MergeChromeTraces(
      {{"orchestrator", 1, doc_a}, {"worker-0", 2, doc_b}});
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"orchestrator\""), std::string::npos);
  EXPECT_NE(merged.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(merged.find("shard/worker"), std::string::npos);
  // The worker's events were actually re-stamped, not duplicated.
  EXPECT_EQ(merged.find("\"pid\":1,\"tid\":0}]"), std::string::npos);
}

TEST(TraceMergeTest, TornOrMissingWorkerTracesContributeNothing) {
  const std::string good =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]})";
  const std::string merged = obs::MergeChromeTraces(
      {{"orchestrator", 1, good},
       {"dead-worker", 2, ""},
       {"torn-worker", 3, "{\"displayTimeUnit\""}});
  EXPECT_NE(merged.find("\"name\":\"a\""), std::string::npos);
  EXPECT_EQ(merged.find("dead-worker"), std::string::npos);
  EXPECT_EQ(merged.find("torn-worker"), std::string::npos);
}

TEST(OrchestratorTest, RequiresCheckpointDirAndWorkerCommand) {
  const EaDataset dataset;
  LargeEaOptions options;
  ShardOptions shards;
  shards.num_shards = 2;
  auto no_dir = RunShardedLargeEa(dataset, options, shards);
  ASSERT_FALSE(no_dir.ok());
  EXPECT_EQ(no_dir.status().code(), StatusCode::kInvalidArgument);

  options.fault_tolerance.checkpoint_dir = TempDir("orchestrator_args");
  auto no_cmd = RunShardedLargeEa(dataset, options, shards);
  ASSERT_FALSE(no_cmd.ok());
  EXPECT_EQ(no_cmd.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkerTest, RejectsOutOfRangeIndexAndMissingDir) {
  const EaDataset dataset;
  LargeEaOptions options;
  ShardWorkerOptions worker;
  worker.shard_index = 0;
  worker.shard_count = 1;
  EXPECT_EQ(RunShardWorker(dataset, options, worker).code(),
            StatusCode::kInvalidArgument);  // no checkpoint dir

  options.fault_tolerance.checkpoint_dir = TempDir("worker_args");
  worker.shard_index = 3;
  EXPECT_EQ(RunShardWorker(dataset, options, worker).code(),
            StatusCode::kInvalidArgument);  // index out of range
}

}  // namespace
}  // namespace largeea::shard
