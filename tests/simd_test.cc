// Tests for src/simd: backend selection, the cross-backend determinism
// contract (DESIGN.md §9), and the bit-parallel Levenshtein against its
// DP oracle.
//
// The equivalence fuzz compares every backend the CPU supports against
// the scalar backend *bit for bit* — EXPECT that two floats share their
// exact bit pattern, not EXPECT_FLOAT_EQ — on shapes chosen to stress
// the kernels' structure: dims that are not multiples of 8, length-0 and
// length-1 tails, and deliberately misaligned views. The pipeline test
// at the bottom extends the same claim end to end: the fused similarity
// matrix and the checkpoint bytes cannot depend on --simd or --threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/la/aligned_buffer.h"
#include "src/name/levenshtein.h"
#include "src/par/thread_pool.h"
#include "src/simd/simd.h"

namespace largeea {
namespace {

namespace fs = std::filesystem;

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

TEST(SimdBackendTest, ParseBackendTokens) {
  simd::Backend backend;
  ASSERT_TRUE(simd::ParseBackend("scalar", &backend));
  EXPECT_EQ(backend, simd::Backend::kScalar);
  ASSERT_TRUE(simd::ParseBackend("sse2", &backend));
  EXPECT_EQ(backend, simd::Backend::kSse2);
  ASSERT_TRUE(simd::ParseBackend("avx2", &backend));
  EXPECT_EQ(backend, simd::Backend::kAvx2);
  ASSERT_TRUE(simd::ParseBackend("auto", &backend));
  EXPECT_EQ(backend, simd::BestBackend());
  EXPECT_FALSE(simd::ParseBackend("", &backend));
  EXPECT_FALSE(simd::ParseBackend("avx512", &backend));
  EXPECT_FALSE(simd::ParseBackend("SCALAR", &backend));
}

TEST(SimdBackendTest, AvailabilityIsConsistent) {
  // Scalar always runs; whatever BestBackend picks must be available;
  // AvailableBackends lists worst to best and contains both.
  EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
  EXPECT_TRUE(simd::BackendAvailable(simd::BestBackend()));
  const std::vector<simd::Backend> available = simd::AvailableBackends();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), simd::Backend::kScalar);
  EXPECT_EQ(available.back(), simd::BestBackend());
  for (size_t i = 1; i < available.size(); ++i) {
    EXPECT_LT(static_cast<int>(available[i - 1]),
              static_cast<int>(available[i]));
  }
}

TEST(SimdBackendTest, BackendNamesRoundTrip) {
  for (const simd::Backend b : simd::AvailableBackends()) {
    simd::Backend parsed;
    ASSERT_TRUE(simd::ParseBackend(simd::BackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
}

// ---------------------------------------------------------------------
// Kernel equivalence: every available backend against scalar, bitwise.

class SimdEquivalenceTest : public ::testing::Test {
 protected:
  // Dims stressing the 8-lane structure: empty, pure-tail lengths (< 8),
  // exact multiples, multiples +/- 1, and larger sizes with every tail
  // remainder. 16 lanes of SSE2's two-register layout are covered too.
  static std::vector<int64_t> Dims() {
    return {0,  1,  2,  3,  5,  7,  8,  9,   15,  16,  17,
            24, 31, 33, 63, 64, 65, 100, 255, 257, 1000};
  }

  // Fills with a mix of magnitudes and signs so reductions actually
  // exercise rounding (uniform [0,1) values rarely expose order bugs).
  static void FillRandom(float* p, int64_t n, Rng& rng) {
    for (int64_t i = 0; i < n; ++i) {
      const float magnitude =
          static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
      const int scale = static_cast<int>(rng.Uniform(17)) - 8;
      p[i] = std::ldexp(magnitude, scale);
    }
  }
};

TEST_F(SimdEquivalenceTest, ReductionsBitIdenticalAcrossBackends) {
  const simd::KernelTable& scalar =
      simd::KernelsFor(simd::Backend::kScalar);
  Rng rng(29);
  for (const simd::Backend backend : simd::AvailableBackends()) {
    const simd::KernelTable& kt = simd::KernelsFor(backend);
    for (const int64_t dim : Dims()) {
      // Misaligned views: the aligned base plus a 0..7 float offset, so
      // vector loads straddle cache lines. The buffer over-allocates by
      // the offset to keep every access in bounds.
      for (const int64_t offset : {int64_t{0}, int64_t{1}, int64_t{3}}) {
        AlignedBuffer a(static_cast<size_t>(dim + offset));
        AlignedBuffer b(static_cast<size_t>(dim + offset));
        FillRandom(a.data(), dim + offset, rng);
        FillRandom(b.data(), dim + offset, rng);
        const float* pa = a.data() + offset;
        const float* pb = b.data() + offset;
        SCOPED_TRACE(std::string(simd::BackendName(backend)) + " dim=" +
                     std::to_string(dim) + " offset=" +
                     std::to_string(offset));
        EXPECT_EQ(FloatBits(kt.dot(pa, pb, dim)),
                  FloatBits(scalar.dot(pa, pb, dim)));
        EXPECT_EQ(FloatBits(kt.manhattan(pa, pb, dim)),
                  FloatBits(scalar.manhattan(pa, pb, dim)));
        EXPECT_EQ(FloatBits(kt.sum(pa, dim)),
                  FloatBits(scalar.sum(pa, dim)));
      }
    }
  }
}

TEST_F(SimdEquivalenceTest, ElementwiseBitIdenticalAcrossBackends) {
  const simd::KernelTable& scalar =
      simd::KernelsFor(simd::Backend::kScalar);
  Rng rng(31);
  for (const simd::Backend backend : simd::AvailableBackends()) {
    const simd::KernelTable& kt = simd::KernelsFor(backend);
    for (const int64_t dim : Dims()) {
      AlignedBuffer x(static_cast<size_t>(dim));
      FillRandom(x.data(), dim, rng);
      const float alpha = 1.0f + static_cast<float>(rng.UniformDouble());
      AlignedBuffer y(static_cast<size_t>(dim));
      FillRandom(y.data(), dim, rng);

      SCOPED_TRACE(std::string(simd::BackendName(backend)) + " dim=" +
                   std::to_string(dim));
      AlignedBuffer y_kt = y;
      AlignedBuffer y_ref = y;
      kt.axpy(alpha, x.data(), y_kt.data(), dim);
      scalar.axpy(alpha, x.data(), y_ref.data(), dim);
      // memcmp rejects null even at length 0, and an empty AlignedBuffer
      // holds no storage — the dim-0 kernel calls above are the test.
      if (dim == 0) continue;
      EXPECT_EQ(0, std::memcmp(y_kt.data(), y_ref.data(),
                               static_cast<size_t>(dim) * sizeof(float)));

      AlignedBuffer x_kt = x;
      AlignedBuffer x_ref = x;
      kt.scale(x_kt.data(), alpha, dim);
      scalar.scale(x_ref.data(), alpha, dim);
      EXPECT_EQ(0, std::memcmp(x_kt.data(), x_ref.data(),
                               static_cast<size_t>(dim) * sizeof(float)));

      x_kt = x;
      x_ref = x;
      kt.divide(x_kt.data(), alpha, dim);
      scalar.divide(x_ref.data(), alpha, dim);
      EXPECT_EQ(0, std::memcmp(x_kt.data(), x_ref.data(),
                               static_cast<size_t>(dim) * sizeof(float)));
    }
  }
}

// ---------------------------------------------------------------------
// Myers bit-parallel Levenshtein against the DP oracle.

std::string RandomString(Rng& rng, int64_t length, int alphabet) {
  std::string s;
  s.reserve(static_cast<size_t>(length));
  for (int64_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(
        'a' + rng.Uniform(static_cast<uint64_t>(alphabet))));
  }
  return s;
}

TEST(LevenshteinMyersTest, MatchesDpOracleOnFuzzedStrings) {
  Rng rng(37);
  for (int iter = 0; iter < 3000; ++iter) {
    // Lengths cross the 64-char single-word boundary; tiny alphabets
    // force dense match structure (the hard case for the bit vectors).
    const int alphabet = 1 + static_cast<int>(rng.Uniform(4));
    const std::string a =
        RandomString(rng, static_cast<int64_t>(rng.Uniform(150)), alphabet);
    const std::string b =
        RandomString(rng, static_cast<int64_t>(rng.Uniform(150)), alphabet);
    ASSERT_EQ(LevenshteinDistance(a, b), LevenshteinDistanceDp(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(LevenshteinMyersTest, ExercisesMultiWordBoundaries) {
  // Exactly 64, 65, 128, and 129 pattern characters: the single-word /
  // multi-word split and the block-carry chain.
  for (const size_t len : {size_t{64}, size_t{65}, size_t{128}, size_t{129}}) {
    std::string a(len, 'a');
    std::string b = a;
    b[len / 2] = 'b';
    b.push_back('c');
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistanceDp(a, b))
        << "len=" << len;
    EXPECT_EQ(LevenshteinDistance(a, a), 0) << "len=" << len;
  }
}

TEST(LevenshteinMyersTest, EmptyAndDegenerate) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("", std::string(100, 'x')), 100);
  EXPECT_EQ(LevenshteinDistance(std::string(100, 'x'), ""), 100);
  const std::string long_a(300, 'a');
  const std::string long_b(300, 'b');
  EXPECT_EQ(LevenshteinDistance(long_a, long_b), 300);
}

TEST(BoundedLevenshteinTest, ExactUnderCapCappedAbove) {
  Rng rng(41);
  for (int iter = 0; iter < 3000; ++iter) {
    const int alphabet = 1 + static_cast<int>(rng.Uniform(4));
    const std::string a =
        RandomString(rng, static_cast<int64_t>(rng.Uniform(60)), alphabet);
    const std::string b =
        RandomString(rng, static_cast<int64_t>(rng.Uniform(60)), alphabet);
    const int32_t cap = static_cast<int32_t>(rng.Uniform(12));
    const int32_t exact = LevenshteinDistanceDp(a, b);
    const int32_t bounded = BoundedLevenshteinDistance(a, b, cap);
    if (exact <= cap) {
      ASSERT_EQ(bounded, exact) << "a=" << a << " b=" << b << " cap=" << cap;
    } else {
      ASSERT_EQ(bounded, cap + 1)
          << "a=" << a << " b=" << b << " cap=" << cap;
    }
  }
}

TEST(BoundedLevenshteinTest, ZeroCapAndEmptyStrings) {
  EXPECT_EQ(BoundedLevenshteinDistance("abc", "abc", 0), 0);
  EXPECT_EQ(BoundedLevenshteinDistance("abc", "abd", 0), 1);  // cap + 1
  EXPECT_EQ(BoundedLevenshteinDistance("", "", 0), 0);
  EXPECT_EQ(BoundedLevenshteinDistance("", "ab", 5), 2);
  EXPECT_EQ(BoundedLevenshteinDistance("", "ab", 1), 2);  // cap + 1
}

// ---------------------------------------------------------------------
// End-to-end: the fused matrix and checkpoint artifacts are invariant
// under --simd x --threads (the §8 x §9 cross product).

void ExpectFusedBitIdentical(const LargeEaResult& a, const LargeEaResult& b) {
  ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
  for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
    const auto ra = a.fused.Row(r);
    const auto rb = b.fused.Row(r);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column) << "row " << r;
      EXPECT_EQ(FloatBits(ra[i].score), FloatBits(rb[i].score))
          << "row " << r;
    }
  }
  EXPECT_EQ(a.effective_seeds, b.effective_seeds);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
  EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
}

std::map<std::string, std::string> ReadDirBytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[entry.path().filename().string()] = std::move(bytes);
  }
  return files;
}

class SimdDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  void SetUp() override {
    saved_backend_ = simd::ActiveBackend();
    saved_threads_ = par::ThreadPool::Get().num_threads();
  }
  void TearDown() override {
    simd::SetBackend(saved_backend_);
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
    for (const std::string& dir : dirs_) fs::remove_all(dir);
  }

  static LargeEaOptions Options() {
    LargeEaOptions options;
    options.structure_channel.num_batches = 3;
    options.structure_channel.train.epochs = 10;
    options.structure_channel.retry_backoff_ms = 0;
    return options;
  }

  std::string CheckpointDir(const std::string& name) {
    std::string dir =
        (fs::temp_directory_path() / ("largeea_simd_" + name)).string();
    fs::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  LargeEaResult RunWith(simd::Backend backend, int32_t threads,
                        const LargeEaOptions& options) {
    simd::SetBackend(backend);
    par::ThreadPool::Get().SetNumThreads(threads);
    auto result = RunLargeEa(*dataset_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::vector<std::string> dirs_;
  simd::Backend saved_backend_ = simd::Backend::kScalar;
  int32_t saved_threads_ = 1;

  static const EaDataset* dataset_;
};

const EaDataset* SimdDeterminismTest::dataset_ = nullptr;

TEST_F(SimdDeterminismTest, FusedMatrixInvariantAcrossBackendsAndThreads) {
  const LargeEaOptions options = Options();
  const LargeEaResult baseline =
      RunWith(simd::Backend::kScalar, 1, options);
  for (const simd::Backend backend : simd::AvailableBackends()) {
    for (const int32_t threads : {1, 8}) {
      if (backend == simd::Backend::kScalar && threads == 1) continue;
      SCOPED_TRACE(std::string("simd=") + simd::BackendName(backend) +
                   " threads=" + std::to_string(threads));
      const LargeEaResult run = RunWith(backend, threads, options);
      ExpectFusedBitIdentical(baseline, run);
    }
  }
}

TEST_F(SimdDeterminismTest, CheckpointBytesInvariantAcrossBackends) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("scalar_t1");
  RunWith(simd::Backend::kScalar, 1, options);
  const auto scalar_files =
      ReadDirBytes(options.fault_tolerance.checkpoint_dir);
  ASSERT_FALSE(scalar_files.empty());

  options.fault_tolerance.checkpoint_dir = CheckpointDir("best_t8");
  RunWith(simd::BestBackend(), 8, options);
  const auto best_files =
      ReadDirBytes(options.fault_tolerance.checkpoint_dir);

  ASSERT_EQ(scalar_files.size(), best_files.size());
  for (const auto& [name, bytes] : scalar_files) {
    const auto it = best_files.find(name);
    ASSERT_NE(it, best_files.end()) << "missing: " << name;
    EXPECT_EQ(bytes, it->second) << "artifact differs: " << name;
  }
}

}  // namespace
}  // namespace largeea
