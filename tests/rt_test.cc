// Unit tests for the fault-tolerant runtime layer (src/rt/): Status
// propagation, atomic file IO, the fault injector, and the checkpoint
// container (versioning, checksums, fingerprint invalidation).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/rt/checkpoint.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"
#include "src/rt/status.h"

namespace largeea {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  const Status s = DataLossError("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: checksum mismatch");
}

TEST(StatusTest, WithContextChainsLikeACallPath) {
  const Status inner = UnavailableError("disk full");
  const Status outer =
      inner.WithContext("batch 3").WithContext("structure channel");
  EXPECT_EQ(outer.code(), StatusCode::kUnavailable);
  EXPECT_EQ(outer.message(), "structure channel: batch 3: disk full");
  // Context on OK is a no-op, so it can be applied unconditionally.
  EXPECT_EQ(OkStatus().WithContext("ignored"), OkStatus());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  LARGEEA_ASSIGN_OR_RETURN(const int parsed, ParsePositive(x));
  return parsed * 2;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  const auto good = DoublePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  const auto bad = DoublePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, ValueOnErrorAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const StatusOr<int> error{NotFoundError("nope")};
  EXPECT_DEATH((void)error.value(), "");
}

TEST(IoUtilTest, AtomicWriteRoundTripsAndLeavesNoTemp) {
  const std::string dir = TempDir("largeea_rt_io");
  fs::create_directories(dir);
  const std::string path = dir + "/file.txt";
  ASSERT_TRUE(rt::AtomicallyWriteFile(path, "hello\nworld").ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const auto read = rt::ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld");
  // Overwrite is atomic too: new content fully replaces old.
  ASSERT_TRUE(rt::AtomicallyWriteFile(path, "v2").ok());
  EXPECT_EQ(*rt::ReadFileToString(path), "v2");
  fs::remove_all(dir);
}

TEST(IoUtilTest, WriteToMissingDirectoryFailsCleanly) {
  const Status s =
      rt::AtomicallyWriteFile("/nonexistent-dir/sub/file.txt", "x");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rt::ReadFileToString("/nonexistent-dir/sub/file.txt")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(IoUtilTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(rt::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(rt::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(rt::Fnv1a64("payload"), rt::Fnv1a64("payloae"));
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { rt::FaultInjector::Get().Reset(); }
  void TearDown() override { rt::FaultInjector::Get().Reset(); }
};

TEST_F(FaultInjectorTest, UnarmedPointIsANoOp) {
  auto& injector = rt::FaultInjector::Get();
  EXPECT_TRUE(injector.Check("some.point").ok());
  EXPECT_TRUE(injector.Check("some.point").ok());
  EXPECT_EQ(injector.HitCount("some.point"), 2);
  EXPECT_EQ(injector.TriggerCount("some.point"), 0);
}

TEST_F(FaultInjectorTest, FiresDeterministicallyOnTheNthHit) {
  auto& injector = rt::FaultInjector::Get();
  rt::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 2;
  injector.Arm("p", spec);
  EXPECT_TRUE(injector.Check("p").ok());           // hit 1
  EXPECT_EQ(injector.Check("p").code(), StatusCode::kUnavailable);  // 2
  EXPECT_EQ(injector.Check("p").code(), StatusCode::kUnavailable);  // 3
  EXPECT_TRUE(injector.Check("p").ok());           // exhausted
  EXPECT_EQ(injector.TriggerCount("p"), 2);
}

TEST_F(FaultInjectorTest, UnlimitedTriggersAndDisarm) {
  auto& injector = rt::FaultInjector::Get();
  rt::FaultSpec spec;
  spec.max_triggers = -1;
  injector.Arm("p", spec);
  EXPECT_FALSE(injector.Check("p").ok());
  EXPECT_FALSE(injector.Check("p").ok());
  injector.Disarm("p");
  EXPECT_TRUE(injector.Check("p").ok());
}

TEST_F(FaultInjectorTest, ErrorNamesTheFaultPoint) {
  auto& injector = rt::FaultInjector::Get();
  injector.Arm("io.load_triples", {});
  const Status s = injector.Check("io.load_triples");
  EXPECT_NE(s.message().find("io.load_triples"), std::string::npos);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("largeea_rt_ckpt");
    rt::FaultInjector::Get().Reset();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SparseSimMatrix SampleMatrix() {
    SparseSimMatrix m(3, 4, 2);
    m.Accumulate(0, 1, 0.5f);
    m.Accumulate(0, 2, -0.25f);
    m.Accumulate(2, 3, 1.0f);
    return m;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, DisabledManagerNoOps) {
  rt::CheckpointManager ckpt("", 1, true);
  EXPECT_FALSE(ckpt.enabled());
  EXPECT_FALSE(ckpt.should_load());
  EXPECT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, MatrixRoundTripIsExact) {
  rt::CheckpointManager writer(dir_, 42, /*resume=*/false);
  const SparseSimMatrix m = SampleMatrix();
  ASSERT_TRUE(writer.SaveMatrix("m", m).ok());

  rt::CheckpointManager reader(dir_, 42, /*resume=*/true);
  const auto loaded = reader.LoadMatrix("m");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), m.num_rows());
  ASSERT_EQ(loaded->num_cols(), m.num_cols());
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto a = m.Row(r);
    const auto b = loaded->Row(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].column, b[i].column);
      // Bit-exact, not approximately equal: resume must reproduce the
      // uninterrupted run down to the last float.
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

TEST_F(CheckpointTest, PairsAndBatchesRoundTrip) {
  rt::CheckpointManager ckpt(dir_, 7, /*resume=*/true);
  const EntityPairList pairs{{0, 3}, {2, 1}, {5, 5}};
  ASSERT_TRUE(ckpt.SavePairs("seeds", pairs).ok());
  const auto loaded_pairs = ckpt.LoadPairs("seeds");
  ASSERT_TRUE(loaded_pairs.ok());
  EXPECT_EQ(*loaded_pairs, pairs);

  MiniBatchSet batches(2);
  batches[0].source_entities = {0, 1, 2};
  batches[0].target_entities = {0, 1};
  batches[0].seeds = {{0, 0}};
  batches[1].source_entities = {3};
  batches[1].target_entities = {2, 3};
  ASSERT_TRUE(ckpt.SaveBatches("partition", batches).ok());
  const auto loaded = ckpt.LoadBatches("partition");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].source_entities, batches[0].source_entities);
  EXPECT_EQ((*loaded)[0].target_entities, batches[0].target_entities);
  EXPECT_EQ((*loaded)[0].seeds, batches[0].seeds);
  EXPECT_EQ((*loaded)[1].source_entities, batches[1].source_entities);
}

TEST_F(CheckpointTest, MissingArtifactIsNotFound) {
  rt::CheckpointManager ckpt(dir_, 7, /*resume=*/true);
  EXPECT_EQ(ckpt.LoadMatrix("never_saved").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointTest, FingerprintMismatchIsFailedPrecondition) {
  rt::CheckpointManager writer(dir_, 1, false);
  ASSERT_TRUE(writer.SavePairs("seeds", {{1, 1}}).ok());
  // Same directory, different run configuration: never silently reused.
  rt::CheckpointManager reader(dir_, 2, true);
  EXPECT_EQ(reader.LoadPairs("seeds").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, TruncationIsDataLoss) {
  rt::CheckpointManager ckpt(dir_, 9, true);
  ASSERT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  const std::string path = ckpt.PathFor("m");
  const auto content = rt::ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  // Drop the last 5 bytes, simulating a torn write outside our control.
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content->substr(0, content->size() - 5);
  out.close();
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, BitFlipIsDataLoss) {
  rt::CheckpointManager ckpt(dir_, 9, true);
  ASSERT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  const std::string path = ckpt.PathFor("m");
  auto content = *rt::ReadFileToString(path);
  content[content.size() - 2] ^= 0x20;  // flip one payload bit
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  out.close();
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, GarbageFileIsDataLoss) {
  rt::CheckpointManager ckpt(dir_, 9, true);
  std::ofstream out(ckpt.PathFor("m"));
  out << "this is not a checkpoint\n";
  out.close();
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, CorruptArtifactIsQuarantinedNotReread) {
  rt::CheckpointManager ckpt(dir_, 9, true);
  ASSERT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  const std::string path = ckpt.PathFor("m");
  auto content = *rt::ReadFileToString(path);
  content[content.size() - 2] ^= 0x20;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  out.close();

  // First load: DATA_LOSS, and the artifact is moved aside so the next
  // attempt recomputes instead of tripping over the same bytes.
  const auto first = ckpt.LoadMatrix("m");
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kNotFound);

  // Recompute-and-save proceeds normally over the quarantined name.
  ASSERT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  EXPECT_TRUE(ckpt.LoadMatrix("m").ok());
  EXPECT_TRUE(fs::exists(path + ".corrupt"));  // kept for forensics
}

TEST_F(CheckpointTest, FingerprintMismatchIsNotQuarantined) {
  rt::CheckpointManager writer(dir_, 1, false);
  ASSERT_TRUE(writer.SaveMatrix("m", SampleMatrix()).ok());
  rt::CheckpointManager reader(dir_, 2, true);
  EXPECT_EQ(reader.LoadMatrix("m").status().code(),
            StatusCode::kFailedPrecondition);
  // The artifact belongs to a *different* configuration — it is healthy,
  // just not ours, and the original run must still be able to resume it.
  EXPECT_TRUE(fs::exists(writer.PathFor("m")));
  EXPECT_TRUE(writer.LoadMatrix("m").ok());
}

TEST_F(CheckpointTest, KindMismatchIsDataLoss) {
  rt::CheckpointManager ckpt(dir_, 9, true);
  ASSERT_TRUE(ckpt.SavePairs("seeds", {{1, 1}}).ok());
  // Copy the seeds artifact under another kind's filename.
  fs::copy_file(ckpt.PathFor("seeds"), ckpt.PathFor("fused"));
  EXPECT_EQ(ckpt.LoadPairs("fused").status().code(),
            StatusCode::kDataLoss);
}

#if LARGEEA_FAULT_INJECTION
TEST_F(CheckpointTest, InjectedWriteFailureIsBestEffort) {
  rt::FaultInjector::Get().Arm("checkpoint.write", {});
  rt::CheckpointManager ckpt(dir_, 9, true);
  // The save reports the failure but the contract is best-effort: the
  // pipeline ignores it and the artifact is simply absent.
  EXPECT_FALSE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  EXPECT_EQ(ckpt.LoadMatrix("m").status().code(), StatusCode::kNotFound);
  rt::FaultInjector::Get().Reset();
  ASSERT_TRUE(ckpt.SaveMatrix("m", SampleMatrix()).ok());
  EXPECT_TRUE(ckpt.LoadMatrix("m").ok());
}
#endif

TEST(SerializerTest, EntityPairsRejectCountMismatch) {
  const auto bad = rt::EntityPairsFromString("largeea-pairs v1 3\n1\t2\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializerTest, MiniBatchesRejectGarbage) {
  EXPECT_FALSE(rt::MiniBatchesFromString("nope").ok());
  EXPECT_FALSE(
      rt::MiniBatchesFromString("largeea-batches v1 1\nbatch 0 x y z\n")
          .ok());
}

}  // namespace
}  // namespace largeea
