// Unit tests for the kernel autotuner table (src/tune/, DESIGN.md §13):
// the override registry and parser, the checksummed tuning-file round
// trip and its failure modes, the analytic shape formulas, and the
// process-wide table swap. The integration-level proof that a tuning
// file cannot change result bits lives in par_determinism_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/rt/io_util.h"
#include "src/tune/tune_table.h"

namespace largeea::tune {
namespace {

namespace fs = std::filesystem;

/// Restores the default (analytic) table on scope exit.
class ScopedTable {
 public:
  explicit ScopedTable(const TuneOverrides& overrides) {
    TuneTable::Set(overrides);
  }
  ~ScopedTable() { TuneTable::Set(TuneOverrides{}); }
};

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(TuneOverridesTest, SetByNameCoversEveryRegistryEntry) {
  TuneOverrides overrides;
  int64_t next = 10;
  for (const TuneParamInfo& param : TuneParams()) {
    ASSERT_TRUE(SetOverrideByName(overrides, param.name, next).ok());
    EXPECT_EQ(overrides.*param.field, next);
    ++next;
  }
}

TEST(TuneOverridesTest, UnknownNameAndNegativeValueRejected) {
  TuneOverrides overrides;
  EXPECT_EQ(SetOverrideByName(overrides, "gemm.bogus", 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SetOverrideByName(overrides, "gemm.row_grain", -1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(overrides, TuneOverrides{});
}

TEST(TuneOverridesTest, ApplyOverrideListParsesAndRejects) {
  TuneOverrides overrides;
  ASSERT_TRUE(
      ApplyOverrideList(overrides, "gemm.row_grain=48,topk.row_grain=17")
          .ok());
  EXPECT_EQ(overrides.gemm_row_grain, 48);
  EXPECT_EQ(overrides.topk_row_grain, 17);
  // Zero resets a field to "analytic".
  ASSERT_TRUE(ApplyOverrideList(overrides, "gemm.row_grain=0").ok());
  EXPECT_EQ(overrides.gemm_row_grain, 0);
  // Empty list and stray commas are fine.
  EXPECT_TRUE(ApplyOverrideList(overrides, "").ok());
  EXPECT_TRUE(ApplyOverrideList(overrides, ",,elem.grain=4096,").ok());
  EXPECT_EQ(overrides.elem_grain, 4096);
  // Malformed items are not.
  EXPECT_EQ(ApplyOverrideList(overrides, "gemm.row_grain").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplyOverrideList(overrides, "gemm.row_grain=abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplyOverrideList(overrides, "nope=3").code(),
            StatusCode::kInvalidArgument);
}

TEST(TuneFileTest, RoundTripPreservesEveryParameter) {
  TuneOverrides overrides;
  overrides.gemm_row_grain = 48;
  overrides.gemm_panel = 96;
  overrides.elem_grain = 1 << 15;
  overrides.chunks_per_thread = 8;
  const std::string path = TempPath("tune_roundtrip.json");
  ASSERT_TRUE(SaveTuneFile(path, overrides).ok());
  const auto loaded = LoadTuneFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == overrides);
  fs::remove(path);
}

TEST(TuneFileTest, AllAnalyticRoundTripsToEmptyOverrides) {
  const std::string path = TempPath("tune_empty.json");
  ASSERT_TRUE(SaveTuneFile(path, TuneOverrides{}).ok());
  const auto loaded = LoadTuneFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == TuneOverrides{});
  fs::remove(path);
}

TEST(TuneFileTest, MissingFileIsNotFound) {
  const auto loaded = LoadTuneFile(TempPath("tune_does_not_exist.json"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(TuneFileTest, TamperedValueIsDataLoss) {
  TuneOverrides overrides;
  overrides.gemm_row_grain = 48;
  const std::string path = TempPath("tune_tampered.json");
  ASSERT_TRUE(SaveTuneFile(path, overrides).ok());
  auto text = rt::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  const size_t pos = text->find("48");
  ASSERT_NE(pos, std::string::npos);
  (*text)[pos] = '9';  // 48 -> 98, checksum now stale
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << *text;
  }
  const auto loaded = LoadTuneFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  fs::remove(path);
}

TEST(TuneFileTest, UnrecognisedContentIsInvalidArgument) {
  const std::string path = TempPath("tune_garbage.json");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"not_a_tune_file\": true}\n";
  }
  const auto loaded = LoadTuneFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  fs::remove(path);
}

TEST(TuneFileTest, UnknownParameterNameIsInvalidArgument) {
  // A file from a future version with a parameter this build does not
  // know must fail loudly, not silently drop the parameter.
  TuneOverrides overrides;
  overrides.gemm_row_grain = 48;
  const std::string path = TempPath("tune_unknown.json");
  ASSERT_TRUE(SaveTuneFile(path, overrides).ok());
  auto text = rt::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  const size_t pos = text->find("gemm.row_grain");
  ASSERT_NE(pos, std::string::npos);
  text->replace(pos, 14, "gemm.from_future");  // same length not required
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << *text;
  }
  const auto loaded = LoadTuneFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  fs::remove(path);
}

TEST(TuneFingerprintTest, SensitiveToEveryField) {
  const uint64_t base = TuneFingerprint(TuneOverrides{});
  for (const TuneParamInfo& param : TuneParams()) {
    TuneOverrides overrides;
    overrides.*param.field = 7;
    EXPECT_NE(TuneFingerprint(overrides), base) << param.name;
  }
}

TEST(TuneTableTest, AnalyticGemmRowGrainTargetsChunkBand) {
  const TuneTable& tt = TuneTable::Get();
  // The historical constant (32) put a 20000-row GEMM at 625 chunks; the
  // analytic grain lands the job in a band near kTargetChunks.
  const int64_t grain = tt.GemmRowGrain(20000);
  EXPECT_EQ(grain % 16, 0);
  const int64_t chunks = (20000 + grain - 1) / grain;
  EXPECT_LE(chunks, TuneTable::kTargetChunks);
  EXPECT_GE(chunks, TuneTable::kTargetChunks / 2);
  // Small problems: one cache-line-aligned chunk, never a zero grain.
  EXPECT_GE(tt.GemmRowGrain(1), 1);
  EXPECT_GE(tt.GemmRowGrain(0), 1);
  // Grain never exceeds what 16-row rounding requires.
  EXPECT_LE(tt.GemmRowGrain(100), 112);
}

TEST(TuneTableTest, AnalyticGrainsArePositiveAcrossShapes) {
  const TuneTable& tt = TuneTable::Get();
  for (int64_t shape : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{1000},
                        int64_t{20000}, int64_t{1} << 30}) {
    EXPECT_GT(tt.GemmRowGrain(shape), 0) << shape;
    EXPECT_GT(tt.GemmPanel(shape, 128), 0) << shape;
    EXPECT_GT(tt.GemmTileCols(shape), 0) << shape;
    EXPECT_GT(tt.ElemGrain(shape), 0) << shape;
    EXPECT_GT(tt.NormRowGrain(shape), 0) << shape;
    EXPECT_GT(tt.SinkhornRowGrain(shape), 0) << shape;
    EXPECT_GT(tt.TopKRowGrain(shape), 0) << shape;
    EXPECT_GT(TuneTable::SinkhornColChunks(shape), 0) << shape;
    EXPECT_GT(TuneTable::GemmTransposeAGrain(shape), 0) << shape;
  }
  EXPECT_GT(tt.ChunksPerThread(), 0);
}

TEST(TuneTableTest, SinkhornColChunksIsBoundedShapeFunction) {
  EXPECT_EQ(TuneTable::SinkhornColChunks(0), 2);
  EXPECT_EQ(TuneTable::SinkhornColChunks(1), 2);
  EXPECT_EQ(TuneTable::SinkhornColChunks(int64_t{1} << 40), 32);
  // Monotone non-decreasing in the entry count.
  int64_t prev = 0;
  for (int64_t entries = 1; entries <= (int64_t{1} << 24); entries *= 4) {
    const int64_t chunks = TuneTable::SinkhornColChunks(entries);
    EXPECT_GE(chunks, prev);
    prev = chunks;
  }
}

TEST(TuneTableTest, OverridesWinOverAnalyticDefaults) {
  TuneOverrides overrides;
  overrides.gemm_row_grain = 48;
  overrides.elem_grain = 4096;
  overrides.chunks_per_thread = 4;
  ScopedTable scoped(overrides);
  const TuneTable& tt = TuneTable::Get();
  EXPECT_EQ(tt.GemmRowGrain(20000), 48);
  EXPECT_EQ(tt.ElemGrain(int64_t{1} << 24), 4096);
  EXPECT_EQ(tt.ChunksPerThread(), 4);
  // Untouched parameters keep their analytic defaults (rows=100 =>
  // ceil(100/64)=2, floored at 16).
  EXPECT_EQ(tt.NormRowGrain(100), 16);
}

TEST(TuneTableTest, SetInstallsAndRestores) {
  TuneOverrides overrides;
  overrides.topk_row_grain = 17;
  {
    ScopedTable scoped(overrides);
    EXPECT_EQ(TuneTable::Get().TopKRowGrain(4000), 17);
  }
  EXPECT_NE(TuneTable::Get().TopKRowGrain(4000), 17);
}

TEST(TuneTableTest, GemmPanelRespectsCacheBudgetOverride) {
  TuneOverrides overrides;
  overrides.gemm_cache_bytes = 64 * 1024;  // pretend a tiny L2
  ScopedTable scoped(overrides);
  const TuneTable& tt = TuneTable::Get();
  // B (k=4096, n=4096) is way past 64KB: panel = budget/2 / (4*n),
  // clamped to [16, 256].
  EXPECT_EQ(tt.GemmPanel(4096, 4096), 16);
  // Whole B fits: no panelling (panel = k).
  EXPECT_EQ(tt.GemmPanel(64, 64), 64);
}

TEST(TuneTableTest, DescribeMentionsEveryParameter) {
  const std::string text = TuneTable::Get().Describe();
  for (const TuneParamInfo& param : TuneParams()) {
    EXPECT_NE(text.find(param.name), std::string::npos) << param.name;
  }
}

}  // namespace
}  // namespace largeea::tune
