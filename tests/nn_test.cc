// Tests for src/nn: batch graphs, Adam, loss gradients (numeric check),
// aggregation, and end-to-end model training behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/gen/benchmark_gen.h"
#include "src/la/ops.h"
#include "src/nn/adam.h"
#include "src/nn/aggregation.h"
#include "src/nn/batch_graph.h"
#include "src/nn/ea_model.h"
#include "src/nn/gcn_align.h"
#include "src/nn/loss.h"
#include "src/nn/negative_sampler.h"
#include "src/nn/rrea.h"

namespace largeea {
namespace {

KnowledgeGraph ChainKg(int32_t n) {
  KnowledgeGraph kg;
  for (int32_t i = 0; i < n; ++i) {
    kg.AddEntity("e" + std::to_string(i));
  }
  const RelationId r = kg.AddRelation("r");
  for (int32_t i = 0; i + 1 < n; ++i) kg.AddTriple(i, r, i + 1);
  kg.BuildAdjacency();
  return kg;
}

TEST(BatchGraphTest, RestrictsAndReindexes) {
  const KnowledgeGraph kg = ChainKg(6);
  const std::vector<EntityId> batch{1, 2, 3, 5};
  const LocalGraph local = BuildLocalGraph(kg, batch);
  EXPECT_EQ(local.num_vertices(), 4);
  // Edges 1-2 and 2-3 survive; 0-1, 3-4, 4-5 are cut.
  ASSERT_EQ(local.edges.size(), 2u);
  EXPECT_EQ(local.degree[0], 1);  // entity 1
  EXPECT_EQ(local.degree[1], 2);  // entity 2
  EXPECT_EQ(local.degree[3], 0);  // entity 5 isolated in this batch
  EXPECT_EQ(local.global_ids[2], 3);
}

TEST(BatchGraphTest, LocalizeSeedsDropsOutOfBatch) {
  const KnowledgeGraph kg = ChainKg(6);
  const LocalGraph source = BuildLocalGraph(kg, std::vector<EntityId>{0, 1});
  const LocalGraph target =
      BuildLocalGraph(kg, std::vector<EntityId>{2, 3, 4});
  const auto local = LocalizeSeeds(
      source, target, EntityPairList{{0, 2}, {1, 5}, {3, 3}});
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].first, 0);   // entity 0 -> local 0
  EXPECT_EQ(local[0].second, 0);  // entity 2 -> local 0
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise f(x) = ||x - target||^2 with Adam.
  Matrix x(1, 4);
  Matrix target(1, 4);
  for (int i = 0; i < 4; ++i) target.At(0, i) = static_cast<float>(i) - 1.5f;
  AdamState adam(1, 4, AdamOptions{.learning_rate = 0.05f});
  Matrix grad(1, 4);
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) {
      grad.At(0, i) = 2.0f * (x.At(0, i) - target.At(0, i));
    }
    adam.Step(x, grad);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.At(0, i), target.At(0, i), 0.01f);
  }
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(AggregationTest, MatchesManualComputation) {
  // Path graph 0-1-2 with self loops; degrees (1, 2, 1).
  LocalGraph graph;
  graph.global_ids = {0, 1, 2};
  graph.num_relations = 1;
  graph.edges = {LocalEdge{0, 0, 1}, LocalEdge{1, 0, 2}};
  graph.degree = {1, 2, 1};
  const NormalizedAdjacency adjacency(graph);
  Matrix in(3, 1);
  in.At(0, 0) = 1.0f;
  in.At(1, 0) = 2.0f;
  in.At(2, 0) = 4.0f;
  Matrix out(3, 1);
  adjacency.Apply(in, out);
  const float c01 = 1.0f / std::sqrt(2.0f * 3.0f);
  const float c12 = 1.0f / std::sqrt(3.0f * 2.0f);
  EXPECT_NEAR(out.At(0, 0), 1.0f / 2.0f + c01 * 2.0f, 1e-5f);
  EXPECT_NEAR(out.At(1, 0), 2.0f / 3.0f + c01 * 1.0f + c12 * 4.0f, 1e-5f);
  EXPECT_NEAR(out.At(2, 0), 4.0f / 2.0f + c12 * 2.0f, 1e-5f);
}

TEST(NegativeSamplerTest, RandomNegativesExcludeTruth) {
  Rng rng(3);
  const std::vector<std::pair<int32_t, int32_t>> seeds{{0, 0}, {1, 1}};
  const NegativeSamples samples =
      SampleRandomNegatives(seeds, 10, 10, 8, rng);
  ASSERT_EQ(samples.target_negatives.size(), 2u);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(samples.target_negatives[i].size(), 8u);
    for (const int32_t t : samples.target_negatives[i]) {
      EXPECT_NE(t, seeds[i].second);
      EXPECT_GE(t, 0);
      EXPECT_LT(t, 10);
    }
    for (const int32_t s : samples.source_negatives[i]) {
      EXPECT_NE(s, seeds[i].first);
    }
  }
}

TEST(NegativeSamplerTest, NearestNegativesAreHard) {
  Rng rng(5);
  // Embeddings on a line; the hardest negatives for seed (0, 0) are the
  // targets closest to source 0.
  Matrix src(4, 1), tgt(8, 1);
  src.At(0, 0) = 0.0f;
  for (int i = 0; i < 8; ++i) tgt.At(i, 0) = static_cast<float>(i);
  const std::vector<std::pair<int32_t, int32_t>> seeds{{0, 0}};
  const NegativeSamples samples =
      SampleNearestNegatives(seeds, src, tgt, 2, 64, rng);
  for (const int32_t t : samples.target_negatives[0]) {
    EXPECT_NE(t, 0);
    EXPECT_LE(t, 3);  // among the closest non-true targets
  }
}

// Numerically checks MarginLossAndGrad's gradients with central
// differences. L1 and the hinge are only piecewise-differentiable, so the
// random embeddings are chosen to keep all coordinates and margins away
// from the kinks.
TEST(LossTest, GradientMatchesFiniteDifferences) {
  Rng rng(7);
  const int32_t dim = 6;
  Matrix zs(4, dim), zt(5, dim);
  zs.GaussianInit(rng, 1.0f);
  zt.GaussianInit(rng, 1.0f);
  const std::vector<std::pair<int32_t, int32_t>> seeds{{0, 1}, {2, 3}};
  NegativeSamples negatives;
  negatives.target_negatives = {{0, 2}, {4}};
  negatives.source_negatives = {{3}, {1}};
  const float margin = 1.0f;

  Matrix ds(4, dim), dt(5, dim);
  const MarginLossResult base =
      MarginLossAndGrad(zs, zt, seeds, negatives, margin, ds, dt);
  ASSERT_GT(base.active_triplets, 0);

  const float eps = 1e-3f;
  auto loss_at = [&](Matrix& m) {
    Matrix tmp_s(4, dim), tmp_t(5, dim);
    (void)m;
    return MarginLossAndGrad(zs, zt, seeds, negatives, margin, tmp_s, tmp_t)
        .loss;
  };
  int checked = 0;
  for (int64_t i = 0; i < zs.size(); ++i) {
    const float saved = zs.data()[i];
    zs.data()[i] = saved + eps;
    const double up = loss_at(zs);
    zs.data()[i] = saved - eps;
    const double down = loss_at(zs);
    zs.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    // Skip coordinates near a kink (numeric estimate unreliable there).
    if (std::fabs(numeric - ds.data()[i]) < 1e-2) ++checked;
  }
  // The vast majority of coordinates must match.
  EXPECT_GT(checked, static_cast<int>(0.9 * zs.size()));

  checked = 0;
  for (int64_t i = 0; i < zt.size(); ++i) {
    const float saved = zt.data()[i];
    zt.data()[i] = saved + eps;
    const double up = loss_at(zt);
    zt.data()[i] = saved - eps;
    const double down = loss_at(zt);
    zt.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    if (std::fabs(numeric - dt.data()[i]) < 1e-2) ++checked;
  }
  EXPECT_GT(checked, static_cast<int>(0.9 * zt.size()));
}

TEST(LossTest, ZeroWhenNegativesFarAway) {
  const int32_t dim = 2;
  Matrix zs(1, dim), zt(2, dim);
  // Positive pair identical; negative extremely far: hinge inactive.
  zt.At(1, 0) = 100.0f;
  zt.At(1, 1) = 100.0f;
  const std::vector<std::pair<int32_t, int32_t>> seeds{{0, 0}};
  NegativeSamples negatives;
  negatives.target_negatives = {{1}};
  negatives.source_negatives = {{}};
  Matrix ds(1, dim), dt(2, dim);
  const MarginLossResult result =
      MarginLossAndGrad(zs, zt, seeds, negatives, 1.0f, ds, dt);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  EXPECT_EQ(result.active_triplets, 0);
  EXPECT_FLOAT_EQ(FrobeniusNorm(ds), 0.0f);
}

// Builds a pair of nearly-isomorphic KGs with aligned entity ids and
// checks a model learns to align the held-out entities.
class ModelTrainingTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  static EaDataset MakeDataset() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 400;
    return GenerateBenchmark(spec);
  }
};

TEST_P(ModelTrainingTest, LearnsAlignmentAboveChance) {
  const EaDataset ds = MakeDataset();
  std::vector<EntityId> all_source(ds.source.num_entities());
  std::iota(all_source.begin(), all_source.end(), 0);
  std::vector<EntityId> all_target(ds.target.num_entities());
  std::iota(all_target.begin(), all_target.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_source);
  const LocalGraph target = BuildLocalGraph(ds.target, all_target);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);

  TrainOptions options;
  options.epochs = 120;
  const std::unique_ptr<EaModel> model = MakeModel(GetParam());
  const TrainedEmbeddings trained =
      model->Train(source, target, seeds, options);

  ASSERT_EQ(trained.source.rows(), ds.source.num_entities());
  ASSERT_EQ(trained.target.rows(), ds.target.num_entities());
  // Count test pairs whose true counterpart is the nearest target.
  int64_t hits = 0;
  for (const EntityPair& p : ds.split.test) {
    float best = -1e30f;
    EntityId best_t = kInvalidEntity;
    for (EntityId t = 0; t < ds.target.num_entities(); ++t) {
      const float sim = ManhattanSimilarity(
          ManhattanDistance(trained.source.Row(p.source),
                            trained.target.Row(t), trained.source.cols()));
      if (sim > best) {
        best = sim;
        best_t = t;
      }
    }
    if (best_t == p.target) ++hits;
  }
  const double h1 = static_cast<double>(hits) / ds.split.test.size();
  // Chance is 1/400; structural training must be far above it. The GNN
  // families align strongly; pure translational embeddings are known to
  // be much weaker at EA (Sun et al.'s benchmark study, the paper's
  // ref [37]), so TransE gets a correspondingly lower bar.
  const double bar = GetParam() == ModelKind::kTransE ? 0.008 : 0.15;
  EXPECT_GT(h1, bar) << ModelKindName(GetParam());
}

TEST_P(ModelTrainingTest, DeterministicInSeed) {
  const EaDataset ds = MakeDataset();
  std::vector<EntityId> all_source(ds.source.num_entities());
  std::iota(all_source.begin(), all_source.end(), 0);
  std::vector<EntityId> all_target(ds.target.num_entities());
  std::iota(all_target.begin(), all_target.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_source);
  const LocalGraph target = BuildLocalGraph(ds.target, all_target);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);
  TrainOptions options;
  options.epochs = 5;
  options.seed = 123;
  const std::unique_ptr<EaModel> model = MakeModel(GetParam());
  const TrainedEmbeddings a = model->Train(source, target, seeds, options);
  const TrainedEmbeddings b = model->Train(source, target, seeds, options);
  for (int64_t i = 0; i < a.source.size(); ++i) {
    ASSERT_FLOAT_EQ(a.source.data()[i], b.source.data()[i]);
  }
}

TEST_P(ModelTrainingTest, OutputsAreNormalised) {
  const EaDataset ds = MakeDataset();
  std::vector<EntityId> all_source(ds.source.num_entities());
  std::iota(all_source.begin(), all_source.end(), 0);
  std::vector<EntityId> all_target(ds.target.num_entities());
  std::iota(all_target.begin(), all_target.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_source);
  const LocalGraph target = BuildLocalGraph(ds.target, all_target);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);
  TrainOptions options;
  options.epochs = 3;
  const std::unique_ptr<EaModel> model = MakeModel(GetParam());
  const TrainedEmbeddings trained =
      model->Train(source, target, seeds, options);
  for (int64_t r = 0; r < trained.source.rows(); ++r) {
    const float n = Norm2(trained.source.Row(r), trained.source.cols());
    EXPECT_NEAR(n, 1.0f, 1e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ModelTrainingTest,
                         ::testing::Values(ModelKind::kGcnAlign,
                                           ModelKind::kRrea,
                                           ModelKind::kTransE));

TEST(ModelFactoryTest, NamesAndKinds) {
  EXPECT_STREQ(MakeModel(ModelKind::kGcnAlign)->name(), "GCN-Align");
  EXPECT_STREQ(MakeModel(ModelKind::kRrea)->name(), "RREA");
  EXPECT_STREQ(MakeModel(ModelKind::kTransE)->name(), "TransE");
  EXPECT_STREQ(ModelKindName(ModelKind::kRrea), "RREA");
  EXPECT_STREQ(ModelKindName(ModelKind::kTransE), "TransE");
}

TEST(ModelInitTest, NameInitChangesResult) {
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities = 200;
  const EaDataset ds = GenerateBenchmark(spec);
  std::vector<EntityId> all_source(ds.source.num_entities());
  std::iota(all_source.begin(), all_source.end(), 0);
  std::vector<EntityId> all_target(ds.target.num_entities());
  std::iota(all_target.begin(), all_target.end(), 0);
  const LocalGraph source = BuildLocalGraph(ds.source, all_source);
  const LocalGraph target = BuildLocalGraph(ds.target, all_target);
  const auto seeds = LocalizeSeeds(source, target, ds.split.train);

  TrainOptions plain;
  plain.epochs = 3;
  Matrix init_s(ds.source.num_entities(), plain.dim);
  Matrix init_t(ds.target.num_entities(), plain.dim);
  Rng rng(77);
  init_s.GaussianInit(rng, 0.1f);
  init_t.GaussianInit(rng, 0.1f);
  TrainOptions with_init = plain;
  with_init.source_init = &init_s;
  with_init.target_init = &init_t;

  GcnAlignModel model;
  const TrainedEmbeddings a = model.Train(source, target, seeds, plain);
  const TrainedEmbeddings b = model.Train(source, target, seeds, with_init);
  bool any_diff = false;
  for (int64_t i = 0; i < a.source.size() && !any_diff; ++i) {
    any_diff = std::fabs(a.source.data()[i] - b.source.data()[i]) > 1e-6f;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace largeea
