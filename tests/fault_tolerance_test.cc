// Crash/resume and graceful-degradation tests for the fault-tolerant
// pipeline runtime (src/rt/ + the checkpoint wiring in the channels).
//
// The core property (DESIGN.md §7): for every registered fault point, an
// injected failure either (a) fails the run cleanly and a --resume run
// reproduces the uninterrupted result bit-identically, or (b) degrades
// gracefully with the damage counted and visible — never a crash, never a
// silently wrong answer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/par/thread_pool.h"
#include "src/rt/fault_injection.h"

namespace largeea {
namespace {

#if LARGEEA_FAULT_INJECTION

namespace fs = std::filesystem;

void ExpectBitIdentical(const LargeEaResult& a, const LargeEaResult& b) {
  ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
  ASSERT_EQ(a.fused.num_cols(), b.fused.num_cols());
  for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
    const auto ra = a.fused.Row(r);
    const auto rb = b.fused.Row(r);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column) << "row " << r;
      // Bit-exact float equality, deliberately not EXPECT_FLOAT_EQ: a
      // resumed run must be indistinguishable from an uninterrupted one.
      EXPECT_EQ(ra[i].score, rb[i].score) << "row " << r;
    }
  }
  EXPECT_EQ(a.effective_seeds, b.effective_seeds);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
  EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

  void SetUp() override {
    rt::FaultInjector::Get().Reset();
    // Which batch absorbs the Nth structure.batch.train hit depends on
    // scheduling once batches train concurrently, so the crash matrix
    // pins the pool to one thread (the tsan preset otherwise forces
    // LARGEEA_THREADS=4). Thread-count invariance of the *results* is
    // covered by par_determinism_test.cc.
    saved_threads_ = par::ThreadPool::Get().num_threads();
    par::ThreadPool::Get().SetNumThreads(1);
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
    rt::FaultInjector::Get().Reset();
    fs::remove_all(dir_);
  }

  /// Pipeline options shaped for the crash matrix: small and fast, no
  /// retries (a failing batch fails the run, like a real crash), no
  /// backoff sleeps.
  static LargeEaOptions Options() {
    LargeEaOptions options;
    options.structure_channel.num_batches = 3;
    options.structure_channel.train.epochs = 10;
    options.structure_channel.max_batch_retries = 0;
    options.structure_channel.retry_backoff_ms = 0;
    options.structure_channel.drop_failed_batches = false;
    return options;
  }

  std::string CheckpointDir(const std::string& name) {
    dir_ = (fs::temp_directory_path() / ("largeea_ft_" + name)).string();
    fs::remove_all(dir_);
    return dir_;
  }

  std::string dir_;
  int32_t saved_threads_ = 1;

 private:
  static const EaDataset* dataset_;
};

const EaDataset* FaultToleranceTest::dataset_ = nullptr;

TEST_F(FaultToleranceTest, CrashResumeMatrixIsBitIdentical) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  // One crash site per pipeline seam; structure.batch.train is exercised
  // at every batch boundary (hit = batch index + 1).
  struct CrashCase {
    const char* point;
    int32_t trigger_on_hit;
  };
  const CrashCase cases[] = {
      {"name.features", 1},
      {"name.augmentation", 1},
      {"partition.metis_cps", 1},
      {"structure.batch.train", 1},
      {"structure.batch.train", 2},
      {"structure.batch.train", 3},
      {"structure.csls", 1},
      {"pipeline.fusion", 1},
      {"pipeline.evaluate", 1},
  };
  auto& injector = rt::FaultInjector::Get();
  for (const CrashCase& c : cases) {
    SCOPED_TRACE(std::string(c.point) + " @hit " +
                 std::to_string(c.trigger_on_hit));
    LargeEaOptions options = Options();
    options.fault_tolerance.checkpoint_dir =
        CheckpointDir(std::string("crash_") + c.point + "_" +
                      std::to_string(c.trigger_on_hit));

    // Run 1: the "crash". The injected kAborted must surface as a clean
    // contextful error, never a crash or a wrong answer.
    rt::FaultSpec spec;
    spec.code = StatusCode::kAborted;
    spec.message = "simulated crash";
    spec.trigger_on_hit = c.trigger_on_hit;
    injector.Arm(c.point, spec);
    const auto crashed = RunLargeEa(dataset(), options);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
    EXPECT_NE(crashed.status().message().find("simulated crash"),
              std::string::npos);
    injector.Disarm(c.point);

    // Run 2: resume from whatever the crashed run managed to persist.
    options.fault_tolerance.resume = true;
    const auto resumed = RunLargeEa(dataset(), options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectBitIdentical(baseline, *resumed);
    fs::remove_all(dir_);
  }

  // Coverage guard: every fault point the pipeline actually hits must be
  // in the matrix above (or covered by the dedicated tests below), so a
  // new seam cannot be added without a crash/resume story.
  const std::set<std::string> covered = {
      "name.features",    "name.augmentation", "partition.metis_cps",
      "structure.batch.train", "structure.csls", "pipeline.fusion",
      "pipeline.evaluate",
      "checkpoint.write",  // best-effort by contract, tested below
  };
  for (const std::string& seen : injector.SeenPoints()) {
    EXPECT_TRUE(covered.contains(seen))
        << "fault point '" << seen << "' has no crash/resume test";
  }
}

TEST_F(FaultToleranceTest, ResumeAfterBatchCrashReplaysOnlyMissingBatches) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("partial");

  rt::FaultSpec spec;
  spec.code = StatusCode::kAborted;
  spec.trigger_on_hit = 3;  // batches 0 and 1 complete, batch 2 dies
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  ASSERT_FALSE(RunLargeEa(dataset(), options).ok());
  rt::FaultInjector::Get().Disarm("structure.batch.train");

  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Two blocks came from checkpoints, only the in-flight one retrained.
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 2);
  EXPECT_TRUE(resumed->name_channel.resumed);
}

TEST_F(FaultToleranceTest, CorruptCheckpointIsRecomputedNotTrusted) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("corrupt");
  ASSERT_TRUE(RunLargeEa(dataset(), options).ok());

  // Flip bytes in one batch checkpoint; resume must detect DATA_LOSS,
  // retrain that batch, and still match the baseline bit-for-bit.
  const std::string victim = dir_ + "/batch_0001.ckpt";
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdentical(baseline, *resumed);
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 2);
}

TEST_F(FaultToleranceTest, StaleFingerprintInvalidatesCheckpoints) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("stale");
  ASSERT_TRUE(RunLargeEa(dataset(), options).ok());

  // Same directory, different result-affecting configuration: artifacts
  // must be ignored (recomputed), not silently reused.
  LargeEaOptions changed = options;
  changed.structure_channel.train.epochs = 12;
  changed.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), changed);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->name_channel.resumed);
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 0);

  LargeEaOptions fresh = changed;
  fresh.fault_tolerance = {};
  ExpectBitIdentical(RunLargeEa(dataset(), fresh).value(), *resumed);
}

TEST_F(FaultToleranceTest, FailedBatchIsDroppedAndCounted) {
  LargeEaOptions options = Options();
  options.structure_channel.max_batch_retries = 2;
  options.structure_channel.drop_failed_batches = true;

  // Batch 1 fails its first attempt and both retries; batches 0 and 2
  // are untouched.
  rt::FaultSpec spec;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 3;
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  const auto degraded = RunLargeEa(dataset(), options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->structure_channel.batches_dropped, 1);
  EXPECT_EQ(degraded->structure_channel.batches_retried, 2);

  // The dropped batch's structural similarity block is zero — visible
  // damage, not a silently wrong answer.
  const MiniBatch& dropped = degraded->structure_channel.batches[1];
  for (const EntityId e : dropped.source_entities) {
    EXPECT_TRUE(degraded->structure_channel.similarity.Row(e).empty());
  }
  // The run is still a valid (degraded) alignment.
  EXPECT_GT(degraded->metrics.hits_at_1, 0.0);
}

TEST_F(FaultToleranceTest, RetryRecoversFromTransientFault) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.structure_channel.max_batch_retries = 2;
  options.structure_channel.drop_failed_batches = true;

  // Fails once, then the retry succeeds — a transient fault costs one
  // retry and changes nothing about the result.
  rt::FaultSpec spec;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 1;
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  const auto recovered = RunLargeEa(dataset(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->structure_channel.batches_dropped, 0);
  EXPECT_EQ(recovered->structure_channel.batches_retried, 1);
  ExpectBitIdentical(baseline, *recovered);
}

TEST_F(FaultToleranceTest, CheckpointWriteFailuresNeverFailTheRun) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("wfail");
  rt::FaultSpec spec;
  spec.max_triggers = -1;  // every checkpoint write fails
  rt::FaultInjector::Get().Arm("checkpoint.write", spec);
  const auto result = RunLargeEa(dataset(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(baseline, *result);
  rt::FaultInjector::Get().Disarm("checkpoint.write");

  // Nothing was persisted, so a resume recomputes everything — and still
  // matches.
  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 0);
  ExpectBitIdentical(baseline, *resumed);
}

TEST_F(FaultToleranceTest, ResumeOfCompletedRunIsInstantAndIdentical) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("complete");
  const LargeEaResult first = RunLargeEa(dataset(), options).value();

  options.fault_tolerance.resume = true;
  const auto second = RunLargeEa(dataset(), options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->name_channel.resumed);
  EXPECT_EQ(second->structure_channel.batches_resumed, 3);
  ExpectBitIdentical(first, *second);
}

#else  // !LARGEEA_FAULT_INJECTION

TEST(FaultToleranceTest, DisabledBuildStillCompilesThePipeline) {
  // Fault injection is compiled out (-DLARGEEA_FAULT_INJECTION=OFF);
  // the crash matrix needs the injector, so there is nothing to run.
  GTEST_SKIP() << "built without LARGEEA_FAULT_INJECTION";
}

#endif  // LARGEEA_FAULT_INJECTION

}  // namespace
}  // namespace largeea
