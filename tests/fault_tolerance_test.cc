// Crash/resume and graceful-degradation tests for the fault-tolerant
// pipeline runtime (src/rt/ + the checkpoint wiring in the channels).
//
// The core property (DESIGN.md §7): for every registered fault point, an
// injected failure either (a) fails the run cleanly and a --resume run
// reproduces the uninterrupted result bit-identically, or (b) degrades
// gracefully with the damage counted and visible — never a crash, never a
// silently wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/config.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/kg/dataset.h"
#include "src/kg/kg_io.h"
#include "src/par/thread_pool.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"
#include "src/shard/orchestrator.h"
#include "src/shard/subprocess.h"

namespace largeea {
namespace {

#if LARGEEA_FAULT_INJECTION

namespace fs = std::filesystem;

void ExpectBitIdentical(const LargeEaResult& a, const LargeEaResult& b) {
  ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
  ASSERT_EQ(a.fused.num_cols(), b.fused.num_cols());
  for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
    const auto ra = a.fused.Row(r);
    const auto rb = b.fused.Row(r);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column) << "row " << r;
      // Bit-exact float equality, deliberately not EXPECT_FLOAT_EQ: a
      // resumed run must be indistinguishable from an uninterrupted one.
      EXPECT_EQ(ra[i].score, rb[i].score) << "row " << r;
    }
  }
  EXPECT_EQ(a.effective_seeds, b.effective_seeds);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
  EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

  void SetUp() override {
    rt::FaultInjector::Get().Reset();
    // Which batch absorbs the Nth structure.batch.train hit depends on
    // scheduling once batches train concurrently, so the crash matrix
    // pins the pool to one thread (the tsan preset otherwise forces
    // LARGEEA_THREADS=4). Thread-count invariance of the *results* is
    // covered by par_determinism_test.cc.
    saved_threads_ = par::ThreadPool::Get().num_threads();
    par::ThreadPool::Get().SetNumThreads(1);
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
    rt::FaultInjector::Get().Reset();
    fs::remove_all(dir_);
  }

  /// Pipeline options shaped for the crash matrix: small and fast, no
  /// retries (a failing batch fails the run, like a real crash), no
  /// backoff sleeps.
  static LargeEaOptions Options() {
    LargeEaOptions options;
    options.structure_channel.num_batches = 3;
    options.structure_channel.train.epochs = 10;
    options.structure_channel.max_batch_retries = 0;
    options.structure_channel.retry_backoff_ms = 0;
    options.structure_channel.drop_failed_batches = false;
    return options;
  }

  std::string CheckpointDir(const std::string& name) {
    dir_ = (fs::temp_directory_path() / ("largeea_ft_" + name)).string();
    fs::remove_all(dir_);
    return dir_;
  }

  std::string dir_;
  int32_t saved_threads_ = 1;

 private:
  static const EaDataset* dataset_;
};

const EaDataset* FaultToleranceTest::dataset_ = nullptr;

TEST_F(FaultToleranceTest, CrashResumeMatrixIsBitIdentical) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  // One crash site per pipeline seam; structure.batch.train is exercised
  // at every batch boundary (hit = batch index + 1).
  struct CrashCase {
    const char* point;
    int32_t trigger_on_hit;
  };
  const CrashCase cases[] = {
      {"name.features", 1},
      {"name.augmentation", 1},
      {"partition.metis_cps", 1},
      {"structure.batch.train", 1},
      {"structure.batch.train", 2},
      {"structure.batch.train", 3},
      {"structure.csls", 1},
      {"pipeline.fusion", 1},
      {"pipeline.evaluate", 1},
  };
  auto& injector = rt::FaultInjector::Get();
  for (const CrashCase& c : cases) {
    SCOPED_TRACE(std::string(c.point) + " @hit " +
                 std::to_string(c.trigger_on_hit));
    LargeEaOptions options = Options();
    options.fault_tolerance.checkpoint_dir =
        CheckpointDir(std::string("crash_") + c.point + "_" +
                      std::to_string(c.trigger_on_hit));

    // Run 1: the "crash". The injected kAborted must surface as a clean
    // contextful error, never a crash or a wrong answer.
    rt::FaultSpec spec;
    spec.code = StatusCode::kAborted;
    spec.message = "simulated crash";
    spec.trigger_on_hit = c.trigger_on_hit;
    injector.Arm(c.point, spec);
    const auto crashed = RunLargeEa(dataset(), options);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
    EXPECT_NE(crashed.status().message().find("simulated crash"),
              std::string::npos);
    injector.Disarm(c.point);

    // Run 2: resume from whatever the crashed run managed to persist.
    options.fault_tolerance.resume = true;
    const auto resumed = RunLargeEa(dataset(), options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectBitIdentical(baseline, *resumed);
    fs::remove_all(dir_);
  }

  // Coverage guard: every fault point the pipeline actually hits must be
  // in the matrix above (or covered by the dedicated tests below), so a
  // new seam cannot be added without a crash/resume story.
  const std::set<std::string> covered = {
      "name.features",    "name.augmentation", "partition.metis_cps",
      "structure.batch.train", "structure.csls", "pipeline.fusion",
      "pipeline.evaluate",
      "checkpoint.write",  // best-effort by contract, tested below
  };
  for (const std::string& seen : injector.SeenPoints()) {
    EXPECT_TRUE(covered.contains(seen))
        << "fault point '" << seen << "' has no crash/resume test";
  }
}

TEST_F(FaultToleranceTest, ResumeAfterBatchCrashReplaysOnlyMissingBatches) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("partial");

  rt::FaultSpec spec;
  spec.code = StatusCode::kAborted;
  spec.trigger_on_hit = 3;  // batches 0 and 1 complete, batch 2 dies
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  ASSERT_FALSE(RunLargeEa(dataset(), options).ok());
  rt::FaultInjector::Get().Disarm("structure.batch.train");

  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Two blocks came from checkpoints, only the in-flight one retrained.
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 2);
  EXPECT_TRUE(resumed->name_channel.resumed);
}

TEST_F(FaultToleranceTest, CorruptCheckpointIsRecomputedNotTrusted) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("corrupt");
  ASSERT_TRUE(RunLargeEa(dataset(), options).ok());

  // Flip bytes in one batch checkpoint; resume must detect DATA_LOSS,
  // retrain that batch, and still match the baseline bit-for-bit.
  const std::string victim = dir_ + "/batch_0001.ckpt";
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdentical(baseline, *resumed);
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 2);
}

TEST_F(FaultToleranceTest, StaleFingerprintInvalidatesCheckpoints) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("stale");
  ASSERT_TRUE(RunLargeEa(dataset(), options).ok());

  // Same directory, different result-affecting configuration: stale
  // artifacts must be recomputed, not silently reused. With per-node
  // fingerprints (DESIGN.md §14) only the dirty subgraph re-executes:
  // a changed epoch count invalidates the batch and fused artifacts but
  // the name channel — upstream of the edit — still resumes.
  LargeEaOptions changed = options;
  changed.structure_channel.train.epochs = 12;
  changed.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), changed);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->name_channel.resumed);
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 0);

  LargeEaOptions fresh = changed;
  fresh.fault_tolerance = {};
  ExpectBitIdentical(RunLargeEa(dataset(), fresh).value(), *resumed);
}

TEST_F(FaultToleranceTest, FailedBatchIsDroppedAndCounted) {
  LargeEaOptions options = Options();
  options.structure_channel.max_batch_retries = 2;
  options.structure_channel.drop_failed_batches = true;

  // Batch 1 fails its first attempt and both retries; batches 0 and 2
  // are untouched.
  rt::FaultSpec spec;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 3;
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  const auto degraded = RunLargeEa(dataset(), options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->structure_channel.batches_dropped, 1);
  EXPECT_EQ(degraded->structure_channel.batches_retried, 2);

  // The dropped batch's structural similarity block is zero — visible
  // damage, not a silently wrong answer.
  const MiniBatch& dropped = degraded->structure_channel.batches[1];
  for (const EntityId e : dropped.source_entities) {
    EXPECT_TRUE(degraded->structure_channel.similarity.Row(e).empty());
  }
  // The run is still a valid (degraded) alignment.
  EXPECT_GT(degraded->metrics.hits_at_1, 0.0);
}

TEST_F(FaultToleranceTest, RetryRecoversFromTransientFault) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.structure_channel.max_batch_retries = 2;
  options.structure_channel.drop_failed_batches = true;

  // Fails once, then the retry succeeds — a transient fault costs one
  // retry and changes nothing about the result.
  rt::FaultSpec spec;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 1;
  rt::FaultInjector::Get().Arm("structure.batch.train", spec);
  const auto recovered = RunLargeEa(dataset(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->structure_channel.batches_dropped, 0);
  EXPECT_EQ(recovered->structure_channel.batches_retried, 1);
  ExpectBitIdentical(baseline, *recovered);
}

TEST_F(FaultToleranceTest, CheckpointWriteFailuresNeverFailTheRun) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), Options()).value();

  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("wfail");
  rt::FaultSpec spec;
  spec.max_triggers = -1;  // every checkpoint write fails
  rt::FaultInjector::Get().Arm("checkpoint.write", spec);
  const auto result = RunLargeEa(dataset(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(baseline, *result);
  rt::FaultInjector::Get().Disarm("checkpoint.write");

  // Nothing was persisted, so a resume recomputes everything — and still
  // matches.
  options.fault_tolerance.resume = true;
  const auto resumed = RunLargeEa(dataset(), options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 0);
  ExpectBitIdentical(baseline, *resumed);
}

TEST_F(FaultToleranceTest, ResumeOfCompletedRunIsInstantAndIdentical) {
  LargeEaOptions options = Options();
  options.fault_tolerance.checkpoint_dir = CheckpointDir("complete");
  const LargeEaResult first = RunLargeEa(dataset(), options).value();

  options.fault_tolerance.resume = true;
  const auto second = RunLargeEa(dataset(), options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->name_channel.resumed);
  EXPECT_EQ(second->structure_channel.batches_resumed, 3);
  ExpectBitIdentical(first, *second);
}

// ---------------------------------------------------------------------------
// Multi-process shard chaos matrix (DESIGN.md §12). Real largeea_cli
// worker subprocesses are SIGKILLed mid-phase, frozen with SIGSTOP,
// denied checkpoint writes, and fed corrupt artifacts; every scenario
// must end in a bit-identical fused matrix or an explicitly counted
// degradation — never a hang, never a silently wrong answer. Worker
// failure schedules travel via LARGEEA_FAULTS / LARGEEA_FAULTS_SHARD in
// the spawned environment, so the test process's own injector state
// never leaks into the children.
// ---------------------------------------------------------------------------

#ifdef LARGEEA_CLI_BIN

class ShardChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Generate once, write to TSV, and load BACK from TSV: the
    // orchestrator (in-process) and the workers (subprocesses reading
    // the same files) must see an identical dataset, or the config
    // fingerprints diverge and every artifact is rejected.
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    const EaDataset generated = GenerateBenchmark(spec);
    tsv_dir_ = new std::string(
        (fs::temp_directory_path() / "largeea_shard_chaos_data").string());
    fs::remove_all(*tsv_dir_);
    fs::create_directories(*tsv_dir_);
    ASSERT_TRUE(
        SaveTriples(generated.source, *tsv_dir_ + "/source.tsv").ok());
    ASSERT_TRUE(
        SaveTriples(generated.target, *tsv_dir_ + "/target.tsv").ok());
    ASSERT_TRUE(SaveAlignment(generated.split.train, generated.source,
                              generated.target, *tsv_dir_ + "/train.tsv")
                    .ok());
    ASSERT_TRUE(SaveAlignment(generated.split.test, generated.source,
                              generated.target, *tsv_dir_ + "/test.tsv")
                    .ok());
    EaDatasetPaths paths;
    paths.source_triples = *tsv_dir_ + "/source.tsv";
    paths.target_triples = *tsv_dir_ + "/target.tsv";
    paths.train_pairs = *tsv_dir_ + "/train.tsv";
    paths.test_pairs = *tsv_dir_ + "/test.tsv";
    auto loaded = LoadEaDataset(paths, {}, "chaos");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    dataset_ = new EaDataset(std::move(loaded).value());
  }
  static void TearDownTestSuite() {
    fs::remove_all(*tsv_dir_);
    delete tsv_dir_;
    tsv_dir_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

  void SetUp() override {
    rt::FaultInjector::Get().Reset();
    saved_threads_ = par::ThreadPool::Get().num_threads();
    par::ThreadPool::Get().SetNumThreads(1);
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
    rt::FaultInjector::Get().Reset();
    fs::remove_all(dir_);
  }

  /// One flag list drives BOTH sides: the in-process orchestrator's
  /// LargeEaOptions parse from it (OptionsFromArgs) and the workers
  /// receive it verbatim as their command line — so the two cannot
  /// disagree on anything that enters the config fingerprint.
  /// --threads=1 keeps per-worker batch training sequential, which makes
  /// "the Nth structure.batch.train hit" a deterministic batch index.
  static std::vector<std::string> AlignArgs(const std::string& ckpt_dir) {
    return {"run",
            "--source=" + *tsv_dir_ + "/source.tsv",
            "--target=" + *tsv_dir_ + "/target.tsv",
            "--seeds=" + *tsv_dir_ + "/train.tsv",
            "--test=" + *tsv_dir_ + "/test.tsv",
            "--batches=3",
            "--epochs=10",
            "--threads=1",
            "--log-level=warn",
            "--checkpoint-dir=" + ckpt_dir};
  }

  static LargeEaOptions OptionsFromArgs(std::vector<std::string> args) {
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (std::string& a : args) argv.push_back(a.data());
    const Flags flags(static_cast<int>(argv.size()), argv.data());
    auto config = ConfigFromFlags(flags);
    EXPECT_TRUE(config.ok()) << config.status().ToString();
    return config->pipeline;
  }

  shard::ShardOptions FastShardOptions(int32_t n,
                                       const std::string& ckpt_dir) {
    shard::ShardOptions s;
    s.num_shards = n;
    s.retry_backoff_ms = 10;
    s.heartbeat_interval_ms = 50;
    s.poll_interval_ms = 10;
    s.worker_command.push_back(LARGEEA_CLI_BIN);
    for (std::string& a : AlignArgs(ckpt_dir)) {
      s.worker_command.push_back(std::move(a));
    }
    return s;
  }

  std::string CheckpointDir(const std::string& name) {
    dir_ = (fs::temp_directory_path() / ("largeea_chaos_" + name)).string();
    fs::remove_all(dir_);
    return dir_;
  }

  std::string dir_;
  int32_t saved_threads_ = 1;

 private:
  static const EaDataset* dataset_;
  static std::string* tsv_dir_;
};

const EaDataset* ShardChaosTest::dataset_ = nullptr;
std::string* ShardChaosTest::tsv_dir_ = nullptr;

TEST_F(ShardChaosTest, ShardedRunIsBitIdenticalAtAnyShardCount) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();

  for (const int32_t n : {1, 2, 3}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    const std::string ckpt =
        CheckpointDir("identity_" + std::to_string(n));
    shard::ShardRunStats stats;
    const auto sharded = shard::RunShardedLargeEa(
        dataset(), OptionsFromArgs(AlignArgs(ckpt)),
        FastShardOptions(n, ckpt), &stats);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ExpectBitIdentical(baseline, *sharded);
    EXPECT_EQ(stats.workers_launched, n);
    EXPECT_EQ(stats.shards_degraded, 0);
    fs::remove_all(dir_);
  }
}

TEST_F(ShardChaosTest, MoreShardsThanBatchesSpawnsOnlyNonEmptyShards) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  const std::string ckpt = CheckpointDir("surplus");
  shard::ShardRunStats stats;
  const auto sharded = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)),
      FastShardOptions(5, ckpt), &stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(baseline, *sharded);
  EXPECT_EQ(stats.workers_launched, 3);  // 3 batches -> 2 empty shards
}

TEST_F(ShardChaosTest, ZeroShardsFallsBackToSingleProcess) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  shard::ShardRunStats stats;
  const auto plain = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs("")), shard::ShardOptions{},
      &stats);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ExpectBitIdentical(baseline, *plain);
  EXPECT_EQ(stats.workers_launched, 0);
}

TEST_F(ShardChaosTest, WorkerSigkilledMidTrainingIsRespawnedBitIdentically) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  const std::string ckpt = CheckpointDir("sigkill");

  // Two shards: worker 0 owns batches {0, 2}. Its 2nd batch-train hit
  // raises SIGKILL — batch 0's artifact is already on disk, so the
  // respawned attempt resumes it and only trains batch 2. The schedule
  // rides in the child environment; this process arms nothing.
  shard::ShardOptions sharding = FastShardOptions(2, ckpt);
  sharding.worker_env = {"LARGEEA_FAULTS=structure.batch.train@2=kill",
                         "LARGEEA_FAULTS_SHARD=0"};
  shard::ShardRunStats stats;
  const auto sharded = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)), sharding, &stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(baseline, *sharded);
  EXPECT_EQ(stats.workers_retried, 1);
  EXPECT_EQ(stats.workers_launched, 3);  // 2 initial + 1 respawn
  EXPECT_EQ(stats.shards_degraded, 0);
}

TEST_F(ShardChaosTest, ShardExhaustingRetriesDegradesToNameChannel) {
  const std::string ckpt = CheckpointDir("degrade");

  // Worker 1 is killed at startup on every attempt; with one retry it
  // exhausts and degrades. Its single batch must come back as a zero
  // block with the damage counted, while shards 0 and 2 are untouched.
  shard::ShardOptions sharding = FastShardOptions(3, ckpt);
  sharding.max_shard_retries = 1;
  sharding.worker_env = {"LARGEEA_FAULTS=shard.worker.start=kill",
                         "LARGEEA_FAULTS_SHARD=1"};
  shard::ShardRunStats stats;
  const auto degraded = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)), sharding, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(stats.shards_degraded, 1);
  EXPECT_EQ(stats.workers_launched, 4);  // 3 initial + 1 retry of shard 1
  EXPECT_EQ(degraded->structure_channel.batches_dropped, 1);
  const MiniBatch& dropped = degraded->structure_channel.batches[1];
  for (const EntityId e : dropped.source_entities) {
    EXPECT_TRUE(degraded->structure_channel.similarity.Row(e).empty());
  }
  // Still a valid (explicitly degraded) alignment, not a wrong one.
  EXPECT_GT(degraded->metrics.hits_at_1, 0.0);

  // With degradation disabled the same failure is a clean channel error.
  const std::string strict_ckpt = CheckpointDir("degrade_strict");
  shard::ShardOptions strict = FastShardOptions(3, strict_ckpt);
  strict.max_shard_retries = 0;
  strict.degrade_failed_shards = false;
  strict.worker_env = sharding.worker_env;
  const auto failed = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(strict_ckpt)), strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
}

TEST_F(ShardChaosTest, HungWorkerIsDetectedKilledAndRecovered) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  const std::string ckpt = CheckpointDir("hang");

  // Worker 2 freezes (SIGSTOP — every thread, heartbeat included) in
  // finalize, AFTER its batch artifact hit the disk. The monitor must
  // notice the stale heartbeat, SIGKILL it, and accept the shard from
  // its completed artifacts without a respawn. Bounded: a missed hang
  // here is a test timeout, which is exactly the bug it guards against.
  shard::ShardOptions sharding = FastShardOptions(3, ckpt);
  sharding.heartbeat_interval_ms = 50;
  sharding.heartbeat_timeout_ms = 1500;
  sharding.worker_env = {"LARGEEA_FAULTS=shard.worker.finalize=stop",
                         "LARGEEA_FAULTS_SHARD=2"};
  shard::ShardRunStats stats;
  const auto sharded = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)), sharding, &stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(baseline, *sharded);
  EXPECT_EQ(stats.workers_killed_hung, 1);
  EXPECT_EQ(stats.shards_degraded, 0);
}

TEST_F(ShardChaosTest, WorkerWithFailingCheckpointDiskDegrades) {
  const std::string ckpt = CheckpointDir("diskfull");

  // Every checkpoint write in worker 1 fails (scratch disk full).
  // Training itself succeeds — the worker must still refuse to report
  // success, because its artifacts never reached the shared disk.
  shard::ShardOptions sharding = FastShardOptions(3, ckpt);
  sharding.max_shard_retries = 0;
  sharding.worker_env = {"LARGEEA_FAULTS=checkpoint.write@1x-1=fail",
                         "LARGEEA_FAULTS_SHARD=1"};
  shard::ShardRunStats stats;
  const auto degraded = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)), sharding, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(stats.shards_degraded, 1);
  EXPECT_EQ(degraded->structure_channel.batches_dropped, 1);
  EXPECT_GT(degraded->metrics.hits_at_1, 0.0);
}

TEST_F(ShardChaosTest, CorruptShardArtifactIsRetrainedOnResume) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  const std::string ckpt = CheckpointDir("corrupt_shard");

  shard::ShardRunStats first_stats;
  ASSERT_TRUE(shard::RunShardedLargeEa(dataset(),
                                       OptionsFromArgs(AlignArgs(ckpt)),
                                       FastShardOptions(3, ckpt),
                                       &first_stats)
                  .ok());

  // Flip a byte in shard 1's only batch artifact, then resume the WHOLE
  // sharded run: the orchestrator must quarantine the corrupt artifact,
  // respawn only shard 1, and converge bit-identically.
  const std::string victim = ckpt + "/batch_0001.ckpt";
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  LargeEaOptions options = OptionsFromArgs(AlignArgs(ckpt));
  options.fault_tolerance.resume = true;
  shard::ShardRunStats stats;
  const auto resumed = shard::RunShardedLargeEa(
      dataset(), options, FastShardOptions(3, ckpt), &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdentical(baseline, *resumed);
  EXPECT_EQ(stats.workers_launched, 1);  // only the damaged shard
  EXPECT_EQ(stats.shards_resumed, 2);
  EXPECT_TRUE(fs::exists(victim + ".corrupt"));  // quarantined, kept
}

TEST_F(ShardChaosTest, OrchestratorKilledBeforeMergeResumesWithoutWorkers) {
  const LargeEaResult baseline =
      RunLargeEa(dataset(), OptionsFromArgs(AlignArgs(""))).value();
  const std::string ckpt = CheckpointDir("orch_crash");

  // The orchestrator "dies" after every worker finished but before the
  // merge (the in-process injection stands in for SIGKILLing the parent:
  // same observable state — complete shard artifacts, no fused matrix).
  rt::FaultSpec spec;
  spec.code = StatusCode::kAborted;
  spec.message = "orchestrator crash";
  rt::FaultInjector::Get().Arm("shard.orchestrator.merge", spec);
  const auto crashed = shard::RunShardedLargeEa(
      dataset(), OptionsFromArgs(AlignArgs(ckpt)),
      FastShardOptions(3, ckpt));
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  rt::FaultInjector::Get().Disarm("shard.orchestrator.merge");

  // Resume: every shard re-attaches to its completed artifacts; no
  // worker process is spawned at all.
  LargeEaOptions options = OptionsFromArgs(AlignArgs(ckpt));
  options.fault_tolerance.resume = true;
  shard::ShardRunStats stats;
  const auto resumed = shard::RunShardedLargeEa(
      dataset(), options, FastShardOptions(3, ckpt), &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdentical(baseline, *resumed);
  EXPECT_EQ(stats.workers_launched, 0);
  EXPECT_EQ(stats.shards_resumed, 3);
}

TEST_F(ShardChaosTest, CliShardedRunReportsShardMetrics) {
  const std::string ckpt = CheckpointDir("cli_e2e");
  const std::string report = ckpt + "/report.json";
  fs::create_directories(ckpt);

  // End-to-end through the real binary: largeea_cli run --shards=2
  // orchestrates itself (WorkerCommand resolves /proc/self/exe) and the
  // JSON run report carries the shard.* supervision counters.
  std::vector<std::string> argv = {LARGEEA_CLI_BIN};
  for (std::string& a : AlignArgs(ckpt)) argv.push_back(std::move(a));
  argv.push_back("--shards=2");
  argv.push_back("--report-out=" + report);
  auto pid = shard::SpawnProcess(argv, {}, ckpt + "/orchestrator.log");
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();
  const shard::ProcessStatus status = shard::WaitProcess(*pid);
  EXPECT_TRUE(status.succeeded())
      << "exit=" << status.exit_code << " sig=" << status.term_signal;
  const auto json = rt::ReadFileToString(report);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("shard.launched"), std::string::npos);
  EXPECT_NE(json->find("\"shards\":\"2\""), std::string::npos);
}

TEST_F(ShardChaosTest, SigtermFlushesReportAndExits143) {
  const std::string ckpt = CheckpointDir("sigterm");
  const std::string report = ckpt + "/report.json";
  fs::create_directories(ckpt);

  // A run too long to finish (a million epochs); SIGTERM must flush the
  // report with an `interrupted` marker and exit 128+15.
  std::vector<std::string> argv = {LARGEEA_CLI_BIN};
  for (std::string& a : AlignArgs(ckpt)) argv.push_back(std::move(a));
  argv.push_back("--epochs=1000000");
  argv.push_back("--report-out=" + report);
  auto pid = shard::SpawnProcess(argv, {}, ckpt + "/cli.log");
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();

  // The first checkpoint artifact is written well after the signal
  // watcher is installed, so its appearance proves SIGTERM will be
  // caught rather than hitting the default handler.
  const auto has_artifact = [&] {
    for (const auto& entry : fs::directory_iterator(ckpt)) {
      if (entry.path().extension() == ".ckpt") return true;
    }
    return false;
  };
  bool started = false;
  for (int i = 0; i < 600 && !(started = has_artifact()); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(started) << "pipeline never reached its first checkpoint";
  ::kill(*pid, SIGTERM);

  const shard::ProcessStatus status = shard::WaitProcess(*pid);
  EXPECT_EQ(status.state, shard::ProcessStatus::State::kExited);
  EXPECT_EQ(status.exit_code, 143);
  const auto json = rt::ReadFileToString(report);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("interrupted"), std::string::npos);
  EXPECT_NE(json->find("SIGTERM"), std::string::npos);
}

#endif  // LARGEEA_CLI_BIN

#else  // !LARGEEA_FAULT_INJECTION

TEST(FaultToleranceTest, DisabledBuildStillCompilesThePipeline) {
  // Fault injection is compiled out (-DLARGEEA_FAULT_INJECTION=OFF);
  // the crash matrix needs the injector, so there is nothing to run.
  GTEST_SKIP() << "built without LARGEEA_FAULT_INJECTION";
}

#endif  // LARGEEA_FAULT_INJECTION

}  // namespace
}  // namespace largeea
