// Tests for src/serve: index artifact round-trip and damage handling,
// ANN-vs-exact equivalence, atomic version swap under load (the TSan
// target), and the stdin/stdout serve protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/la/matrix.h"
#include "src/serve/index_artifact.h"
#include "src/serve/index_manager.h"
#include "src/serve/query_engine.h"
#include "src/serve/serve_loop.h"
#include "src/sim/hnsw.h"
#include "src/sim/similarity_search.h"
#include "src/sim/topk_util.h"

namespace largeea {
namespace {

namespace fs = std::filesystem;

// Deterministic pseudo names with shared word structure, so the
// tokenizer/MinHash layers see realistic overlap.
std::vector<std::string> MakeNames(int32_t n, uint64_t seed) {
  static const char* const kWords[] = {"alda", "brin",  "ceto", "doral",
                                       "evik", "fenor", "gil",  "hasem",
                                       "irol", "jun"};
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    std::string name = kWords[rng.Uniform(10)];
    name += ' ';
    name += kWords[rng.Uniform(10)];
    name += ' ';
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return names;
}

SparseSimMatrix MakeFused(int32_t num_source, int32_t num_target,
                          uint64_t seed) {
  SparseSimMatrix fused(num_source, num_target, 8);
  Rng rng(seed);
  for (int32_t s = 0; s < num_source; ++s) {
    for (int32_t j = 0; j < 6; ++j) {
      fused.Accumulate(s, static_cast<EntityId>(rng.Uniform(num_target)),
                       static_cast<float>(rng.UniformDouble()));
    }
  }
  return fused;
}

serve::ServeIndexOptions SmallIndexOptions() {
  serve::ServeIndexOptions options;
  options.encoder.dim = 32;
  return options;
}

std::shared_ptr<const serve::ServeIndex> BuildIndexOrDie(
    int32_t num_source, int32_t num_target, uint64_t seed,
    uint64_t fingerprint) {
  auto index = serve::ServeIndex::Build(
      MakeFused(num_source, num_target, seed), MakeNames(num_source, seed + 1),
      MakeNames(num_target, seed + 2), fingerprint, SmallIndexOptions());
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(ServeIndexTest, BuildValidatesShape) {
  auto bad = serve::ServeIndex::Build(MakeFused(4, 4, 1), MakeNames(3, 2),
                                      MakeNames(4, 3), 1, SmallIndexOptions());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeIndexTest, SaveLoadRoundTripsQueries) {
  const auto built = BuildIndexOrDie(30, 40, 11, 0xabcdef01);
  const std::string path = TempPath("serve_roundtrip.idx");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded_or = serve::ServeIndex::Load(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const auto loaded = std::move(loaded_or).value();

  EXPECT_EQ(loaded->fingerprint(), built->fingerprint());
  EXPECT_EQ(loaded->num_source_entities(), 30);
  EXPECT_EQ(loaded->num_target_entities(), 40);

  // Entity-path answers: identical fused rows.
  for (int32_t s = 0; s < 30; ++s) {
    const auto a = built->fused().Row(s);
    const auto b = loaded->fused().Row(s);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].column, b[i].column);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }

  // Name-path answers: the rebuilt encoder (IDF refit from the stored
  // name tables) and the deserialised graph must reproduce the built
  // index's answers bit-identically.
  for (int32_t q = 0; q < 30; ++q) {
    const std::string& name = built->SourceName(q);
    std::vector<float> va(built->encoder().dim());
    std::vector<float> vb(loaded->encoder().dim());
    built->encoder().EncodeName(name, va.data());
    loaded->encoder().EncodeName(name, vb.data());
    ASSERT_EQ(va, vb);
    std::vector<SimEntry> ra, rb;
    built->ann().QueryTopK(va, 5, ra);
    loaded->ann().QueryTopK(vb, 5, rb);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column);
      EXPECT_EQ(ra[i].score, rb[i].score);
    }
    EXPECT_EQ(built->StringShortlist(name), loaded->StringShortlist(name));
  }
  fs::remove(path);
}

TEST(ServeIndexTest, TamperedPayloadIsDataLoss) {
  const auto built = BuildIndexOrDie(10, 12, 21, 42);
  const std::string path = TempPath("serve_tamper.idx");
  ASSERT_TRUE(built->Save(path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  // Flip one payload byte (past the header line).
  std::string tampered = bytes;
  tampered[bytes.find('\n') + 10] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << tampered;
  }
  EXPECT_EQ(serve::ServeIndex::Load(path).status().code(),
            StatusCode::kDataLoss);

  // Truncation is also data loss, not a parse crash.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_EQ(serve::ServeIndex::Load(path).status().code(),
            StatusCode::kDataLoss);

  // A damaged header too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not-an-index v9 zz\n";
  }
  EXPECT_EQ(serve::ServeIndex::Load(path).status().code(),
            StatusCode::kDataLoss);
  fs::remove(path);
}

TEST(ServeIndexTest, FingerprintMismatchIsFailedPrecondition) {
  const auto built = BuildIndexOrDie(10, 12, 31, 0x1111);
  const std::string path = TempPath("serve_fpr.idx");
  ASSERT_TRUE(built->Save(path).ok());
  EXPECT_EQ(serve::ServeIndex::Load(path, 0x2222).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(serve::ServeIndex::Load(path, 0x1111).ok());
  fs::remove(path);
}

TEST(ServeIndexTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(serve::ServeIndex::Load(TempPath("serve_nope.idx"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// ANN (HNSW) vs exact scan.
// ---------------------------------------------------------------------------

Matrix RandomEmbeddings(int32_t rows, int32_t dim, uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (int32_t r = 0; r < rows; ++r) {
    float* row = m.Row(r);
    for (int32_t c = 0; c < dim; ++c) {
      row[c] = static_cast<float>(rng.UniformDouble()) - 0.5f;
    }
  }
  return m;
}

TEST(HnswTest, BuildIsDeterministic) {
  const Matrix data = RandomEmbeddings(200, 16, 5);
  const HnswIndex a(data, SimMetric::kManhattan, HnswOptions{});
  const HnswIndex b(data, SimMetric::kManhattan, HnswOptions{});
  EXPECT_EQ(a.max_level(), b.max_level());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  std::vector<std::pair<float, int32_t>> ra, rb;
  for (int32_t q = 0; q < 200; q += 7) {
    a.QueryTopK(data.Row(q), 10, ra);
    b.QueryTopK(data.Row(q), 10, rb);
    EXPECT_EQ(ra, rb);
  }
}

TEST(HnswTest, RecallAgainstExactScan) {
  const int32_t n = 500, dim = 24, k = 10;
  const Matrix data = RandomEmbeddings(n, dim, 9);
  const HnswIndex ann(data, SimMetric::kManhattan, HnswOptions{});
  const auto& kt = simd::Kernels();

  int64_t hits = 0, total = 0, top1_match = 0;
  std::vector<std::pair<float, int32_t>> approx;
  for (int32_t q = 0; q < n; q += 3) {
    // Exact reference: full scan through the shared scorer, identical
    // tie-breaks.
    TopKHeap heap(k);
    for (int32_t t = 0; t < n; ++t) {
      heap.Offer(t, ScorePair(kt, data.Row(q), data.Row(t), dim,
                              SimMetric::kManhattan));
    }
    std::vector<std::pair<float, int32_t>> exact;
    heap.Drain(exact);

    ann.QueryTopK(data.Row(q), k, approx);
    ASSERT_FALSE(approx.empty());
    // Same scorer on both sides: a recalled id has an identical entry.
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.second == e.second) {
          EXPECT_EQ(a.first, e.first);
          ++hits;
          break;
        }
      }
    }
    total += static_cast<int64_t>(exact.size());
    if (approx[0] == exact[0]) ++top1_match;
  }
  const double recall = static_cast<double>(hits) / total;
  EXPECT_GE(recall, 0.9) << "recall@" << k << " = " << recall;
  // Re-ranked top-1 matches the exact scan's top-1 on nearly every
  // query (ANN can only miss candidates, never mis-rank them).
  EXPECT_GE(top1_match, (n / 3) * 9 / 10);
}

TEST(SimilaritySearchTest, QueryTopKMatchesSearchInto) {
  const int32_t ns = 40, nt = 60, dim = 16;
  const Matrix source = RandomEmbeddings(ns, dim, 13);
  const Matrix target = RandomEmbeddings(nt, dim, 14);
  std::vector<EntityId> col_ids(nt);
  std::iota(col_ids.begin(), col_ids.end(), 0);
  std::vector<EntityId> row_ids(ns);
  std::iota(row_ids.begin(), row_ids.end(), 0);

  for (const bool use_lsh : {false, true}) {
    SimilaritySearchOptions options;
    options.topk.k = 7;
    options.use_lsh = use_lsh;
    const auto search = MakeSimilaritySearch(target, col_ids, options);
    SparseSimMatrix batch(ns, nt, options.topk.k);
    search->SearchInto(source, row_ids, batch);
    std::vector<SimEntry> single;
    for (int32_t s = 0; s < ns; ++s) {
      search->QueryTopK(std::span<const float>(source.Row(s), dim),
                        options.topk.k, single);
      const auto row = batch.Row(s);
      ASSERT_EQ(single.size(), row.size()) << "lsh=" << use_lsh;
      for (size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(single[i].column, row[i].column);
        EXPECT_EQ(single[i].score, row[i].score);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Atomic version swap (run under TSan via run_sanitized_tests.sh).
// ---------------------------------------------------------------------------

TEST(IndexManagerTest, CurrentIsNullBeforeFirstSwap) {
  serve::IndexManager manager;
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_EQ(manager.version(), 0);
  serve::QueryEngine engine(&manager);
  serve::QueryRequest request;
  request.kind = serve::QueryRequest::Kind::kEntity;
  request.entity = 0;
  EXPECT_EQ(engine.Execute(request).status.code(), StatusCode::kUnavailable);
}

TEST(IndexManagerTest, SwapUnderLoadNeverTearsAnswers) {
  // Two versions with disjoint fingerprints and different fused
  // contents; hammer queries from readers while a writer swaps. Every
  // response must be internally consistent: the answer for entity 0
  // matches exactly the version whose fingerprint it reports.
  const auto v1 = BuildIndexOrDie(16, 16, 71, 0xA);
  const auto v2 = BuildIndexOrDie(16, 16, 72, 0xB);
  const auto expect_a = v1->fused().Row(0);
  const auto expect_b = v2->fused().Row(0);

  serve::IndexManager manager;
  manager.Swap(v1);
  serve::QueryEngine engine(&manager);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      serve::QueryRequest request;
      request.kind = serve::QueryRequest::Kind::kEntity;
      request.entity = 0;
      request.k = 16;
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::QueryResponse response = engine.Execute(request);
        ASSERT_TRUE(response.status.ok());
        const auto& expect =
            response.index_fingerprint == 0xA ? expect_a : expect_b;
        ASSERT_TRUE(response.index_fingerprint == 0xA ||
                    response.index_fingerprint == 0xB);
        ASSERT_EQ(response.candidates.size(), expect.size());
        for (size_t i = 0; i < expect.size(); ++i) {
          ASSERT_EQ(response.candidates[i].target, expect[i].column);
          ASSERT_EQ(response.candidates[i].score, expect[i].score);
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    manager.Swap(i % 2 == 0 ? v2 : v1);
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(checked.load(), 0);
  EXPECT_EQ(manager.version(), 201);
}

// ---------------------------------------------------------------------------
// Serve loop protocol.
// ---------------------------------------------------------------------------

TEST(ServeLoopTest, ParseFlatObject) {
  auto fields = serve::ParseFlatObject(
      R"({"op":"query","name":"a \"b\"\nc","k":5,"exact":true})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("op"), "query");
  EXPECT_EQ(fields->at("name"), "a \"b\"\nc");
  EXPECT_EQ(fields->at("k"), "5");
  EXPECT_EQ(fields->at("exact"), "true");

  EXPECT_TRUE(serve::ParseFlatObject("{}").ok());
  EXPECT_TRUE(serve::ParseFlatObject(R"( { "a" : "b" } )").ok());
  EXPECT_EQ(serve::ParseFlatObject(R"({"u":"A"})")->at("u"), "A");
  EXPECT_FALSE(serve::ParseFlatObject("").ok());
  EXPECT_FALSE(serve::ParseFlatObject("[1,2]").ok());
  EXPECT_FALSE(serve::ParseFlatObject(R"({"a":{"b":1}})").ok());
  EXPECT_FALSE(serve::ParseFlatObject(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(serve::ParseFlatObject(R"({"a")").ok());
  EXPECT_FALSE(serve::ParseFlatObject(R"({"a":})").ok());
}

TEST(ServeLoopTest, ProtocolAnswersInOrderAndSwapsMidStream) {
  const auto v1 = BuildIndexOrDie(8, 8, 81, 0xC1);
  const auto v2 = BuildIndexOrDie(8, 8, 82, 0xC2);
  const std::string v2_path = TempPath("serve_loop_v2.idx");
  ASSERT_TRUE(v2->Save(v2_path).ok());

  serve::IndexManager manager;
  manager.Swap(v1);
  serve::ServeLoop loop(&manager, serve::ServeLoopOptions{});

  std::istringstream in(
      "{\"op\":\"query\",\"entity\":0,\"k\":2}\n"
      "{\"op\":\"swap\",\"index\":\"" + v2_path + "\"}\n"
      "{\"op\":\"query\",\"entity\":0,\"k\":2}\n"
      "{\"op\":\"query\",\"entity\":-3}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"quit\"}\n"
      "{\"op\":\"query\",\"entity\":1}\n");  // after quit: never answered
  std::ostringstream out;
  const serve::ServeLoopStats stats = loop.Run(in, out);

  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.failed, 1);  // the out-of-range entity
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_TRUE(stats.saw_quit);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  // Query before the swap answers from v1, after from v2 — the control
  // op is a barrier, so the ordering is exact, not racy.
  EXPECT_NE(lines[0].find("\"fingerprint\":\"00000000000000c1\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"version\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"fingerprint\":\"00000000000000c2\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[3].find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(lines[4].find("\"version_swaps\":1"), std::string::npos);
  EXPECT_NE(lines[5].find("\"bye\":true"), std::string::npos);
  fs::remove(v2_path);
}

TEST(ServeLoopTest, StopFlagDrainsPendingBatch) {
  const auto v1 = BuildIndexOrDie(8, 8, 91, 0xD1);
  serve::IndexManager manager;
  manager.Swap(v1);
  // A stop flag raised before Run: the loop must not read anything, but
  // still exits cleanly through the drain path.
  serve::ServeLoop loop(&manager, serve::ServeLoopOptions{});
  std::istringstream in("{\"op\":\"query\",\"entity\":0}\n");
  std::ostringstream out;
  std::atomic<int> stop{SIGTERM};
  const serve::ServeLoopStats stats = loop.Run(in, out, &stop);
  EXPECT_TRUE(stats.saw_stop);
  EXPECT_EQ(stats.queries, 0);
}

TEST(ServeLoopTest, NameQueryMatchesEngine) {
  const auto v1 = BuildIndexOrDie(12, 12, 95, 0xE1);
  serve::IndexManager manager;
  manager.Swap(v1);
  serve::QueryEngine engine(&manager);

  serve::QueryRequest request;
  request.kind = serve::QueryRequest::Kind::kName;
  request.name = v1->TargetName(3);
  request.k = 3;
  const serve::QueryResponse direct = engine.Execute(request);
  ASSERT_TRUE(direct.status.ok());
  ASSERT_FALSE(direct.candidates.empty());
  // Querying a target's own name must put that target on top: its
  // embedding similarity to itself is maximal and the string channel
  // shortlists it.
  EXPECT_EQ(direct.candidates[0].target, 3);

  serve::ServeLoop loop(&manager, serve::ServeLoopOptions{});
  std::istringstream in("{\"op\":\"query\",\"name\":\"" + request.name +
                        "\",\"k\":3}\n");
  std::ostringstream out;
  loop.Run(in, out);
  EXPECT_NE(out.str().find("\"target\":3"), std::string::npos);
  const std::string expected_first =
      "\"candidates\":[{\"target\":" + std::to_string(direct.candidates[0].target);
  EXPECT_NE(out.str().find(expected_first), std::string::npos);
}

}  // namespace
}  // namespace largeea
