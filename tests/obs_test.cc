// Tests for src/obs: spans and trace export, metrics, run reports, the
// JSON writer, and the MemoryTracker phase scopes they build on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/obs/json_writer.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"

namespace largeea {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser, just enough to round-trip the
// documents src/obs emits. Living in the test keeps the library honest:
// the exported JSON must be parseable by an implementation that was not
// written alongside the writer.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    const auto it = object.find(key);
    return it == object.end() ? missing : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The writer only emits \u00XX control escapes.
            *out += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (ParseLiteral("true")) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (ParseLiteral("false")) {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return true;
    }
    if (ParseLiteral("null")) {
      out->kind = JsonValue::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue ParseOrDie(const std::string& json) {
  JsonValue value;
  JsonParser parser(json);
  EXPECT_TRUE(parser.Parse(&value)) << "unparseable JSON: " << json;
  return value;
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, NestedDocumentRoundTrips) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\"\nvalue\twith\\escapes");
  w.Key("count").Int(-42);
  w.Key("ratio").Double(0.25);
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("list").BeginArray();
  w.Int(1).Int(2).Int(3);
  w.BeginObject().Key("inner").String("x").EndObject();
  w.EndArray();
  w.EndObject();
  ASSERT_TRUE(w.complete());

  const JsonValue v = ParseOrDie(w.str());
  EXPECT_EQ(v.at("name").string, "a \"quoted\"\nvalue\twith\\escapes");
  EXPECT_EQ(v.at("count").number, -42.0);
  EXPECT_EQ(v.at("ratio").number, 0.25);
  EXPECT_TRUE(v.at("flag").boolean);
  EXPECT_EQ(v.at("nothing").kind, JsonValue::kNull);
  ASSERT_EQ(v.at("list").array.size(), 4u);
  EXPECT_EQ(v.at("list").array[2].number, 3.0);
  EXPECT_EQ(v.at("list").array[3].at("inner").string, "x");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(HUGE_VAL);
  w.Double(1.5);
  w.EndArray();
  const JsonValue v = ParseOrDie(w.str());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].kind, JsonValue::kNull);
  EXPECT_EQ(v.array[1].kind, JsonValue::kNull);
  EXPECT_EQ(v.array[2].number, 1.5);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNullInObjects) {
  // The degradation must hold for keyed values too (the report writes
  // derived ratios like utilization as object members), and for both
  // infinity signs — a 0/0 imbalance ratio must corrupt one value, not
  // the whole document.
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("neg_inf").Double(-HUGE_VAL);
  w.Key("nan").Double(std::nan("1"));
  w.Key("fine").Double(-2.5);
  w.EndObject();
  ASSERT_TRUE(w.complete());
  const JsonValue v = ParseOrDie(w.str());
  EXPECT_EQ(v.at("neg_inf").kind, JsonValue::kNull);
  EXPECT_EQ(v.at("nan").kind, JsonValue::kNull);
  EXPECT_EQ(v.at("fine").number, -2.5);
}

TEST(JsonWriterTest, ControlCharactersAreEscaped) {
  const std::string escaped = obs::JsonEscape(std::string("a\x01z", 3));
  EXPECT_EQ(escaped, "a\\u0001z");
}

// ---------------------------------------------------------------------------
// Spans and the trace recorder

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::Get().Clear();
    obs::TraceRecorder::Get().Enable();
  }
  void TearDown() override {
    obs::TraceRecorder::Get().Disable();
    obs::TraceRecorder::Get().Clear();
  }
};

TEST_F(TraceTest, DisabledRecorderRetainsNothingButStillTimes) {
  obs::TraceRecorder::Get().Disable();
  obs::Span span("test/untraced");
  const double seconds = span.End();
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(obs::TraceRecorder::Get().Records().empty());
}

TEST_F(TraceTest, SpansRecordNestingDepth) {
  {
    obs::Span outer("test/outer");
    {
      obs::Span inner("test/inner");
      LARGEEA_TRACE_SPAN("test/innermost");
    }
  }
  const auto records = obs::TraceRecorder::Get().Records();
  ASSERT_EQ(records.size(), 3u);
  std::map<std::string, obs::SpanRecord> by_name;
  for (const auto& r : records) by_name[r.name] = r;
  EXPECT_EQ(by_name.at("test/outer").depth, 0);
  EXPECT_EQ(by_name.at("test/inner").depth, 1);
  EXPECT_EQ(by_name.at("test/innermost").depth, 2);
  // The inner spans close before (and within) the outer one.
  const auto& outer = by_name.at("test/outer");
  const auto& inner = by_name.at("test/inner");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
}

TEST_F(TraceTest, EndIsIdempotentAndAttrsFreezeAfterEnd) {
  obs::Span span("test/frozen");
  span.AddAttr("kept", static_cast<int64_t>(7));
  const double first = span.End();
  span.AddAttr("dropped", static_cast<int64_t>(9));
  const double second = span.End();
  EXPECT_EQ(first, second);
  const auto records = obs::TraceRecorder::Get().Records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].attrs.size(), 1u);
  EXPECT_EQ(records[0].attrs[0].key, "kept");
  EXPECT_EQ(records[0].attrs[0].value, "7");
}

TEST_F(TraceTest, ConcurrentThreadsNestIndependently) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::Span outer("test/thread_outer");
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span inner("test/thread_inner");
        inner.End();
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto records = obs::TraceRecorder::Get().Records();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(kThreads * (kSpansPerThread + 1)));
  std::map<int32_t, int> outers_per_thread;
  std::map<int32_t, int> inners_per_thread;
  for (const auto& r : records) {
    if (r.name == "test/thread_outer") {
      EXPECT_EQ(r.depth, 0);
      ++outers_per_thread[r.thread_id];
    } else {
      ASSERT_EQ(r.name, "test/thread_inner");
      // Each thread has a private depth counter: no cross-thread bleed.
      EXPECT_EQ(r.depth, 1);
      ++inners_per_thread[r.thread_id];
    }
  }
  EXPECT_EQ(outers_per_thread.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : outers_per_thread) {
    EXPECT_EQ(count, 1);
    EXPECT_EQ(inners_per_thread[tid], kSpansPerThread);
  }
}

TEST_F(TraceTest, TotalsAggregateByName) {
  for (int i = 0; i < 3; ++i) {
    obs::Span span("test/repeat");
    span.End();
  }
  {
    obs::Span span("test/once");
  }
  const auto totals = obs::TraceRecorder::Get().Totals();
  ASSERT_EQ(totals.size(), 2u);
  int64_t repeat_count = 0, once_count = 0;
  for (const auto& t : totals) {
    EXPECT_GE(t.total_seconds, 0.0);
    if (t.name == "test/repeat") repeat_count = t.count;
    if (t.name == "test/once") once_count = t.count;
  }
  EXPECT_EQ(repeat_count, 3);
  EXPECT_EQ(once_count, 1);
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  {
    obs::Span outer("test/chrome_outer");
    outer.AddAttr("note", "hello");
    obs::Span inner("test/chrome_inner");
    inner.End();
  }
  const JsonValue v =
      ParseOrDie(obs::TraceRecorder::Get().ToChromeTraceJson());
  ASSERT_TRUE(v.has("traceEvents"));
  const auto& events = v.at("traceEvents").array;
  // Thread-name metadata (ph:"M") persists across Clear() — earlier
  // tests may have started pool workers — so count span events only.
  size_t span_events = 0;
  bool saw_outer = false;
  for (const auto& e : events) {
    if (e.at("ph").string == "M") {
      EXPECT_EQ(e.at("name").string, "thread_name");
      EXPECT_TRUE(e.at("args").has("name"));
      EXPECT_TRUE(e.has("tid"));
      continue;
    }
    ++span_events;
    EXPECT_EQ(e.at("ph").string, "X");  // complete events
    EXPECT_EQ(e.at("cat").string, "largeea");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_TRUE(e.at("args").has("depth"));
    if (e.at("name").string == "test/chrome_outer") {
      saw_outer = true;
      EXPECT_EQ(e.at("args").at("note").string, "hello");
    }
  }
  EXPECT_EQ(span_events, 2u);
  EXPECT_TRUE(saw_outer);
}

TEST_F(TraceTest, ThreadNameMetadataAppearsInChromeTrace) {
  obs::SetCurrentThreadName("test/self");
  {
    obs::Span span("test/named_thread");
  }
  const JsonValue v =
      ParseOrDie(obs::TraceRecorder::Get().ToChromeTraceJson());
  bool saw_name = false;
  for (const auto& e : v.at("traceEvents").array) {
    if (e.at("ph").string == "M" &&
        e.at("args").at("name").string == "test/self") {
      saw_name = true;
      EXPECT_EQ(e.at("tid").number, obs::CurrentThreadId());
    }
  }
  EXPECT_TRUE(saw_name);
}

TEST_F(TraceTest, TrackMemorySpanReportsPhasePeak) {
  MemoryTracker::Get().ClearFinishedPhases();
  constexpr int64_t kBytes = 8 << 20;
  obs::Span span("test/mem", obs::Span::kTrackMemory);
  {
    TrackedAllocation alloc(kBytes);
    (void)alloc;
  }
  span.End();
  EXPECT_GE(span.peak_bytes(), kBytes);
  // The span's memory phase also lands in the tracker's history.
  const auto phases = MemoryTracker::Get().FinishedPhases();
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.back().name, "test/mem");
  EXPECT_GE(phases.back().peak_bytes - phases.back().start_bytes, kBytes);
}

// ---------------------------------------------------------------------------
// MemoryTracker phases

TEST(MemoryPhaseTest, OverlappingPhasesTrackIndependentPeaks) {
  auto& tracker = MemoryTracker::Get();
  tracker.ClearFinishedPhases();
  const int64_t base = tracker.CurrentBytes();

  const int32_t outer = tracker.BeginPhase("outer");
  tracker.Add(1000);
  const int32_t inner = tracker.BeginPhase("inner");
  tracker.Add(2000);
  tracker.Remove(2000);
  const MemoryPhase inner_record = tracker.EndPhase(inner);
  tracker.Add(500);
  tracker.Remove(1500);
  const MemoryPhase outer_record = tracker.EndPhase(outer);

  EXPECT_EQ(inner_record.name, "inner");
  EXPECT_EQ(inner_record.start_bytes, base + 1000);
  EXPECT_EQ(inner_record.peak_bytes, base + 3000);
  EXPECT_EQ(outer_record.start_bytes, base);
  EXPECT_EQ(outer_record.peak_bytes, base + 3000);
  EXPECT_GE(outer_record.seconds, 0.0);

  const auto finished = tracker.FinishedPhases();
  ASSERT_EQ(finished.size(), 2u);  // close order: inner first
  EXPECT_EQ(finished[0].name, "inner");
  EXPECT_EQ(finished[1].name, "outer");
  tracker.ClearFinishedPhases();
}

TEST(MemoryPhaseTest, ScopeIsIdempotent) {
  MemoryTracker::Get().ClearFinishedPhases();
  MemoryPhaseScope scope("scoped");
  MemoryTracker::Get().Add(100);
  MemoryTracker::Get().Remove(100);
  const MemoryPhase first = scope.End();
  const MemoryPhase second = scope.End();
  EXPECT_EQ(first.peak_bytes, second.peak_bytes);
  EXPECT_EQ(MemoryTracker::Get().FinishedPhases().size(), 1u);
  MemoryTracker::Get().ClearFinishedPhases();
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterConcurrentAddsSum) {
  obs::Counter counter;
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kAdds);
}

TEST(MetricsTest, HistogramBucketAssignment) {
  obs::Histogram hist({10.0, 20.0, 30.0});
  for (int v = 1; v <= 30; ++v) hist.Observe(v);
  hist.Observe(100.0);  // overflow bucket
  const auto counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 10);  // 1..10 (bounds are inclusive upper edges)
  EXPECT_EQ(counts[1], 10);  // 11..20
  EXPECT_EQ(counts[2], 10);  // 21..30
  EXPECT_EQ(counts[3], 1);   // 100
  EXPECT_EQ(hist.TotalCount(), 31);
  EXPECT_EQ(hist.Min(), 1.0);
  EXPECT_EQ(hist.Max(), 100.0);
  EXPECT_NEAR(hist.Mean(), (465.0 + 100.0) / 31.0, 1e-9);
}

TEST(MetricsTest, HistogramPercentileInterpolates) {
  obs::Histogram hist({10.0, 20.0, 30.0});
  for (int v = 1; v <= 30; ++v) hist.Observe(v);
  // Rank 15 of 30 falls halfway through the (10, 20] bucket.
  EXPECT_NEAR(hist.Percentile(0.50), 15.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(0.90), 27.0, 1e-9);
  EXPECT_EQ(hist.Percentile(0.0), 1.0);   // clamped to observed min
  EXPECT_EQ(hist.Percentile(1.0), 30.0);  // top of the last real bucket
}

TEST(MetricsTest, HistogramPercentileClampsToObservedRange) {
  obs::Histogram hist({10.0, 20.0});
  hist.Observe(5.0);
  // One value: every percentile is that value, not an interpolation
  // artifact beyond the observed range.
  EXPECT_EQ(hist.Percentile(0.5), 5.0);
  EXPECT_EQ(hist.Percentile(0.99), 5.0);
}

TEST(MetricsTest, HistogramOverflowPercentileIsMax) {
  obs::Histogram hist({1.0});
  hist.Observe(50.0);
  hist.Observe(70.0);
  EXPECT_EQ(hist.Percentile(0.99), 70.0);
}

TEST(MetricsTest, EmptyHistogramIsZeroed) {
  obs::Histogram hist({1.0, 2.0});
  EXPECT_EQ(hist.TotalCount(), 0);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Min(), 0.0);
  EXPECT_EQ(hist.Max(), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
}

TEST(MetricsTest, EmptyHistogramPercentileIsZeroAtEveryQuantile) {
  obs::Histogram hist({10.0, 20.0});
  EXPECT_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Percentile(1.0), 0.0);
}

TEST(MetricsTest, HistogramPercentileExtremeQuantilesBracketObservations) {
  obs::Histogram hist({10.0, 20.0, 30.0});
  hist.Observe(12.0);
  hist.Observe(18.0);
  hist.Observe(25.0);
  // q=0 can never undershoot the smallest observation and q=1 can never
  // overshoot the largest — the clamp to [Min, Max] is the contract that
  // keeps report percentiles inside real data.
  EXPECT_EQ(hist.Percentile(0.0), 12.0);
  EXPECT_EQ(hist.Percentile(1.0), 25.0);
  // Out-of-range quantiles clamp to the same endpoints rather than
  // extrapolating or crashing.
  EXPECT_EQ(hist.Percentile(-0.5), hist.Percentile(0.0));
  EXPECT_EQ(hist.Percentile(1.5), hist.Percentile(1.0));
}

TEST(MetricsTest, HistogramSingleSampleIsEveryPercentile) {
  obs::Histogram hist({10.0, 20.0});
  hist.Observe(17.0);
  EXPECT_EQ(hist.Percentile(0.0), 17.0);
  EXPECT_EQ(hist.Percentile(0.5), 17.0);
  EXPECT_EQ(hist.Percentile(1.0), 17.0);
}

TEST(MetricsTest, HistogramResetClearsState) {
  obs::Histogram hist({10.0});
  hist.Observe(3.0);
  hist.Reset();
  EXPECT_EQ(hist.TotalCount(), 0);
  EXPECT_EQ(hist.Min(), 0.0);
  hist.Observe(7.0);
  EXPECT_EQ(hist.Min(), 7.0);
  EXPECT_EQ(hist.Max(), 7.0);
}

TEST(MetricsTest, RegistryJsonRoundTrips) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.Reset();
  registry.GetCounter("test.counter").Add(5);
  registry.GetGauge("test.gauge").Set(0.75);
  auto& hist = registry.GetHistogram("test.hist", {1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(1.5);

  const JsonValue v = ParseOrDie(registry.ToJson());
  EXPECT_EQ(v.at("counters").at("test.counter").number, 5.0);
  EXPECT_EQ(v.at("gauges").at("test.gauge").number, 0.75);
  const JsonValue& h = v.at("histograms").at("test.hist");
  EXPECT_EQ(h.at("count").number, 2.0);
  EXPECT_EQ(h.at("sum").number, 2.0);
  EXPECT_EQ(h.at("min").number, 0.5);
  EXPECT_EQ(h.at("max").number, 1.5);
  ASSERT_EQ(h.at("buckets").array.size(), 3u);
  EXPECT_EQ(h.at("buckets").array[0].number, 1.0);
  EXPECT_EQ(h.at("buckets").array[1].number, 1.0);
  EXPECT_EQ(h.at("buckets").array[2].number, 0.0);
  registry.Reset();
}

TEST(MetricsTest, RegistryReturnsSameInstrument) {
  auto& registry = obs::MetricsRegistry::Get();
  obs::Counter& a = registry.GetCounter("test.same");
  obs::Counter& b = registry.GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  // Later bounds are ignored once a histogram exists.
  obs::Histogram& h1 = registry.GetHistogram("test.same_hist", {1.0});
  obs::Histogram& h2 = registry.GetHistogram("test.same_hist", {5.0, 6.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 1u);
  registry.Reset();
}

// ---------------------------------------------------------------------------
// Run reports

TEST(RunReportTest, JsonRoundTripsThroughParser) {
  obs::RunReport report;
  report.SetTool("obs_test");
  report.SetDataset("unit", 100, 110, 500, 520, 30, 70);
  report.AddConfig("model", "rrea");
  report.AddPhase("phase_a", 1.25, 2048);
  report.AddPhase("phase_b", 0.5);  // untracked memory
  EvalMetrics metrics;
  metrics.hits_at_1 = 0.8;
  metrics.hits_at_5 = 0.9;
  metrics.mrr = 0.85;
  metrics.num_test_pairs = 70;
  report.SetEval(metrics);
  report.SetTotal(2.0, 4096);

  const JsonValue v = ParseOrDie(report.ToJson());
  EXPECT_EQ(v.at("tool").string, "obs_test");
  EXPECT_EQ(v.at("dataset").at("name").string, "unit");
  EXPECT_EQ(v.at("dataset").at("source_entities").number, 100.0);
  EXPECT_EQ(v.at("dataset").at("test_pairs").number, 70.0);
  EXPECT_EQ(v.at("config").at("model").string, "rrea");
  ASSERT_EQ(v.at("phases").array.size(), 2u);
  EXPECT_EQ(v.at("phases").array[0].at("name").string, "phase_a");
  EXPECT_EQ(v.at("phases").array[0].at("seconds").number, 1.25);
  EXPECT_EQ(v.at("phases").array[0].at("peak_bytes").number, 2048.0);
  EXPECT_EQ(v.at("phases").array[1].at("peak_bytes").number, -1.0);
  EXPECT_EQ(v.at("eval").at("hits_at_1").number, 0.8);
  EXPECT_EQ(v.at("total").at("seconds").number, 2.0);
  EXPECT_TRUE(v.has("metrics"));
  EXPECT_TRUE(v.at("metrics").has("counters"));
}

TEST(RunReportTest, EvalOmittedUntilSet) {
  obs::RunReport report;
  report.SetTool("obs_test");
  EXPECT_FALSE(report.has_eval());
  const JsonValue v = ParseOrDie(report.ToJson());
  EXPECT_FALSE(v.has("eval"));
}

TEST(RunReportTest, IngestsTraceTotalsAndMemoryPhases) {
  obs::TraceRecorder::Get().Clear();
  obs::TraceRecorder::Get().Enable();
  MemoryTracker::Get().ClearFinishedPhases();
  {
    obs::Span span("test/ingested", obs::Span::kTrackMemory);
  }
  obs::TraceRecorder::Get().Disable();

  obs::RunReport report;
  report.IngestMemoryPhases();
  report.IngestTraceTotals();
  const JsonValue v = ParseOrDie(report.ToJson());
  ASSERT_EQ(v.at("spans").array.size(), 1u);
  EXPECT_EQ(v.at("spans").array[0].at("name").string, "test/ingested");
  EXPECT_EQ(v.at("spans").array[0].at("count").number, 1.0);
  ASSERT_EQ(v.at("memory_phases").array.size(), 1u);
  EXPECT_EQ(v.at("memory_phases").array[0].at("name").string,
            "test/ingested");
  obs::TraceRecorder::Get().Clear();
  MemoryTracker::Get().ClearFinishedPhases();
}

// ---------------------------------------------------------------------------
// Logging

TEST(LogTest, ParseLogLevelAcceptsKnownNames) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("off", &level));
  EXPECT_EQ(level, obs::LogLevel::kOff);
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
}

TEST(LogTest, LevelGatesOutput) {
  const obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kError);
  EXPECT_EQ(obs::GetLogLevel(), obs::LogLevel::kError);
  // Below-threshold macros must be cheap no-ops; this is a smoke test
  // that they compile and do not crash with formatting arguments.
  LARGEEA_LOG_DEBUG("invisible %d", 1);
  LARGEEA_LOG_INFO("invisible %s", "too");
  obs::SetLogLevel(saved);
}

}  // namespace
}  // namespace largeea
