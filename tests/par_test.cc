// Unit tests for the parallel execution layer (src/par/): pool
// lifecycle, exception propagation, deterministic chunking, and the
// ordered-merge reduction that underpins the bit-identical-at-any-
// thread-count contract (DESIGN.md §8). Whole-pipeline invariance is
// covered separately by par_determinism_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/par/background_worker.h"
#include "src/par/parallel_for.h"
#include "src/par/thread_pool.h"

namespace largeea::par {
namespace {

/// Restores the pool's thread count on scope exit so tests cannot leak
/// their configuration into each other (the suite shares the singleton).
class ScopedThreads {
 public:
  explicit ScopedThreads(int32_t n) : saved_(ThreadPool::Get().num_threads()) {
    ThreadPool::Get().SetNumThreads(n);
  }
  ~ScopedThreads() { ThreadPool::Get().SetNumThreads(saved_); }

 private:
  int32_t saved_;
};

TEST(ComputeChunksTest, SplitsRangeIntoGrainSizedChunks) {
  const auto chunks = ComputeChunks(0, 10, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].index, 0);
  EXPECT_EQ(chunks[0].begin, 0);
  EXPECT_EQ(chunks[0].end, 4);
  EXPECT_EQ(chunks[1].begin, 4);
  EXPECT_EQ(chunks[1].end, 8);
  EXPECT_EQ(chunks[2].begin, 8);
  EXPECT_EQ(chunks[2].end, 10);  // last chunk is shorter
  EXPECT_EQ(chunks[2].index, 2);
}

TEST(ComputeChunksTest, NonPositiveGrainMeansOneChunk) {
  for (int64_t grain : {int64_t{0}, int64_t{-5}}) {
    const auto chunks = ComputeChunks(3, 17, grain);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].begin, 3);
    EXPECT_EQ(chunks[0].end, 17);
  }
}

TEST(ComputeChunksTest, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(ComputeChunks(5, 5, 4).empty());
  EXPECT_TRUE(ComputeChunks(7, 5, 4).empty());
}

TEST(ComputeChunksTest, BoundariesIndependentOfThreadCount) {
  // The contract: chunk boundaries are a pure function of (begin, end,
  // grain). Reconfiguring the pool must not change them.
  const auto before = ComputeChunks(0, 1000, 37);
  ScopedThreads threads(8);
  const auto after = ComputeChunks(0, 1000, 37);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].begin, after[i].begin);
    EXPECT_EQ(before[i].end, after[i].end);
  }
}

TEST(ComputeChunksTest, GrainLargerThanRangeYieldsOneExactChunk) {
  const auto chunks = ComputeChunks(2, 9, 1000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 2);
  EXPECT_EQ(chunks[0].end, 9);
  EXPECT_EQ(chunks[0].index, 0);
}

TEST(ComputeChunksTest, NonZeroBeginOffsetsEveryBoundary) {
  const auto chunks = ComputeChunks(100, 110, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].begin, 100);
  EXPECT_EQ(chunks[0].end, 104);
  EXPECT_EQ(chunks[1].begin, 104);
  EXPECT_EQ(chunks[1].end, 108);
  EXPECT_EQ(chunks[2].begin, 108);
  EXPECT_EQ(chunks[2].end, 110);
}

TEST(ComputeChunksTest, RangeEndingAtInt64MaxDoesNotOverflow) {
  // begin + grain would overflow a naive `b += grain` loop; the chunker
  // must still produce exact boundaries right up to INT64_MAX.
  const int64_t end = std::numeric_limits<int64_t>::max();
  const int64_t begin = end - 100;
  const auto chunks = ComputeChunks(begin, end, 30);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].begin, begin);
  EXPECT_EQ(chunks[0].end, begin + 30);
  EXPECT_EQ(chunks[3].begin, begin + 90);
  EXPECT_EQ(chunks[3].end, end);
}

TEST(ComputeChunksTest, GrainLargerThanRangeNearInt64Max) {
  const int64_t end = std::numeric_limits<int64_t>::max();
  const auto chunks = ComputeChunks(end - 5, end, end);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, end - 5);
  EXPECT_EQ(chunks[0].end, end);
}

TEST(ComputeChunksCappedTest, UnderCapMatchesUncapped) {
  const auto capped = ComputeChunksCapped(0, 100, 10, 32);
  const auto plain = ComputeChunks(0, 100, 10);
  ASSERT_EQ(capped.size(), plain.size());
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].begin, plain[i].begin);
    EXPECT_EQ(capped[i].end, plain[i].end);
  }
}

TEST(ComputeChunksCappedTest, RaisesGrainToRespectCap) {
  // 1000/1 = 1000 chunks uncapped; the cap coarsens the grain, it never
  // truncates coverage.
  const auto chunks = ComputeChunksCapped(0, 1000, 1, 8);
  ASSERT_LE(chunks.size(), 8u);
  EXPECT_EQ(chunks.front().begin, 0);
  EXPECT_EQ(chunks.back().end, 1000);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
  }
}

TEST(ComputeChunksCappedTest, NonPositiveCapMeansUncapped) {
  EXPECT_EQ(ComputeChunksCapped(0, 1000, 1, 0).size(), 1000u);
  EXPECT_EQ(ComputeChunksCapped(0, 1000, 1, -3).size(), 1000u);
}

TEST(ComputeChunksCappedTest, EmptyRangeAndOversizedGrain) {
  EXPECT_TRUE(ComputeChunksCapped(5, 5, 4, 8).empty());
  const auto one = ComputeChunksCapped(3, 7, 100, 2);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 3);
  EXPECT_EQ(one[0].end, 7);
}

TEST(ComputeChunksCappedTest, BoundariesIndependentOfThreadCount) {
  // The pure function itself never consults the pool: only ParallelFor
  // derives a cap from the pool size, and plain-for bodies are
  // chunking-independent by contract.
  const auto before = ComputeChunksCapped(0, 5000, 3, 16);
  ScopedThreads threads(8);
  const auto after = ComputeChunksCapped(0, 5000, 3, 16);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].begin, after[i].begin);
    EXPECT_EQ(before[i].end, after[i].end);
  }
}

TEST(ParallelReduceTreeTest, SumMatchesSerialAndIsThreadInvariant) {
  const auto run = [] {
    return ParallelReduceTree<int64_t>(
        0, 1000, 7,
        [](const ChunkRange& r, int64_t& acc) {
          acc = 0;
          for (int64_t i = r.begin; i < r.end; ++i) acc += i;
        },
        [](int64_t& into, int64_t& from) { into += from; });
  };
  const int64_t at1 = run();
  EXPECT_EQ(at1, 1000 * 999 / 2);
  ScopedThreads threads(8);
  EXPECT_EQ(run(), at1);
}

TEST(ParallelReduceTreeTest, EmptyRangeReturnsDefaultState) {
  const int64_t sum = ParallelReduceTree<int64_t>(
      5, 5, 4, [](const ChunkRange&, int64_t& acc) { acc = 99; },
      [](int64_t& into, int64_t& from) { into += from; });
  EXPECT_EQ(sum, 0);
}

TEST(ParallelReduceTreeTest, CombineTopologyIsFixedPairwiseTree) {
  // Record the merge pairs for 5 chunks: stride 1 gives (0,1) (2,3),
  // stride 2 gives (0,2), stride 4 gives (0,4) — a pure function of the
  // chunk count, never of the thread count.
  using Pairs = std::vector<std::pair<std::string, std::string>>;
  Pairs observed;
  std::mutex mu;
  const auto chunk_name = [](const ChunkRange& r) {
    return std::to_string(r.index);
  };
  struct Labeled {
    std::string label;
  };
  for (int32_t threads : {1, 4}) {
    ScopedThreads scoped(threads);
    observed.clear();
    ParallelReduceTree<Labeled>(
        0, 5, 1,
        [&](const ChunkRange& r, Labeled& s) { s.label = chunk_name(r); },
        [&](Labeled& into, Labeled& from) {
          std::lock_guard<std::mutex> lock(mu);
          observed.emplace_back(into.label, from.label);
        });
    // Pairs within a level may run in any order; the *set* of merge
    // edges is what the topology fixes.
    std::sort(observed.begin(), observed.end());
    const Pairs expected = {{"0", "1"}, {"0", "2"}, {"0", "4"}, {"2", "3"}};
    EXPECT_EQ(observed, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, LazyStartAndShutdown) {
  ThreadPool& pool = ThreadPool::Get();
  pool.Shutdown();
  EXPECT_FALSE(pool.started());

  ScopedThreads threads(4);
  EXPECT_EQ(pool.num_threads(), 4);
  // SetNumThreads alone must not start workers; the first parallel Run
  // does.
  EXPECT_FALSE(pool.started());

  std::atomic<int64_t> sum{0};
  pool.Run(16, [&](int64_t task) { sum += task; });
  EXPECT_EQ(sum.load(), 16 * 15 / 2);
  EXPECT_TRUE(pool.started());

  pool.Shutdown();
  EXPECT_FALSE(pool.started());

  // The pool restarts lazily after Shutdown.
  sum = 0;
  pool.Run(8, [&](int64_t task) { sum += task; });
  EXPECT_EQ(sum.load(), 8 * 7 / 2);
  EXPECT_TRUE(pool.started());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineWithoutWorkers) {
  ThreadPool& pool = ThreadPool::Get();
  pool.Shutdown();
  ScopedThreads threads(1);

  std::vector<int64_t> order;
  pool.Run(5, [&](int64_t task) { order.push_back(task); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce) {
  ScopedThreads threads(4);
  constexpr int64_t kTasks = 1000;
  std::vector<std::atomic<int32_t>> hits(kTasks);
  ThreadPool::Get().Run(kTasks, [&](int64_t task) {
    hits[static_cast<size_t>(task)].fetch_add(1);
  });
  for (int64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<size_t>(t)].load(), 1) << "task " << t;
  }
}

TEST(ThreadPoolTest, ExceptionFromLowestFailingTaskPropagates) {
  ScopedThreads threads(4);
  // Several tasks throw; the caller must see the lowest-numbered one,
  // regardless of which worker hit it first.
  try {
    ThreadPool::Get().Run(64, [&](int64_t task) {
      if (task == 7 || task == 23 || task == 55) {
        throw std::runtime_error("task " + std::to_string(task));
      }
    });
    FAIL() << "Run() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }

  // The pool must stay usable after an exception.
  std::atomic<int64_t> count{0};
  ThreadPool::Get().Run(16, [&](int64_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, NestedRunExecutesInlineWithoutDeadlock) {
  ScopedThreads threads(4);
  std::atomic<int64_t> inner_total{0};
  ThreadPool::Get().Run(8, [&](int64_t) {
    // A nested Run on the same pool must serialise on the calling
    // worker instead of deadlocking on the (busy) pool.
    int64_t local = 0;
    ThreadPool::Get().Run(10, [&](int64_t inner) { local += inner; });
    inner_total += local;
  });
  EXPECT_EQ(inner_total.load(), 8 * (10 * 9 / 2));
}

TEST(ParallelForTest, BodySeesEachIndexOnceViaChunks) {
  ScopedThreads threads(4);
  constexpr int64_t kN = 500;
  std::vector<std::atomic<int32_t>> hits(kN);
  ParallelFor(0, kN, 17, [&](const ChunkRange& chunk) {
    for (int64_t i = chunk.begin; i < chunk.end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

/// Sums chunk-private float partials via ParallelReduceOrdered at the
/// given thread count; the ordered merge makes the result a pure
/// function of (n, grain), so any two thread counts must agree bitwise.
float OrderedFloatSum(int32_t num_threads, int64_t n, int64_t grain) {
  ScopedThreads threads(num_threads);
  float total = 0.0f;
  ParallelReduceOrdered<float>(
      0, n, grain,
      [](const ChunkRange& chunk, float& partial) {
        for (int64_t i = chunk.begin; i < chunk.end; ++i) {
          // Values with non-associative rounding behaviour: 1/(i+1).
          partial += 1.0f / static_cast<float>(i + 1);
        }
      },
      [&](const ChunkRange&, float&& partial) { total += partial; });
  return total;
}

TEST(ParallelReduceOrderedTest, MergesInChunkOrder) {
  ScopedThreads threads(4);
  std::vector<int64_t> merge_order;
  ParallelReduceOrdered<int64_t>(
      0, 97, 8,
      [](const ChunkRange& chunk, int64_t& state) { state = chunk.index; },
      [&](const ChunkRange& chunk, int64_t&& state) {
        EXPECT_EQ(state, chunk.index);
        merge_order.push_back(chunk.index);
      });
  std::vector<int64_t> expected(merge_order.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merge_order, expected);
}

TEST(ThreadPoolTest, PoolHealthMetricsVisibleWithoutProfiler) {
  // The par.* gauges are part of the always-on metrics surface: they
  // must move after any pool job even when --profile is off.
  auto& metrics = obs::MetricsRegistry::Get();
  obs::Counter& busy = metrics.GetCounter("par.busy_micros");
  obs::Counter& capacity = metrics.GetCounter("par.capacity_micros");
  obs::Gauge& depth = metrics.GetGauge("par.queue_depth.peak");
  const int64_t busy_before = busy.Value();
  const int64_t capacity_before = capacity.Value();

  ScopedThreads scoped(2);
  ParallelFor(0, 20000, 64, [](const ChunkRange& r) {
    volatile int64_t sink = 0;
    for (int64_t i = r.begin; i < r.end; ++i) sink = sink + i;
  });

  EXPECT_GE(busy.Value(), busy_before);
  EXPECT_GT(capacity.Value(), capacity_before);
  // Capacity counts every worker's window; busy can never exceed it.
  EXPECT_LE(busy.Value(), capacity.Value());
  const double util = metrics.GetGauge("par.utilization").Value();
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.05);  // worker windows are clocked separately from wall
  // 20000/64 chunks through a 2-thread pool leaves a visible queue.
  EXPECT_GE(depth.Value(), 1.0);
  // Idle accounting exists (its value depends on wake timing, so only
  // non-negativity is asserted).
  EXPECT_GE(metrics.GetCounter("par.worker_idle_micros").Value(), 0);
}

TEST(ParallelReduceOrderedTest, FloatSumBitIdenticalAcrossThreadCounts) {
  const int64_t kN = 4096;
  const int64_t kGrain = 64;
  const float at1 = OrderedFloatSum(1, kN, kGrain);
  const float at2 = OrderedFloatSum(2, kN, kGrain);
  const float at8 = OrderedFloatSum(8, kN, kGrain);
  // Bit-exact, not EXPECT_FLOAT_EQ: this is the determinism contract.
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);

  // Sanity: a *different grain* is allowed to (and here does) change the
  // rounding — proving the test would catch a reassociated reduction.
  const float regrained = OrderedFloatSum(1, kN, kN);
  EXPECT_NE(at1, regrained);
}

TEST(BackgroundWorkerTest, ThrowingTaskSurfacesOnDrainNotTerminate) {
  BackgroundWorker worker("test-bg");
  ASSERT_TRUE(worker.Submit([] {
    throw std::runtime_error("disk exploded");
  }).ok());
  const Status drained = worker.Drain();
  EXPECT_EQ(drained.code(), StatusCode::kInternal);
  EXPECT_NE(drained.message().find("disk exploded"), std::string::npos);
  EXPECT_NE(drained.message().find("test-bg"), std::string::npos);
  // The error was consumed: the worker is healthy again.
  EXPECT_TRUE(worker.Drain().ok());
}

TEST(BackgroundWorkerTest, FailureKeepsLaterTasksRunningAndSubmitReports) {
  BackgroundWorker worker("test-bg");
  std::atomic<int> ran{0};
  ASSERT_TRUE(worker.Submit([] { throw 42; }).ok());  // non-std exception
  ASSERT_TRUE(worker.Drain().code() == StatusCode::kInternal);
  // A later Submit both enqueues its task and reports nothing stale.
  EXPECT_TRUE(worker.Submit([&] { ran.fetch_add(1); }).ok());
  EXPECT_TRUE(worker.Drain().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(BackgroundWorkerTest, OnlyFirstFailureIsKept) {
  BackgroundWorker worker("test-bg");
  ASSERT_TRUE(worker.Submit([] { throw std::runtime_error("first"); }).ok());
  ASSERT_TRUE(worker.Submit([] { throw std::runtime_error("second"); }).ok());
  const Status drained = worker.Drain();
  EXPECT_NE(drained.message().find("first"), std::string::npos);
  EXPECT_EQ(drained.message().find("second"), std::string::npos);
  EXPECT_TRUE(worker.Drain().ok());
}

}  // namespace
}  // namespace largeea::par
