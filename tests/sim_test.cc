// Tests for src/sim: sparse similarity matrix, top-k search, LSH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "src/la/ops.h"
#include "src/sim/csls.h"
#include "src/sim/sim_io.h"
#include "src/sim/lsh.h"
#include "src/sim/sparse_sim.h"
#include "src/sim/topk_search.h"

namespace largeea {
namespace {

TEST(SparseSimMatrixTest, AccumulateKeepsRowsSorted) {
  SparseSimMatrix m(2, 10, 3);
  m.Accumulate(0, 3, 0.5f);
  m.Accumulate(0, 7, 0.9f);
  m.Accumulate(0, 1, 0.7f);
  const auto row = m.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].column, 7);
  EXPECT_EQ(row[1].column, 1);
  EXPECT_EQ(row[2].column, 3);
}

TEST(SparseSimMatrixTest, EvictsWeakestWhenFull) {
  SparseSimMatrix m(1, 10, 2);
  m.Accumulate(0, 1, 0.1f);
  m.Accumulate(0, 2, 0.2f);
  m.Accumulate(0, 3, 0.3f);  // evicts column 1
  EXPECT_EQ(m.RankInRow(0, 1), 0);
  EXPECT_EQ(m.RankInRow(0, 3), 1);
  EXPECT_EQ(m.RankInRow(0, 2), 2);
  m.Accumulate(0, 4, 0.05f);  // too weak to enter
  EXPECT_EQ(m.RankInRow(0, 4), 0);
}

TEST(SparseSimMatrixTest, AccumulateAddsToExisting) {
  SparseSimMatrix m(1, 10, 3);
  m.Accumulate(0, 5, 0.4f);
  m.Accumulate(0, 6, 0.5f);
  m.Accumulate(0, 5, 0.3f);  // 5 now 0.7, overtakes 6
  EXPECT_EQ(m.ArgmaxOfRow(0), 5);
  EXPECT_EQ(m.RankInRow(0, 6), 2);
}

TEST(SparseSimMatrixTest, EmptyRowBehaviour) {
  const SparseSimMatrix m(3, 3, 2);
  EXPECT_EQ(m.ArgmaxOfRow(1), kInvalidEntity);
  EXPECT_EQ(m.RankInRow(1, 0), 0);
  EXPECT_EQ(m.TotalEntries(), 0);
}

TEST(SparseSimMatrixTest, ArgmaxPerColumn) {
  SparseSimMatrix m(3, 3, 3);
  m.Accumulate(0, 0, 0.9f);
  m.Accumulate(1, 0, 0.5f);
  m.Accumulate(2, 1, 0.7f);
  const auto best = m.ArgmaxPerColumn();
  EXPECT_EQ(best[0], 0);
  EXPECT_EQ(best[1], 2);
  EXPECT_EQ(best[2], kInvalidEntity);
}

TEST(SparseSimMatrixTest, FuseUnionsAndWeights) {
  SparseSimMatrix a(1, 10, 5), b(1, 10, 5);
  a.Accumulate(0, 1, 1.0f);
  a.Accumulate(0, 2, 0.5f);
  b.Accumulate(0, 2, 1.0f);
  b.Accumulate(0, 3, 0.8f);
  const SparseSimMatrix fused = a.Fuse(b, 1.0f, 0.5f, 5);
  // 2: 0.5 + 0.5 = 1.0; 1: 1.0; 3: 0.4
  EXPECT_EQ(fused.RankInRow(0, 3), 3);
  const auto row = fused.Row(0);
  ASSERT_EQ(row.size(), 3u);
  float score2 = 0.0f;
  for (const SimEntry& e : row) {
    if (e.column == 2) score2 = e.score;
  }
  EXPECT_FLOAT_EQ(score2, 1.0f);
}

TEST(SparseSimMatrixTest, FuseTruncates) {
  SparseSimMatrix a(1, 10, 5), b(1, 10, 5);
  for (int i = 0; i < 5; ++i) a.Accumulate(0, i, 0.1f * (i + 1));
  for (int i = 5; i < 10; ++i) b.Accumulate(0, i, 0.01f * (i + 1));
  const SparseSimMatrix fused = a.Fuse(b, 1.0f, 1.0f, 4);
  EXPECT_EQ(fused.Row(0).size(), 4u);
  EXPECT_EQ(fused.ArgmaxOfRow(0), 4);  // highest from a
}

TEST(SparseSimMatrixTest, MemoryBytesTracksEntries) {
  SparseSimMatrix m(2, 10, 0);
  EXPECT_EQ(m.MemoryBytes(), 0);
  m.Accumulate(0, 1, 1.0f);
  m.Accumulate(1, 2, 1.0f);
  EXPECT_EQ(m.MemoryBytes(),
            static_cast<int64_t>(2 * sizeof(SimEntry)));
}

TEST(SparseSimMatrixTest, UnlimitedRowsWhenCapNonPositive) {
  SparseSimMatrix m(1, 200, 0);
  for (int i = 0; i < 100; ++i) m.Accumulate(0, i, 1.0f / (i + 1));
  EXPECT_EQ(m.Row(0).size(), 100u);
}

TEST(CslsTest, RecentersByLocalMeans) {
  SparseSimMatrix m(2, 3, 3);
  m.Accumulate(0, 0, 1.0f);
  m.Accumulate(0, 1, 0.5f);
  m.Accumulate(1, 1, 0.9f);
  const SparseSimMatrix rescaled = CslsRescale(m);
  // Row 0 mean = 0.75; col 0 mean = 1.0; col 1 mean = (0.5+0.9)/2 = 0.7.
  float score00 = 0, score01 = 0, score11 = 0;
  for (const SimEntry& e : rescaled.Row(0)) {
    if (e.column == 0) score00 = e.score;
    if (e.column == 1) score01 = e.score;
  }
  for (const SimEntry& e : rescaled.Row(1)) {
    if (e.column == 1) score11 = e.score;
  }
  EXPECT_NEAR(score00, 2.0f * 1.0f - 0.75f - 1.0f, 1e-5f);
  EXPECT_NEAR(score01, 2.0f * 0.5f - 0.75f - 0.7f, 1e-5f);
  EXPECT_NEAR(score11, 2.0f * 0.9f - 0.9f - 0.7f, 1e-5f);
}

TEST(CslsTest, PreservesWithinRowRanking) {
  Rng rng(61);
  SparseSimMatrix m(20, 30, 8);
  for (int32_t r = 0; r < 20; ++r) {
    for (int i = 0; i < 8; ++i) {
      m.Accumulate(r, static_cast<EntityId>(rng.Uniform(30)),
                   rng.UniformFloat());
    }
  }
  const SparseSimMatrix rescaled = CslsRescale(m);
  // CSLS shifts all entries of a row by the same row mean and differing
  // column means; within-row *argmax* can legitimately change, but the
  // entry set must be identical.
  for (int32_t r = 0; r < 20; ++r) {
    EXPECT_EQ(rescaled.Row(r).size(), m.Row(r).size());
    for (const SimEntry& e : m.Row(r)) {
      EXPECT_NE(rescaled.RankInRow(r, e.column), 0);
    }
  }
}

TEST(SimIoTest, RoundTripPreservesEverything) {
  SparseSimMatrix m(3, 5, 4);
  Rng rng(71);
  for (int32_t r = 0; r < 3; ++r) {
    for (int i = 0; i < 4; ++i) {
      m.Accumulate(r, static_cast<EntityId>(rng.Uniform(5)),
                   rng.UniformFloat() - 0.3f);  // include negative scores
    }
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "sim_io_test.tsv").string();
  ASSERT_TRUE(SaveSimMatrix(m, path).ok());
  const auto loaded = LoadSimMatrix(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), m.num_rows());
  ASSERT_EQ(loaded->num_cols(), m.num_cols());
  ASSERT_EQ(loaded->max_entries_per_row(), m.max_entries_per_row());
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto a = m.Row(r);
    const auto b = loaded->Row(r);
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].column, b[i].column);
      EXPECT_FLOAT_EQ(a[i].score, b[i].score);
    }
  }
  std::remove(path.c_str());
}

TEST(SimIoTest, RejectsMalformedFiles) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sim_io_bad.tsv").string();
  {
    std::ofstream out(path);
    out << "not-a-sim-file\n";
  }
  EXPECT_EQ(LoadSimMatrix(path).status().code(),
            StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "largeea-sim v1 2 2 2\n9\t0\t1.0\n";  // row out of range
  }
  EXPECT_EQ(LoadSimMatrix(path).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadSimMatrix("/nonexistent/sim.tsv").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

// Brute-force reference for top-k.
std::vector<int32_t> BruteTopK(const Matrix& a, int64_t row, const Matrix& b,
                               int32_t k, SimMetric metric) {
  std::vector<std::pair<float, int32_t>> scored;
  for (int64_t j = 0; j < b.rows(); ++j) {
    const float s =
        metric == SimMetric::kManhattan
            ? ManhattanSimilarity(
                  ManhattanDistance(a.Row(row), b.Row(j), a.cols()))
            : Dot(a.Row(row), b.Row(j), a.cols());
    scored.emplace_back(-s, static_cast<int32_t>(j));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < k; ++i) ids.push_back(scored[i].second);
  return ids;
}

class TopKTest : public ::testing::TestWithParam<SimMetric> {};

TEST_P(TopKTest, ExactMatchesBruteForce) {
  Rng rng(41);
  Matrix a(20, 8), b(50, 8);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  const TopKOptions options{.k = 5, .metric = GetParam()};
  const SparseSimMatrix result = ExactTopK(a, b, options);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const auto expected = BruteTopK(a, i, b, 5, GetParam());
    const auto row = result.Row(static_cast<int32_t>(i));
    ASSERT_EQ(row.size(), 5u);
    // Same candidate set (ordering ties may differ).
    std::vector<int32_t> got;
    for (const SimEntry& e : row) got.push_back(e.column);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want = expected;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, TopKTest,
                         ::testing::Values(SimMetric::kManhattan,
                                           SimMetric::kDot));

TEST(TopKTest, IdMapsRespected) {
  Rng rng(43);
  Matrix a(3, 4), b(4, 4);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  const std::vector<EntityId> row_ids{10, 20, 30};
  const std::vector<EntityId> col_ids{5, 6, 7, 8};
  SparseSimMatrix out(40, 10, 2);
  ExactTopKInto(a, row_ids, b, col_ids, TopKOptions{.k = 2}, out);
  EXPECT_EQ(out.Row(10).size(), 2u);
  EXPECT_EQ(out.Row(20).size(), 2u);
  EXPECT_EQ(out.Row(0).size(), 0u);
  for (const SimEntry& e : out.Row(10)) {
    EXPECT_GE(e.column, 5);
    EXPECT_LE(e.column, 8);
  }
}

TEST(LshTest, FindsIdenticalVectors) {
  Rng rng(47);
  Matrix data(200, 16);
  data.GlorotInit(rng);
  L2NormalizeRows(data);
  const LshIndex index(data, LshOptions{.num_tables = 12,
                                        .bits_per_table = 8,
                                        .seed = 3});
  // Querying with a stored vector must return it.
  std::vector<int32_t> candidates;
  int found = 0;
  for (int32_t i = 0; i < 200; ++i) {
    index.Query(data.Row(i), candidates);
    if (std::find(candidates.begin(), candidates.end(), i) !=
        candidates.end()) {
      ++found;
    }
  }
  EXPECT_EQ(found, 200);
}

TEST(LshTest, NearNeighborsRecall) {
  Rng rng(53);
  const int32_t n = 300, dim = 32;
  Matrix base(n, dim), noisy(n, dim);
  base.GlorotInit(rng);
  L2NormalizeRows(base);
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t d = 0; d < dim; ++d) {
      noisy.At(i, d) =
          base.At(i, d) + 0.05f * static_cast<float>(rng.Gaussian());
    }
  }
  L2NormalizeRows(noisy);
  const LshIndex index(base, LshOptions{.num_tables = 16,
                                        .bits_per_table = 10,
                                        .seed = 5});
  std::vector<int32_t> candidates;
  int recalled = 0;
  for (int32_t i = 0; i < n; ++i) {
    index.Query(noisy.Row(i), candidates);
    if (std::find(candidates.begin(), candidates.end(), i) !=
        candidates.end()) {
      ++recalled;
    }
  }
  // Slightly-perturbed points should collide nearly always.
  EXPECT_GT(recalled, static_cast<int>(0.9 * n));
}

TEST(LshTest, LshTopKFindsPlantedMatches) {
  Rng rng(59);
  const int32_t n = 200, dim = 24;
  Matrix target(n, dim);
  target.GlorotInit(rng);
  L2NormalizeRows(target);
  Matrix source = target;  // exact copies: planted 1-1 matches
  const LshIndex index(target, LshOptions{.num_tables = 12,
                                          .bits_per_table = 10,
                                          .seed = 7});
  std::vector<EntityId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  SparseSimMatrix out(n, n, 5);
  LshTopKInto(source, ids, target, ids, index,
              TopKOptions{.k = 5, .metric = SimMetric::kManhattan}, out);
  int hits = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (out.ArgmaxOfRow(i) == i) ++hits;
  }
  EXPECT_GT(hits, static_cast<int>(0.95 * n));
}

}  // namespace
}  // namespace largeea
