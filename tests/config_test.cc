// The unified configuration API (src/core/config.h): flags bind once,
// overlay onto the pipeline options, validate cross-field invariants,
// and round-trip into the run report — CLI flags, effective Config, and
// report JSON must all agree.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/core/config.h"
#include "src/obs/report.h"

namespace largeea {
namespace {

/// Builds Flags from a flag list (argv[0] is synthesised).
Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(args);
  storage.insert(storage.begin(), "test");
  std::vector<char*> argv;
  for (std::string& arg : storage) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(ConfigTest, DefaultsValidateAndMatchOptionStructs) {
  auto config = ConfigFromFlags(MakeFlags({}));
  ASSERT_TRUE(config.ok());
  const LargeEaOptions defaults;
  EXPECT_EQ(config->pipeline.fused_top_k, defaults.fused_top_k);
  EXPECT_EQ(config->pipeline.structure_channel.num_batches,
            defaults.structure_channel.num_batches);
  EXPECT_EQ(config->pipeline.structure_channel.model, ModelKind::kRrea);
  EXPECT_EQ(config->pipeline.stream.memory_budget_mb, -1);  // unset
}

TEST(ConfigTest, FlagsOverlayOntoPipelineOptions) {
  auto config = ConfigFromFlags(MakeFlags(
      {"--model=gcn", "--partition=vps", "--metric=dot", "--batches=7",
       "--epochs=13", "--memory-budget-mb=48", "--stream-tile-rows=96",
       "--stream-prefetch=false", "--use-lsh", "--string-weight=0.25",
       "--threads=3", "--strict-io", "--report-out=/tmp/r.json"}));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->pipeline.structure_channel.model, ModelKind::kGcnAlign);
  EXPECT_EQ(config->pipeline.structure_channel.strategy,
            PartitionStrategy::kVps);
  EXPECT_EQ(config->pipeline.name_channel.nff.sens.metric, SimMetric::kDot);
  EXPECT_EQ(config->pipeline.structure_channel.num_batches, 7);
  EXPECT_EQ(config->pipeline.structure_channel.train.epochs, 13);
  EXPECT_EQ(config->pipeline.stream.memory_budget_mb, 48);
  EXPECT_EQ(config->pipeline.stream.tile_rows, 96);
  EXPECT_FALSE(config->pipeline.stream.prefetch);
  EXPECT_TRUE(config->pipeline.name_channel.nff.sens.use_lsh);
  EXPECT_FLOAT_EQ(config->pipeline.name_channel.nff.string_weight, 0.25f);
  EXPECT_EQ(config->threads, 3);
  EXPECT_TRUE(config->strict_io);
  EXPECT_EQ(config->report_out, "/tmp/r.json");
}

TEST(ConfigTest, RejectsBadValuesWithFlagNamingMessages) {
  const struct {
    std::vector<std::string> args;
    const char* needle;
  } cases[] = {
      {{"--model=bert"}, "--model"},
      {{"--partition=hash"}, "--partition"},
      {{"--metric=cosine"}, "--metric"},
      {{"--epochs=abc"}, "--epochs"},
      {{"--log-level=loud"}, "--log-level"},
      {{"--simd=avx512"}, "--simd"},
      {{"--threads=-2"}, "--threads"},
      {{"--memory-budget-mb=-7"}, "--memory-budget-mb"},
      {{"--resume"}, "--checkpoint-dir"},
      {{"--use-name-channel=false", "--use-structure-channel=false"},
       "--use-name-channel"},
  };
  for (const auto& c : cases) {
    auto config = ConfigFromFlags(MakeFlags(c.args));
    ASSERT_FALSE(config.ok()) << c.args.front();
    EXPECT_NE(config.status().ToString().find(c.needle), std::string::npos)
        << config.status().ToString();
  }
}

TEST(ConfigTest, FingerprintSeesConfigBoundStreamFlags) {
  // The flag -> Config -> fingerprint path must agree with directly
  // set options, so checkpoints from the CLI and from code match.
  auto flagged = ConfigFromFlags(MakeFlags({"--memory-budget-mb=32"}));
  ASSERT_TRUE(flagged.ok());
  LargeEaOptions direct;
  direct.stream.memory_budget_mb = 32;
  EaDataset empty;
  EXPECT_EQ(LargeEaConfigFingerprint(empty, flagged->pipeline),
            LargeEaConfigFingerprint(empty, direct));
  LargeEaOptions unbudgeted;
  unbudgeted.stream.memory_budget_mb = 0;
  EXPECT_NE(LargeEaConfigFingerprint(empty, flagged->pipeline),
            LargeEaConfigFingerprint(empty, unbudgeted));
}

TEST(ConfigTest, ReportRoundTripAgreesWithFlags) {
  auto config = ConfigFromFlags(MakeFlags(
      {"--model=transe", "--batches=9", "--memory-budget-mb=24",
       "--string-weight=0.125", "--augment=false"}));
  ASSERT_TRUE(config.ok());
  obs::RunReport report;
  config->WriteTo(report);
  const std::string json = report.ToJson();
  // Every flag the user passed appears in the config section with the
  // exact effective value.
  EXPECT_NE(json.find("\"model\":\"transe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"batches\":\"9\""), std::string::npos);
  EXPECT_NE(json.find("\"memory-budget-mb\":\"24\""), std::string::npos);
  EXPECT_NE(json.find("\"string-weight\":\"0.125\""), std::string::npos);
  EXPECT_NE(json.find("\"augment\":\"false\""), std::string::npos);
  // Defaults are reported too (the full effective configuration).
  EXPECT_NE(json.find("\"epochs\":\"60\""), std::string::npos);

  // The reported values re-parse to an equivalent Config: feed them
  // back as flags and compare the snapshots.
  FlagRegistry first_registry;
  Config first = *config;
  first.Register(first_registry);
  std::vector<std::string> round_trip_args;
  for (const auto& [name, value] : first_registry.Values()) {
    round_trip_args.push_back("--" + name + "=" + value);
  }
  auto reparsed = ConfigFromFlags(MakeFlags(round_trip_args));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  FlagRegistry second_registry;
  reparsed->Register(second_registry);
  EXPECT_EQ(first_registry.Values(), second_registry.Values());
}

TEST(FlagRegistryTest, KnowsAndHelpCoverEveryBinding) {
  Config config;
  FlagRegistry registry;
  config.Register(registry);
  EXPECT_TRUE(registry.Knows("memory-budget-mb"));
  EXPECT_TRUE(registry.Knows("model"));
  EXPECT_FALSE(registry.Knows("source"));  // binary-local, not Config
  const std::string help = ConfigHelp();
  for (const auto& [name, value] : registry.Values()) {
    EXPECT_NE(help.find("--" + name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace largeea
