// The memory-budgeted streaming layer (DESIGN.md §10): tile spill and
// reload round-trip bit-exactly, the LRU cache evicts under a tiny
// budget and transparently reloads, FuseStreamed matches Fuse entry for
// entry, and the full budgeted pipeline reproduces the unbudgeted fused
// matrix and metrics bit-identically — at any thread count and on every
// SIMD backend this CPU has.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/common/rng.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/la/matrix.h"
#include "src/obs/metrics.h"
#include "src/par/thread_pool.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"
#include "src/sim/sparse_sim.h"
#include "src/simd/simd.h"
#include "src/stream/memory_budget.h"
#include "src/stream/stream_options.h"
#include "src/stream/tile_store.h"

namespace largeea {
namespace {

stream::MemoryBudget BudgetOfMb(int64_t mb, int32_t tile_rows = 0) {
  stream::StreamOptions options;
  options.memory_budget_mb = mb;
  options.tile_rows = tile_rows;
  return stream::MemoryBudget(options);
}

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.GlorotInit(rng);
  return m;
}

void ExpectMatrixEq(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.At(r, c), b.At(r, c)) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(StreamOptionsTest, EnvResolutionRespectsExplicitValues) {
  stream::StreamOptions explicit_off;
  explicit_off.memory_budget_mb = 0;
  EXPECT_EQ(stream::ResolveStreamOptions(explicit_off).memory_budget_mb, 0);
  EXPECT_FALSE(stream::StreamingEnabled(explicit_off));

  stream::StreamOptions explicit_on;
  explicit_on.memory_budget_mb = 64;
  EXPECT_EQ(stream::ResolveStreamOptions(explicit_on).memory_budget_mb, 64);
  EXPECT_TRUE(stream::StreamingEnabled(explicit_on));
}

TEST(MemoryBudgetTest, TileRowsHonourBudgetAndBounds) {
  // Explicit tile_rows wins, clamped to the matrix.
  EXPECT_EQ(BudgetOfMb(8, 100).TileRowsFor(1000, 1024), 100);
  EXPECT_EQ(BudgetOfMb(8, 5000).TileRowsFor(1000, 1024), 1000);
  // Disabled budget: one tile spanning everything.
  EXPECT_EQ(BudgetOfMb(0).TileRowsFor(1000, 1024), 1000);
  // Auto sizing: ~kAutoTilesPerBudget tiles per budget, floored.
  const int64_t rows = BudgetOfMb(8).TileRowsFor(1'000'000, 1024);
  EXPECT_GE(rows, stream::MemoryBudget::kMinTileRows);
  EXPECT_LE(rows, (int64_t{8} << 20) / 1024);
}

TEST(TileStoreTest, SpillReloadRoundTripIsBitExact) {
  const stream::MemoryBudget budget = BudgetOfMb(1);
  stream::TileStore store(budget);
  std::vector<Matrix> originals;
  std::vector<stream::TileId> ids;
  for (int i = 0; i < 6; ++i) {
    originals.push_back(RandomMatrix(64, 32, 1000 + i));
    ids.push_back(store.Put(originals.back()));
  }
  EXPECT_EQ(store.num_tiles(), 6);
  for (int i = 0; i < 6; ++i) {
    const std::shared_ptr<const Matrix> tile = store.Get(ids[i]);
    ASSERT_NE(tile, nullptr);
    ExpectMatrixEq(*tile, originals[i]);
  }
}

#if LARGEEA_FAULT_INJECTION
TEST(TileStoreTest, SpillWriteFailurePinsTilesInRamBitIdentically) {
  auto& metrics = obs::MetricsRegistry::Get();
  const int64_t failures_before =
      metrics.GetCounter("stream.spill_failures").Value();

  // Every spill write fails from here on — a full or broken scratch
  // disk. The store must fall back to pinning tiles in RAM and serve
  // every read with the exact bytes that were Put.
  rt::FaultInjector::Get().Arm(
      "stream.spill.write",
      rt::FaultSpec{StatusCode::kUnavailable, "scratch disk full", 1, -1,
                    rt::FaultAction::kFail});
  {
    const stream::MemoryBudget budget = BudgetOfMb(1);
    stream::TileStore store(budget);
    std::vector<Matrix> originals;
    std::vector<stream::TileId> ids;
    for (int i = 0; i < 6; ++i) {
      originals.push_back(RandomMatrix(64, 32, 2000 + i));
      ids.push_back(store.Put(originals.back()));
    }
    for (int i = 0; i < 6; ++i) {
      const std::shared_ptr<const Matrix> tile = store.Get(ids[i]);
      ASSERT_NE(tile, nullptr);
      ExpectMatrixEq(*tile, originals[i]);
    }
  }
  rt::FaultInjector::Get().Reset();

  EXPECT_GT(metrics.GetCounter("stream.spill_failures").Value(),
            failures_before);
}
#endif  // LARGEEA_FAULT_INJECTION

TEST(TileStoreTest, EvictsUnderTinyBudgetAndReloadsEvictedTiles) {
  auto& metrics = obs::MetricsRegistry::Get();
  const int64_t evictions_before =
      metrics.GetCounter("stream.cache.evictions").Value();

  // 1 MiB budget, but the tracker is already charged for the live test
  // process, so the cache runs at its floor of 3 tiles; 8 tiles of
  // 128x256 floats (128 KiB each) must evict.
  const stream::MemoryBudget budget = BudgetOfMb(1);
  stream::TileStore store(budget);
  std::vector<Matrix> originals;
  std::vector<stream::TileId> ids;
  for (int i = 0; i < 8; ++i) {
    originals.push_back(RandomMatrix(128, 256, 2000 + i));
    ids.push_back(store.Put(originals.back()));
  }
  const int64_t tile_bytes = 128 * 256 * sizeof(float);
  EXPECT_LE(store.ResidentBytes(),
            budget.CacheCapacityBytes(tile_bytes) + tile_bytes);
  EXPECT_GT(metrics.GetCounter("stream.cache.evictions").Value(),
            evictions_before);

  // Every tile — including evicted ones — reloads bit-exactly.
  for (int i = 0; i < 8; ++i) {
    const std::shared_ptr<const Matrix> tile = store.Get(ids[i]);
    ASSERT_NE(tile, nullptr);
    ExpectMatrixEq(*tile, originals[i]);
  }
}

TEST(TileStoreTest, PinnedTilesSurviveEvictionPressure) {
  const stream::MemoryBudget budget = BudgetOfMb(1);
  stream::TileStore store(budget);
  const Matrix original = RandomMatrix(128, 256, 7);
  const stream::TileId first = store.Put(original);
  // Hold the pin while flooding the cache far past its capacity.
  const std::shared_ptr<const Matrix> pinned = store.Get(first);
  for (int i = 0; i < 8; ++i) {
    (void)store.Put(RandomMatrix(128, 256, 3000 + i));
  }
  // The pinned pointer must still see the original bytes.
  ExpectMatrixEq(*pinned, original);
}

TEST(TileStoreTest, PrefetchLoadsInBackground) {
  const stream::MemoryBudget budget = BudgetOfMb(1);
  stream::TileStore store(budget);
  std::vector<stream::TileId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(store.Put(RandomMatrix(128, 256, 4000 + i)));
  }
  // Early tiles were evicted by the later Puts; prefetch and drain,
  // then Get must hit without a synchronous load.
  const int64_t issued_before = obs::MetricsRegistry::Get()
                                    .GetCounter("stream.prefetch.issued")
                                    .Value();
  store.Prefetch(ids[0]);
  store.DrainPrefetches();
  EXPECT_GE(obs::MetricsRegistry::Get()
                .GetCounter("stream.prefetch.issued")
                .Value(),
            issued_before);
  const std::shared_ptr<const Matrix> tile = store.Get(ids[0]);
  ASSERT_NE(tile, nullptr);
  EXPECT_EQ(tile->rows(), 128);
}

TEST(TileMatrixTest, AppendAndTileViewsCoverAllRows) {
  const stream::MemoryBudget budget = BudgetOfMb(1);
  stream::TileStore store(budget);
  const Matrix full = RandomMatrix(100, 16, 99);
  stream::TileMatrix tiles(&store, 100, 16, 48);
  ASSERT_EQ(tiles.num_tiles(), 3);
  for (int64_t t = 0; t < tiles.num_tiles(); ++t) {
    const int64_t begin = tiles.TileBegin(t);
    const int64_t end = tiles.TileEnd(t);
    Matrix block(end - begin, 16);
    for (int64_t r = begin; r < end; ++r) {
      for (int64_t c = 0; c < 16; ++c) block.At(r - begin, c) = full.At(r, c);
    }
    tiles.Append(std::move(block));
  }
  ASSERT_TRUE(tiles.complete());
  for (int64_t t = 0; t < tiles.num_tiles(); ++t) {
    tiles.Prefetch(t + 1);  // out-of-range on the last tile: no-op
    const std::shared_ptr<const Matrix> tile = tiles.Tile(t);
    for (int64_t r = tiles.TileBegin(t); r < tiles.TileEnd(t); ++r) {
      for (int64_t c = 0; c < 16; ++c) {
        ASSERT_EQ(tile->At(r - tiles.TileBegin(t), c), full.At(r, c));
      }
    }
  }
}

SparseSimMatrix RandomSparse(int32_t rows, int32_t cols, int32_t per_row,
                             uint64_t seed) {
  Rng rng(seed);
  SparseSimMatrix m(rows, cols, per_row);
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t e = 0; e < per_row; ++e) {
      m.Accumulate(r, static_cast<EntityId>(rng.Uniform(cols)),
                   static_cast<float>(rng.Uniform(1000)) * 1e-3f);
    }
  }
  return m;
}

TEST(FuseStreamedTest, MatchesFuseBitForBit) {
  const SparseSimMatrix a = RandomSparse(500, 400, 20, 5);
  const SparseSimMatrix b = RandomSparse(500, 400, 20, 6);
  const SparseSimMatrix fused = a.Fuse(b, 1.0f, 0.05f, 30);
  // Small rows_per_block forces several release/refresh cycles.
  const SparseSimMatrix streamed = SparseSimMatrix::FuseStreamed(
      SparseSimMatrix(a), SparseSimMatrix(b), 1.0f, 0.05f, 30,
      /*rows_per_block=*/64);
  ASSERT_EQ(fused.num_rows(), streamed.num_rows());
  for (int32_t r = 0; r < fused.num_rows(); ++r) {
    const auto fr = fused.Row(r);
    const auto sr = streamed.Row(r);
    ASSERT_EQ(fr.size(), sr.size()) << "row " << r;
    for (size_t i = 0; i < fr.size(); ++i) {
      ASSERT_EQ(fr[i].column, sr[i].column) << "row " << r;
      ASSERT_EQ(fr[i].score, sr[i].score) << "row " << r;
    }
  }
}

uint64_t FusedHash(const SparseSimMatrix& m) {
  std::string bytes;
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    bytes.append(reinterpret_cast<const char*>(row.data()),
                 row.size_bytes());
  }
  return rt::Fnv1a64(bytes);
}

// ---------------------------------------------------------------------
// Pipeline-level bit-identity: streamed == in-memory, across thread
// counts and SIMD backends, with the tracked peak under the budget.

class StreamPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = par::ThreadPool::Get().num_threads();
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
  }
  int32_t saved_threads_ = 1;

  static EaDataset MakeDataset() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    return GenerateBenchmark(spec);
  }

  static LargeEaOptions BaseOptions() {
    LargeEaOptions options;
    options.structure_channel.train.epochs = 3;
    options.structure_channel.num_batches = 2;
    return options;
  }

  static void ExpectSameResult(const LargeEaResult& a,
                               const LargeEaResult& b) {
    ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
    for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
      const auto ra = a.fused.Row(r);
      const auto rb = b.fused.Row(r);
      ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
      for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].column, rb[i].column) << "row " << r;
        // Bit-exact on purpose: the budget must not perturb one ulp.
        ASSERT_EQ(ra[i].score, rb[i].score) << "row " << r;
      }
    }
    EXPECT_EQ(a.effective_seeds, b.effective_seeds);
    EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
    EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
    EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
  }
};

TEST_F(StreamPipelineTest, BudgetedRunIsBitIdenticalAcrossThreads) {
  const EaDataset dataset = MakeDataset();
  LargeEaOptions options = BaseOptions();
  options.stream.memory_budget_mb = 0;  // explicit: in-memory baseline
  const auto baseline = RunLargeEa(dataset, options);
  ASSERT_TRUE(baseline.ok());

  // Budget at roughly half the unbudgeted peak (floored at 1 MiB).
  const int64_t budget_mb =
      std::max<int64_t>(1, baseline->peak_bytes / 2 / (1 << 20));
  options.stream.memory_budget_mb = budget_mb;
  // Tiny tiles so the 300-entity fixture actually exercises multi-tile
  // streaming, eviction, and prefetch.
  options.stream.tile_rows = 64;

  for (const int32_t threads : {1, 8}) {
    par::ThreadPool::Get().SetNumThreads(threads);
    const auto streamed = RunLargeEa(dataset, options);
    ASSERT_TRUE(streamed.ok()) << "threads=" << threads;
    ExpectSameResult(*baseline, *streamed);
    // release_inputs (default on) hands back empty intermediates.
    EXPECT_EQ(streamed->name_channel.nff.fused.TotalEntries(), 0);
    EXPECT_EQ(streamed->structure_channel.similarity.TotalEntries(), 0);
  }
}

TEST_F(StreamPipelineTest, BudgetedRunIsBitIdenticalAcrossSimdBackends) {
  const EaDataset dataset = MakeDataset();
  LargeEaOptions options = BaseOptions();
  options.stream.memory_budget_mb = 1;
  options.stream.tile_rows = 64;

  const simd::Backend original = simd::ActiveBackend();
  std::unique_ptr<LargeEaResult> first;
  for (const simd::Backend backend : simd::AvailableBackends()) {
    simd::SetBackend(backend);
    auto run = RunLargeEa(dataset, options);
    ASSERT_TRUE(run.ok()) << simd::BackendName(backend);
    if (!first) {
      first = std::make_unique<LargeEaResult>(std::move(*run));
    } else {
      ExpectSameResult(*first, *run);
    }
  }
  simd::SetBackend(original);
}

TEST_F(StreamPipelineTest, LshPathStreamsBitIdentically) {
  const EaDataset dataset = MakeDataset();
  LargeEaOptions options = BaseOptions();
  options.name_channel.nff.sens.use_lsh = true;
  options.stream.memory_budget_mb = 0;
  const auto baseline = RunLargeEa(dataset, options);
  ASSERT_TRUE(baseline.ok());

  options.stream.memory_budget_mb = 1;
  options.stream.tile_rows = 64;
  const auto streamed = RunLargeEa(dataset, options);
  ASSERT_TRUE(streamed.ok());
  ExpectSameResult(*baseline, *streamed);
}

TEST_F(StreamPipelineTest, HalfBudgetRunStaysUnderBudgetBitIdentically) {
  // Realistic enough that the whole-graph matrices dominate the peak
  // (at toy scale the 3-tile cache floor would dominate instead). Name
  // channel only: those are the streamed phases.
  const EaDataset dataset =
      GenerateBenchmark(Ids15kSpec(LanguagePair::kEnFr, 0.2));
  LargeEaOptions options;
  options.use_structure_channel = false;

  uint64_t baseline_hash = 0;
  int64_t baseline_peak = 0;
  {
    options.stream.memory_budget_mb = 0;
    const auto baseline = RunLargeEa(dataset, options);
    ASSERT_TRUE(baseline.ok());
    baseline_hash = FusedHash(baseline->fused);
    baseline_peak = baseline->peak_bytes;
  }  // freed before the budgeted run — a live result would count
     // against the budget's tracked total

  const int64_t budget_mb =
      std::max<int64_t>(1, baseline_peak / 2 / (1 << 20));
  options.stream.memory_budget_mb = budget_mb;
  const auto streamed = RunLargeEa(dataset, options);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(FusedHash(streamed->fused), baseline_hash);
  EXPECT_LE(streamed->peak_bytes, budget_mb << 20)
      << "budget " << budget_mb << " MiB, baseline peak " << baseline_peak;
}

TEST_F(StreamPipelineTest, ReportsBudgetComplianceGauges) {
  const EaDataset dataset = MakeDataset();
  LargeEaOptions options = BaseOptions();
  options.stream.memory_budget_mb = 64;  // generous: must be compliant
  const auto run = RunLargeEa(dataset, options);
  ASSERT_TRUE(run.ok());
  auto& metrics = obs::MetricsRegistry::Get();
  EXPECT_EQ(metrics.GetGauge("stream.budget.bytes").Value(),
            static_cast<double>(int64_t{64} << 20));
  EXPECT_EQ(metrics.GetGauge("stream.budget.peak_bytes").Value(),
            static_cast<double>(run->peak_bytes));
  EXPECT_EQ(metrics.GetGauge("stream.budget.compliant").Value(), 1.0);
}

}  // namespace
}  // namespace largeea
