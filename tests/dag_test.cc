// Operator-DAG executor tests (src/dag/, DESIGN.md §14).
//
// Two layers:
//   * scheduler unit tests on toy graphs — serial order at concurrency
//     1, genuine overlap at concurrency 2, budget deferrals, release at
//     last consumer, first-error-by-node-id;
//   * pipeline equivalence — the DAG schedule of RunLargeEa is proven
//     bit-identical to the serial reference (--no-dag) across thread
//     counts × memory budgets × SIMD backends, its checkpoints are
//     byte-identical across schedules, and --resume re-executes only
//     the dirty subgraph.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/large_ea.h"
#include "src/dag/graph.h"
#include "src/dag/scheduler.h"
#include "src/gen/benchmark_gen.h"
#include "src/kg/dataset.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/thread_pool.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"
#include "src/simd/simd.h"

namespace largeea {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Scheduler unit tests on toy graphs.

TEST(DagGraphTest, ValidateRejectsConsumerBeforeProducer) {
  dag::Graph graph;
  const int32_t v = graph.AddValue("v", 0, true);
  // Consume v before any node produces it: the value stays an external
  // input (producer -1), which Validate accepts...
  graph.AddNode("consumer", {v}, {}, 0,
                [](dag::NodeContext&) { return OkStatus(); });
  ASSERT_TRUE(graph.Validate().ok());
  // ...but producing it *after* the consumer is a cycle in id order.
  graph.AddNode("late-producer", {}, {v}, 0,
                [](dag::NodeContext&) { return OkStatus(); });
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(DagSchedulerTest, ConcurrencyOneReproducesSerialOrder) {
  std::mutex mu;
  std::vector<std::string> order;
  const auto record = [&](std::string name) {
    return [&, name](dag::NodeContext&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(name);
      return OkStatus();
    };
  };
  dag::Graph graph;
  const int32_t a = graph.AddValue("a", 0, true);
  const int32_t b = graph.AddValue("b", 0, true);
  graph.AddNode("n0", {}, {a}, 0, record("n0"));
  graph.AddNode("n1", {}, {b}, 0, record("n1"));
  graph.AddNode("n2", {a, b}, {}, 0, record("n2"));

  dag::ScheduleOptions options;
  options.max_concurrency = 1;
  const auto result = dag::Execute(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(order, (std::vector<std::string>{"n0", "n1", "n2"}));
  ASSERT_EQ(result->node_runs.size(), 3u);
  EXPECT_EQ(result->total_deferrals, 0);
  EXPECT_FALSE(result->critical_path.empty());
}

TEST(DagSchedulerTest, IndependentNodesGenuinelyOverlap) {
  // Handshake: each node waits (bounded) for the other to start. Only a
  // scheduler that actually has both in flight at once can finish.
  std::atomic<int> started{0};
  const auto handshake = [&](dag::NodeContext&) {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) {
        return InternalError("peer never started: nodes did not overlap");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return OkStatus();
  };
  dag::Graph graph;
  graph.AddNode("left", {}, {}, 0, handshake);
  graph.AddNode("right", {}, {}, 0, handshake);

  dag::ScheduleOptions options;
  options.max_concurrency = 2;
  const auto result = dag::Execute(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(started.load(), 2);
}

TEST(DagSchedulerTest, TinyBudgetDefersButStillRunsEverything) {
  // Two independent hogs each declare a footprint larger than the whole
  // budget: the progress guarantee admits one at a time and the second
  // admission attempt must be deferred at least once.
  std::atomic<int> ran{0};
  const auto body = [&](dag::NodeContext&) {
    ran.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return OkStatus();
  };
  dag::Graph graph;
  graph.AddNode("hog0", {}, {}, int64_t{1} << 30, body);
  graph.AddNode("hog1", {}, {}, int64_t{1} << 30, body);
  graph.AddNode("hog2", {}, {}, int64_t{1} << 30, body);

  dag::ScheduleOptions options;
  options.max_concurrency = 4;
  options.memory_budget_bytes = 1 << 20;
  const auto result = dag::Execute(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_GT(result->total_deferrals, 0);
}

TEST(DagSchedulerTest, ReleasesValueAtLastConsumerOnly) {
  std::atomic<bool> released{false};
  std::atomic<bool> released_before_consumers{false};
  const auto noop = [](dag::NodeContext&) { return OkStatus(); };
  const auto check = [&](dag::NodeContext&) {
    if (released.load()) released_before_consumers.store(true);
    return OkStatus();
  };
  dag::Graph graph;
  const int32_t mid =
      graph.AddValue("mid", 0, /*retain=*/false, [&] { released.store(true); });
  const int32_t kept =
      graph.AddValue("kept", 0, /*retain=*/true, [&] { released.store(true); });
  graph.AddNode("producer", {}, {mid, kept}, 0, noop);
  graph.AddNode("consumer0", {mid}, {}, 0, check);
  graph.AddNode("consumer1", {mid, kept}, {}, 0, check);

  dag::ScheduleOptions options;
  options.max_concurrency = 1;
  ASSERT_TRUE(dag::Execute(graph, options).ok());
  // `mid` was released after its last consumer, never before one ran;
  // the retained value's release closure was never invoked (it shares
  // the flag, which a second invocation would not change — so pair it
  // with the ordering check).
  EXPECT_TRUE(released.load());
  EXPECT_FALSE(released_before_consumers.load());
}

TEST(DagSchedulerTest, ReportsFirstErrorInSerialOrder) {
  // Both roots fail; the error surfaced must be the one the serial
  // order would have hit first (lowest node id), at any concurrency.
  dag::Graph graph;
  graph.AddNode("slow-early-failure", {}, {}, 0, [](dag::NodeContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return InternalError("early");
  });
  graph.AddNode("fast-late-failure", {}, {}, 0, [](dag::NodeContext&) {
    return InternalError("late");
  });
  graph.AddNode("downstream", {}, {}, 0, [](dag::NodeContext&) {
    return InternalError("downstream must never run after a failure");
  });

  dag::ScheduleOptions options;
  options.max_concurrency = 2;
  const auto result = dag::Execute(graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("early"), std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------
// Pipeline equivalence: DAG schedule vs the serial reference.

uint64_t FusedHash(const SparseSimMatrix& m) {
  std::string bytes;
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    bytes.append(reinterpret_cast<const char*>(row.data()),
                 row.size_bytes());
  }
  return rt::Fnv1a64(bytes);
}

class DagPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 300;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

  void SetUp() override {
    rt::FaultInjector::Get().Reset();
    saved_threads_ = par::ThreadPool::Get().num_threads();
  }
  void TearDown() override {
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
    rt::FaultInjector::Get().Reset();
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  static LargeEaOptions BaseOptions() {
    LargeEaOptions options;
    options.structure_channel.train.epochs = 3;
    options.structure_channel.num_batches = 2;
    options.stream.memory_budget_mb = 0;  // explicit: in-memory
    return options;
  }

  static void ExpectSameResult(const LargeEaResult& a,
                               const LargeEaResult& b) {
    ASSERT_EQ(a.fused.num_rows(), b.fused.num_rows());
    for (int32_t r = 0; r < a.fused.num_rows(); ++r) {
      const auto ra = a.fused.Row(r);
      const auto rb = b.fused.Row(r);
      ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
      for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].column, rb[i].column) << "row " << r;
        // Bit-exact on purpose: the schedule must not perturb one ulp.
        ASSERT_EQ(ra[i].score, rb[i].score) << "row " << r;
      }
    }
    EXPECT_EQ(a.effective_seeds, b.effective_seeds);
    EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
    EXPECT_DOUBLE_EQ(a.metrics.hits_at_5, b.metrics.hits_at_5);
    EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
  }

  std::string CheckpointDir(const std::string& name) {
    const std::string dir =
        (fs::temp_directory_path() / ("largeea_dag_" + name)).string();
    fs::remove_all(dir);
    if (dir_.empty()) dir_ = dir;  // best-effort cleanup anchor
    return dir;
  }

  /// filename -> content hash for every checkpoint artifact in `dir`.
  static std::map<std::string, uint64_t> DirHashes(const std::string& dir) {
    std::map<std::string, uint64_t> hashes;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const auto bytes = rt::ReadFileToString(entry.path().string());
      if (bytes.ok()) {
        hashes[entry.path().filename().string()] = rt::Fnv1a64(*bytes);
      }
    }
    return hashes;
  }

  std::string dir_;
  int32_t saved_threads_ = 1;

 private:
  static const EaDataset* dataset_;
};

const EaDataset* DagPipelineTest::dataset_ = nullptr;

TEST_F(DagPipelineTest, MatchesSerialAcrossThreadsAndBudgets) {
  LargeEaOptions serial = BaseOptions();
  serial.dag = false;
  const auto baseline = RunLargeEa(dataset(), serial);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_TRUE(baseline->dag_nodes.empty());

  for (const int32_t threads : {1, 2, 8}) {
    for (const int64_t budget_mb : {int64_t{0}, int64_t{1}}) {
      par::ThreadPool::Get().SetNumThreads(threads);
      LargeEaOptions options = BaseOptions();
      options.dag = true;
      options.stream.memory_budget_mb = budget_mb;
      if (budget_mb > 0) options.stream.tile_rows = 64;
      const auto scheduled = RunLargeEa(dataset(), options);
      ASSERT_TRUE(scheduled.ok())
          << "threads=" << threads << " budget=" << budget_mb << ": "
          << scheduled.status().ToString();
      ExpectSameResult(*baseline, *scheduled);
      EXPECT_FALSE(scheduled->dag_nodes.empty());
      EXPECT_GT(scheduled->dag_critical_path_seconds, 0.0);
      EXPECT_FALSE(scheduled->dag_critical_path.empty());
    }
  }
}

TEST_F(DagPipelineTest, MatchesSerialOnScalarBackend) {
  const simd::Backend original = simd::ActiveBackend();
  simd::SetBackend(simd::Backend::kScalar);
  LargeEaOptions serial = BaseOptions();
  serial.dag = false;
  const auto baseline = RunLargeEa(dataset(), serial);
  ASSERT_TRUE(baseline.ok());

  par::ThreadPool::Get().SetNumThreads(4);
  LargeEaOptions options = BaseOptions();
  options.dag = true;
  const auto scheduled = RunLargeEa(dataset(), options);
  simd::SetBackend(original);
  ASSERT_TRUE(scheduled.ok()) << scheduled.status().ToString();
  ExpectSameResult(*baseline, *scheduled);
}

TEST_F(DagPipelineTest, ChecksDagBudgetComplianceGauge) {
  LargeEaOptions options = BaseOptions();
  options.dag = true;
  options.stream.memory_budget_mb = 256;  // generous: must be compliant
  options.stream.tile_rows = 64;
  const auto run = RunLargeEa(dataset(), options);
  ASSERT_TRUE(run.ok());
  auto& metrics = obs::MetricsRegistry::Get();
  EXPECT_EQ(metrics.GetGauge("dag.budget.compliant").Value(), 1.0);
}

TEST_F(DagPipelineTest, ChecksNodeStatsCoverEveryOperator) {
  par::ThreadPool::Get().SetNumThreads(4);
  LargeEaOptions options = BaseOptions();
  options.dag = true;
  const auto run = RunLargeEa(dataset(), options);
  ASSERT_TRUE(run.ok());
  std::vector<std::string> names;
  for (const DagNodeStats& node : run->dag_nodes) names.push_back(node.name);
  for (const char* expected :
       {"name_semantic", "name_string", "name_fuse", "name_augmentation",
        "seed_augmentation", "partition", "structure_train", "fusion",
        "evaluate"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing node " << expected;
  }
}

TEST_F(DagPipelineTest, CheckpointsAreByteIdenticalAcrossSchedules) {
  // The checkpoint contract is schedule-invariant: serial at one
  // thread and DAG at eight threads under a tiny budget write the
  // same artifact set, byte for byte. (DAG runs persist full
  // intermediate artifacts regardless of the budget — that is what
  // makes this possible; see DESIGN.md §14.)
  par::ThreadPool::Get().SetNumThreads(1);
  LargeEaOptions first = BaseOptions();
  first.dag = true;
  first.fault_tolerance.checkpoint_dir = CheckpointDir("bytes_serial");
  ASSERT_TRUE(RunLargeEa(dataset(), first).ok());

  par::ThreadPool::Get().SetNumThreads(8);
  LargeEaOptions second = BaseOptions();
  second.dag = true;
  second.stream.memory_budget_mb = 1;
  second.stream.tile_rows = 64;
  second.fault_tolerance.checkpoint_dir = CheckpointDir("bytes_dag");
  ASSERT_TRUE(RunLargeEa(dataset(), second).ok());

  const auto a = DirHashes(first.fault_tolerance.checkpoint_dir);
  const auto b = DirHashes(second.fault_tolerance.checkpoint_dir);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  fs::remove_all(first.fault_tolerance.checkpoint_dir);
  fs::remove_all(second.fault_tolerance.checkpoint_dir);
}

TEST_F(DagPipelineTest, ResumeReExecutesOnlyTheDirtySubgraph) {
  LargeEaOptions options = BaseOptions();
  options.dag = true;
  options.fault_tolerance.checkpoint_dir = CheckpointDir("dirty");
  ASSERT_TRUE(RunLargeEa(dataset(), options).ok());

  // Change a training knob: everything downstream of `partition` is
  // dirty, the name channel is not.
  LargeEaOptions changed = options;
  changed.structure_channel.train.epochs = 5;
  changed.fault_tolerance.resume = true;
#if LARGEEA_FAULT_INJECTION
  rt::FaultInjector::Get().Reset();  // zero the hit counters
#endif
  const auto resumed = RunLargeEa(dataset(), changed);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->name_channel.resumed);
  EXPECT_EQ(resumed->structure_channel.batches_resumed, 0);
#if LARGEEA_FAULT_INJECTION
  // The name features were restored, not recomputed: the fault point
  // inside the compute path was never reached.
  EXPECT_EQ(rt::FaultInjector::Get().HitCount("name.features"), 0);
#endif

  // And the selective resume is still bit-identical to a fresh run of
  // the changed configuration.
  LargeEaOptions fresh = changed;
  fresh.fault_tolerance = {};
  const auto baseline = RunLargeEa(dataset(), fresh);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(FusedHash(baseline->fused), FusedHash(resumed->fused));
}

TEST_F(DagPipelineTest, BothChannelsDisabledIsInvalidArgument) {
  LargeEaOptions options = BaseOptions();
  options.use_name_channel = false;
  options.use_structure_channel = false;
  const auto run = RunLargeEa(dataset(), options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DagPipelineTest, TraceShowsNodeSpansAndFlowEvents) {
  par::ThreadPool::Get().SetNumThreads(4);
  auto& recorder = obs::TraceRecorder::Get();
  recorder.Clear();
  recorder.Enable();
  LargeEaOptions options = BaseOptions();
  options.dag = true;
  const auto run = RunLargeEa(dataset(), options);
  recorder.Disable();
  ASSERT_TRUE(run.ok());

  bool saw_semantic = false;
  bool saw_string = false;
  for (const obs::SpanRecord& span : recorder.Records()) {
    if (span.name == "dag/name_semantic") saw_semantic = true;
    if (span.name == "dag/name_string") saw_string = true;
  }
  EXPECT_TRUE(saw_semantic);
  EXPECT_TRUE(saw_string);

  // Flow arrows along the edges: every end has a matching start id.
  const auto flows = recorder.Flows();
  EXPECT_FALSE(flows.empty());
  for (const obs::FlowRecord& flow : flows) {
    if (flow.start) continue;
    bool matched = false;
    for (const obs::FlowRecord& other : flows) {
      if (other.start && other.id == flow.id) matched = true;
    }
    EXPECT_TRUE(matched) << "unmatched flow end id " << flow.id;
  }
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  recorder.Clear();
}

}  // namespace
}  // namespace largeea
