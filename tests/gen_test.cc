// Tests for src/gen: the synthetic benchmark generator's invariants.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/gen/benchmark_gen.h"
#include "src/gen/name_model.h"
#include "src/gen/world_graph.h"
#include "src/name/levenshtein.h"

namespace largeea {
namespace {

TEST(VocabularyTest, WordsAreDistinctAndSized) {
  const Vocabulary vocab(500, 3);
  EXPECT_EQ(vocab.size(), 500);
  std::unordered_set<std::string> seen;
  for (int32_t i = 0; i < vocab.size(); ++i) {
    const std::string& w = vocab.Word(i);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 9u);
    EXPECT_TRUE(seen.insert(w).second) << "duplicate word " << w;
  }
}

TEST(VocabularyTest, ZipfSamplingSkewsLow) {
  const Vocabulary vocab(1000, 5);
  Rng rng(7);
  int64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (vocab.SampleZipf(rng) < 250) ++low;
  }
  // u^1.5 skew puts ~40% of mass in the first quarter (vs 25% uniform).
  EXPECT_GT(low, n * 0.30);
}

TEST(NameTranslatorTest, DeterministicTranslation) {
  const Vocabulary vocab(100, 11);
  const LanguageNameStyle style{.code = "FR",
                                .cognate_prob = 0.8,
                                .char_noise_prob = 0.0,
                                .article_prob = 0.0,
                                .article = "le"};
  const NameTranslator t1(&vocab, style, 99);
  const NameTranslator t2(&vocab, style, 99);
  for (int32_t w = 0; w < 100; ++w) {
    EXPECT_EQ(t1.TranslateWord(w), t2.TranslateWord(w));
  }
  EXPECT_EQ(t1.Render({1, 2, 3}, 42), t2.Render({1, 2, 3}, 42));
}

TEST(NameTranslatorTest, CognatesDominateAtHighProbability) {
  const Vocabulary vocab(300, 13);
  const LanguageNameStyle style{.code = "FR",
                                .cognate_prob = 1.0,
                                .char_noise_prob = 0.0,
                                .article_prob = 0.0,
                                .article = ""};
  const NameTranslator t(&vocab, style, 5);
  int close = 0;
  for (int32_t w = 0; w < 300; ++w) {
    if (LevenshteinDistance(vocab.Word(w), t.TranslateWord(w)) <= 2) ++close;
  }
  // cognate_prob = 1.0 means every translation is within 2 edits.
  EXPECT_EQ(close, 300);
}

TEST(NameTranslatorTest, OpaqueTranslationsAppear) {
  const Vocabulary vocab(300, 13);
  const LanguageNameStyle style{.code = "DE",
                                .cognate_prob = 0.0,
                                .char_noise_prob = 0.0,
                                .article_prob = 0.0,
                                .article = ""};
  const NameTranslator t(&vocab, style, 5);
  int far = 0;
  for (int32_t w = 0; w < 300; ++w) {
    if (LevenshteinDistance(vocab.Word(w), t.TranslateWord(w)) > 2) ++far;
  }
  // With cognate_prob = 0 most words should be unrelated (a few may land
  // close by coincidence).
  EXPECT_GT(far, 240);
}

TEST(WorldGraphTest, SizesAndValidity) {
  const Vocabulary vocab(200, 17);
  WorldSpec spec;
  spec.num_entities = 500;
  spec.edges_per_entity = 3;
  spec.num_relations = 20;
  spec.seed = 3;
  const WorldKg world = GenerateWorldKg(spec, vocab);
  EXPECT_EQ(world.num_entities(), 500);
  EXPECT_GT(world.triples.size(), 1000u);
  for (const Triple& t : world.triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, 500);
    EXPECT_GE(t.tail, 0);
    EXPECT_LT(t.tail, 500);
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, 20);
    EXPECT_NE(t.head, t.tail);
  }
  for (const auto& tokens : world.entity_tokens) {
    EXPECT_GE(tokens.size(), 2u);
    EXPECT_LE(tokens.size(), 3u);
  }
}

TEST(WorldGraphTest, PowerLawIshDegrees) {
  const Vocabulary vocab(200, 19);
  WorldSpec spec;
  spec.num_entities = 2000;
  spec.edges_per_entity = 3;
  spec.num_relations = 10;
  spec.seed = 4;
  const WorldKg world = GenerateWorldKg(spec, vocab);
  std::vector<int32_t> degree(2000, 0);
  for (const Triple& t : world.triples) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  const int32_t max_degree = *std::max_element(degree.begin(), degree.end());
  const double avg = 2.0 * world.triples.size() / 2000.0;
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(max_degree, 5 * avg);
}

class BenchmarkGenTest : public ::testing::TestWithParam<LanguagePair> {};

TEST_P(BenchmarkGenTest, Ids15kInvariants) {
  BenchmarkSpec spec = Ids15kSpec(GetParam());
  spec.world.num_entities = 800;
  const EaDataset ds = GenerateBenchmark(spec);
  // IDS tiers: both sides keep every (covered) entity, so sizes are close
  // and nearly all entities are aligned.
  EXPECT_GT(ds.source.num_entities(), 700);
  EXPECT_GT(ds.target.num_entities(), 700);
  const auto all = ds.split.All();
  EXPECT_TRUE(IsOneToOne(all));
  EXPECT_GT(static_cast<double>(all.size()), 0.9 * ds.source.num_entities());
  // 20% train split.
  EXPECT_NEAR(static_cast<double>(ds.split.train.size()) / all.size(), 0.2,
              0.01);
  // Every pair's ids are valid.
  for (const EntityPair& p : all) {
    EXPECT_GE(p.source, 0);
    EXPECT_LT(p.source, ds.source.num_entities());
    EXPECT_GE(p.target, 0);
    EXPECT_LT(p.target, ds.target.num_entities());
  }
}

TEST_P(BenchmarkGenTest, Dbp1mIsUnbalancedWithUnknownEntities) {
  BenchmarkSpec spec = Dbp1mSpec(GetParam());
  spec.world.num_entities = 1500;
  const EaDataset ds = GenerateBenchmark(spec);
  // EN side keeps more entities than the non-EN side.
  EXPECT_GT(ds.source.num_entities(), ds.target.num_entities());
  // Unknown entities exist on both sides: aligned pairs < entities.
  const auto all = ds.split.All();
  EXPECT_LT(static_cast<int32_t>(all.size()), ds.source.num_entities());
  EXPECT_LT(static_cast<int32_t>(all.size()), ds.target.num_entities());
  // The source KG is denser than the target (German/French sparser).
  EXPECT_GT(ds.source.num_triples(), ds.target.num_triples());
}

TEST_P(BenchmarkGenTest, DeterministicInSeed) {
  BenchmarkSpec spec = Ids15kSpec(GetParam());
  spec.world.num_entities = 400;
  const EaDataset a = GenerateBenchmark(spec);
  const EaDataset b = GenerateBenchmark(spec);
  EXPECT_EQ(a.source.num_entities(), b.source.num_entities());
  EXPECT_EQ(a.source.num_triples(), b.source.num_triples());
  EXPECT_EQ(a.split.train, b.split.train);
  EXPECT_EQ(a.source.EntityName(17), b.source.EntityName(17));
}

TEST_P(BenchmarkGenTest, DifferentSeedsDiffer) {
  BenchmarkSpec spec1 = Ids15kSpec(GetParam(), 1.0, /*seed=*/15);
  BenchmarkSpec spec2 = Ids15kSpec(GetParam(), 1.0, /*seed=*/16);
  spec1.world.num_entities = spec2.world.num_entities = 400;
  const EaDataset a = GenerateBenchmark(spec1);
  const EaDataset b = GenerateBenchmark(spec2);
  EXPECT_NE(a.source.EntityName(3), b.source.EntityName(3));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, BenchmarkGenTest,
                         ::testing::Values(LanguagePair::kEnFr,
                                           LanguagePair::kEnDe));

TEST(BenchmarkGenTest2, EntityNamesMostlyAlignAcrossLanguages) {
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities = 600;
  const EaDataset ds = GenerateBenchmark(spec);
  // Aligned entities should usually have similar names (the cognate
  // property the name channel depends on).
  int64_t similar = 0;
  const auto all = ds.split.All();
  for (const EntityPair& p : all) {
    if (LevenshteinSimilarity(ds.source.EntityName(p.source),
                              ds.target.EntityName(p.target)) > 0.5) {
      ++similar;
    }
  }
  EXPECT_GT(static_cast<double>(similar) / all.size(), 0.5);
}

TEST(BenchmarkGenTest2, ConnectedEnough) {
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnDe);
  spec.world.num_entities = 600;
  const EaDataset ds = GenerateBenchmark(spec);
  // No isolated entities after the repair pass.
  for (EntityId e = 0; e < ds.source.num_entities(); ++e) {
    EXPECT_GT(ds.source.Degree(e), 0) << "isolated source entity " << e;
  }
  for (EntityId e = 0; e < ds.target.num_entities(); ++e) {
    EXPECT_GT(ds.target.Degree(e), 0) << "isolated target entity " << e;
  }
}

}  // namespace
}  // namespace largeea
