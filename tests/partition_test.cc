// Tests for src/partition: multilevel METIS, VPS, METIS-CPS, overlap.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/gen/benchmark_gen.h"
#include "src/partition/metis.h"
#include "src/partition/metis_cps.h"
#include "src/partition/mini_batch.h"
#include "src/partition/overlap.h"
#include "src/partition/vps.h"

namespace largeea {
namespace {

// Two dense cliques joined by a single bridge edge: the canonical
// min-cut-obvious instance.
CsrGraph TwoCliques(int32_t clique_size) {
  std::vector<WeightedEdge> edges;
  for (int32_t c = 0; c < 2; ++c) {
    const int32_t base = c * clique_size;
    for (int32_t i = 0; i < clique_size; ++i) {
      for (int32_t j = i + 1; j < clique_size; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
  }
  edges.push_back({0, clique_size, 1});  // bridge
  return CsrGraph::FromEdges(2 * clique_size, edges);
}

TEST(MetisTest, FindsObviousBisection) {
  const CsrGraph g = TwoCliques(20);
  MetisOptions options;
  options.num_parts = 2;
  const PartitionResult result = MetisPartition(g, options);
  EXPECT_EQ(result.edge_cut, 1);
  // Each clique in one part.
  for (int32_t v = 1; v < 20; ++v) {
    EXPECT_EQ(result.assignment[v], result.assignment[0]);
  }
  for (int32_t v = 21; v < 40; ++v) {
    EXPECT_EQ(result.assignment[v], result.assignment[20]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[20]);
}

TEST(MetisTest, RespectsBalanceOnRandomGraph) {
  Rng rng(31);
  std::vector<WeightedEdge> edges;
  const int32_t n = 600;
  for (int32_t i = 1; i < n; ++i) {
    edges.push_back({i, static_cast<int32_t>(rng.Uniform(i)), 1});
    edges.push_back({i, static_cast<int32_t>(rng.Uniform(i)), 1});
  }
  const CsrGraph g = CsrGraph::FromEdges(n, edges);
  for (int32_t k : {2, 4, 8}) {
    MetisOptions options;
    options.num_parts = k;
    options.imbalance = 0.10;
    const PartitionResult result = MetisPartition(g, options);
    const auto weights = PartWeights(g, result.assignment, k);
    const int64_t ideal = n / k;
    for (const int64_t w : weights) {
      EXPECT_GT(w, 0) << "empty part at k=" << k;
      EXPECT_LE(w, static_cast<int64_t>(1.25 * ideal) + 1)
          << "overweight part at k=" << k;
    }
    EXPECT_EQ(ComputeEdgeCut(g, result.assignment), result.edge_cut);
  }
}

TEST(MetisTest, SinglePartIsTrivial) {
  const CsrGraph g = TwoCliques(5);
  MetisOptions options;
  options.num_parts = 1;
  const PartitionResult result = MetisPartition(g, options);
  EXPECT_EQ(result.edge_cut, 0);
  for (const int32_t p : result.assignment) EXPECT_EQ(p, 0);
}

TEST(MetisTest, DeterministicInSeed) {
  const CsrGraph g = TwoCliques(15);
  MetisOptions options;
  options.num_parts = 4;
  options.seed = 77;
  const PartitionResult a = MetisPartition(g, options);
  const PartitionResult b = MetisPartition(g, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(MetisTest, ZeroWeightEdgesAreFreeToCut) {
  // Two pairs joined by a zero-weight edge: cutting it costs nothing.
  const std::vector<WeightedEdge> edges{
      {0, 1, 10}, {2, 3, 10}, {1, 2, 0}};
  const CsrGraph g = CsrGraph::FromEdges(4, edges);
  MetisOptions options;
  options.num_parts = 2;
  const PartitionResult result = MetisPartition(g, options);
  EXPECT_EQ(result.edge_cut, 0);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
}

TEST(MetisTest, HeavyEdgesAreKept) {
  // A ring where two heavy edges must not be cut.
  const std::vector<WeightedEdge> edges{
      {0, 1, 100}, {1, 2, 1}, {2, 3, 100}, {3, 0, 1}};
  const CsrGraph g = CsrGraph::FromEdges(4, edges);
  MetisOptions options;
  options.num_parts = 2;
  const PartitionResult result = MetisPartition(g, options);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
  EXPECT_EQ(result.edge_cut, 2);
}

TEST(EdgeCutRateTest, CountsEdgesNotWeights) {
  const std::vector<WeightedEdge> edges{{0, 1, 100}, {1, 2, 1}};
  const CsrGraph g = CsrGraph::FromEdges(3, edges);
  EXPECT_DOUBLE_EQ(EdgeCutRate(g, {0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(EdgeCutRate(g, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EdgeCutRate(g, {0, 1, 0}), 1.0);
}

// Fixture with a generated cross-lingual dataset.
class PartitionStrategyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 1000;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* PartitionStrategyTest::dataset_ = nullptr;

// Every entity appears in exactly one batch; batch seeds are consistent.
void CheckBatchInvariants(const MiniBatchSet& batches, const EaDataset& ds) {
  std::unordered_set<EntityId> source_seen, target_seen;
  for (const MiniBatch& b : batches) {
    for (const EntityId e : b.source_entities) {
      EXPECT_TRUE(source_seen.insert(e).second) << "dup source " << e;
    }
    for (const EntityId e : b.target_entities) {
      EXPECT_TRUE(target_seen.insert(e).second) << "dup target " << e;
    }
    const std::unordered_set<EntityId> bs(b.source_entities.begin(),
                                          b.source_entities.end());
    const std::unordered_set<EntityId> bt(b.target_entities.begin(),
                                          b.target_entities.end());
    for (const EntityPair& p : b.seeds) {
      EXPECT_TRUE(bs.contains(p.source));
      EXPECT_TRUE(bt.contains(p.target));
    }
  }
  EXPECT_EQ(source_seen.size(),
            static_cast<size_t>(ds.source.num_entities()));
  EXPECT_EQ(target_seen.size(),
            static_cast<size_t>(ds.target.num_entities()));
}

TEST_F(PartitionStrategyTest, VpsInvariantsAndSeedBalance) {
  VpsOptions options;
  options.num_batches = 5;
  const MiniBatchSet batches = VpsPartition(
      dataset().source, dataset().target, dataset().split.train, options);
  ASSERT_EQ(batches.size(), 5u);
  CheckBatchInvariants(batches, dataset());
  // Every seed pair is preserved in some batch (VPS's defining property).
  EXPECT_DOUBLE_EQ(
      SameBatchFraction(batches, dataset().split.train,
                        dataset().source.num_entities(),
                        dataset().target.num_entities()),
      1.0);
  // Seeds are spread evenly: max/min batch seed counts within 1.
  size_t min_seeds = SIZE_MAX, max_seeds = 0;
  for (const MiniBatch& b : batches) {
    min_seeds = std::min(min_seeds, b.seeds.size());
    max_seeds = std::max(max_seeds, b.seeds.size());
  }
  EXPECT_LE(max_seeds - min_seeds, 1u);
}

TEST_F(PartitionStrategyTest, MetisCpsInvariants) {
  MetisCpsOptions options;
  options.num_batches = 4;
  MetisCpsReport report;
  const MiniBatchSet batches =
      MetisCpsPartition(dataset().source, dataset().target,
                        dataset().split.train, options, &report)
          .value();
  ASSERT_EQ(batches.size(), 4u);
  CheckBatchInvariants(batches, dataset());
  EXPECT_GT(report.source_edge_cut, 0);
  EXPECT_GT(report.source_edge_cut_rate, 0.0);
  EXPECT_LT(report.source_edge_cut_rate, 1.0);
  EXPECT_LT(report.target_edge_cut_rate, 1.0);
}

TEST_F(PartitionStrategyTest, MetisCpsKeepsMostSeedsTogether) {
  MetisCpsOptions options;
  options.num_batches = 4;
  const MiniBatchSet batches =
      MetisCpsPartition(dataset().source, dataset().target,
                        dataset().split.train, options)
          .value();
  const double train_fraction =
      SameBatchFraction(batches, dataset().split.train,
                        dataset().source.num_entities(),
                        dataset().target.num_entities());
  EXPECT_GT(train_fraction, 0.75);
}

TEST_F(PartitionStrategyTest, MetisCpsBeatsVpsOnTestRetention) {
  const int32_t k = 4;
  MetisCpsOptions cps_options;
  cps_options.num_batches = k;
  const MiniBatchSet cps =
      MetisCpsPartition(dataset().source, dataset().target,
                        dataset().split.train, cps_options)
          .value();
  VpsOptions vps_options;
  vps_options.num_batches = k;
  const MiniBatchSet vps = VpsPartition(
      dataset().source, dataset().target, dataset().split.train,
      vps_options);
  const auto& test = dataset().split.test;
  const double cps_test =
      SameBatchFraction(cps, test, dataset().source.num_entities(),
                        dataset().target.num_entities());
  const double vps_test =
      SameBatchFraction(vps, test, dataset().source.num_entities(),
                        dataset().target.num_entities());
  // The paper's Table 5: METIS-CPS preserves unknown (test) equivalents
  // far better than random partitioning (~1/K for VPS).
  EXPECT_GT(cps_test, vps_test + 0.05);
  EXPECT_NEAR(vps_test, 1.0 / k, 0.08);
}

TEST_F(PartitionStrategyTest, DisablingPhasesHurtsRetention) {
  MetisCpsOptions full;
  full.num_batches = 4;
  MetisCpsOptions no_phase1 = full;
  no_phase1.enable_phase1 = false;
  const auto& ds = dataset();
  const double with_p1 = SameBatchFraction(
      MetisCpsPartition(ds.source, ds.target, ds.split.train, full)
          .value(),
      ds.split.train, ds.source.num_entities(), ds.target.num_entities());
  const double without_p1 = SameBatchFraction(
      MetisCpsPartition(ds.source, ds.target, ds.split.train,
                        no_phase1)
          .value(),
      ds.split.train, ds.source.num_entities(), ds.target.num_entities());
  EXPECT_GT(with_p1, without_p1);
}

TEST_F(PartitionStrategyTest, MultipleHubsAlsoWork) {
  MetisCpsOptions options;
  options.num_batches = 4;
  options.hubs_per_group = 3;
  const MiniBatchSet batches =
      MetisCpsPartition(dataset().source, dataset().target,
                        dataset().split.train, options)
          .value();
  CheckBatchInvariants(batches, dataset());
  EXPECT_GT(SameBatchFraction(batches, dataset().split.train,
                              dataset().source.num_entities(),
                              dataset().target.num_entities()),
            0.75);
}

TEST_F(PartitionStrategyTest, OverlapDegreeOneIsIdentity) {
  VpsOptions options;
  options.num_batches = 3;
  const MiniBatchSet batches = VpsPartition(
      dataset().source, dataset().target, dataset().split.train, options);
  const MiniBatchSet overlapped =
      MakeOverlappingBatches(batches, dataset().source, dataset().target, 1);
  ASSERT_EQ(overlapped.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(overlapped[i].source_entities, batches[i].source_entities);
  }
}

TEST_F(PartitionStrategyTest, OverlapGrowsBatches) {
  MetisCpsOptions options;
  options.num_batches = 4;
  const MiniBatchSet batches =
      MetisCpsPartition(dataset().source, dataset().target,
                        dataset().split.train, options)
          .value();
  const MiniBatchSet overlapped =
      MakeOverlappingBatches(batches, dataset().source, dataset().target, 2);
  ASSERT_EQ(overlapped.size(), batches.size());
  int64_t base_total = 0, overlapped_total = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    base_total += static_cast<int64_t>(batches[i].source_entities.size());
    overlapped_total +=
        static_cast<int64_t>(overlapped[i].source_entities.size());
    // Each overlapped batch contains its original batch.
    EXPECT_GE(overlapped[i].source_entities.size(),
              batches[i].source_entities.size());
  }
  EXPECT_GT(overlapped_total, base_total);
  // Retention can only improve with overlap.
  const double base_retention = SameBatchFraction(
      batches, dataset().split.test, dataset().source.num_entities(),
      dataset().target.num_entities());
  const double overlap_retention = SameBatchFraction(
      overlapped, dataset().split.test, dataset().source.num_entities(),
      dataset().target.num_entities());
  EXPECT_GE(overlap_retention, base_retention);
}

TEST(MiniBatchTest, SameBatchFractionEdgeCases) {
  MiniBatchSet batches(2);
  batches[0].source_entities = {0, 1};
  batches[0].target_entities = {0};
  batches[1].source_entities = {2};
  batches[1].target_entities = {1, 2};
  EXPECT_DOUBLE_EQ(SameBatchFraction(batches, {}, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(SameBatchFraction(batches, {{0, 0}}, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(SameBatchFraction(batches, {{0, 1}}, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(SameBatchFraction(batches, {{0, 0}, {2, 2}, {1, 2}}, 3, 3),
                   2.0 / 3.0);
}

TEST(MiniBatchTest, BatchSizes) {
  MiniBatchSet batches(1);
  batches[0].source_entities = {0, 1, 2};
  batches[0].target_entities = {5};
  const auto sizes = BatchSizes(batches);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0].first, 3);
  EXPECT_EQ(sizes[0].second, 1);
}

}  // namespace
}  // namespace largeea
