// Fuzz-style robustness tests for the TSV loaders: truncated, over-field,
// non-UTF8, and empty inputs must never crash — they either load leniently
// (bad lines skipped and counted) or fail with a precise Status in strict
// mode. See ISSUE/DESIGN.md §7 "Failure model".
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/kg/dataset.h"
#include "src/kg/kg_io.h"

namespace largeea {
namespace {

class KgIoRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "largeea_io_fuzz")
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name,
                        const std::string& content) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }

  static TsvReadOptions Strict() {
    TsvReadOptions o;
    o.strict = true;
    return o;
  }

  std::string dir_;
};

TEST_F(KgIoRobustnessTest, EmptyTriplesFileLoadsAsEmptyGraph) {
  const std::string path = WriteFile("empty.tsv", "");
  const auto lenient = LoadTriples(path);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->num_entities(), 0);
  EXPECT_EQ(lenient->num_triples(), 0);
  // An empty file has no malformed lines, so strict agrees.
  EXPECT_TRUE(LoadTriples(path, Strict()).ok());
}

TEST_F(KgIoRobustnessTest, TruncatedLastLineIsSkippedAndCounted) {
  // A download cut off mid-line: final record is missing its tail field.
  const std::string path = WriteFile(
      "truncated.tsv", "a\tknows\tb\nb\tknows\tc\nc\tkno");
  TsvReadStats stats;
  const auto kg = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 2);
  EXPECT_EQ(stats.lines_read, 3);
  EXPECT_EQ(stats.lines_skipped, 1);
  ASSERT_EQ(stats.skipped_line_numbers.size(), 1u);
  EXPECT_EQ(stats.skipped_line_numbers[0], 3);

  const auto strict = LoadTriples(path, Strict());
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  // The error names the file and the 1-based line number.
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(strict.status().message().find(path), std::string::npos);
}

TEST_F(KgIoRobustnessTest, OverFieldLinesAreSkipped) {
  const std::string path = WriteFile(
      "wide.tsv", "a\tr\tb\textra\tfields\na\tr\tb\n");
  TsvReadStats stats;
  const auto kg = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 1);
  EXPECT_EQ(stats.lines_skipped, 1);
  EXPECT_EQ(LoadTriples(path, Strict()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(KgIoRobustnessTest, EmptyFieldsAreSkipped) {
  const std::string path =
      WriteFile("holes.tsv", "\tr\tb\na\t\tb\na\tr\t\na\tr\tb\n");
  TsvReadStats stats;
  const auto kg = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 1);
  EXPECT_EQ(stats.lines_skipped, 3);
}

TEST_F(KgIoRobustnessTest, NonUtf8BytesDoNotCrash) {
  // Raw Latin-1 / random high bytes inside names: the loader treats names
  // as opaque byte strings, so these lines are *valid* — they load, round
  // nothing, crash nothing.
  std::string content = "caf\xe9\tkennt\tM\xfcnchen\n";
  content += "\x80\x81\x82\tr\t\xff\xfe\n";
  content += "plain\tr\talso_plain\n";
  const std::string path = WriteFile("latin1.tsv", content);
  TsvReadStats stats;
  const auto kg = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 3);
  EXPECT_EQ(stats.lines_skipped, 0);
  EXPECT_TRUE(kg->FindEntity("caf\xe9").has_value());
}

TEST_F(KgIoRobustnessTest, EmbeddedNulAndControlBytesDoNotCrash) {
  std::string content = "a\tr\tb\n";
  content += std::string("x\0y", 3) + "\tr\tz\n";  // NUL inside a name
  content += "\x01\x02\tr\t\x03\n";
  const std::string path = WriteFile("control.tsv", content);
  const auto kg = LoadTriples(path);
  ASSERT_TRUE(kg.ok());  // opaque bytes: all lines have 3 fields
  EXPECT_GE(kg->num_triples(), 1);
}

TEST_F(KgIoRobustnessTest, CrlfLineEndingsAreHandled) {
  const std::string path =
      WriteFile("crlf.tsv", "a\tr\tb\r\nb\tr\tc\r\n");
  const auto kg = LoadTriples(path);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 2);
  EXPECT_TRUE(kg->FindEntity("c").has_value());  // no trailing \r in names
}

TEST_F(KgIoRobustnessTest, BlankLinesAreIgnoredNotCounted) {
  const std::string path =
      WriteFile("blank.tsv", "\na\tr\tb\n\n\nb\tr\tc\n\n");
  TsvReadStats stats;
  const auto kg = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 2);
  EXPECT_EQ(stats.lines_skipped, 0);
  EXPECT_TRUE(LoadTriples(path, Strict()).ok());
}

TEST_F(KgIoRobustnessTest, SkipReportingIsCappedButCountIsExact) {
  std::string content;
  for (int i = 0; i < 20; ++i) content += "only_one_field\n";
  content += "a\tr\tb\n";
  const std::string path = WriteFile("many_bad.tsv", content);
  TsvReadOptions options;
  options.max_reported_lines = 3;
  TsvReadStats stats;
  const auto kg = LoadTriples(path, options, &stats);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(stats.lines_skipped, 20);
  EXPECT_EQ(stats.skipped_line_numbers.size(), 3u);
}

TEST_F(KgIoRobustnessTest, AlignmentRobustness) {
  KnowledgeGraph source, target;
  source.AddEntity("a");
  source.AddEntity("b");
  target.AddEntity("x");
  target.AddEntity("y");
  source.BuildAdjacency();
  target.BuildAdjacency();

  const std::string path = WriteFile(
      "align.tsv",
      "a\tx\n"
      "a\n"                  // too few fields
      "b\ty\tz\n"            // too many fields
      "missing\tx\n"         // unknown source entity
      "b\tmissing\n"         // unknown target entity
      "b\ty\n");
  TsvReadStats stats;
  const auto lenient = LoadAlignment(path, source, target, {}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->size(), 2u);
  EXPECT_EQ(stats.lines_skipped, 4);

  const auto strict = LoadAlignment(path, source, target, Strict());
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.status().message().find("line 2"), std::string::npos);
}

TEST_F(KgIoRobustnessTest, EmptyAlignmentFileIsOk) {
  KnowledgeGraph source, target;
  source.AddEntity("a");
  target.AddEntity("x");
  source.BuildAdjacency();
  target.BuildAdjacency();
  const std::string path = WriteFile("empty_align.tsv", "");
  const auto pairs = LoadAlignment(path, source, target);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST_F(KgIoRobustnessTest, LoadEaDatasetPropagatesContextfulErrors) {
  const std::string good =
      WriteFile("good.tsv", "a\tr\tb\nb\tr\tc\n");
  EaDatasetPaths paths;
  paths.source_triples = good;
  paths.target_triples = dir_ + "/does_not_exist.tsv";
  const auto missing = LoadEaDataset(paths);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The context names which side failed.
  EXPECT_NE(missing.status().message().find("target"), std::string::npos);
}

TEST_F(KgIoRobustnessTest, LoadEaDatasetLoadsCompleteSets) {
  const std::string src = WriteFile("s.tsv", "a\tr\tb\n");
  const std::string tgt = WriteFile("t.tsv", "x\tr\ty\n");
  const std::string train = WriteFile("train.tsv", "a\tx\n");
  EaDatasetPaths paths;
  paths.source_triples = src;
  paths.target_triples = tgt;
  paths.train_pairs = train;
  const auto dataset = LoadEaDataset(paths, {}, "fuzz");
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->name, "fuzz");
  EXPECT_EQ(dataset->source.num_entities(), 2);
  EXPECT_EQ(dataset->target.num_entities(), 2);
  ASSERT_EQ(dataset->split.train.size(), 1u);
  EXPECT_TRUE(dataset->split.test.empty());
}

}  // namespace
}  // namespace largeea
