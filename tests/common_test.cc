// Tests for src/common: rng, string utils, flags, memory tracking, timer.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "src/common/flags.h"
#include "src/common/memory_tracker.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"

namespace largeea {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 500; ++i) {
      const uint64_t v = rng.Uniform(bound);
      EXPECT_LT(v, static_cast<uint64_t>(bound));
    }
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a\t\tb\t", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("\t\n"), "");
  EXPECT_EQ(StripAsciiWhitespace("ab"), "ab");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("HeLLo 123"), "hello 123");
}

TEST(StringUtilTest, ParseIntAcceptsValid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 13 ").value(), 13);
}

TEST(StringUtilTest, ParseIntRejectsInvalid) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "2.5", "--gamma",
                        "--name", "hello"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 2.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_EQ(flags.GetInt("missing", 99), 99);
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(MemoryTrackerTest, TracksAllocationsAndPeak) {
  MemoryTracker& tracker = MemoryTracker::Get();
  tracker.ResetPeak();
  const int64_t base = tracker.CurrentBytes();
  {
    TrackedAllocation a(1000);
    EXPECT_EQ(tracker.CurrentBytes(), base + 1000);
    {
      TrackedAllocation b(500);
      EXPECT_EQ(tracker.CurrentBytes(), base + 1500);
    }
    EXPECT_EQ(tracker.CurrentBytes(), base + 1000);
    EXPECT_GE(tracker.PeakBytes(), base + 1500);
  }
  EXPECT_EQ(tracker.CurrentBytes(), base);
}

TEST(MemoryTrackerTest, MoveTransfersOwnership) {
  MemoryTracker& tracker = MemoryTracker::Get();
  const int64_t base = tracker.CurrentBytes();
  TrackedAllocation a(100);
  TrackedAllocation b = std::move(a);
  EXPECT_EQ(tracker.CurrentBytes(), base + 100);
  b.Resize(250);
  EXPECT_EQ(tracker.CurrentBytes(), base + 250);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 1.0);
}

}  // namespace
}  // namespace largeea
