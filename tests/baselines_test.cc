// Tests for src/baselines: competitor models and the memory-budget gate.
#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/gen/benchmark_gen.h"

namespace largeea {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 500;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* BaselineFixture::dataset_ = nullptr;

class AllBaselinesTest
    : public BaselineFixture,
      public ::testing::WithParamInterface<BaselineKind> {};

TEST_P(AllBaselinesTest, RunsAndBeatsChance) {
  BaselineOptions options;
  options.train.epochs = 60;
  const BaselineResult result = RunBaseline(GetParam(), dataset(), options);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.estimated_bytes, 0);
  EXPECT_GT(result.seconds, 0.0);
  // Chance H@1 is 1/500.
  EXPECT_GT(result.metrics.hits_at_1, 0.02) << result.name;
  EXPECT_LE(result.metrics.hits_at_1, 1.0);
  EXPECT_GE(result.metrics.hits_at_5, result.metrics.hits_at_1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllBaselinesTest,
                         ::testing::Values(BaselineKind::kGcnAlign,
                                           BaselineKind::kRrea,
                                           BaselineKind::kRdgcnLike,
                                           BaselineKind::kMultiKeLike,
                                           BaselineKind::kBertIntLike));

TEST_F(BaselineFixture, MemoryBudgetGateRefusesToRun) {
  BaselineOptions options;
  options.memory_budget_bytes = 1;  // nothing fits
  const BaselineResult result =
      RunBaseline(BaselineKind::kRrea, dataset(), options);
  EXPECT_FALSE(result.feasible);
  EXPECT_GT(result.estimated_bytes, 1);
  EXPECT_EQ(result.metrics.num_test_pairs, 0);
  EXPECT_DOUBLE_EQ(result.seconds, 0.0);
}

TEST_F(BaselineFixture, EstimatesScaleWithDatasetSize) {
  BenchmarkSpec small_spec = Ids15kSpec(LanguagePair::kEnFr);
  small_spec.world.num_entities = 200;
  const EaDataset small = GenerateBenchmark(small_spec);
  const BaselineOptions options;
  for (const BaselineKind kind :
       {BaselineKind::kGcnAlign, BaselineKind::kRrea,
        BaselineKind::kBertIntLike}) {
    EXPECT_GT(EstimateBaselineBytes(kind, dataset(), options),
              EstimateBaselineBytes(kind, small, options));
  }
}

TEST_F(BaselineFixture, RreaEstimateExceedsGcn) {
  // The paper's Table 2: whole-graph RREA is the first structural model
  // to hit the memory wall; our cost model must preserve that ordering.
  const BaselineOptions options;
  EXPECT_GT(EstimateBaselineBytes(BaselineKind::kRrea, dataset(), options),
            EstimateBaselineBytes(BaselineKind::kGcnAlign, dataset(),
                                  options));
}

TEST(PaperCostTest, ReproducesPaperFeasibilityPattern) {
  const auto feasible = [](BaselineKind kind, int64_t ns, int64_t nt) {
    return FitsPaperHardware(EstimatePaperCost(kind, ns, nt));
  };
  const std::vector<BaselineKind> all{
      BaselineKind::kGcnAlign, BaselineKind::kRrea,
      BaselineKind::kRdgcnLike, BaselineKind::kMultiKeLike,
      BaselineKind::kBertIntLike};
  // IDS15K: everything runs.
  for (const BaselineKind kind : all) {
    EXPECT_TRUE(feasible(kind, 15000, 15000)) << BaselineKindName(kind);
  }
  // IDS100K: only RREA dies (Table 2's "-" row).
  for (const BaselineKind kind : all) {
    EXPECT_EQ(feasible(kind, 100000, 100000),
              kind != BaselineKind::kRrea)
        << BaselineKindName(kind);
  }
  // DBP1M (both pairs): every competitor dies (Table 3).
  for (const BaselineKind kind : all) {
    EXPECT_FALSE(feasible(kind, 1877793, 1365118))
        << BaselineKindName(kind);
    EXPECT_FALSE(feasible(kind, 1625999, 1112970))
        << BaselineKindName(kind);
  }
}

TEST(PaperCostTest, CalibrationMatchesReportedNumbers) {
  // RREA at IDS15K: the paper measures 4.07 GB.
  const PaperCost rrea = EstimatePaperCost(BaselineKind::kRrea, 15000, 15000);
  EXPECT_NEAR(static_cast<double>(rrea.gpu_bytes) / (1LL << 30), 4.07, 0.5);
  // GCNAlign at IDS100K: the paper measures 1.00 GB.
  const PaperCost gcn =
      EstimatePaperCost(BaselineKind::kGcnAlign, 100000, 100000);
  EXPECT_NEAR(static_cast<double>(gcn.gpu_bytes) / (1LL << 30), 1.0, 0.3);
  // BERT-INT at IDS100K: ~14 GB GPU and ~58 GB RAM.
  const PaperCost bert =
      EstimatePaperCost(BaselineKind::kBertIntLike, 100000, 100000);
  EXPECT_NEAR(static_cast<double>(bert.gpu_bytes) / (1LL << 30), 14.0, 0.1);
  EXPECT_NEAR(static_cast<double>(bert.ram_bytes) / (1LL << 30), 58.0, 4.0);
}

TEST_F(BaselineFixture, NamesAreStable) {
  EXPECT_STREQ(BaselineKindName(BaselineKind::kGcnAlign), "GCNAlign");
  EXPECT_STREQ(BaselineKindName(BaselineKind::kBertIntLike), "BERT-INT*");
}

TEST_F(BaselineFixture, BertIntIsMostAccurateNameUser) {
  BaselineOptions options;
  options.train.epochs = 60;
  const BaselineResult bert_int =
      RunBaseline(BaselineKind::kBertIntLike, dataset(), options);
  const BaselineResult gcn =
      RunBaseline(BaselineKind::kGcnAlign, dataset(), options);
  // The paper's headline comparison: the BERT-based interaction model is
  // far more accurate than pure-structure GCN — and far heavier.
  EXPECT_GT(bert_int.metrics.hits_at_1, gcn.metrics.hits_at_1);
  EXPECT_GT(bert_int.estimated_bytes, gcn.estimated_bytes);
}

}  // namespace
}  // namespace largeea
