// Tests for bench/bench_util.h: byte formatting and the --json-out
// machine-readable table twin.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "bench/bench_util.h"

namespace largeea::bench {
namespace {

TEST(FormatBytesTest, ZeroAndSmallValues) {
  EXPECT_EQ(FormatBytes(0), "0B");
  EXPECT_EQ(FormatBytes(1), "1B");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(1023), "1023B");
}

TEST(FormatBytesTest, UnitThresholds) {
  EXPECT_EQ(FormatBytes(1 << 10), "1.0KB");
  EXPECT_EQ(FormatBytes(1536), "1.5KB");
  EXPECT_EQ(FormatBytes(1 << 20), "1.0MB");
  EXPECT_EQ(FormatBytes((1 << 20) + (1 << 19)), "1.5MB");
  EXPECT_EQ(FormatBytes(1LL << 30), "1.00GB");
  EXPECT_EQ(FormatBytes(5LL << 29), "2.50GB");
}

TEST(FormatBytesTest, NegativeValuesKeepSign) {
  EXPECT_EQ(FormatBytes(-1), "-1B");
  EXPECT_EQ(FormatBytes(-1536), "-1.5KB");
  EXPECT_EQ(FormatBytes(-(1LL << 30)), "-1.00GB");
}

TEST(FormatBytesTest, Int64MinDoesNotOverflow) {
  const std::string s = FormatBytes(std::numeric_limits<int64_t>::min());
  EXPECT_EQ(s.front(), '-');
  EXPECT_EQ(s.substr(s.size() - 2), "GB");
}

TEST(BenchJsonTest, InertWithoutFlag) {
  const char* argv[] = {"bench"};
  const Flags flags(1, const_cast<char**>(argv));
  BenchJson json(flags, "unit");
  EXPECT_FALSE(json.enabled());
  BenchJson::Row row;
  row.Set("k", "v");
  json.Add(std::move(row));  // dropped, no file written
  json.Write();
}

TEST(BenchJsonTest, WritesRowsToFile) {
  const std::string path =
      ::testing::TempDir() + "/largeea_bench_json_test.json";
  const std::string flag = "--json-out=" + path;
  const char* argv[] = {"bench", flag.c_str()};
  const Flags flags(2, const_cast<char**>(argv));
  {
    BenchJson json(flags, "unit_bench");
    ASSERT_TRUE(json.enabled());
    BenchJson::Row row;
    row.Set("dataset", "IDS15K")
        .Set("hits_at_1", 0.75)
        .Set("peak_bytes", static_cast<int64_t>(1 << 20))
        .Set("oom", false);
    json.Add(std::move(row));
    // Write happens in the destructor, as in the bench binaries.
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(content.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(content.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(content.find("\"dataset\":\"IDS15K\""), std::string::npos);
  EXPECT_NE(content.find("\"hits_at_1\":0.75"), std::string::npos);
  EXPECT_NE(content.find("\"peak_bytes\":1048576"), std::string::npos);
  EXPECT_NE(content.find("\"oom\":false"), std::string::npos);
}

}  // namespace
}  // namespace largeea::bench
