// Tests for src/kg: graph building, adjacency, IO, alignment splits.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/kg/alignment.h"
#include "src/kg/dataset.h"
#include "src/kg/kg_io.h"
#include "src/kg/knowledge_graph.h"

namespace largeea {
namespace {

KnowledgeGraph ToyKg() {
  KnowledgeGraph kg;
  const EntityId a = kg.AddEntity("Alice");
  const EntityId b = kg.AddEntity("Bob");
  const EntityId c = kg.AddEntity("Carol");
  const RelationId knows = kg.AddRelation("knows");
  const RelationId likes = kg.AddRelation("likes");
  kg.AddTriple(a, knows, b);
  kg.AddTriple(b, likes, c);
  kg.BuildAdjacency();
  return kg;
}

TEST(KnowledgeGraphTest, InterningIsIdempotent) {
  KnowledgeGraph kg;
  EXPECT_EQ(kg.AddEntity("x"), kg.AddEntity("x"));
  EXPECT_EQ(kg.num_entities(), 1);
  EXPECT_EQ(kg.AddRelation("r"), kg.AddRelation("r"));
  EXPECT_EQ(kg.num_relations(), 1);
}

TEST(KnowledgeGraphTest, LookupByName) {
  const KnowledgeGraph kg = ToyKg();
  EXPECT_EQ(kg.FindEntity("Bob").value(), 1);
  EXPECT_FALSE(kg.FindEntity("Dave").has_value());
  EXPECT_EQ(kg.FindRelation("likes").value(), 1);
  EXPECT_FALSE(kg.FindRelation("hates").has_value());
  EXPECT_EQ(kg.EntityName(2), "Carol");
  EXPECT_EQ(kg.RelationName(0), "knows");
}

TEST(KnowledgeGraphTest, AdjacencyIncludesBothDirections) {
  const KnowledgeGraph kg = ToyKg();
  const auto bob = kg.Neighbors(1);
  ASSERT_EQ(bob.size(), 2u);
  EXPECT_EQ(kg.Degree(1), 2);
  // One inverse edge (from Alice) and one forward (to Carol).
  int inverse = 0, forward = 0;
  for (const NeighborEdge& e : bob) {
    if (e.inverse) {
      ++inverse;
      EXPECT_EQ(e.neighbor, 0);
    } else {
      ++forward;
      EXPECT_EQ(e.neighbor, 2);
    }
  }
  EXPECT_EQ(inverse, 1);
  EXPECT_EQ(forward, 1);
}

TEST(KnowledgeGraphTest, ToUndirectedGraph) {
  const KnowledgeGraph kg = ToyKg();
  const CsrGraph g = kg.ToUndirectedGraph();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.CountConnectedComponents(), 1);
}

TEST(KgIoTest, TriplesRoundTrip) {
  const KnowledgeGraph kg = ToyKg();
  const std::string path =
      (std::filesystem::temp_directory_path() / "largeea_kg_test.tsv")
          .string();
  ASSERT_TRUE(SaveTriples(kg, path).ok());
  const auto loaded = LoadTriples(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entities(), kg.num_entities());
  EXPECT_EQ(loaded->num_relations(), kg.num_relations());
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());
  EXPECT_EQ(loaded->EntityName(0), "Alice");
  std::remove(path.c_str());
}

TEST(KgIoTest, LoadMissingFileFails) {
  const auto missing = LoadTriples("/nonexistent/path/file.tsv");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(KgIoTest, AlignmentRoundTrip) {
  const KnowledgeGraph a = ToyKg();
  KnowledgeGraph b;
  b.AddEntity("Alicia");
  b.AddEntity("Roberto");
  const RelationId r = b.AddRelation("conoce");
  b.AddTriple(0, r, 1);
  b.BuildAdjacency();

  const EntityPairList pairs{{0, 0}, {1, 1}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "largeea_align_test.tsv")
          .string();
  ASSERT_TRUE(SaveAlignment(pairs, a, b, path).ok());
  const auto loaded = LoadAlignment(path, a, b);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, pairs);
  std::remove(path.c_str());
}

TEST(AlignmentTest, SplitRespectsRatio) {
  EntityPairList pairs;
  for (int i = 0; i < 100; ++i) pairs.push_back({i, i});
  Rng rng(5);
  const AlignmentSplit split = SplitAlignment(pairs, 0.2, rng);
  EXPECT_EQ(split.train.size(), 20u);
  EXPECT_EQ(split.test.size(), 80u);
  EXPECT_EQ(split.All().size(), 100u);
  EXPECT_TRUE(IsOneToOne(split.All()));
}

TEST(AlignmentTest, SplitIsDeterministic) {
  EntityPairList pairs;
  for (int i = 0; i < 50; ++i) pairs.push_back({i, i});
  Rng rng1(9), rng2(9);
  const AlignmentSplit a = SplitAlignment(pairs, 0.3, rng1);
  const AlignmentSplit b = SplitAlignment(pairs, 0.3, rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(AlignmentTest, IsOneToOneDetectsDuplicates) {
  EXPECT_TRUE(IsOneToOne({{0, 0}, {1, 1}}));
  EXPECT_FALSE(IsOneToOne({{0, 0}, {0, 1}}));  // duplicate source
  EXPECT_FALSE(IsOneToOne({{0, 0}, {1, 0}}));  // duplicate target
}

TEST(DatasetTest, ReversedSwapsSides) {
  EaDataset ds;
  ds.name = "toy";
  ds.source = ToyKg();
  KnowledgeGraph t;
  t.AddEntity("X");
  t.AddEntity("Y");
  const RelationId r = t.AddRelation("r");
  t.AddTriple(0, r, 1);
  t.BuildAdjacency();
  ds.target = t;
  ds.split.train = {{0, 1}};
  ds.split.test = {{1, 0}};

  const EaDataset rev = ds.Reversed();
  EXPECT_EQ(rev.source.num_entities(), 2);
  EXPECT_EQ(rev.target.num_entities(), 3);
  EXPECT_EQ(rev.split.train[0], (EntityPair{1, 0}));
  EXPECT_EQ(rev.split.test[0], (EntityPair{0, 1}));
}

TEST(DatasetTest, ComputeStats) {
  EaDataset ds;
  ds.source = ToyKg();
  ds.target = ToyKg();
  ds.split.train = {{0, 0}};
  ds.split.test = {{1, 1}, {2, 2}};
  const DatasetStats stats = ComputeStats(ds);
  EXPECT_EQ(stats.source_entities, 3);
  EXPECT_EQ(stats.source_triples, 2);
  EXPECT_EQ(stats.alignment_pairs, 3);
  EXPECT_EQ(stats.seed_pairs, 1);
}

}  // namespace
}  // namespace largeea
