// Property-style sweeps over the multilevel partitioner: for a grid of
// (graph family, size, K, seed), every partition must be valid, complete,
// balanced, and no worse than a random assignment on edge cut.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/partition/metis.h"

namespace largeea {
namespace {

enum class GraphFamily { kRandomSparse, kCommunity, kStar, kRing };

CsrGraph MakeGraph(GraphFamily family, int32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  switch (family) {
    case GraphFamily::kRandomSparse:
      for (int32_t v = 1; v < n; ++v) {
        edges.push_back({v, static_cast<int32_t>(rng.Uniform(v)), 1});
        edges.push_back({v, static_cast<int32_t>(rng.Uniform(v)), 1});
      }
      break;
    case GraphFamily::kCommunity: {
      const int32_t block = 32;
      for (int32_t v = 1; v < n; ++v) {
        // Mostly intra-block edges, occasional global ones.
        const int32_t lo = (v / block) * block;
        if (rng.Bernoulli(0.9) && v > lo) {
          edges.push_back(
              {v, lo + static_cast<int32_t>(rng.Uniform(v - lo)), 1});
        } else {
          edges.push_back({v, static_cast<int32_t>(rng.Uniform(v)), 1});
        }
        edges.push_back(
            {v, lo + static_cast<int32_t>(rng.Uniform(
                         std::max(1, std::min(v, lo + block) - lo))),
             1});
      }
      break;
    }
    case GraphFamily::kStar:
      for (int32_t v = 1; v < n; ++v) edges.push_back({0, v, 1});
      break;
    case GraphFamily::kRing:
      for (int32_t v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
      break;
  }
  return CsrGraph::FromEdges(n, edges);
}

int64_t RandomCut(const CsrGraph& g, int32_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> assignment(g.num_vertices());
  for (auto& a : assignment) a = static_cast<int32_t>(rng.Uniform(k));
  return ComputeEdgeCut(g, assignment);
}

using Param = std::tuple<GraphFamily, int32_t, int32_t, uint64_t>;

class MetisPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(MetisPropertyTest, PartitionIsValidBalancedAndBeatsRandom) {
  const auto [family, n, k, seed] = GetParam();
  const CsrGraph graph = MakeGraph(family, n, seed);
  MetisOptions options;
  options.num_parts = k;
  options.seed = seed * 13 + 1;
  const PartitionResult result = MetisPartition(graph, options);

  // Completeness + validity.
  ASSERT_EQ(static_cast<int32_t>(result.assignment.size()), n);
  std::vector<int64_t> sizes(k, 0);
  for (const int32_t part : result.assignment) {
    ASSERT_GE(part, 0);
    ASSERT_LT(part, k);
    ++sizes[part];
  }
  // No empty parts; no part grossly overweight.
  for (const int64_t size : sizes) {
    EXPECT_GT(size, 0);
    EXPECT_LE(size, static_cast<int64_t>(1.3 * n / k) + 2);
  }
  // The reported cut is the true cut and is (essentially) no worse than
  // random. The small slack covers degenerate families like stars, where
  // every balanced partition cuts nearly every edge and "random" can win
  // by luck within noise.
  EXPECT_EQ(result.edge_cut, ComputeEdgeCut(graph, result.assignment));
  EXPECT_LE(result.edge_cut, RandomCut(graph, k, seed + 99) * 105 / 100 + 4);
  // Edge-cut rate is a valid fraction.
  const double rate = EdgeCutRate(graph, result.assignment);
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetisPropertyTest,
    ::testing::Combine(
        ::testing::Values(GraphFamily::kRandomSparse,
                          GraphFamily::kCommunity, GraphFamily::kStar,
                          GraphFamily::kRing),
        ::testing::Values(64, 500, 2000),
        ::testing::Values(2, 5, 8),
        ::testing::Values(uint64_t{1}, uint64_t{42})));

TEST(MetisPropertyExtraTest, CommunityGraphsCutFarBelowRandom) {
  const CsrGraph graph = MakeGraph(GraphFamily::kCommunity, 2048, 7);
  MetisOptions options;
  options.num_parts = 8;
  const PartitionResult result = MetisPartition(graph, options);
  // Community structure should let the partitioner find cuts several
  // times better than random (random cuts ~ (1 - 1/k) of edges).
  EXPECT_LT(result.edge_cut, RandomCut(graph, 8, 3) / 3);
}

}  // namespace
}  // namespace largeea
