// Tests for src/name: tokenizer, MinHash, Levenshtein, SENS, STNS, NFF,
// data augmentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/gen/benchmark_gen.h"
#include "src/la/ops.h"
#include "src/name/data_augmentation.h"
#include "src/name/levenshtein.h"
#include "src/name/minhash.h"
#include "src/name/nff.h"
#include "src/name/semantic_encoder.h"
#include "src/name/semantic_sim.h"
#include "src/name/string_sim.h"
#include "src/name/tokenizer.h"

namespace largeea {
namespace {

TEST(TokenizerTest, WordsAndNgrams) {
  const auto tokens = TokenizeName("Foo Bar", TokenizerOptions{
                                                  .ngram_size = 3,
                                                  .include_words = true,
                                                  .include_ngrams = true});
  // words: foo, bar; ngrams of "#foo#": #fo foo oo#; same for bar.
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "foo"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "bar"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "#fo"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "oo#"), tokens.end());
  EXPECT_EQ(tokens.size(), 8u);
}

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  const auto tokens = TokenizeName(
      "Jean-Pierre (2)", TokenizerOptions{.ngram_size = 3,
                                          .include_words = true,
                                          .include_ngrams = false});
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "jean");
  EXPECT_EQ(tokens[1], "pierre");
  EXPECT_EQ(tokens[2], "2");
}

TEST(TokenizerTest, EmptyAndShortInputs) {
  EXPECT_TRUE(TokenizeName("").empty());
  EXPECT_TRUE(TokenizeName("  --  ").empty());
  const auto tokens = TokenizeName(
      "ab", TokenizerOptions{.ngram_size = 5,
                             .include_words = false,
                             .include_ngrams = true});
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "#ab#");  // shorter than n: whole padded word
}

TEST(TokenizerTest, TokenHashStable) {
  EXPECT_EQ(TokenHash("hello"), TokenHash("hello"));
  EXPECT_NE(TokenHash("hello"), TokenHash("hellp"));
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "ab"), 2);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(LevenshteinTest, SymmetricAndTriangle) {
  const std::vector<std::string> words{"alpha", "alphas", "beta", "blpha"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
      for (const auto& c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

TEST(LevenshteinTest, SimilarityNormalised) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abcd"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", ""), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-9);
}

TEST(MinHashTest, JaccardEstimateAccuracy) {
  const MinHasher hasher(256, 3);
  // Two token sets with known Jaccard 0.5 (half shared).
  std::vector<std::string> a, b;
  for (int i = 0; i < 40; ++i) {
    const std::string shared = "sh" + std::to_string(i);
    a.push_back(shared);
    b.push_back(shared);
  }
  for (int i = 0; i < 40; ++i) a.push_back("a" + std::to_string(i));
  for (int i = 0; i < 40; ++i) b.push_back("b" + std::to_string(i));
  // |A ∩ B| = 40, |A ∪ B| = 120 → J = 1/3.
  const double estimate = MinHasher::EstimateJaccard(hasher.Signature(a),
                                                     hasher.Signature(b));
  EXPECT_NEAR(estimate, 1.0 / 3.0, 0.1);
}

TEST(MinHashTest, IdenticalSetsScoreOne) {
  const MinHasher hasher(64, 5);
  const std::vector<std::string> tokens{"x", "y", "z"};
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard(hasher.Signature(tokens),
                                              hasher.Signature(tokens)),
                   1.0);
}

TEST(MinHashTest, DisjointSetsScoreNearZero) {
  const MinHasher hasher(128, 7);
  std::vector<std::string> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back("a" + std::to_string(i));
    b.push_back("b" + std::to_string(i));
  }
  EXPECT_LT(MinHasher::EstimateJaccard(hasher.Signature(a),
                                       hasher.Signature(b)),
            0.05);
}

TEST(MinHashLshTest, SimilarItemsCollide) {
  const int32_t bands = 16, rows = 4;
  const MinHasher hasher(bands * rows, 9);
  MinHashLsh lsh(bands, rows);
  const std::vector<std::string> item{"foo", "bar", "baz", "qux", "quu"};
  std::vector<std::string> similar = item;
  similar[4] = "zzz";  // J = 4/6 = 0.67
  lsh.Insert(7, hasher.Signature(item));
  const auto candidates = lsh.Query(hasher.Signature(similar));
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 7),
            candidates.end());
}

TEST(MinHashLshTest, DissimilarItemsRarelyCollide) {
  const int32_t bands = 8, rows = 8;  // steep threshold curve
  const MinHasher hasher(bands * rows, 11);
  MinHashLsh lsh(bands, rows);
  for (int i = 0; i < 100; ++i) {
    lsh.Insert(i, hasher.Signature({"item" + std::to_string(i),
                                    "word" + std::to_string(i * 3),
                                    "tok" + std::to_string(i * 7)}));
  }
  const auto candidates =
      lsh.Query(hasher.Signature({"unrelated", "query", "tokens"}));
  EXPECT_LT(candidates.size(), 5u);
}

TEST(SemanticEncoderTest, IdenticalNamesIdenticalEmbeddings) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> a(encoder.dim()), b(encoder.dim());
  encoder.EncodeName("Barack Obama", a.data());
  encoder.EncodeName("Barack Obama", b.data());
  EXPECT_EQ(a, b);
}

TEST(SemanticEncoderTest, SimilarNamesCloserThanUnrelated) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> base(encoder.dim()), cognate(encoder.dim()),
      unrelated(encoder.dim());
  encoder.EncodeName("barack obama", base.data());
  encoder.EncodeName("barak obame", cognate.data());
  encoder.EncodeName("zyx wvut", unrelated.data());
  const float d_cognate =
      ManhattanDistance(base.data(), cognate.data(), encoder.dim());
  const float d_unrelated =
      ManhattanDistance(base.data(), unrelated.data(), encoder.dim());
  EXPECT_LT(d_cognate, d_unrelated);
}

TEST(SemanticEncoderTest, EmbeddingsAreUnitNorm) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> v(encoder.dim());
  encoder.EncodeName("some entity name", v.data());
  EXPECT_NEAR(Norm2(v.data(), encoder.dim()), 1.0f, 1e-3f);
}

TEST(SemanticEncoderTest, EmptyNameIsZero) {
  const SemanticEncoder encoder(SemanticEncoderOptions{});
  std::vector<float> v(encoder.dim(), 1.0f);
  encoder.EncodeName("...", v.data());
  EXPECT_FLOAT_EQ(Norm2(v.data(), encoder.dim()), 0.0f);
}

TEST(SemanticEncoderTest, IdfDownweightsCommonTokens) {
  KnowledgeGraph kg;
  // "common" appears in every name; distinctive words in one each.
  kg.AddEntity("common alpha");
  kg.AddEntity("common beta");
  kg.AddEntity("common gamma");
  kg.AddEntity("common delta");
  SemanticEncoder encoder(SemanticEncoderOptions{});
  encoder.FitIdf({&kg});
  std::vector<float> a(encoder.dim()), b(encoder.dim());
  encoder.EncodeName("common alpha", a.data());
  encoder.EncodeName("common beta", b.data());
  const float with_idf =
      ManhattanDistance(a.data(), b.data(), encoder.dim());
  const SemanticEncoder plain(SemanticEncoderOptions{});
  plain.EncodeName("common alpha", a.data());
  plain.EncodeName("common beta", b.data());
  const float without_idf =
      ManhattanDistance(a.data(), b.data(), encoder.dim());
  // IDF reduces the shared word's pull, pushing the two names apart.
  EXPECT_GT(with_idf, without_idf);
}

// Shared dataset fixture for the channel-level name tests.
class NameChannelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 600;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* NameChannelFixture::dataset_ = nullptr;

TEST_F(NameChannelFixture, SensRanksTrueMatchesHighly) {
  const SparseSimMatrix m_se = ComputeSemanticSimilarity(
      dataset().source, dataset().target, SensOptions{});
  int64_t hits = 0;
  const auto all = dataset().split.All();
  for (const EntityPair& p : all) {
    if (m_se.ArgmaxOfRow(p.source) == p.target) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / all.size(), 0.4);
}

TEST_F(NameChannelFixture, SensRespectsTopK) {
  SensOptions options;
  options.top_k = 7;
  const SparseSimMatrix m_se = ComputeSemanticSimilarity(
      dataset().source, dataset().target, options);
  for (int32_t r = 0; r < m_se.num_rows(); ++r) {
    EXPECT_LE(m_se.Row(r).size(), 7u);
  }
}

TEST_F(NameChannelFixture, SensSegmentationDoesNotChangeResults) {
  SensOptions one;
  one.num_segments = 1;
  SensOptions four;
  four.num_segments = 4;
  const SparseSimMatrix a = ComputeSemanticSimilarity(
      dataset().source, dataset().target, one);
  const SparseSimMatrix b = ComputeSemanticSimilarity(
      dataset().source, dataset().target, four);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int32_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.ArgmaxOfRow(r), b.ArgmaxOfRow(r)) << "row " << r;
  }
}

TEST_F(NameChannelFixture, SensLshApproximatesExact) {
  SensOptions exact;
  SensOptions approx;
  approx.use_lsh = true;
  const SparseSimMatrix a = ComputeSemanticSimilarity(
      dataset().source, dataset().target, exact);
  const SparseSimMatrix b = ComputeSemanticSimilarity(
      dataset().source, dataset().target, approx);
  // The approximate argmax agrees with the exact one most of the time.
  int same = 0, total = 0;
  for (int32_t r = 0; r < a.num_rows(); ++r) {
    if (a.ArgmaxOfRow(r) == kInvalidEntity) continue;
    ++total;
    if (a.ArgmaxOfRow(r) == b.ArgmaxOfRow(r)) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.7);
}

TEST_F(NameChannelFixture, StnsOnlyKeepsJaccardCandidates) {
  StnsOptions options;
  options.jaccard_threshold = 0.5;
  const SparseSimMatrix m_st = ComputeStringSimilarity(
      dataset().source, dataset().target, options);
  EXPECT_GT(m_st.TotalEntries(), 0);
  // Raising θ can only shrink the candidate set.
  StnsOptions strict = options;
  strict.jaccard_threshold = 0.9;
  const SparseSimMatrix m_strict = ComputeStringSimilarity(
      dataset().source, dataset().target, strict);
  EXPECT_LE(m_strict.TotalEntries(), m_st.TotalEntries());
}

TEST_F(NameChannelFixture, StnsScoresAreLevenshteinSims) {
  const SparseSimMatrix m_st = ComputeStringSimilarity(
      dataset().source, dataset().target, StnsOptions{});
  for (int32_t r = 0; r < m_st.num_rows(); ++r) {
    for (const SimEntry& e : m_st.Row(r)) {
      EXPECT_GT(e.score, 0.0f);
      EXPECT_LE(e.score, 1.0f);
      EXPECT_NEAR(e.score,
                  LevenshteinSimilarity(dataset().source.EntityName(r),
                                        dataset().target.EntityName(
                                            e.column)),
                  1e-5);
    }
  }
}

TEST_F(NameChannelFixture, NffFusesBothAspects) {
  const NffResult nff = ComputeNameFeatures(dataset().source,
                                            dataset().target, NffOptions{});
  EXPECT_GT(nff.semantic.TotalEntries(), 0);
  EXPECT_GT(nff.string.TotalEntries(), 0);
  EXPECT_GT(nff.fused.TotalEntries(), 0);
  EXPECT_GE(nff.sens_seconds, 0.0);
  EXPECT_GE(nff.stns_seconds, 0.0);
}

TEST_F(NameChannelFixture, DataAugmentationIsMutualAndPrecise) {
  const NffResult nff = ComputeNameFeatures(dataset().source,
                                            dataset().target, NffOptions{});
  const EntityPairList pseudo = GeneratePseudoSeeds(nff.fused, {});
  EXPECT_GT(pseudo.size(), 50u);
  EXPECT_TRUE(IsOneToOne(pseudo));
  // Mutual-NN pairs should be mostly correct (the paper reports ~94%).
  const double precision =
      PseudoSeedPrecision(pseudo, dataset().split.All());
  EXPECT_GT(precision, 0.8);
}

TEST_F(NameChannelFixture, DataAugmentationAvoidsExistingSeeds) {
  const NffResult nff = ComputeNameFeatures(dataset().source,
                                            dataset().target, NffOptions{});
  const EntityPairList pseudo =
      GeneratePseudoSeeds(nff.fused, dataset().split.train);
  std::unordered_set<EntityId> seeded_sources, seeded_targets;
  for (const EntityPair& p : dataset().split.train) {
    seeded_sources.insert(p.source);
    seeded_targets.insert(p.target);
  }
  for (const EntityPair& p : pseudo) {
    EXPECT_FALSE(seeded_sources.contains(p.source));
    EXPECT_FALSE(seeded_targets.contains(p.target));
  }
}

TEST(PseudoSeedPrecisionTest, ExactCounting) {
  const EntityPairList truth{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(PseudoSeedPrecision({{0, 0}, {1, 2}}, truth), 0.5);
  EXPECT_DOUBLE_EQ(PseudoSeedPrecision({}, truth), 0.0);
  EXPECT_DOUBLE_EQ(PseudoSeedPrecision({{2, 2}}, truth), 1.0);
}

}  // namespace
}  // namespace largeea
