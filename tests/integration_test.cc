// Cross-module integration tests: file-IO round trips into the pipeline,
// unsupervised runs, LSH-vs-exact pipelines, malformed inputs, and the
// CHECK-abort contract on programmer errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/memory_tracker.h"
#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/kg/kg_io.h"
#include "src/nn/batch_graph.h"

namespace largeea {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnDe);
    spec.world.num_entities = 700;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* IntegrationFixture::dataset_ = nullptr;

TEST_F(IntegrationFixture, FileRoundTripPreservesPipelineResults) {
  // Persist the dataset, reload it, and verify the pipeline produces the
  // identical result on the reloaded copy — the deployment flow for real
  // OpenEA-style TSV data.
  const std::string src_path = TempPath("it_source.tsv");
  const std::string tgt_path = TempPath("it_target.tsv");
  const std::string seed_path = TempPath("it_seeds.tsv");
  ASSERT_TRUE(SaveTriples(dataset().source, src_path).ok());
  ASSERT_TRUE(SaveTriples(dataset().target, tgt_path).ok());
  ASSERT_TRUE(SaveAlignment(dataset().split.train, dataset().source,
                            dataset().target, seed_path)
                  .ok());

  auto source = LoadTriples(src_path);
  auto target = LoadTriples(tgt_path);
  ASSERT_TRUE(source.ok() && target.ok());
  EaDataset reloaded;
  reloaded.source = std::move(*source);
  reloaded.target = std::move(*target);
  const auto seeds =
      LoadAlignment(seed_path, reloaded.source, reloaded.target);
  ASSERT_TRUE(seeds.ok());
  reloaded.split.train = *seeds;
  // Map the original test pairs through names (ids are re-interned).
  for (const EntityPair& p : dataset().split.test) {
    const auto s = reloaded.source.FindEntity(
        dataset().source.EntityName(p.source));
    const auto t = reloaded.target.FindEntity(
        dataset().target.EntityName(p.target));
    ASSERT_TRUE(s && t);
    reloaded.split.test.push_back(EntityPair{*s, *t});
  }

  LargeEaOptions options;
  options.structure_channel.num_batches = 2;
  options.structure_channel.train.epochs = 15;
  const LargeEaResult original = RunLargeEa(dataset(), options).value();
  const LargeEaResult roundtrip = RunLargeEa(reloaded, options).value();
  // Reloading re-interns entities/relations in file order, which permutes
  // the seeded random initialisation, so results are statistically — not
  // bit-for-bit — equal.
  EXPECT_NEAR(original.metrics.hits_at_1, roundtrip.metrics.hits_at_1, 0.03);
  EXPECT_NEAR(original.metrics.mrr, roundtrip.metrics.mrr, 0.03);

  std::remove(src_path.c_str());
  std::remove(tgt_path.c_str());
  std::remove(seed_path.c_str());
}

TEST_F(IntegrationFixture, MalformedTripleFilesSkipOrReject) {
  const std::string path = TempPath("it_bad.tsv");
  TsvReadOptions strict;
  strict.strict = true;
  {
    std::ofstream out(path);
    out << "only\ttwo\n"
        << "a\tr\tb\n";
  }
  // Strict mode rejects the file outright; the lenient default skips the
  // bad line (counted) and loads the good one.
  EXPECT_EQ(LoadTriples(path, strict).status().code(),
            StatusCode::kInvalidArgument);
  TsvReadStats stats;
  const auto lenient = LoadTriples(path, {}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->num_triples(), 1);
  EXPECT_EQ(stats.lines_skipped, 1);
  {
    std::ofstream out(path);
    out << "a\tr\tb\tc\textra\n";
  }
  EXPECT_EQ(LoadTriples(path, strict).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, AlignmentWithUnknownEntitiesSkipsOrRejects) {
  const std::string path = TempPath("it_bad_align.tsv");
  {
    std::ofstream out(path);
    out << "no-such-entity\talso-missing\n";
  }
  TsvReadOptions strict;
  strict.strict = true;
  EXPECT_EQ(LoadAlignment(path, dataset().source, dataset().target, strict)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  TsvReadStats stats;
  const auto lenient =
      LoadAlignment(path, dataset().source, dataset().target, {}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->empty());
  EXPECT_EQ(stats.lines_skipped, 1);
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, LshPipelineApproximatesExactPipeline) {
  LargeEaOptions exact;
  exact.structure_channel.num_batches = 2;
  exact.structure_channel.train.epochs = 20;
  LargeEaOptions approx = exact;
  approx.name_channel.nff.sens.use_lsh = true;
  const LargeEaResult exact_result = RunLargeEa(dataset(), exact).value();
  const LargeEaResult approx_result =
      RunLargeEa(dataset(), approx).value();
  // The ANN path may lose a little accuracy but must stay in the same
  // ballpark (the Faiss-for-exact swap of the paper's large tier).
  EXPECT_GT(approx_result.metrics.hits_at_1,
            0.8 * exact_result.metrics.hits_at_1);
}

TEST_F(IntegrationFixture, StructureChannelWithoutSeedsIsHarmless) {
  // No seeds at all: training has no signal, but nothing crashes and the
  // output matrix is still well-formed.
  StructureChannelOptions options;
  options.num_batches = 2;
  options.train.epochs = 3;
  const StructureChannelResult result =
      RunStructureChannel(dataset().source, dataset().target, /*seeds=*/{},
                          options)
          .value();
  EXPECT_EQ(result.similarity.num_rows(), dataset().source.num_entities());
  EXPECT_GT(result.similarity.TotalEntries(), 0);
}

TEST_F(IntegrationFixture, SingleBatchEqualsNoPartition) {
  StructureChannelOptions one_batch;
  one_batch.num_batches = 1;
  one_batch.train.epochs = 10;
  StructureChannelOptions none = one_batch;
  none.strategy = PartitionStrategy::kNone;
  const StructureChannelResult a =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, one_batch)
          .value();
  const StructureChannelResult b =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, none)
          .value();
  // K=1 METIS-CPS must contain everything in one batch, like kNone.
  ASSERT_EQ(a.batches.size(), 1u);
  EXPECT_EQ(a.batches[0].source_entities.size(),
            b.batches[0].source_entities.size());
  EXPECT_EQ(a.batches[0].target_entities.size(),
            b.batches[0].target_entities.size());
}

TEST_F(IntegrationFixture, MemoryTrackerSeesPipelineBuffers) {
  MemoryTracker::Get().ResetPeak();
  LargeEaOptions options;
  options.structure_channel.num_batches = 2;
  options.structure_channel.train.epochs = 5;
  const LargeEaResult result = RunLargeEa(dataset(), options).value();
  // Peak must cover at least the fused matrix (which is still alive).
  EXPECT_GE(result.peak_bytes, result.fused.MemoryBytes());
  EXPECT_GT(result.peak_bytes, 0);
}

TEST(CheckDeathTest, InvalidArgumentsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  KnowledgeGraph kg;
  kg.AddEntity("only");
  kg.AddRelation("r");
  EXPECT_DEATH(kg.AddTriple(0, 0, 5), "CHECK failed");
  EXPECT_DEATH(kg.EntityName(3), "CHECK failed");

  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "CHECK failed");

  SparseSimMatrix s(2, 2, 1);
  EXPECT_DEATH(s.Accumulate(5, 0, 1.0f), "CHECK failed");

  // Duplicate entities in a mini-batch are a programmer error.
  const std::vector<EntityId> duplicated{0, 0};
  EXPECT_DEATH(BuildLocalGraph(kg, duplicated), "CHECK failed");
}

}  // namespace
}  // namespace largeea
