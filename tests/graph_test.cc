// Tests for src/graph: CSR construction, merging, components.
#include <gtest/gtest.h>

#include <vector>

#include "src/graph/csr_graph.h"

namespace largeea {
namespace {

TEST(CsrGraphTest, BasicConstruction) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {2, 0, 3}};
  const CsrGraph g = CsrGraph::FromEdges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(CsrGraphTest, ParallelEdgesMergeBySummingWeights) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 0, 4}, {0, 1, 2}};
  const CsrGraph g = CsrGraph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.EdgeWeights(0)[0], 7);
  EXPECT_EQ(g.EdgeWeights(1)[0], 7);
}

TEST(CsrGraphTest, SelfLoopsDropped) {
  const std::vector<WeightedEdge> edges{{0, 0, 5}, {0, 1, 1}};
  const CsrGraph g = CsrGraph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(CsrGraphTest, NeighborsSortedAndSymmetric) {
  const std::vector<WeightedEdge> edges{{0, 3, 1}, {0, 1, 1}, {0, 2, 1}};
  const CsrGraph g = CsrGraph::FromEdges(4, edges);
  const auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0], 1);
  EXPECT_EQ(n0[1], 2);
  EXPECT_EQ(n0[2], 3);
  EXPECT_EQ(g.Neighbors(3)[0], 0);
}

TEST(CsrGraphTest, VertexWeights) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}};
  CsrGraph g = CsrGraph::FromEdges(3, edges);
  EXPECT_EQ(g.TotalVertexWeight(), 3);
  g.SetVertexWeight(1, 10);
  EXPECT_EQ(g.TotalVertexWeight(), 12);
  EXPECT_EQ(g.VertexWeight(1), 10);
}

TEST(CsrGraphTest, WeightedDegree) {
  const std::vector<WeightedEdge> edges{{0, 1, 2}, {0, 2, 5}};
  const CsrGraph g = CsrGraph::FromEdges(3, edges);
  EXPECT_EQ(g.WeightedDegree(0), 7);
  EXPECT_EQ(g.WeightedDegree(1), 2);
}

TEST(CsrGraphTest, ConnectedComponents) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {2, 3, 1}};
  const CsrGraph g = CsrGraph::FromEdges(5, edges);
  // {0,1}, {2,3}, {4}
  EXPECT_EQ(g.CountConnectedComponents(), 3);
}

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph g = CsrGraph::FromEdges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.CountConnectedComponents(), 0);
}

TEST(CsrGraphTest, IsolatedVertices) {
  const CsrGraph g = CsrGraph::FromEdges(4, {});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.Degree(2), 0);
  EXPECT_EQ(g.CountConnectedComponents(), 4);
}

}  // namespace
}  // namespace largeea
