// Tests for src/core: evaluator, channels, and the full LargeEA pipeline.
#include <gtest/gtest.h>

#include "src/core/evaluator.h"
#include "src/core/large_ea.h"
#include "src/core/name_channel.h"
#include "src/core/structure_channel.h"
#include "src/gen/benchmark_gen.h"

namespace largeea {
namespace {

TEST(EvaluatorTest, ComputesKnownMetrics) {
  SparseSimMatrix m(3, 3, 5);
  // Row 0: true target 0 at rank 1.
  m.Accumulate(0, 0, 0.9f);
  m.Accumulate(0, 1, 0.5f);
  // Row 1: true target 1 at rank 2.
  m.Accumulate(1, 2, 0.9f);
  m.Accumulate(1, 1, 0.5f);
  // Row 2: true target 2 absent.
  m.Accumulate(2, 0, 0.9f);
  const EntityPairList test{{0, 0}, {1, 1}, {2, 2}};
  const EvalMetrics metrics = Evaluate(m, test);
  EXPECT_NEAR(metrics.hits_at_1, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(metrics.hits_at_5, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(metrics.mrr, (1.0 + 0.5 + 0.0) / 3.0, 1e-9);
  EXPECT_EQ(metrics.num_test_pairs, 3);
}

TEST(EvaluatorTest, EmptyTestSet) {
  const SparseSimMatrix m(2, 2, 2);
  const EvalMetrics metrics = Evaluate(m, {});
  EXPECT_DOUBLE_EQ(metrics.hits_at_1, 0.0);
  EXPECT_EQ(metrics.num_test_pairs, 0);
}

TEST(EvaluatorTest, RankBeyondFiveCountsOnlyForMrr) {
  SparseSimMatrix m(1, 10, 10);
  for (int i = 0; i < 7; ++i) m.Accumulate(0, i, 1.0f - 0.1f * i);
  // True target is column 6, rank 7.
  const EvalMetrics metrics = Evaluate(m, {{0, 6}});
  EXPECT_DOUBLE_EQ(metrics.hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(metrics.hits_at_5, 0.0);
  EXPECT_NEAR(metrics.mrr, 1.0 / 7.0, 1e-9);
}

class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 800;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* CoreFixture::dataset_ = nullptr;

TEST_F(CoreFixture, NameChannelProducesFeaturesAndSeeds) {
  const NameChannelResult result =
      RunNameChannel(dataset().source, dataset().target,
                     dataset().split.train, NameChannelOptions{})
          .value();
  EXPECT_GT(result.nff.fused.TotalEntries(), 0);
  EXPECT_GT(result.pseudo_seeds.size(), 20u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.peak_bytes, 0);
}

TEST_F(CoreFixture, NameChannelAugmentationCanBeDisabled) {
  NameChannelOptions options;
  options.enable_augmentation = false;
  const NameChannelResult result =
      RunNameChannel(dataset().source, dataset().target,
                     dataset().split.train, options)
          .value();
  EXPECT_TRUE(result.pseudo_seeds.empty());
}

class StructureStrategyTest
    : public CoreFixture,
      public ::testing::WithParamInterface<PartitionStrategy> {};

TEST_P(StructureStrategyTest, ProducesBlockSimilarity) {
  StructureChannelOptions options;
  options.strategy = GetParam();
  options.num_batches = 3;
  options.train.epochs = 30;
  const StructureChannelResult result =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, options)
          .value();
  EXPECT_EQ(result.similarity.num_rows(), dataset().source.num_entities());
  EXPECT_EQ(result.similarity.num_cols(), dataset().target.num_entities());
  EXPECT_GT(result.similarity.TotalEntries(), 0);
  const size_t expected_batches =
      GetParam() == PartitionStrategy::kNone ? 1u : 3u;
  EXPECT_EQ(result.batches.size(), expected_batches);
  EXPECT_GT(result.training_seconds, 0.0);
  // Evaluation on the structure channel alone beats chance (1/800)
  // clearly. VPS destroys graph structure by design (Figure 6), so its
  // bar is much lower.
  const EvalMetrics metrics =
      Evaluate(result.similarity, dataset().split.test);
  const double bar = GetParam() == PartitionStrategy::kVps ? 0.005 : 0.05;
  EXPECT_GT(metrics.hits_at_1, bar);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StructureStrategyTest,
                         ::testing::Values(PartitionStrategy::kMetisCps,
                                           PartitionStrategy::kVps,
                                           PartitionStrategy::kNone));

TEST_F(CoreFixture, StructureSimilarityIsBlockDiagonal) {
  StructureChannelOptions options;
  options.num_batches = 3;
  options.train.epochs = 5;
  const StructureChannelResult result =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, options)
          .value();
  // Every similarity entry must pair entities of the same batch.
  std::vector<int32_t> source_batch(dataset().source.num_entities(), -1);
  std::vector<int32_t> target_batch(dataset().target.num_entities(), -1);
  for (size_t b = 0; b < result.batches.size(); ++b) {
    for (const EntityId e : result.batches[b].source_entities) {
      source_batch[e] = static_cast<int32_t>(b);
    }
    for (const EntityId e : result.batches[b].target_entities) {
      target_batch[e] = static_cast<int32_t>(b);
    }
  }
  for (int32_t r = 0; r < result.similarity.num_rows(); ++r) {
    for (const SimEntry& e : result.similarity.Row(r)) {
      EXPECT_EQ(source_batch[r], target_batch[e.column]);
    }
  }
}

TEST_F(CoreFixture, FullPipelineBeatsSingleChannels) {
  LargeEaOptions full;
  full.structure_channel.num_batches = 3;
  full.structure_channel.train.epochs = 40;
  const LargeEaResult fused = RunLargeEa(dataset(), full).value();

  LargeEaOptions structure_only = full;
  structure_only.use_name_channel = false;
  const LargeEaResult structure =
      RunLargeEa(dataset(), structure_only).value();

  LargeEaOptions name_only = full;
  name_only.use_structure_channel = false;
  const LargeEaResult name = RunLargeEa(dataset(), name_only).value();

  // Channel fusion helps (the paper's core ablation claim).
  EXPECT_GT(fused.metrics.hits_at_1, structure.metrics.hits_at_1);
  EXPECT_GT(fused.metrics.hits_at_1, name.metrics.hits_at_1);
  EXPECT_GT(fused.metrics.hits_at_1, 0.5);
  // Pseudo seeds were added to ψ'.
  EXPECT_GT(fused.effective_seeds.size(), dataset().split.train.size());
  // Metrics sanity: H@1 <= H@5, MRR in [H@1, 1].
  EXPECT_LE(fused.metrics.hits_at_1, fused.metrics.hits_at_5);
  EXPECT_GE(fused.metrics.mrr, fused.metrics.hits_at_1);
  EXPECT_LE(fused.metrics.mrr, 1.0);
}

TEST_F(CoreFixture, UnsupervisedRunWorksWithoutSeeds) {
  EaDataset unsupervised = dataset();
  // Move all train pairs into test: no human seeds at all.
  unsupervised.split.test.insert(unsupervised.split.test.end(),
                                 unsupervised.split.train.begin(),
                                 unsupervised.split.train.end());
  unsupervised.split.train.clear();
  LargeEaOptions options;
  options.structure_channel.num_batches = 3;
  options.structure_channel.train.epochs = 40;
  const LargeEaResult result = RunLargeEa(unsupervised, options).value();
  // DA must manufacture the seeds and the pipeline still aligns well.
  EXPECT_GT(result.effective_seeds.size(), 100u);
  EXPECT_GT(result.metrics.hits_at_1, 0.4);
}

TEST_F(CoreFixture, DisablingAugmentationShrinksSeeds) {
  LargeEaOptions options;
  options.structure_channel.num_batches = 3;
  options.structure_channel.train.epochs = 5;
  options.name_channel.enable_augmentation = false;
  const LargeEaResult result = RunLargeEa(dataset(), options).value();
  EXPECT_EQ(result.effective_seeds.size(), dataset().split.train.size());
}

TEST_F(CoreFixture, WithoutNameFusionStillUsesAugmentation) {
  LargeEaOptions options;
  options.structure_channel.num_batches = 2;
  options.structure_channel.train.epochs = 10;
  options.fuse_name_similarity = false;
  const LargeEaResult result = RunLargeEa(dataset(), options).value();
  // The name channel still ran (DA seeds were added to ψ')...
  EXPECT_GT(result.effective_seeds.size(), dataset().split.train.size());
  // ...but the fused matrix is exactly the structure channel's M_s.
  for (int32_t r = 0; r < result.fused.num_rows(); ++r) {
    ASSERT_EQ(result.fused.Row(r).size(),
              result.structure_channel.similarity.Row(r).size());
  }
}

TEST(DataAugmentationMarginTest, MarginTradesRecallForPrecision) {
  // Row 0: clear winner; row 1: near-tie between two candidates.
  SparseSimMatrix m(2, 4, 3);
  m.Accumulate(0, 0, 1.0f);
  m.Accumulate(0, 1, 0.5f);
  m.Accumulate(1, 2, 0.80f);
  m.Accumulate(1, 3, 0.79f);
  const EntityPairList loose = GeneratePseudoSeeds(m, {}, 0.0f);
  const EntityPairList strict = GeneratePseudoSeeds(m, {}, 0.10f);
  EXPECT_EQ(loose.size(), 2u);
  ASSERT_EQ(strict.size(), 1u);  // the near-tie is filtered out
  EXPECT_EQ(strict[0], (EntityPair{0, 0}));
}

TEST_F(CoreFixture, DeterministicAcrossRuns) {
  LargeEaOptions options;
  options.structure_channel.num_batches = 2;
  options.structure_channel.train.epochs = 10;
  const LargeEaResult a = RunLargeEa(dataset(), options).value();
  const LargeEaResult b = RunLargeEa(dataset(), options).value();
  EXPECT_DOUBLE_EQ(a.metrics.hits_at_1, b.metrics.hits_at_1);
  EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr);
}

}  // namespace
}  // namespace largeea
