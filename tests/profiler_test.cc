// Tests for src/obs/profiler: the TSC clock, the disabled-cost and
// determinism guarantees (DESIGN.md §11), kernel/pool record contents,
// trace counter tracks, and the report's `profile` section.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/large_ea.h"
#include "src/gen/benchmark_gen.h"
#include "src/la/ops.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/par/parallel_for.h"
#include "src/par/thread_pool.h"
#include "src/rt/io_util.h"
#include "src/sim/sinkhorn.h"

namespace largeea {
namespace {

// Every test restores the global profiler/pool state it touched: the
// profiler is a process-wide singleton and the rest of the suite runs in
// the same process.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = par::ThreadPool::Get().num_threads();
    obs::Profiler::Get().Disable();
    obs::Profiler::Get().Clear();
  }
  void TearDown() override {
    obs::Profiler::Get().Disable();
    obs::Profiler::Get().Clear();
    par::ThreadPool::Get().SetNumThreads(saved_threads_);
  }

  int32_t saved_threads_ = 1;
};

TEST_F(ProfilerTest, TscClockTracksWallTime) {
  const uint64_t start = obs::TscClock::Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double seconds = obs::TscClock::ToSeconds(obs::TscClock::Now() - start);
  // Generous bracket: the sleep may overshoot under load, but a clock
  // that is miscalibrated by 10x fails both bounds.
  EXPECT_GT(seconds, 0.010);
  EXPECT_LT(seconds, 2.0);
  EXPECT_GT(obs::TscClock::TicksPerSecond(), 1e6);
}

TEST_F(ProfilerTest, DisabledScopeCostsAlmostNothing) {
  // The acceptance bar for "off by default": a disabled ProfileScope is
  // one relaxed atomic load and a branch. 200ns per scope is ~100x the
  // real cost — loose enough for sanitizer builds and noisy CI, tight
  // enough to catch an accidental mutex or clock read on the fast path.
  ASSERT_FALSE(obs::ProfilingEnabled());
  constexpr int kScopes = 200000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kScopes; ++i) {
    obs::ProfileScope scope("test.disabled");
    scope.AddBytes(64, 64);
    scope.AddFlops(128);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds / kScopes, 200e-9)
      << "disabled ProfileScope costs " << seconds / kScopes * 1e9 << "ns";
  // And nothing was retained.
  EXPECT_TRUE(obs::Profiler::Get().KernelTotals().empty());
}

TEST_F(ProfilerTest, EnabledScopeRecordsCallsBytesAndDerivedRates) {
  obs::Profiler::Get().Enable();
  for (int i = 0; i < 3; ++i) {
    obs::ProfileScope scope("test.kernel");
    scope.AddBytes(1000, 500);
    scope.AddFlops(3000);
    // Make the measured time strictly positive on any clock.
    volatile double sink = 0.0;
    for (int j = 0; j < 1000; ++j) sink = sink + j;
  }
  const std::vector<obs::KernelProfile> totals =
      obs::Profiler::Get().KernelTotals();
  ASSERT_EQ(totals.size(), 1u);
  const obs::KernelProfile& k = totals[0];
  EXPECT_EQ(k.kernel, "test.kernel");
  EXPECT_EQ(k.thread_id, -1);  // cross-thread total
  EXPECT_EQ(k.calls, 3);
  EXPECT_EQ(k.bytes_read, 3000);
  EXPECT_EQ(k.bytes_written, 1500);
  EXPECT_EQ(k.flops, 9000);
  EXPECT_GT(k.seconds, 0.0);
  EXPECT_GT(k.GBPerSec(), 0.0);
  EXPECT_NEAR(k.ArithmeticIntensity(), 9000.0 / 4500.0, 1e-9);
}

TEST_F(ProfilerTest, ScopesNestAndAttributeToInnermost) {
  obs::Profiler::Get().Enable();
  EXPECT_STREQ(obs::CurrentProfileKernel(), "");
  {
    obs::ProfileScope outer("test.outer");
    EXPECT_STREQ(obs::CurrentProfileKernel(), "test.outer");
    {
      obs::ProfileScope inner("test.inner");
      EXPECT_STREQ(obs::CurrentProfileKernel(), "test.inner");
    }
    EXPECT_STREQ(obs::CurrentProfileKernel(), "test.outer");
  }
  EXPECT_STREQ(obs::CurrentProfileKernel(), "");
}

TEST_F(ProfilerTest, PoolJobRecordsChunkingAndUtilization) {
  obs::Profiler::Get().Enable();
  par::ThreadPool::Get().SetNumThreads(2);
  constexpr int64_t kRange = 1000;
  constexpr int64_t kGrain = 64;
  {
    obs::ProfileScope scope("test.pool_kernel");
    par::ParallelFor(0, kRange, kGrain, [](const par::ChunkRange& r) {
      volatile int64_t sink = 0;
      for (int64_t i = r.begin; i < r.end; ++i) sink = sink + i;
    });
  }
  const std::vector<obs::PoolJobProfile> jobs =
      obs::Profiler::Get().PoolJobs();
  ASSERT_EQ(jobs.size(), 1u);
  const obs::PoolJobProfile& job = jobs[0];
  EXPECT_EQ(job.kernel, "test.pool_kernel");
  EXPECT_EQ(job.chunks, (kRange + kGrain - 1) / kGrain);
  EXPECT_EQ(job.grain, kGrain);
  EXPECT_EQ(job.threads, 2);
  EXPECT_GT(job.wall_seconds, 0.0);
  EXPECT_GE(job.busy_seconds, 0.0);
  // max >= mean by construction, so the ratio is >= 1 whenever per-chunk
  // timing was captured at all.
  EXPECT_GE(job.ImbalanceRatio(), 1.0);
  EXPECT_GE(job.Utilization(), 0.0);
  EXPECT_LE(job.Utilization(), 1.5);  // clock-skew slack, not a target

  const std::vector<obs::PoolKernelTotal> totals =
      obs::Profiler::Get().PoolTotals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].kernel, "test.pool_kernel");
  EXPECT_EQ(totals[0].jobs, 1);
  EXPECT_EQ(totals[0].chunks, job.chunks);
}

TEST_F(ProfilerTest, OrderedReduceRecordsMergeTime) {
  obs::Profiler::Get().Enable();
  par::ThreadPool::Get().SetNumThreads(2);
  int64_t total = 0;
  {
    obs::ProfileScope scope("test.reduce_kernel");
    par::ParallelReduceOrdered<int64_t>(
        0, 256, 32,
        [](const par::ChunkRange& r, int64_t& state) {
          state = r.end - r.begin;
        },
        [&](const par::ChunkRange&, int64_t&& state) {
          // A deliberately slow serial merge so merge_seconds is
          // unambiguously positive even on coarse clocks.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          total += state;
        });
  }
  EXPECT_EQ(total, 256);
  const std::vector<obs::PoolJobProfile> jobs =
      obs::Profiler::Get().PoolJobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].kernel, "test.reduce_kernel");
  EXPECT_GT(jobs[0].merge_seconds, 0.0);
}

TEST_F(ProfilerTest, UnprofiledLoopsRecordNothing) {
  ASSERT_FALSE(obs::ProfilingEnabled());
  par::ParallelFor(0, 100, 10, [](const par::ChunkRange&) {});
  EXPECT_TRUE(obs::Profiler::Get().PoolJobs().empty());
  EXPECT_TRUE(obs::Profiler::Get().KernelTotals().empty());
}

TEST_F(ProfilerTest, CounterTracksLandInChromeTrace) {
  obs::TraceRecorder::Get().Clear();
  obs::TraceRecorder::Get().Enable();
  obs::Profiler::Get().Enable();
  par::ThreadPool::Get().SetNumThreads(2);
  {
    obs::ProfileScope scope("test.traced_kernel");
    par::ParallelFor(0, 512, 64, [](const par::ChunkRange&) {});
  }
  obs::Profiler::Get().Disable();
  obs::TraceRecorder::Get().Disable();

  ASSERT_FALSE(obs::TraceRecorder::Get().Counters().empty());
  const std::string json = obs::TraceRecorder::Get().ToChromeTraceJson();
  obs::TraceRecorder::Get().Clear();
  // Counter events (ph:"C") on tracks named after the attributed kernel.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"util:test.traced_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance:test.traced_kernel\""), std::string::npos);
}

TEST_F(ProfilerTest, ReportGainsProfileSectionOnlyWhenEnabled) {
  obs::RunReport disabled_report;
  EXPECT_EQ(disabled_report.ToJson().find("\"profile\""), std::string::npos);

  obs::Profiler::Get().Enable();
  {
    obs::ProfileScope scope("test.report_kernel");
    scope.AddBytes(10, 10);
  }
  obs::RunReport report;
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"test.report_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"gb_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks_per_second\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism: profiling observes, never perturbs (the §8 contract must
// survive §11). Kernel outputs — including the full pipeline's fused
// matrix — must be bit-identical with profiling off and on.

uint64_t MatrixHash(const Matrix& m) {
  return rt::Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(m.data()),
      static_cast<size_t>(m.size()) * sizeof(float)));
}

uint64_t SparseHash(const SparseSimMatrix& m) {
  std::string bytes;
  for (int32_t r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    bytes.append(reinterpret_cast<const char*>(row.data()),
                 row.size_bytes());
  }
  return rt::Fnv1a64(bytes);
}

TEST_F(ProfilerTest, KernelOutputsBitIdenticalWithProfilingOnAndOff) {
  par::ThreadPool::Get().SetNumThreads(2);
  Rng rng(29);
  Matrix a(64, 48), b(48, 32), c(64, 32);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  SparseSimMatrix sink_in(100, 100, 10);
  for (int32_t r = 0; r < 100; ++r) {
    for (int32_t e = 0; e < 10; ++e) {
      sink_in.Accumulate(r, static_cast<EntityId>(rng.Uniform(100)),
                         static_cast<float>(rng.Uniform(1000)) * 1e-3f);
    }
  }

  Gemm(a, b, c);
  const uint64_t gemm_off = MatrixHash(c);
  const uint64_t sink_off = SparseHash(SinkhornNormalize(sink_in, {}));

  obs::Profiler::Get().Enable();
  Gemm(a, b, c);
  const uint64_t gemm_on = MatrixHash(c);
  const uint64_t sink_on = SparseHash(SinkhornNormalize(sink_in, {}));
  obs::Profiler::Get().Disable();

  EXPECT_EQ(gemm_off, gemm_on);
  EXPECT_EQ(sink_off, sink_on);
  // And the profiled run actually recorded the kernels it timed.
  bool saw_gemm = false, saw_sinkhorn = false;
  for (const obs::KernelProfile& k : obs::Profiler::Get().KernelTotals()) {
    if (k.kernel == "la.gemm") saw_gemm = true;
    if (k.kernel == "sim.sinkhorn") saw_sinkhorn = true;
  }
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_sinkhorn);
}

TEST_F(ProfilerTest, FusedMatrixBitIdenticalWithProfilingOnAndOff) {
  par::ThreadPool::Get().SetNumThreads(2);
  BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
  spec.world.num_entities = 200;
  const EaDataset dataset = GenerateBenchmark(spec);
  LargeEaOptions options;
  options.use_structure_channel = false;  // name channel drives the fusion

  auto off = RunLargeEa(dataset, options);
  ASSERT_TRUE(off.ok());
  const uint64_t hash_off = SparseHash(off->fused);

  obs::Profiler::Get().Enable();
  auto on = RunLargeEa(dataset, options);
  obs::Profiler::Get().Disable();
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(hash_off, SparseHash(on->fused));
}

}  // namespace
}  // namespace largeea
