// Tests for the extension modules: Sinkhorn decoding and bootstrapped
// (structure-only, self-training) EA.
#include <gtest/gtest.h>

#include "src/core/bootstrap.h"
#include "src/core/evaluator.h"
#include "src/gen/benchmark_gen.h"
#include "src/sim/sinkhorn.h"

namespace largeea {
namespace {

TEST(SinkhornTest, NormalizesTowardDoublyStochastic) {
  SparseSimMatrix m(3, 3, 3);
  for (int32_t r = 0; r < 3; ++r) {
    for (int32_t c = 0; c < 3; ++c) {
      m.Accumulate(r, c, r == c ? 1.0f : 0.2f);
    }
  }
  const SparseSimMatrix normalized =
      SinkhornNormalize(m, SinkhornOptions{.temperature = 0.5f,
                                           .iterations = 20});
  // Rows sum to ~1 after the final column step on a square support; at
  // minimum they must be close.
  for (int32_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (const SimEntry& e : normalized.Row(r)) sum += e.score;
    EXPECT_NEAR(sum, 1.0f, 0.1f);
    // The diagonal stays each row's best match.
    EXPECT_EQ(normalized.ArgmaxOfRow(r), r);
  }
}

TEST(SinkhornTest, ResolvesContestedTargets) {
  // Rows 0 and 1 both prefer column 0, but row 1 has no alternative while
  // row 0 has a decent second choice. Sinkhorn's competition reassigns
  // row 0 to its runner-up; plain argmax leaves both on column 0.
  SparseSimMatrix m(2, 2, 2);
  m.Accumulate(0, 0, 1.0f);
  m.Accumulate(0, 1, 0.9f);
  m.Accumulate(1, 0, 1.0f);
  m.Accumulate(1, 1, 0.1f);
  EXPECT_EQ(m.ArgmaxOfRow(0), 0);
  EXPECT_EQ(m.ArgmaxOfRow(1), 0);
  const SparseSimMatrix normalized =
      SinkhornNormalize(m, SinkhornOptions{.temperature = 0.3f,
                                           .iterations = 30});
  EXPECT_EQ(normalized.ArgmaxOfRow(0), 1);
  EXPECT_EQ(normalized.ArgmaxOfRow(1), 0);
}

TEST(SinkhornTest, PreservesEntrySupport) {
  SparseSimMatrix m(4, 6, 3);
  Rng rng(5);
  for (int32_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 3; ++i) {
      m.Accumulate(r, static_cast<EntityId>(rng.Uniform(6)),
                   rng.UniformFloat());
    }
  }
  const SparseSimMatrix normalized = SinkhornNormalize(m);
  for (int32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(normalized.Row(r).size(), m.Row(r).size());
  }
}

class BootstrapFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkSpec spec = Ids15kSpec(LanguagePair::kEnFr);
    spec.world.num_entities = 900;
    dataset_ = new EaDataset(GenerateBenchmark(spec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const EaDataset& dataset() { return *dataset_; }

 private:
  static const EaDataset* dataset_;
};

const EaDataset* BootstrapFixture::dataset_ = nullptr;

TEST_F(BootstrapFixture, SeedsGrowAndAccuracyDoesNotCollapse) {
  BootstrapOptions options;
  options.structure.num_batches = 2;
  options.structure.train.epochs = 40;
  options.rounds = 3;
  const BootstrapResult result = RunBootstrappedStructureChannel(
      dataset().source, dataset().target, dataset().split.train, options);
  ASSERT_EQ(result.seeds_per_round.size(), 3u);
  // Seeds grow monotonically and beyond the input set.
  EXPECT_GE(result.seeds_per_round[1], result.seeds_per_round[0]);
  EXPECT_GT(result.final_seeds.size(), dataset().split.train.size());
  EXPECT_TRUE(IsOneToOne(result.final_seeds));

  // Bootstrapping must not fall below the single-round baseline.
  StructureChannelOptions single = options.structure;
  const StructureChannelResult baseline =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, single)
          .value();
  const double boot_h1 =
      Evaluate(result.similarity, dataset().split.test).hits_at_1;
  const double base_h1 =
      Evaluate(baseline.similarity, dataset().split.test).hits_at_1;
  EXPECT_GE(boot_h1, base_h1 * 0.9);
}

TEST_F(BootstrapFixture, GrowthCapIsRespected) {
  BootstrapOptions options;
  options.structure.num_batches = 2;
  options.structure.train.epochs = 10;
  options.rounds = 2;
  options.max_growth_per_round = 0.1;
  const BootstrapResult result = RunBootstrappedStructureChannel(
      dataset().source, dataset().target, dataset().split.train, options);
  const auto input = static_cast<int64_t>(dataset().split.train.size());
  EXPECT_LE(result.seeds_per_round[0],
            input + static_cast<int64_t>(0.1 * input) + 1);
}

TEST_F(BootstrapFixture, SingleRoundEqualsPlainChannel) {
  BootstrapOptions options;
  options.structure.num_batches = 2;
  options.structure.train.epochs = 10;
  options.rounds = 1;
  const BootstrapResult result = RunBootstrappedStructureChannel(
      dataset().source, dataset().target, dataset().split.train, options);
  EXPECT_EQ(result.final_seeds.size(), dataset().split.train.size());
  const StructureChannelResult plain =
      RunStructureChannel(dataset().source, dataset().target,
                          dataset().split.train, options.structure)
          .value();
  EXPECT_DOUBLE_EQ(
      Evaluate(result.similarity, dataset().split.test).hits_at_1,
      Evaluate(plain.similarity, dataset().split.test).hits_at_1);
}

}  // namespace
}  // namespace largeea
