// Tests for src/la: matrix container and dense ops.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>

#include "src/la/aligned_buffer.h"
#include "src/la/matrix.h"
#include "src/la/ops.h"

namespace largeea {
namespace {

Matrix Make(std::initializer_list<std::initializer_list<float>> rows) {
  const int64_t r = static_cast<int64_t>(rows.size());
  const int64_t c = static_cast<int64_t>(rows.begin()->size());
  Matrix m(r, c);
  int64_t i = 0;
  for (const auto& row : rows) {
    int64_t j = 0;
    for (const float v : row) m.At(i, j++) = v;
    ++i;
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 2);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FLOAT_EQ(m.At(2, 1), 0.0f);
  m.At(2, 1) = 5.0f;
  EXPECT_FLOAT_EQ(m.Row(2)[1], 5.0f);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0f;
  Matrix b = a;
  b.At(0, 0) = 2.0f;
  EXPECT_FLOAT_EQ(a.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.At(0, 0), 2.0f);
}

TEST(MatrixTest, GlorotInitWithinLimit) {
  Matrix m(30, 10);
  Rng rng(3);
  m.GlorotInit(rng);
  const float limit = std::sqrt(6.0f / 40.0f);
  bool any_nonzero = false;
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
    any_nonzero |= m.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MatrixTest, FillSetsEverything) {
  Matrix m(4, 4);
  m.Fill(2.5f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], 2.5f);
  }
}

TEST(MatrixTest, MovedFromIsEmpty) {
  // The moved-from matrix must not keep its old shape: rows()/cols()
  // describing storage that has been stolen would let Row() read freed
  // memory.
  Matrix a(3, 4);
  a.Fill(1.0f);
  Matrix b = std::move(a);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 4);
  EXPECT_FLOAT_EQ(b.At(2, 3), 1.0f);
  EXPECT_EQ(a.rows(), 0);  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(a.cols(), 0);
  EXPECT_EQ(a.size(), 0);

  Matrix c(1, 1);
  c = std::move(b);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 4);
  EXPECT_EQ(b.rows(), 0);  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(b.cols(), 0);

  // Self-move must not corrupt the matrix.
  Matrix& alias = c;
  c = std::move(alias);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_FLOAT_EQ(c.At(2, 3), 1.0f);
}

TEST(MatrixTest, StorageIsCacheLineAligned) {
  for (const int64_t cols : {1, 7, 16, 33}) {
    Matrix m(5, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) %
                  AlignedBuffer::kAlignment,
              0u)
        << "cols=" << cols;
  }
}

TEST(AlignedBufferTest, CopyAndMoveSemantics) {
  AlignedBuffer a(5);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  AlignedBuffer b = a;  // deep copy
  b[0] = 42.0f;
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  AlignedBuffer c = std::move(a);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_FLOAT_EQ(c[4], 4.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(a.data(), nullptr);
}

TEST(OpsTest, GemmMatchesManual) {
  const Matrix a = Make({{1, 2}, {3, 4}});
  const Matrix b = Make({{5, 6}, {7, 8}});
  Matrix c(2, 2);
  Gemm(a, b, c);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(OpsTest, GemmTransposeBMatchesGemm) {
  Rng rng(5);
  Matrix a(4, 3), b(5, 3), bt(3, 5);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 3; ++j) bt.At(j, i) = b.At(i, j);
  }
  Matrix c1(4, 5), c2(4, 5);
  GemmTransposeB(a, b, c1);
  Gemm(a, bt, c2);
  for (int64_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5f);
  }
}

TEST(OpsTest, GemmTransposeAMatchesGemm) {
  Rng rng(6);
  Matrix a(4, 3), at(3, 4), b(4, 2);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix c1(3, 2), c2(3, 2);
  GemmTransposeA(a, b, c1);
  Gemm(at, b, c2);
  for (int64_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5f);
  }
}

TEST(OpsTest, AxpyAndScale) {
  Matrix x = Make({{1, 2}});
  Matrix y = Make({{10, 20}});
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y.At(0, 0), 12.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 24.0f);
  Scale(y, 0.5f);
  EXPECT_FLOAT_EQ(y.At(0, 0), 6.0f);
}

TEST(OpsTest, L2NormalizeRows) {
  Matrix m = Make({{3, 4}, {0, 0}});
  L2NormalizeRows(m);
  EXPECT_NEAR(m.At(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(m.At(0, 1), 0.8f, 1e-5f);
  // Zero row stays (near) zero rather than NaN.
  EXPECT_FLOAT_EQ(m.At(1, 0), 0.0f);
  EXPECT_FALSE(std::isnan(m.At(1, 1)));
}

TEST(OpsTest, ReluForwardBackward) {
  Matrix m = Make({{-1, 2, 0}});
  Matrix pre = m;
  ReluInPlace(m);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  Matrix grad = Make({{5, 5, 5}});
  ReluBackwardInPlace(pre, grad);
  EXPECT_FLOAT_EQ(grad.At(0, 0), 0.0f);  // pre < 0
  EXPECT_FLOAT_EQ(grad.At(0, 1), 5.0f);  // pre > 0
  EXPECT_FLOAT_EQ(grad.At(0, 2), 0.0f);  // pre == 0
}

TEST(OpsTest, DistancesAndNorms) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 0, 3};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 13.0f);
  EXPECT_FLOAT_EQ(ManhattanDistance(a, b, 3), 5.0f);
  EXPECT_NEAR(Norm2(a, 3), std::sqrt(14.0f), 1e-5f);
  EXPECT_FLOAT_EQ(ManhattanSimilarity(0.0f), 1.0f);
  EXPECT_GT(ManhattanSimilarity(1.0f), ManhattanSimilarity(2.0f));
}

TEST(OpsTest, FrobeniusNorm) {
  const Matrix m = Make({{3, 0}, {0, 4}});
  EXPECT_NEAR(FrobeniusNorm(m), 5.0f, 1e-5f);
}

}  // namespace
}  // namespace largeea
