#include "src/tune/autotune.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "src/common/rng.h"
#include "src/la/matrix.h"
#include "src/la/ops.h"
#include "src/sim/sinkhorn.h"
#include "src/sim/sparse_sim.h"
#include "src/sim/topk_search.h"

namespace largeea::tune {
namespace {

int64_t Scaled(double scale, int64_t representative, int64_t floor) {
  const int64_t scaled = static_cast<int64_t>(representative * scale);
  return scaled < floor ? floor : scaled;
}

/// Best-effort per-call seconds: one warm-up call, then doubling
/// iteration counts until the window exceeds min_seconds.
double TimeFn(const std::function<void()>& fn, double min_seconds) {
  fn();
  int64_t iters = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds >= min_seconds || iters >= (int64_t{1} << 20)) {
      return seconds / static_cast<double>(iters);
    }
    iters *= 2;
  }
}

struct Sweep {
  const char* param;
  int64_t TuneOverrides::* field;
  std::vector<int64_t> candidates;  // 0 (= analytic) must come first
  std::function<void()> kernel;
};

}  // namespace

AutotuneResult RunAutotune(const AutotuneOptions& options) {
  const double scale = options.scale > 0 ? options.scale : 1.0;
  Rng rng(1234);

  // DBP1M-representative shapes (bench_micro's profile sweep sizes),
  // scaled down for smoke runs.
  const int64_t gemm_m = Scaled(scale, 20000, 256);
  const int64_t dim = 128;
  const int64_t wide_n = Scaled(scale, 4096, 256);
  const int64_t elem_n = Scaled(scale, 4096, 512);
  const int64_t topk_n = Scaled(scale, 4000, 128);
  const int64_t sink_rows = Scaled(scale, 20000, 512);

  Matrix a(gemm_m, dim), b(dim, dim), c(gemm_m, dim);
  a.GlorotInit(rng);
  b.GlorotInit(rng);
  Matrix b_wide(dim, wide_n), c_wide(gemm_m, wide_n);
  b_wide.GlorotInit(rng);
  Matrix bt(dim, dim);
  bt.GlorotInit(rng);
  Matrix ex(elem_n, elem_n / 4), ey(elem_n, elem_n / 4);
  ex.GlorotInit(rng);
  ey.GlorotInit(rng);
  Matrix norm_m(gemm_m, dim);
  norm_m.GlorotInit(rng);
  Matrix tk_src(topk_n, 64), tk_dst(topk_n, 64);
  tk_src.GlorotInit(rng);
  tk_dst.GlorotInit(rng);
  SparseSimMatrix sink_in(static_cast<int32_t>(sink_rows),
                          static_cast<int32_t>(sink_rows), 50);
  for (int32_t r = 0; r < sink_rows; ++r) {
    for (int32_t e = 0; e < 50; ++e) {
      sink_in.Accumulate(
          r, static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(sink_rows))),
          static_cast<float>(rng.Uniform(1000)) * 1e-3f);
    }
  }
  SinkhornOptions sink_options;
  sink_options.iterations = 3;
  TopKOptions tk_options;
  tk_options.k = 50;

  const std::vector<Sweep> sweeps = {
      {"gemm.row_grain",
       &TuneOverrides::gemm_row_grain,
       {0, 16, 32, 64, 128, 320},
       [&] { Gemm(a, b, c); }},
      {"gemm.panel",
       &TuneOverrides::gemm_panel,
       {0, 32, 64, 128},
       [&] { Gemm(a, b_wide, c_wide); }},
      {"gemm.tile_cols",
       &TuneOverrides::gemm_tile_cols,
       {0, 8, 16, 32, 64},
       [&] { GemmTransposeB(a, bt, c); }},
      {"elem.grain",
       &TuneOverrides::elem_grain,
       {0, 1 << 14, 1 << 15, 1 << 16, 1 << 18},
       [&] { Axpy(0.5f, ex, ey); }},
      {"norm.row_grain",
       &TuneOverrides::norm_row_grain,
       {0, 64, 128, 256, 512},
       [&] { L2NormalizeRows(norm_m); }},
      {"sinkhorn.row_grain",
       &TuneOverrides::sinkhorn_row_grain,
       {0, 128, 256, 512},
       [&] { SinkhornNormalize(sink_in, sink_options); }},
      {"topk.row_grain",
       &TuneOverrides::topk_row_grain,
       {0, 16, 32, 64},
       [&] {
         SparseSimMatrix out = ExactTopK(tk_src, tk_dst, tk_options);
         (void)out;
       }},
      {"par.chunks_per_thread",
       &TuneOverrides::chunks_per_thread,
       {0, 8, 16, 32, 64},
       [&] { Gemm(a, b, c); }},
  };

  AutotuneResult result;
  // Start from whatever is installed so earlier --tune-file /
  // --tune-override choices shape the sweep's context.
  TuneOverrides current = TuneTable::Get().overrides();
  for (const Sweep& sweep : sweeps) {
    int64_t best_candidate = 0;
    double best_seconds = -1.0;
    const size_t first_row = result.rows.size();
    for (const int64_t candidate : sweep.candidates) {
      TuneOverrides trial = current;
      trial.*sweep.field = candidate;
      TuneTable::Set(trial);
      const double seconds = TimeFn(sweep.kernel, options.min_seconds);
      result.rows.push_back({sweep.param, candidate, seconds, false});
      // Strict < keeps the first (analytic) candidate on exact ties.
      if (best_seconds < 0 || seconds < best_seconds) {
        best_seconds = seconds;
        best_candidate = candidate;
      }
    }
    current.*sweep.field = best_candidate;
    for (size_t i = first_row; i < result.rows.size(); ++i) {
      result.rows[i].winner = result.rows[i].candidate == best_candidate;
    }
  }
  TuneTable::Set(current);
  result.winners = current;
  return result;
}

}  // namespace largeea::tune
