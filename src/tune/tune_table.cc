#include "src/tune/tune_table.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/obs/json_writer.h"
#include "src/rt/io_util.h"

namespace largeea::tune {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

CacheSizes DetectCacheSizes() {
  CacheSizes sizes;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  if (l1 > 0) sizes.l1_bytes = l1;
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) sizes.l2_bytes = l2;
#endif
  // Some kernels report L2=0 on VMs; keep the fallback rather than a
  // degenerate panel size.
  if (sizes.l1_bytes <= 0) sizes.l1_bytes = 32 * 1024;
  if (sizes.l2_bytes <= 0) sizes.l2_bytes = 1024 * 1024;
  return sizes;
}

const std::vector<TuneParamInfo>& TuneParams() {
  static const std::vector<TuneParamInfo>* kParams =
      new std::vector<TuneParamInfo>{
          {"gemm.row_grain", &TuneOverrides::gemm_row_grain},
          {"gemm.panel", &TuneOverrides::gemm_panel},
          {"gemm.cache_bytes", &TuneOverrides::gemm_cache_bytes},
          {"gemm.tile_cols", &TuneOverrides::gemm_tile_cols},
          {"elem.grain", &TuneOverrides::elem_grain},
          {"norm.row_grain", &TuneOverrides::norm_row_grain},
          {"sinkhorn.row_grain", &TuneOverrides::sinkhorn_row_grain},
          {"topk.row_grain", &TuneOverrides::topk_row_grain},
          {"par.chunks_per_thread", &TuneOverrides::chunks_per_thread},
      };
  return *kParams;
}

Status SetOverrideByName(TuneOverrides& overrides, const std::string& name,
                         int64_t value) {
  if (value < 0) {
    return InvalidArgumentError("tune parameter '" + name +
                                "' must be >= 0 (0 = analytic default), got " +
                                std::to_string(value));
  }
  for (const TuneParamInfo& param : TuneParams()) {
    if (name == param.name) {
      overrides.*param.field = value;
      return OkStatus();
    }
  }
  return InvalidArgumentError("unknown tune parameter '" + name + "'");
}

Status ApplyOverrideList(TuneOverrides& overrides, const std::string& list) {
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string_view item(list.data() + pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError(
          "--tune-override item '" + std::string(item) +
          "' is not of the form name=value");
    }
    const std::string name(item.substr(0, eq));
    const std::string value_str(item.substr(eq + 1));
    char* end = nullptr;
    const long long value = std::strtoll(value_str.c_str(), &end, 10);
    if (end == value_str.c_str() || *end != '\0') {
      return InvalidArgumentError("--tune-override value for '" + name +
                                  "' is not an integer: '" + value_str + "'");
    }
    LARGEEA_RETURN_IF_ERROR(
        SetOverrideByName(overrides, name, static_cast<int64_t>(value)));
  }
  return OkStatus();
}

std::string CanonicalTuneString(const TuneOverrides& overrides) {
  std::string out;
  for (const TuneParamInfo& param : TuneParams()) {
    out += param.name;
    out += '=';
    out += std::to_string(overrides.*param.field);
    out += ';';
  }
  return out;
}

uint64_t TuneFingerprint(const TuneOverrides& overrides) {
  return rt::Fnv1a64(CanonicalTuneString(overrides));
}

Status SaveTuneFile(const std::string& path, const TuneOverrides& overrides) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("largeea_tune").Int(1);
  w.Key("params").BeginObject();
  for (const TuneParamInfo& param : TuneParams()) {
    const int64_t value = overrides.*param.field;
    if (value != 0) w.Key(param.name).Int(value);
  }
  w.EndObject();
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(TuneFingerprint(overrides)));
  w.Key("checksum").String(checksum);
  w.EndObject();
  std::string content = w.str();
  content += '\n';
  return rt::AtomicallyWriteFile(path, content).WithContext("tune file");
}

namespace {

// Minimal scanner for the tuning-file JSON we write ourselves: a flat
// "params" object of "name": int pairs plus a "checksum" string. A full
// JSON parser would be overkill for a format this repo both writes and
// reads; anything the scanner cannot account for is kInvalidArgument.
Status ScanTuneJson(const std::string& text, TuneOverrides& overrides,
                    std::string& checksum) {
  if (text.find("\"largeea_tune\"") == std::string::npos) {
    return InvalidArgumentError("missing \"largeea_tune\" marker");
  }
  const size_t params_key = text.find("\"params\"");
  if (params_key == std::string::npos) {
    return InvalidArgumentError("missing \"params\" object");
  }
  const size_t open = text.find('{', params_key);
  const size_t close = text.find('}', params_key);
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return InvalidArgumentError("malformed \"params\" object");
  }
  size_t pos = open + 1;
  while (pos < close) {
    const size_t quote = text.find('"', pos);
    if (quote == std::string::npos || quote >= close) break;
    const size_t quote_end = text.find('"', quote + 1);
    if (quote_end == std::string::npos || quote_end >= close) {
      return InvalidArgumentError("unterminated parameter name");
    }
    const std::string name = text.substr(quote + 1, quote_end - quote - 1);
    const size_t colon = text.find(':', quote_end);
    if (colon == std::string::npos || colon >= close) {
      return InvalidArgumentError("parameter '" + name + "' has no value");
    }
    size_t value_begin = colon + 1;
    while (value_begin < close &&
           std::isspace(static_cast<unsigned char>(text[value_begin]))) {
      ++value_begin;
    }
    size_t value_end = value_begin;
    while (value_end < close &&
           (std::isdigit(static_cast<unsigned char>(text[value_end])) ||
            text[value_end] == '-')) {
      ++value_end;
    }
    if (value_end == value_begin) {
      return InvalidArgumentError("parameter '" + name +
                                  "' has a non-integer value");
    }
    const int64_t value =
        std::strtoll(text.substr(value_begin, value_end - value_begin).c_str(),
                     nullptr, 10);
    LARGEEA_RETURN_IF_ERROR(SetOverrideByName(overrides, name, value));
    pos = value_end;
  }

  const size_t checksum_key = text.find("\"checksum\"", close);
  if (checksum_key == std::string::npos) {
    return InvalidArgumentError("missing \"checksum\"");
  }
  const size_t cs_open = text.find('"', checksum_key + 10);
  if (cs_open == std::string::npos) {
    return InvalidArgumentError("malformed \"checksum\"");
  }
  const size_t cs_close = text.find('"', cs_open + 1);
  if (cs_close == std::string::npos) {
    return InvalidArgumentError("malformed \"checksum\"");
  }
  checksum = text.substr(cs_open + 1, cs_close - cs_open - 1);
  return OkStatus();
}

}  // namespace

StatusOr<TuneOverrides> LoadTuneFile(const std::string& path) {
  StatusOr<std::string> text = rt::ReadFileToString(path);
  if (!text.ok()) return text.status();
  TuneOverrides overrides;
  std::string checksum;
  const Status scanned = ScanTuneJson(*text, overrides, checksum);
  if (!scanned.ok()) return scanned.WithContext("tune file " + path);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(TuneFingerprint(overrides)));
  if (checksum != expected) {
    return DataLossError("tune file " + path + " checksum mismatch: file says " +
                         checksum + ", params hash to " + expected);
  }
  return overrides;
}

// ---------------------------------------------------------------------
// TuneTable

namespace {

// Leaked-pointer singleton swap, same idiom as the SIMD dispatch table:
// readers take one acquire load, Set() installs a fresh immutable table.
std::atomic<const TuneTable*>& TableSlot() {
  static std::atomic<const TuneTable*> slot{nullptr};
  return slot;
}

}  // namespace

TuneTable::TuneTable() : cache_(DetectCacheSizes()) {}

TuneTable::TuneTable(const TuneOverrides& overrides)
    : overrides_(overrides), cache_(DetectCacheSizes()) {}

const TuneTable& TuneTable::Get() {
  const TuneTable* table = TableSlot().load(std::memory_order_acquire);
  if (table == nullptr) {
    static const TuneTable* defaults = new TuneTable();
    const TuneTable* expected = nullptr;
    TableSlot().compare_exchange_strong(expected, defaults,
                                        std::memory_order_acq_rel);
    table = TableSlot().load(std::memory_order_acquire);
  }
  return *table;
}

void TuneTable::Set(const TuneOverrides& overrides) {
  // Deliberately leaked: kernels may hold a reference across the swap.
  TableSlot().store(new TuneTable(overrides), std::memory_order_release);
}

int64_t TuneTable::GemmRowGrain(int64_t m) const {
  if (overrides_.gemm_row_grain > 0) return overrides_.gemm_row_grain;
  if (m <= 0) return 16;
  // Target ~kTargetChunks chunks, rounded up to a 16-row multiple so
  // chunk starts stay line-aligned for the row-major panels.
  const int64_t grain = CeilDiv(m, kTargetChunks);
  return Clamp(CeilDiv(grain, 16) * 16, 16, m < 16 ? 16 : m);
}

int64_t TuneTable::GemmPanel(int64_t k, int64_t n) const {
  if (overrides_.gemm_panel > 0) return overrides_.gemm_panel;
  const int64_t cache = overrides_.gemm_cache_bytes > 0
                            ? overrides_.gemm_cache_bytes
                            : cache_.l2_bytes;
  // Whole-B fits: no panelling needed.
  if (k * n * 4 <= cache) return k > 0 ? k : 1;
  // Keep a half-cache worth of B rows resident per panel pass.
  if (n <= 0) return 64;
  return Clamp((cache / 2) / (4 * n), 16, 256);
}

int64_t TuneTable::GemmTileCols(int64_t k) const {
  if (overrides_.gemm_tile_cols > 0) return overrides_.gemm_tile_cols;
  if (k <= 0) return 32;
  // A tile of B rows should fit in half of L1 next to the A row.
  return Clamp((cache_.l1_bytes / 2) / (4 * k), 8, 128);
}

int64_t TuneTable::ElemGrain(int64_t size) const {
  if (overrides_.elem_grain > 0) return overrides_.elem_grain;
  const int64_t floor_grain = int64_t{1} << 14;
  if (size <= floor_grain) return floor_grain;
  const int64_t grain = CeilDiv(size, kTargetChunks);
  return grain < floor_grain ? floor_grain : grain;
}

int64_t TuneTable::NormRowGrain(int64_t rows) const {
  if (overrides_.norm_row_grain > 0) return overrides_.norm_row_grain;
  if (rows <= 16) return 16;
  const int64_t grain = CeilDiv(rows, kTargetChunks);
  return grain < 16 ? 16 : grain;
}

int64_t TuneTable::SinkhornRowGrain(int64_t rows) const {
  if (overrides_.sinkhorn_row_grain > 0) return overrides_.sinkhorn_row_grain;
  if (rows <= 64) return 64;
  const int64_t grain = CeilDiv(rows, kTargetChunks);
  return grain < 64 ? 64 : grain;
}

int64_t TuneTable::TopKRowGrain(int64_t rows) const {
  if (overrides_.topk_row_grain > 0) return overrides_.topk_row_grain;
  if (rows <= 8) return 8;
  const int64_t grain = CeilDiv(rows, kTargetChunks);
  return grain < 8 ? 8 : grain;
}

int64_t TuneTable::ChunksPerThread() const {
  if (overrides_.chunks_per_thread > 0) return overrides_.chunks_per_thread;
  return 16;
}

int64_t TuneTable::SinkhornColChunks(int64_t num_entries) {
  // Pure function of shape (see header): enough chunks that the column
  // scatter parallelises, few enough that the tree merge tail stays
  // shallow. ~256K entries per chunk.
  if (num_entries <= 0) return 2;
  return Clamp(CeilDiv(num_entries, int64_t{1} << 18), 2, 32);
}

int64_t TuneTable::GemmTransposeAGrain(int64_t m) {
  // Bounded partial count (each partial is a k×n matrix); identical to
  // the historical formula so existing checkpoints keep their bytes.
  constexpr int64_t kMaxChunks = 16;
  constexpr int64_t kMinGrain = 64;
  if (m <= 0) return kMinGrain;
  const int64_t grain = CeilDiv(m, kMaxChunks);
  return grain < kMinGrain ? kMinGrain : grain;
}

std::string TuneTable::Describe() const {
  std::string out = "tune: ";
  for (const TuneParamInfo& param : TuneParams()) {
    const int64_t value = overrides_.*param.field;
    out += param.name;
    out += '=';
    out += value == 0 ? "auto" : std::to_string(value);
    out += ' ';
  }
  out += "(l1=" + std::to_string(cache_.l1_bytes) +
         "B l2=" + std::to_string(cache_.l2_bytes) + "B)";
  return out;
}

}  // namespace largeea::tune
