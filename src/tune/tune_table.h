// Kernel autotuner table (DESIGN.md §13): the single source of the
// block/grain/panel parameters the hot kernels used to hard-code.
//
// The table is consulted at kernel entry and filled three ways, in
// increasing priority: shape-aware analytic defaults (computed from the
// problem size and the detected cache hierarchy), a checksummed JSON
// tuning file (--tune-file, produced by --autotune or bench_micro
// --mode=tune), and explicit --tune-override pairs.
//
// Determinism contract: every parameter exposed through TuneOverrides is
// *reduction-order-neutral* — it may change how work is chunked across
// pool tasks, but chunk-private kernels produce the same bytes for any
// chunking (DESIGN.md §8), so no override can change a result bit.
// Parameters that DO pick a float reduction order (the Sinkhorn column
// split, the GemmTransposeA partial count) are analytic-only functions
// of shape, deliberately NOT overridable: that is what lets a tuning
// file stay outside the config fingerprint while checkpoints remain
// byte-identical tuned vs untuned.
#ifndef LARGEEA_TUNE_TUNE_TABLE_H_
#define LARGEEA_TUNE_TUNE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rt/status.h"

namespace largeea::tune {

/// Per-core data cache sizes, detected once at first use (sysconf on
/// Linux; conservative 32KB/1MB fallbacks elsewhere). Tunable via the
/// gemm.cache_bytes override when detection misreads the machine.
struct CacheSizes {
  int64_t l1_bytes = 32 * 1024;
  int64_t l2_bytes = 1024 * 1024;
};

CacheSizes DetectCacheSizes();

/// Explicit parameter overrides; 0 means "use the analytic default".
/// Every field here is reduction-order-neutral (see file comment).
struct TuneOverrides {
  int64_t gemm_row_grain = 0;     ///< Gemm/GemmTransposeB row grain
  int64_t gemm_panel = 0;         ///< Gemm k-panel depth
  int64_t gemm_cache_bytes = 0;   ///< cache budget for panel sizing
  int64_t gemm_tile_cols = 0;     ///< GemmTransposeB B-row tile width
  int64_t elem_grain = 0;         ///< Axpy/Scale/Relu element grain
  int64_t norm_row_grain = 0;     ///< L2NormalizeRows row grain
  int64_t sinkhorn_row_grain = 0; ///< Sinkhorn row-normalise grain
  int64_t topk_row_grain = 0;     ///< top-k source-row grain
  int64_t chunks_per_thread = 0;  ///< ParallelFor chunk cap multiplier

  friend bool operator==(const TuneOverrides& a, const TuneOverrides& b) {
    return a.gemm_row_grain == b.gemm_row_grain &&
           a.gemm_panel == b.gemm_panel &&
           a.gemm_cache_bytes == b.gemm_cache_bytes &&
           a.gemm_tile_cols == b.gemm_tile_cols &&
           a.elem_grain == b.elem_grain &&
           a.norm_row_grain == b.norm_row_grain &&
           a.sinkhorn_row_grain == b.sinkhorn_row_grain &&
           a.topk_row_grain == b.topk_row_grain &&
           a.chunks_per_thread == b.chunks_per_thread;
  }
};

/// Stable registry of override names ("gemm.row_grain", ...) — the
/// vocabulary of tuning files, --tune-override lists, and BENCH_tune
/// rows.
struct TuneParamInfo {
  const char* name;
  int64_t TuneOverrides::* field;
};
const std::vector<TuneParamInfo>& TuneParams();

/// Sets one override by registry name. kInvalidArgument on an unknown
/// name or a negative value.
Status SetOverrideByName(TuneOverrides& overrides, const std::string& name,
                         int64_t value);

/// Applies a comma-separated "name=value,name=value" list.
Status ApplyOverrideList(TuneOverrides& overrides, const std::string& list);

/// Canonical "name=value;" string over all parameters in registry order;
/// the checksum input of the tuning file.
std::string CanonicalTuneString(const TuneOverrides& overrides);
uint64_t TuneFingerprint(const TuneOverrides& overrides);

/// Persists overrides as checksummed JSON via an atomic tmp+rename
/// write. Only non-zero (explicitly tuned) parameters are stored.
Status SaveTuneFile(const std::string& path, const TuneOverrides& overrides);

/// Loads a tuning file; kNotFound if absent, kDataLoss on checksum
/// mismatch, kInvalidArgument on malformed content or unknown names.
StatusOr<TuneOverrides> LoadTuneFile(const std::string& path);

/// The process-wide tuning table. Get() is lock-free after first use;
/// Set() installs a new table (startup/config time — racing Set against
/// hot kernels is safe but the switch point is unspecified).
class TuneTable {
 public:
  static const TuneTable& Get();
  static void Set(const TuneOverrides& overrides);

  const TuneOverrides& overrides() const { return overrides_; }
  const CacheSizes& cache() const { return cache_; }

  // --- Order-neutral tunables: override wins, else shape-aware
  // analytic default targeting ~kTargetChunks chunks per job.
  int64_t GemmRowGrain(int64_t m) const;
  int64_t GemmPanel(int64_t k, int64_t n) const;
  int64_t GemmTileCols(int64_t k) const;
  int64_t ElemGrain(int64_t size) const;
  int64_t NormRowGrain(int64_t rows) const;
  int64_t SinkhornRowGrain(int64_t rows) const;
  int64_t TopKRowGrain(int64_t rows) const;
  int64_t ChunksPerThread() const;

  // --- Analytic-only shape functions. These choose a float reduction
  // topology, so they are pure functions of shape — never overridable,
  // never thread-dependent (the determinism argument in the file
  // comment depends on exactly this).
  static int64_t SinkhornColChunks(int64_t num_entries);
  static int64_t GemmTransposeAGrain(int64_t m);

  /// Target chunk count per job for the analytic grain formulas.
  static constexpr int64_t kTargetChunks = 64;

  /// Human-readable parameter dump for reports and --autotune logs.
  std::string Describe() const;

 private:
  TuneTable();
  explicit TuneTable(const TuneOverrides& overrides);

  TuneOverrides overrides_;
  CacheSizes cache_;
};

}  // namespace largeea::tune

#endif  // LARGEEA_TUNE_TUNE_TABLE_H_
