// Offline/startup parameter sweep (DESIGN.md §13): times candidate
// block sizes for every tunable TuneTable parameter on representative
// shapes of the hot kernels, picks the fastest candidate per parameter,
// and installs the winners process-wide.
//
// Because every swept parameter is reduction-order-neutral (see
// tune_table.h), the sweep can never change a result bit — timing noise
// at worst picks a slower-but-identical configuration. Candidate 0
// ("analytic default") is always timed first and wins ties, so on a
// machine where the sweep cannot tell candidates apart the table stays
// at its analytic defaults.
#ifndef LARGEEA_TUNE_AUTOTUNE_H_
#define LARGEEA_TUNE_AUTOTUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tune/tune_table.h"

namespace largeea::tune {

struct AutotuneOptions {
  /// Scales the representative shapes (1.0 = DBP1M-representative bench
  /// sizes; CI uses ~0.02 for a sub-second smoke sweep).
  double scale = 1.0;
  /// Minimum timing window per candidate, seconds.
  double min_seconds = 0.05;
};

/// One timed candidate. `candidate == 0` is the analytic default.
struct AutotuneRow {
  std::string param;
  int64_t candidate = 0;
  double seconds = 0.0;
  bool winner = false;
};

struct AutotuneResult {
  /// Winning override per parameter (0 where the analytic default won).
  TuneOverrides winners;
  /// Every timed (param, candidate) pair, in sweep order.
  std::vector<AutotuneRow> rows;
};

/// Runs the sweep and installs `winners` via TuneTable::Set(). The
/// previously installed overrides are the sweep's starting point, so
/// --tune-file / --tune-override values are honoured for parameters the
/// sweep visits later than they are consumed.
AutotuneResult RunAutotune(const AutotuneOptions& options);

}  // namespace largeea::tune

#endif  // LARGEEA_TUNE_AUTOTUNE_H_
