// Single-threaded FIFO task executor for background I/O.
//
// The fork-join ThreadPool (thread_pool.h) is the wrong shape for work
// that should overlap with the caller — Run() blocks until every task
// finishes. BackgroundWorker is the complementary primitive: Submit()
// enqueues a closure and returns immediately; one dedicated worker
// thread drains the queue in submission order. The streaming layer uses
// it to prefetch spilled tiles while the compute thread is busy with
// the current block (src/stream/tile_store.h).
//
// Determinism: background tasks must only affect *where* data lives
// (cache warmth), never *what* is computed — the same contract the rest
// of src/par/ keeps (DESIGN.md §8). Nothing here hands results back to
// the caller; tasks communicate only through their own synchronised
// sinks.
#ifndef LARGEEA_PAR_BACKGROUND_WORKER_H_
#define LARGEEA_PAR_BACKGROUND_WORKER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace largeea::par {

/// One background thread draining a FIFO closure queue. All methods are
/// thread-safe. The destructor drains the queue, then joins.
class BackgroundWorker {
 public:
  /// `thread_name` labels the worker in Chrome trace exports.
  explicit BackgroundWorker(std::string thread_name);

  /// Drains outstanding tasks, then joins the worker.
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues `task` and returns immediately. The worker thread is
  /// started lazily on the first submission, so an idle worker (e.g.
  /// prefetch disabled) costs nothing.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Drain();

  /// Tasks submitted over the worker's lifetime (test/metrics hook).
  int64_t submitted() const;

 private:
  void Loop();

  std::string thread_name_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes the worker for new tasks
  std::condition_variable idle_cv_;  ///< wakes Drain() when queue empties
  std::deque<std::function<void()>> queue_;
  std::thread worker_;
  bool started_ = false;
  bool stopping_ = false;
  bool busy_ = false;  ///< a task is executing (queue may be empty)
  int64_t submitted_ = 0;
};

}  // namespace largeea::par

#endif  // LARGEEA_PAR_BACKGROUND_WORKER_H_
