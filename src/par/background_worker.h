// Single-threaded FIFO task executor for background I/O.
//
// The fork-join ThreadPool (thread_pool.h) is the wrong shape for work
// that should overlap with the caller — Run() blocks until every task
// finishes. BackgroundWorker is the complementary primitive: Submit()
// enqueues a closure and returns immediately; one dedicated worker
// thread drains the queue in submission order. The streaming layer uses
// it to prefetch spilled tiles while the compute thread is busy with
// the current block (src/stream/tile_store.h).
//
// Determinism: background tasks must only affect *where* data lives
// (cache warmth), never *what* is computed — the same contract the rest
// of src/par/ keeps (DESIGN.md §8). Nothing here hands results back to
// the caller; tasks communicate only through their own synchronised
// sinks.
#ifndef LARGEEA_PAR_BACKGROUND_WORKER_H_
#define LARGEEA_PAR_BACKGROUND_WORKER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/rt/status.h"

namespace largeea::par {

/// One background thread draining a FIFO closure queue. All methods are
/// thread-safe. The destructor drains the queue, then joins.
///
/// Error contract: a task that throws does NOT terminate the process
/// (the historical behaviour — an escaped exception on a std::thread is
/// std::terminate). The first exception is captured on the worker thread
/// and surfaced as an INTERNAL Status from the next Submit()/Drain()
/// call; later tasks keep running, because background work is
/// best-effort cache warming whose loss must degrade, not kill,
/// the run (DESIGN.md §8).
class BackgroundWorker {
 public:
  /// `thread_name` labels the worker in Chrome trace exports.
  explicit BackgroundWorker(std::string thread_name);

  /// Drains outstanding tasks, then joins the worker. A still-unreported
  /// task failure is logged here, never thrown.
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues `task` and returns immediately. The worker thread is
  /// started lazily on the first submission, so an idle worker (e.g.
  /// prefetch disabled) costs nothing. Returns (and clears) the first
  /// captured failure of a *previous* task; the new task is enqueued
  /// either way.
  Status Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Returns
  /// (and clears) the first captured task failure, if any.
  Status Drain();

  /// Tasks submitted over the worker's lifetime (test/metrics hook).
  int64_t submitted() const;

 private:
  void Loop();

  /// Must hold mu_. Returns and clears the pending task failure.
  Status TakeErrorLocked();

  std::string thread_name_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes the worker for new tasks
  std::condition_variable idle_cv_;  ///< wakes Drain() when queue empties
  std::deque<std::function<void()>> queue_;
  std::thread worker_;
  bool started_ = false;
  bool stopping_ = false;
  bool busy_ = false;  ///< a task is executing (queue may be empty)
  int64_t submitted_ = 0;
  std::string task_error_;  ///< first captured failure; empty = none
  bool has_task_error_ = false;
};

}  // namespace largeea::par

#endif  // LARGEEA_PAR_BACKGROUND_WORKER_H_
