#include "src/par/background_worker.h"

#include <utility>

#include "src/obs/trace.h"

namespace largeea::par {

BackgroundWorker::BackgroundWorker(std::string thread_name)
    : thread_name_(std::move(thread_name)) {}

BackgroundWorker::~BackgroundWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) return;
  // Let queued tasks finish (a prefetch abandoned mid-write would leave
  // work for the next Get to redo, not corruption — spills are atomic —
  // but draining keeps shutdown semantics simple and race-free).
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  stopping_ = true;
  work_cv_.notify_all();
  lock.unlock();
  worker_.join();
}

void BackgroundWorker::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  if (!started_) {
    started_ = true;
    worker_ = std::thread([this] { Loop(); });
  }
  queue_.push_back(std::move(task));
  ++submitted_;
  work_cv_.notify_one();
}

void BackgroundWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

int64_t BackgroundWorker::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void BackgroundWorker::Loop() {
  obs::SetCurrentThreadName(thread_name_);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace largeea::par
