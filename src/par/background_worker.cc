#include "src/par/background_worker.h"

#include <exception>
#include <utility>

#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace largeea::par {

BackgroundWorker::BackgroundWorker(std::string thread_name)
    : thread_name_(std::move(thread_name)) {}

BackgroundWorker::~BackgroundWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  if (has_task_error_) {
    LARGEEA_LOG_WARN("background worker '%s': unreported task failure: %s",
                     thread_name_.c_str(), task_error_.c_str());
  }
  if (!started_) return;
  // Let queued tasks finish (a prefetch abandoned mid-write would leave
  // work for the next Get to redo, not corruption — spills are atomic —
  // but draining keeps shutdown semantics simple and race-free).
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  stopping_ = true;
  work_cv_.notify_all();
  lock.unlock();
  worker_.join();
}

Status BackgroundWorker::TakeErrorLocked() {
  if (!has_task_error_) return OkStatus();
  has_task_error_ = false;
  return InternalError("background worker '" + thread_name_ +
                       "': task failed: " + std::exchange(task_error_, {}));
}

Status BackgroundWorker::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return TakeErrorLocked();
  if (!started_) {
    started_ = true;
    worker_ = std::thread([this] { Loop(); });
  }
  queue_.push_back(std::move(task));
  ++submitted_;
  work_cv_.notify_one();
  return TakeErrorLocked();
}

Status BackgroundWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  return TakeErrorLocked();
}

int64_t BackgroundWorker::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void BackgroundWorker::Loop() {
  obs::SetCurrentThreadName(thread_name_);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    // An exception escaping here would std::terminate the whole process
    // (the task runs on a bare std::thread). Capture the first failure
    // instead and keep draining: one bad prefetch must cost a cache
    // miss, not the run.
    std::string error;
    try {
      task();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    lock.lock();
    if (!error.empty() && !has_task_error_) {
      has_task_error_ = true;
      task_error_ = std::move(error);
    }
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace largeea::par
