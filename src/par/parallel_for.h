// Deterministic data-parallel loops over the process-wide ThreadPool.
//
// ComputeChunks splits an index range into chunks from (begin, end,
// grain) ALONE — the thread count never enters the computation — and
// ParallelReduceOrdered merges per-chunk private state in ascending
// chunk-index order on the calling thread. Together these give the
// library's determinism contract (DESIGN.md §8): identical results, bit
// for bit, at any `--threads N`, because neither chunk boundaries nor
// any floating-point reduction order depend on scheduling.
//
// When the profiler (src/obs/profiler.h) is enabled, every loop records
// one PoolJobProfile — chunk count, grain, worker utilization, chunk
// imbalance, and (for reductions) ordered-merge time — attributed to
// the innermost open ProfileScope. Profiling only observes: chunking
// and merge order are computed identically either way.
#ifndef LARGEEA_PAR_PARALLEL_FOR_H_
#define LARGEEA_PAR_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/obs/profiler.h"
#include "src/par/thread_pool.h"

namespace largeea::par {

/// One contiguous sub-range [begin, end) of a parallel loop.
struct ChunkRange {
  int64_t index = 0;  ///< position in the chunk sequence (merge order)
  int64_t begin = 0;
  int64_t end = 0;
};

/// Splits [begin, end) into consecutive chunks of at most `grain`
/// elements (the last chunk may be shorter). grain <= 0 means one chunk.
/// Depends only on the arguments — never on the thread count.
std::vector<ChunkRange> ComputeChunks(int64_t begin, int64_t end,
                                      int64_t grain);

/// ComputeChunks, but if the requested grain would produce more than
/// `max_chunks` chunks the grain is raised to ceil(range / max_chunks)
/// first. Still a pure function of its arguments; callers that pass a
/// pool-derived cap (ParallelFor does) may only do so for loops whose
/// results are chunking-independent. max_chunks <= 0 means no cap.
std::vector<ChunkRange> ComputeChunksCapped(int64_t begin, int64_t end,
                                            int64_t grain,
                                            int64_t max_chunks);

namespace internal {
/// Folds one profiled loop execution into the Profiler's pool stream,
/// attributed to the innermost open ProfileScope.
void RecordLoopProfile(const ThreadPool::JobStats& stats, int64_t chunks,
                       int64_t grain, double merge_seconds);
}  // namespace internal

/// Runs body(chunk) for every chunk of [begin, end), in parallel on the
/// ThreadPool. The body must only write chunk-private or element-private
/// state (distinct elements of a shared array are fine; shared
/// accumulators are not — use ParallelReduceOrdered for those).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(const ChunkRange&)>& body);

/// Runs body(chunk, state) with a default-constructed State per chunk in
/// parallel, then merge(chunk, std::move(state)) serially on the calling
/// thread in ascending chunk order. Reduction order is a pure function
/// of the chunking, so results are identical at any thread count.
template <typename State, typename Body, typename Merge>
void ParallelReduceOrdered(int64_t begin, int64_t end, int64_t grain,
                           Body&& body, Merge&& merge) {
  const std::vector<ChunkRange> chunks = ComputeChunks(begin, end, grain);
  if (chunks.empty()) return;
  std::vector<State> states(chunks.size());
  const bool profiled = obs::ProfilingEnabled();
  ThreadPool::JobStats stats;
  ThreadPool::Get().Run(
      static_cast<int64_t>(chunks.size()),
      [&](int64_t task) {
        body(chunks[static_cast<size_t>(task)],
             states[static_cast<size_t>(task)]);
      },
      profiled ? &stats : nullptr);
  // The ordered merge is the serial tail of every reduction; the
  // profiler times it because it bounds the loop's parallel speedup
  // (Amdahl) no matter how well the chunks balance.
  const uint64_t merge_start = profiled ? obs::TscClock::Now() : 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    merge(chunks[i], std::move(states[i]));
  }
  if (profiled) {
    internal::RecordLoopProfile(
        stats, static_cast<int64_t>(chunks.size()),
        grain > 0 ? grain : end - begin,
        obs::TscClock::ToSeconds(obs::TscClock::Now() - merge_start));
  }
}

/// Runs body(chunk, state) like ParallelReduceOrdered, then folds the
/// per-chunk states with combine(into, from) along a fixed-topology
/// pairwise tree instead of a serial linear scan. The topology is a
/// pure function of the chunk count (stride-doubling: level s combines
/// states[i] <- states[i+s] for i = 0, 2s, 4s, ...), so the float
/// reduction order is identical at any thread count — but unlike the
/// ordered merge the tail is O(log chunks) deep and each level's
/// combines touch disjoint states, so they run on the pool.
/// Returns the fully folded states[0] (State{} for an empty range).
template <typename State, typename Body, typename Combine>
State ParallelReduceTree(int64_t begin, int64_t end, int64_t grain,
                         Body&& body, Combine&& combine) {
  const std::vector<ChunkRange> chunks = ComputeChunks(begin, end, grain);
  if (chunks.empty()) return State{};
  std::vector<State> states(chunks.size());
  const bool profiled = obs::ProfilingEnabled();
  ThreadPool::JobStats stats;
  ThreadPool::Get().Run(
      static_cast<int64_t>(chunks.size()),
      [&](int64_t task) {
        body(chunks[static_cast<size_t>(task)],
             states[static_cast<size_t>(task)]);
      },
      profiled ? &stats : nullptr);
  const uint64_t merge_start = profiled ? obs::TscClock::Now() : 0;
  const int64_t n = static_cast<int64_t>(chunks.size());
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t stride = 1; stride < n; stride *= 2) {
    pairs.clear();
    for (int64_t i = 0; i + stride < n; i += 2 * stride) {
      pairs.emplace_back(i, i + stride);
    }
    // Combines within a level touch disjoint states, so their execution
    // order is irrelevant — dispatching through the pool vs running
    // inline cannot change a bit. Tiny levels (the tail of every tree)
    // run inline: a cross-thread wakeup costs more than two combines.
    if (pairs.size() <= 2) {
      for (const auto& [into, from] : pairs) {
        combine(states[static_cast<size_t>(into)],
                states[static_cast<size_t>(from)]);
      }
    } else {
      ThreadPool::Get().Run(
          static_cast<int64_t>(pairs.size()), [&](int64_t p) {
            combine(states[static_cast<size_t>(pairs[static_cast<size_t>(p)]
                                                   .first)],
                    states[static_cast<size_t>(pairs[static_cast<size_t>(p)]
                                                   .second)]);
          });
    }
  }
  if (profiled) {
    internal::RecordLoopProfile(
        stats, n, grain > 0 ? grain : end - begin,
        obs::TscClock::ToSeconds(obs::TscClock::Now() - merge_start));
  }
  return std::move(states[0]);
}

}  // namespace largeea::par

#endif  // LARGEEA_PAR_PARALLEL_FOR_H_
