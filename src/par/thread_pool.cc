#include "src/par/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace largeea::par {
namespace {

// Set while the current thread is executing a pool task; nested Run()
// calls detect it and execute inline instead of deadlocking on run_mu_.
thread_local bool in_pool_task = false;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// All scheduling state for one Run() call. Heap-allocated and shared
// with every worker that observes it, so no field can be reused by a
// later job while a straggler still holds a reference.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_tasks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<int64_t> busy_us{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;      // guarded by mu; lowest failing task wins
  int64_t error_task = -1;       // guarded by mu
};

ThreadPool::ThreadPool() = default;

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool& ThreadPool::Get() {
  // Leaked like TraceRecorder: workers may outlive static destructors.
  static ThreadPool* const pool = new ThreadPool();
  return *pool;
}

int32_t ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("LARGEEA_THREADS")) {
    const int32_t n = static_cast<int32_t>(std::strtol(env, nullptr, 10));
    if (n >= 1) return n;
  }
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int32_t>(hw) : 1;
}

int32_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_ > 0 ? num_threads_ : DefaultNumThreads();
}

void ThreadPool::SetNumThreads(int32_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  StopWorkersLocked(lock);
  num_threads_ = n >= 1 ? n : 1;
  obs::MetricsRegistry::Get().GetGauge("par.threads").Set(num_threads_);
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !workers_.empty();
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  StopWorkersLocked(lock);
}

void ThreadPool::StartWorkersLocked() {
  const int32_t target = num_threads_ - 1;
  workers_.reserve(static_cast<size_t>(target));
  while (static_cast<int32_t>(workers_.size()) < target) {
    const int32_t index = static_cast<int32_t>(workers_.size());
    workers_.emplace_back([this, index] { WorkerLoop(index); });
  }
}

void ThreadPool::StopWorkersLocked(std::unique_lock<std::mutex>& lock) {
  if (workers_.empty()) return;
  stopping_ = true;
  work_cv_.notify_all();
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lock.unlock();
  for (std::thread& t : workers) t.join();
  lock.lock();
  stopping_ = false;
}

void ThreadPool::WorkerLoop(int32_t worker_index) {
  obs::SetCurrentThreadName("par/worker-" + std::to_string(worker_index));
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ ||
               (current_job_ != nullptr && job_generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = job_generation_;
      job = current_job_;
    }
    WorkOnJob(*job);
  }
}

void ThreadPool::WorkOnJob(Job& job) {
  const int64_t start_us = NowMicros();
  int64_t executed = 0;
  std::exception_ptr error;
  int64_t error_task = -1;
  while (true) {
    const int64_t task = job.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= job.num_tasks) break;
    in_pool_task = true;
    try {
      (*job.fn)(task);
    } catch (...) {
      if (error_task < 0 || task < error_task) {
        error = std::current_exception();
        error_task = task;
      }
    }
    in_pool_task = false;
    ++executed;
  }
  job.busy_us.fetch_add(NowMicros() - start_us, std::memory_order_relaxed);
  if (executed == 0) return;
  std::lock_guard<std::mutex> lock(job.mu);
  if (error && (job.error_task < 0 || error_task < job.error_task)) {
    job.error = error;
    job.error_task = error_task;
  }
  if (job.done.fetch_add(executed, std::memory_order_acq_rel) + executed ==
      job.num_tasks) {
    job.done_cv.notify_all();
  }
}

void ThreadPool::Run(int64_t num_tasks,
                     const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
  metrics.GetCounter("par.jobs").Add(1);
  metrics.GetCounter("par.chunks").Add(num_tasks);

  // Inline paths: nested call from a pool task, a single task, or a
  // single-thread configuration. Identical task order, no workers.
  if (in_pool_task || num_tasks == 1 || num_threads() <= 1) {
    const int64_t start_us = NowMicros();
    const bool was_in_task = in_pool_task;
    in_pool_task = true;
    try {
      for (int64_t task = 0; task < num_tasks; ++task) fn(task);
    } catch (...) {
      in_pool_task = was_in_task;
      metrics.GetCounter("par.busy_micros").Add(NowMicros() - start_us);
      throw;
    }
    in_pool_task = was_in_task;
    metrics.GetCounter("par.busy_micros").Add(NowMicros() - start_us);
    return;
  }

  // One job in flight at a time; concurrent Run() callers queue here.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (num_threads_ == 0) {
      num_threads_ = DefaultNumThreads();
      metrics.GetGauge("par.threads").Set(num_threads_);
    }
    StartWorkersLocked();
    current_job_ = job;
    ++job_generation_;
    work_cv_.notify_all();
  }

  WorkOnJob(*job);  // the caller participates

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_tasks;
    });
    error = job->error;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_job_ == job) current_job_ = nullptr;
  }
  metrics.GetCounter("par.busy_micros").Add(
      job->busy_us.load(std::memory_order_relaxed));
  if (error) std::rethrow_exception(error);
}

}  // namespace largeea::par
