#include "src/par/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace largeea::par {
namespace {

// Set while the current thread is executing a pool task; nested Run()
// calls detect it and execute inline instead of deadlocking on run_mu_.
thread_local bool in_pool_task = false;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pool-health bookkeeping shared by both Run() paths: cumulative
// busy/capacity counters plus the derived utilization gauge, and a
// monotone peak of the task backlog a job put in front of the workers.
// One-time gauge updates per job — nothing per task — so the pool's
// health is visible in every run report even without --profile.
void UpdatePoolHealthMetrics(obs::MetricsRegistry& metrics, int64_t busy_us,
                             int64_t capacity_us, int64_t num_tasks) {
  obs::Counter& busy = metrics.GetCounter("par.busy_micros");
  obs::Counter& capacity = metrics.GetCounter("par.capacity_micros");
  busy.Add(busy_us);
  capacity.Add(capacity_us);
  const int64_t cap_total = capacity.Value();
  if (cap_total > 0) {
    metrics.GetGauge("par.utilization")
        .Set(static_cast<double>(busy.Value()) /
             static_cast<double>(cap_total));
  }
  obs::Gauge& depth = metrics.GetGauge("par.queue_depth.peak");
  if (static_cast<double>(num_tasks) > depth.Value()) {
    depth.Set(static_cast<double>(num_tasks));
  }
}

}  // namespace

// All scheduling state for one Run() call. Heap-allocated and shared
// with every worker that observes it, so no field can be reused by a
// later job while a straggler still holds a reference.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_tasks = 0;
  // Per-task clock reads happen only when a JobStats consumer asked for
  // them (profiling); the flag is fixed before workers see the job.
  bool timed = false;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<int64_t> busy_us{0};
  std::atomic<uint64_t> task_ticks_sum{0};
  std::atomic<uint64_t> task_ticks_max{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;      // guarded by mu; lowest failing task wins
  int64_t error_task = -1;       // guarded by mu
  // Worker-level accounting for the corrected imbalance metric: the
  // busiest worker's task-tick total and the sum of squared per-task
  // seconds (chunk-size variance). Guarded by mu — each worker folds
  // its locals in once, at job end.
  uint64_t worker_ticks_max = 0;  // guarded by mu
  double task_secs_sq = 0.0;      // guarded by mu
};

ThreadPool::ThreadPool() = default;

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool& ThreadPool::Get() {
  // Leaked like TraceRecorder: workers may outlive static destructors.
  static ThreadPool* const pool = new ThreadPool();
  return *pool;
}

int32_t ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("LARGEEA_THREADS")) {
    const int32_t n = static_cast<int32_t>(std::strtol(env, nullptr, 10));
    if (n >= 1) return n;
  }
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int32_t>(hw) : 1;
}

int32_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_ > 0 ? num_threads_ : DefaultNumThreads();
}

void ThreadPool::SetNumThreads(int32_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  StopWorkersLocked(lock);
  num_threads_ = n >= 1 ? n : 1;
  obs::MetricsRegistry::Get().GetGauge("par.threads").Set(num_threads_);
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !workers_.empty();
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  StopWorkersLocked(lock);
}

void ThreadPool::StartWorkersLocked() {
  const int32_t target = num_threads_ - 1;
  workers_.reserve(static_cast<size_t>(target));
  while (static_cast<int32_t>(workers_.size()) < target) {
    const int32_t index = static_cast<int32_t>(workers_.size());
    workers_.emplace_back([this, index] { WorkerLoop(index); });
  }
}

void ThreadPool::StopWorkersLocked(std::unique_lock<std::mutex>& lock) {
  if (workers_.empty()) return;
  stopping_ = true;
  work_cv_.notify_all();
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lock.unlock();
  for (std::thread& t : workers) t.join();
  lock.lock();
  stopping_ = false;
}

void ThreadPool::WorkerLoop(int32_t worker_index) {
  obs::SetCurrentThreadName("par/worker-" + std::to_string(worker_index));
  obs::Counter& idle_counter =
      obs::MetricsRegistry::Get().GetCounter("par.worker_idle_micros");
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    const int64_t wait_start_us = NowMicros();
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ ||
               (current_job_ != nullptr && job_generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = job_generation_;
      job = current_job_;
    }
    // Time between jobs is idle capacity: the worker existed but had
    // nothing to claim. One counter add per wake-up.
    idle_counter.Add(NowMicros() - wait_start_us);
    WorkOnJob(*job);
  }
}

void ThreadPool::WorkOnJob(Job& job) {
  const int64_t start_us = NowMicros();
  int64_t executed = 0;
  uint64_t ticks_sum = 0;
  uint64_t ticks_max = 0;
  double secs_sq = 0.0;
  std::exception_ptr error;
  int64_t error_task = -1;
  while (true) {
    const int64_t task = job.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= job.num_tasks) break;
    const uint64_t task_start = job.timed ? obs::TscClock::Now() : 0;
    in_pool_task = true;
    try {
      (*job.fn)(task);
    } catch (...) {
      if (error_task < 0 || task < error_task) {
        error = std::current_exception();
        error_task = task;
      }
    }
    in_pool_task = false;
    if (job.timed) {
      const uint64_t ticks = obs::TscClock::Now() - task_start;
      ticks_sum += ticks;
      if (ticks > ticks_max) ticks_max = ticks;
      const double secs = obs::TscClock::ToSeconds(ticks);
      secs_sq += secs * secs;
    }
    ++executed;
  }
  job.busy_us.fetch_add(NowMicros() - start_us, std::memory_order_relaxed);
  if (executed == 0) return;
  if (job.timed) {
    job.task_ticks_sum.fetch_add(ticks_sum, std::memory_order_relaxed);
    uint64_t cur = job.task_ticks_max.load(std::memory_order_relaxed);
    while (ticks_max > cur &&
           !job.task_ticks_max.compare_exchange_weak(cur, ticks_max)) {
    }
  }
  std::lock_guard<std::mutex> lock(job.mu);
  if (job.timed) {
    if (ticks_sum > job.worker_ticks_max) job.worker_ticks_max = ticks_sum;
    job.task_secs_sq += secs_sq;
  }
  if (error && (job.error_task < 0 || error_task < job.error_task)) {
    job.error = error;
    job.error_task = error_task;
  }
  if (job.done.fetch_add(executed, std::memory_order_acq_rel) + executed ==
      job.num_tasks) {
    job.done_cv.notify_all();
  }
}

void ThreadPool::Run(int64_t num_tasks,
                     const std::function<void(int64_t)>& fn) {
  Run(num_tasks, fn, nullptr);
}

void ThreadPool::Run(int64_t num_tasks,
                     const std::function<void(int64_t)>& fn,
                     JobStats* stats) {
  if (num_tasks <= 0) return;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
  metrics.GetCounter("par.jobs").Add(1);
  metrics.GetCounter("par.chunks").Add(num_tasks);

  // Inline paths: nested call from a pool task, a single task, or a
  // single-thread configuration. Identical task order, no workers.
  if (in_pool_task || num_tasks == 1 || num_threads() <= 1) {
    const int64_t start_us = NowMicros();
    const bool was_in_task = in_pool_task;
    uint64_t ticks_sum = 0;
    uint64_t ticks_max = 0;
    double secs_sq = 0.0;
    in_pool_task = true;
    try {
      for (int64_t task = 0; task < num_tasks; ++task) {
        const uint64_t task_start = stats ? obs::TscClock::Now() : 0;
        fn(task);
        if (stats) {
          const uint64_t ticks = obs::TscClock::Now() - task_start;
          ticks_sum += ticks;
          if (ticks > ticks_max) ticks_max = ticks;
          const double secs = obs::TscClock::ToSeconds(ticks);
          secs_sq += secs * secs;
        }
      }
    } catch (...) {
      in_pool_task = was_in_task;
      const int64_t elapsed_us = NowMicros() - start_us;
      UpdatePoolHealthMetrics(metrics, elapsed_us, elapsed_us, num_tasks);
      throw;
    }
    in_pool_task = was_in_task;
    const int64_t elapsed_us = NowMicros() - start_us;
    // Inline execution occupies exactly one thread, so capacity == busy:
    // a serial loop is 100% utilised by definition.
    UpdatePoolHealthMetrics(metrics, elapsed_us, elapsed_us, num_tasks);
    if (stats) {
      stats->wall_seconds = static_cast<double>(elapsed_us) * 1e-6;
      stats->busy_seconds = stats->wall_seconds;
      stats->sum_task_seconds = obs::TscClock::ToSeconds(ticks_sum);
      stats->max_task_seconds = obs::TscClock::ToSeconds(ticks_max);
      // One thread ran everything: by definition no scheduling
      // imbalance, so max worker == the whole job.
      stats->max_worker_seconds = stats->sum_task_seconds;
      stats->task_seconds_sq_sum = secs_sq;
      stats->threads = 1;
    }
    return;
  }

  // One job in flight at a time; concurrent Run() callers queue here.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  const int64_t submit_us = NowMicros();
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->timed = stats != nullptr;
  int32_t job_threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (num_threads_ == 0) {
      num_threads_ = DefaultNumThreads();
      metrics.GetGauge("par.threads").Set(num_threads_);
    }
    job_threads = num_threads_;
    StartWorkersLocked();
    current_job_ = job;
    ++job_generation_;
    work_cv_.notify_all();
  }

  WorkOnJob(*job);  // the caller participates

  std::exception_ptr error;
  uint64_t worker_ticks_max = 0;
  double task_secs_sq = 0.0;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_tasks;
    });
    error = job->error;
    worker_ticks_max = job->worker_ticks_max;
    task_secs_sq = job->task_secs_sq;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_job_ == job) current_job_ = nullptr;
  }
  const int64_t wall_us = NowMicros() - submit_us;
  const int64_t busy_us = job->busy_us.load(std::memory_order_relaxed);
  UpdatePoolHealthMetrics(metrics, busy_us, wall_us * job_threads,
                          num_tasks);
  if (stats) {
    stats->wall_seconds = static_cast<double>(wall_us) * 1e-6;
    stats->busy_seconds = static_cast<double>(busy_us) * 1e-6;
    stats->sum_task_seconds = obs::TscClock::ToSeconds(
        job->task_ticks_sum.load(std::memory_order_relaxed));
    stats->max_task_seconds = obs::TscClock::ToSeconds(
        job->task_ticks_max.load(std::memory_order_relaxed));
    stats->max_worker_seconds = obs::TscClock::ToSeconds(worker_ticks_max);
    stats->task_seconds_sq_sum = task_secs_sq;
    stats->threads = job_threads;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace largeea::par
