// Fixed-size worker pool behind every parallel primitive in the library.
//
// The pool is process-wide and lazy: no worker thread exists until the
// first Run() that can use one, so single-threaded configurations (and
// `--threads 1`) never pay for thread machinery. The thread count comes
// from, in priority order: SetNumThreads() (CLI `--threads N`), the
// LARGEEA_THREADS environment variable, and hardware concurrency.
//
// Determinism contract (DESIGN.md §8): the pool schedules *chunks* whose
// boundaries are computed by par::ComputeChunks from the range and grain
// alone — never from the thread count — and every reduction in the
// library merges chunk results in ascending chunk-index order. Which
// worker executes which chunk is therefore irrelevant to the result:
// the same binary produces bit-identical output at any `--threads`.
#ifndef LARGEEA_PAR_THREAD_POOL_H_
#define LARGEEA_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace largeea::par {

/// Process-wide worker pool. All methods are thread-safe.
class ThreadPool {
 public:
  /// Per-job accounting filled by Run() when the caller asks for it
  /// (the par/ loop layer does, when profiling is enabled). Task timing
  /// is only measured when stats are requested, so the normal path pays
  /// nothing per task.
  struct JobStats {
    double wall_seconds = 0.0;      ///< submit-to-complete on the caller
    double busy_seconds = 0.0;      ///< task execution, summed over workers
    double max_task_seconds = 0.0;  ///< slowest single task
    double sum_task_seconds = 0.0;  ///< total across tasks
    /// Busiest single worker's task-execution total. max over workers /
    /// (sum / threads) is the scheduling imbalance: 1.0 when work
    /// spread evenly — and also 1.0 at threads=1, where one worker
    /// doing everything is not imbalance (DESIGN.md §11).
    double max_worker_seconds = 0.0;
    /// Sum of squared per-task seconds, for the chunk-size coefficient
    /// of variation (per-chunk variance is a property of the chunking,
    /// reported separately from scheduling imbalance).
    double task_seconds_sq_sum = 0.0;
    int32_t threads = 1;            ///< pool width the job ran under
  };

  /// Returns the singleton pool.
  static ThreadPool& Get();

  /// Thread count used when none is configured: LARGEEA_THREADS if set
  /// to a positive integer, else std::thread::hardware_concurrency()
  /// (minimum 1).
  static int32_t DefaultNumThreads();

  /// Configured thread count (including the calling thread).
  int32_t num_threads() const;

  /// Sets the thread count (clamped to >= 1). Joins any running workers;
  /// the new count takes effect lazily on the next Run(). Must not be
  /// called from inside a Run() task.
  void SetNumThreads(int32_t n);

  /// True while worker threads exist (i.e. after the first parallel
  /// Run() and before Shutdown()/SetNumThreads()).
  bool started() const;

  /// Executes fn(task) for every task in [0, num_tasks). Blocks until
  /// all tasks finish. The calling thread participates, so a pool of N
  /// threads starts N-1 workers. Tasks are claimed dynamically, which is
  /// safe because callers derive tasks from deterministic chunking and
  /// merge in task order (see class comment).
  ///
  /// Runs inline on the caller — same task order, no workers — when
  /// num_threads() == 1, num_tasks <= 1, or when called from inside a
  /// pool task (nested parallelism is serialised, never deadlocked).
  ///
  /// If tasks throw, the exception from the lowest-numbered failing task
  /// is rethrown on the caller after all in-flight tasks finish.
  void Run(int64_t num_tasks, const std::function<void(int64_t)>& fn);

  /// As above, and additionally fills `*stats` (when non-null) with the
  /// job's wall/busy/per-task timing. Passing stats turns on per-task
  /// clock reads for this job only.
  void Run(int64_t num_tasks, const std::function<void(int64_t)>& fn,
           JobStats* stats);

  /// Joins and destroys the workers. Safe to call when idle; the pool
  /// restarts lazily on the next Run().
  void Shutdown();

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  struct Job;

  ThreadPool();

  void StartWorkersLocked();
  void StopWorkersLocked(std::unique_lock<std::mutex>& lock);
  void WorkerLoop(int32_t worker_index);
  /// Claims and runs tasks of `job` until none remain.
  static void WorkOnJob(Job& job);

  /// Serialises Run() callers: one job in flight at a time.
  std::mutex run_mu_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes workers for a new job
  std::vector<std::thread> workers_;
  int32_t num_threads_ = 0;  ///< 0 = not yet resolved from env/hardware
  bool stopping_ = false;
  uint64_t job_generation_ = 0;
  /// The in-flight job. Workers take a shared_ptr copy, so a slow worker
  /// observing a finished job can never touch a newer job's counters.
  std::shared_ptr<Job> current_job_;
};

}  // namespace largeea::par

#endif  // LARGEEA_PAR_THREAD_POOL_H_
