// A small group of dedicated threads for coarse, long-lived tasks.
//
// The par::ThreadPool is a fork-join pool for *data* parallelism: Run()
// blocks the caller until every task finishes, serializes concurrent
// jobs, and inlines nested Run() calls. DAG *node* bodies are the wrong
// shape for it — each node is itself a pool client (its kernels call
// ParallelFor), so running node bodies on pool workers would inline and
// serialise every inner loop. TaskGroup instead gives each spawned task
// its own OS thread: the task runs concurrently with its siblings while
// its inner ParallelFor calls still fan out across the shared pool
// (which serialises concurrent jobs internally, keeping every loop's
// chunking — and therefore every result bit — schedule-independent).
//
// Spawn() is cheap relative to the node granularity it is used at
// (whole pipeline phases); the scheduler bounds how many tasks are in
// flight, so a group never holds more live threads than the admission
// policy allows.
#ifndef LARGEEA_PAR_TASK_GROUP_H_
#define LARGEEA_PAR_TASK_GROUP_H_

#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace largeea::par {

class TaskGroup {
 public:
  /// `name_prefix` names the spawned threads in Chrome traces
  /// ("<prefix>-0", "<prefix>-1", ...).
  explicit TaskGroup(std::string name_prefix = "task");

  /// Joins every spawned thread.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `fn` on a new dedicated thread. Thread-safe.
  void Spawn(std::function<void()> fn);

  /// Blocks until every task spawned so far has finished. Safe to call
  /// repeatedly; Spawn() may be called again afterwards.
  void JoinAll();

 private:
  std::string prefix_;
  std::mutex mu_;
  std::vector<std::thread> threads_;
  int32_t spawned_ = 0;
};

}  // namespace largeea::par

#endif  // LARGEEA_PAR_TASK_GROUP_H_
