#include "src/par/parallel_for.h"

namespace largeea::par {

std::vector<ChunkRange> ComputeChunks(int64_t begin, int64_t end,
                                      int64_t grain) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  if (grain <= 0) grain = end - begin;
  chunks.reserve(static_cast<size_t>((end - begin + grain - 1) / grain));
  int64_t index = 0;
  for (int64_t b = begin; b < end; b += grain) {
    const int64_t e = b + grain < end ? b + grain : end;
    chunks.push_back(ChunkRange{index++, b, e});
  }
  return chunks;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(const ChunkRange&)>& body) {
  const std::vector<ChunkRange> chunks = ComputeChunks(begin, end, grain);
  if (chunks.empty()) return;
  ThreadPool::Get().Run(static_cast<int64_t>(chunks.size()), [&](int64_t task) {
    body(chunks[static_cast<size_t>(task)]);
  });
}

}  // namespace largeea::par
