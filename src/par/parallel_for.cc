#include "src/par/parallel_for.h"

#include <algorithm>

#include "src/tune/tune_table.h"

namespace largeea::par {

std::vector<ChunkRange> ComputeChunks(int64_t begin, int64_t end,
                                      int64_t grain) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  if (grain <= 0) grain = end - begin;
  // (end - begin - 1) / grain + 1 == ceil(range / grain) without the
  // `range + grain - 1` intermediate, which overflows for ranges near
  // INT64_MAX.
  chunks.reserve(static_cast<size_t>((end - begin - 1) / grain + 1));
  int64_t index = 0;
  int64_t b = begin;
  while (b < end) {
    // `end - b > grain` instead of `b + grain < end`: the sum overflows
    // when b is within `grain` of INT64_MAX.
    const int64_t e = end - b > grain ? b + grain : end;
    chunks.push_back(ChunkRange{index++, b, e});
    b = e;
  }
  return chunks;
}

std::vector<ChunkRange> ComputeChunksCapped(int64_t begin, int64_t end,
                                            int64_t grain,
                                            int64_t max_chunks) {
  if (begin >= end) return {};
  const int64_t range = end - begin;
  if (grain <= 0) grain = range;
  if (max_chunks > 0) {
    const int64_t chunks = (range - 1) / grain + 1;
    if (chunks > max_chunks) grain = (range - 1) / max_chunks + 1;
  }
  return ComputeChunks(begin, end, grain);
}

namespace internal {

void RecordLoopProfile(const ThreadPool::JobStats& stats, int64_t chunks,
                       int64_t grain, double merge_seconds) {
  obs::PoolJobProfile job;
  job.kernel = obs::CurrentProfileKernel();
  job.chunks = chunks;
  job.grain = grain;
  job.threads = stats.threads;
  job.wall_seconds = stats.wall_seconds;
  job.busy_seconds = stats.busy_seconds;
  job.max_chunk_seconds = stats.max_task_seconds;
  job.sum_chunk_seconds = stats.sum_task_seconds;
  job.sum_chunk_seconds_sq = stats.task_seconds_sq_sum;
  job.max_worker_seconds = stats.max_worker_seconds;
  job.merge_seconds = merge_seconds;
  obs::Profiler::Get().RecordPoolJob(std::move(job));
}

}  // namespace internal

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(const ChunkRange&)>& body) {
  // Plain loops write only chunk-/element-private state (header
  // contract), so results cannot depend on the chunking — which makes
  // it safe to cap the chunk count relative to the pool size here and
  // cut per-chunk scheduling overhead. Reductions are NEVER capped this
  // way: their merge order is part of the §8 determinism contract.
  const int64_t max_chunks =
      tune::TuneTable::Get().ChunksPerThread() *
      static_cast<int64_t>(std::max(1, ThreadPool::Get().num_threads()));
  const std::vector<ChunkRange> chunks =
      ComputeChunksCapped(begin, end, grain, max_chunks);
  if (chunks.empty()) return;
  const bool profiled = obs::ProfilingEnabled();
  ThreadPool::JobStats stats;
  ThreadPool::Get().Run(
      static_cast<int64_t>(chunks.size()),
      [&](int64_t task) { body(chunks[static_cast<size_t>(task)]); },
      profiled ? &stats : nullptr);
  if (profiled) {
    internal::RecordLoopProfile(stats, static_cast<int64_t>(chunks.size()),
                                chunks[0].end - chunks[0].begin,
                                /*merge_seconds=*/0.0);
  }
}

}  // namespace largeea::par
