#include "src/par/parallel_for.h"

namespace largeea::par {

std::vector<ChunkRange> ComputeChunks(int64_t begin, int64_t end,
                                      int64_t grain) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  if (grain <= 0) grain = end - begin;
  chunks.reserve(static_cast<size_t>((end - begin + grain - 1) / grain));
  int64_t index = 0;
  for (int64_t b = begin; b < end; b += grain) {
    const int64_t e = b + grain < end ? b + grain : end;
    chunks.push_back(ChunkRange{index++, b, e});
  }
  return chunks;
}

namespace internal {

void RecordLoopProfile(const ThreadPool::JobStats& stats, int64_t chunks,
                       int64_t grain, double merge_seconds) {
  obs::PoolJobProfile job;
  job.kernel = obs::CurrentProfileKernel();
  job.chunks = chunks;
  job.grain = grain;
  job.threads = stats.threads;
  job.wall_seconds = stats.wall_seconds;
  job.busy_seconds = stats.busy_seconds;
  job.max_chunk_seconds = stats.max_task_seconds;
  job.sum_chunk_seconds = stats.sum_task_seconds;
  job.merge_seconds = merge_seconds;
  obs::Profiler::Get().RecordPoolJob(std::move(job));
}

}  // namespace internal

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(const ChunkRange&)>& body) {
  const std::vector<ChunkRange> chunks = ComputeChunks(begin, end, grain);
  if (chunks.empty()) return;
  const bool profiled = obs::ProfilingEnabled();
  ThreadPool::JobStats stats;
  ThreadPool::Get().Run(
      static_cast<int64_t>(chunks.size()),
      [&](int64_t task) { body(chunks[static_cast<size_t>(task)]); },
      profiled ? &stats : nullptr);
  if (profiled) {
    internal::RecordLoopProfile(stats, static_cast<int64_t>(chunks.size()),
                                grain > 0 ? grain : end - begin,
                                /*merge_seconds=*/0.0);
  }
}

}  // namespace largeea::par
