#include "src/par/task_group.h"

#include <utility>

#include "src/obs/trace.h"

namespace largeea::par {

TaskGroup::TaskGroup(std::string name_prefix)
    : prefix_(std::move(name_prefix)) {}

TaskGroup::~TaskGroup() { JoinAll(); }

void TaskGroup::Spawn(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t index = spawned_++;
  threads_.emplace_back([name = prefix_ + "-" + std::to_string(index),
                         fn = std::move(fn)]() {
    obs::SetCurrentThreadName(name);
    fn();
  });
}

void TaskGroup::JoinAll() {
  // Joining outside the lock lets a task Spawn() siblings without
  // deadlocking against a concurrent JoinAll.
  std::vector<std::thread> draining;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (threads_.empty()) return;
      draining.swap(threads_);
    }
    for (std::thread& t : draining) {
      if (t.joinable()) t.join();
    }
    draining.clear();
  }
}

}  // namespace largeea::par
