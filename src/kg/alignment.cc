#include "src/kg/alignment.h"

#include <cmath>
#include <unordered_set>

#include "src/common/macros.h"

namespace largeea {

EntityPairList AlignmentSplit::All() const {
  EntityPairList all = train;
  all.insert(all.end(), test.begin(), test.end());
  return all;
}

AlignmentSplit SplitAlignment(const EntityPairList& ground_truth,
                              double train_ratio, Rng& rng) {
  LARGEEA_CHECK_GE(train_ratio, 0.0);
  LARGEEA_CHECK_LE(train_ratio, 1.0);
  EntityPairList shuffled = ground_truth;
  rng.Shuffle(shuffled);
  const size_t train_count = static_cast<size_t>(
      std::llround(train_ratio * static_cast<double>(shuffled.size())));
  AlignmentSplit split;
  split.train.assign(shuffled.begin(), shuffled.begin() + train_count);
  split.test.assign(shuffled.begin() + train_count, shuffled.end());
  return split;
}

bool IsOneToOne(const EntityPairList& pairs) {
  std::unordered_set<EntityId> sources, targets;
  for (const EntityPair& p : pairs) {
    if (!sources.insert(p.source).second) return false;
    if (!targets.insert(p.target).second) return false;
  }
  return true;
}

}  // namespace largeea
