#include "src/kg/knowledge_graph.h"

#include <numeric>

#include "src/common/macros.h"

namespace largeea {

EntityId KnowledgeGraph::AddEntity(std::string_view name) {
  const auto it = entity_index_.find(std::string(name));
  if (it != entity_index_.end()) return it->second;
  const EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.emplace_back(name);
  entity_index_.emplace(entity_names_.back(), id);
  return id;
}

RelationId KnowledgeGraph::AddRelation(std::string_view name) {
  const auto it = relation_index_.find(std::string(name));
  if (it != relation_index_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_names_.emplace_back(name);
  relation_index_.emplace(relation_names_.back(), id);
  return id;
}

void KnowledgeGraph::AddTriple(EntityId h, RelationId r, EntityId t) {
  LARGEEA_CHECK_GE(h, 0);
  LARGEEA_CHECK_LT(h, num_entities());
  LARGEEA_CHECK_GE(t, 0);
  LARGEEA_CHECK_LT(t, num_entities());
  LARGEEA_CHECK_GE(r, 0);
  LARGEEA_CHECK_LT(r, num_relations());
  triples_.push_back(Triple{h, r, t});
  adjacency_built_ = false;
}

void KnowledgeGraph::BuildAdjacency() {
  if (adjacency_built_) return;
  const int32_t n = num_entities();
  std::vector<int64_t> counts(n + 1, 0);
  for (const Triple& t : triples_) {
    ++counts[t.head + 1];
    ++counts[t.tail + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  adj_offsets_ = counts;
  adj_edges_.assign(static_cast<size_t>(counts[n]), NeighborEdge{});
  std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
  for (const Triple& t : triples_) {
    adj_edges_[cursor[t.head]++] =
        NeighborEdge{t.tail, t.relation, /*inverse=*/false};
    adj_edges_[cursor[t.tail]++] =
        NeighborEdge{t.head, t.relation, /*inverse=*/true};
  }
  adjacency_built_ = true;
}

const std::string& KnowledgeGraph::EntityName(EntityId e) const {
  LARGEEA_CHECK_GE(e, 0);
  LARGEEA_CHECK_LT(e, num_entities());
  return entity_names_[e];
}

const std::string& KnowledgeGraph::RelationName(RelationId r) const {
  LARGEEA_CHECK_GE(r, 0);
  LARGEEA_CHECK_LT(r, num_relations());
  return relation_names_[r];
}

std::optional<EntityId> KnowledgeGraph::FindEntity(
    std::string_view name) const {
  const auto it = entity_index_.find(std::string(name));
  if (it == entity_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<RelationId> KnowledgeGraph::FindRelation(
    std::string_view name) const {
  const auto it = relation_index_.find(std::string(name));
  if (it == relation_index_.end()) return std::nullopt;
  return it->second;
}

std::span<const NeighborEdge> KnowledgeGraph::Neighbors(EntityId e) const {
  LARGEEA_CHECK(adjacency_built_);
  LARGEEA_CHECK_GE(e, 0);
  LARGEEA_CHECK_LT(e, num_entities());
  return {adj_edges_.data() + adj_offsets_[e],
          adj_edges_.data() + adj_offsets_[e + 1]};
}

int32_t KnowledgeGraph::Degree(EntityId e) const {
  LARGEEA_CHECK(adjacency_built_);
  return static_cast<int32_t>(adj_offsets_[e + 1] - adj_offsets_[e]);
}

CsrGraph KnowledgeGraph::ToUndirectedGraph() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(triples_.size());
  for (const Triple& t : triples_) {
    edges.push_back(WeightedEdge{t.head, t.tail, 1});
  }
  return CsrGraph::FromEdges(num_entities(), edges);
}

}  // namespace largeea
