// Ground-truth alignment handling: train/test splits of aligned pairs.
#ifndef LARGEEA_KG_ALIGNMENT_H_
#define LARGEEA_KG_ALIGNMENT_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace largeea {

/// The full 1-to-1 ground-truth alignment ψ between a source and a target
/// KG, split into a training portion (seed alignment ψ') and a held-out
/// test portion used for evaluation.
struct AlignmentSplit {
  EntityPairList train;
  EntityPairList test;

  /// All pairs (train then test).
  EntityPairList All() const;
};

/// Randomly splits `ground_truth` so that round(train_ratio * |ψ|) pairs
/// become seeds. The paper uses train_ratio = 0.2 by convention.
AlignmentSplit SplitAlignment(const EntityPairList& ground_truth,
                              double train_ratio, Rng& rng);

/// Validates the 1-to-1 constraint: no source or target entity may appear
/// in more than one pair. Returns false on duplicates.
bool IsOneToOne(const EntityPairList& pairs);

}  // namespace largeea

#endif  // LARGEEA_KG_ALIGNMENT_H_
