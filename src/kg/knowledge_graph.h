// In-memory knowledge graph: entity/relation vocabularies plus triples.
#ifndef LARGEEA_KG_KNOWLEDGE_GRAPH_H_
#define LARGEEA_KG_KNOWLEDGE_GRAPH_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/graph/csr_graph.h"

namespace largeea {

/// One entry in an entity's adjacency list.
struct NeighborEdge {
  EntityId neighbor = kInvalidEntity;
  RelationId relation = kInvalidRelation;
  /// True if the stored triple is (neighbor, relation, self) — i.e. this
  /// entity is the tail and the edge is traversed against its direction.
  bool inverse = false;
};

/// A knowledge graph G = (E, R, T). Entities and relations are interned
/// strings with dense ids; triples are directed labelled edges.
///
/// Usage: add entities/relations/triples, then call BuildAdjacency() once
/// before using Neighbors()/ToUndirectedGraph(). Adding more triples after
/// BuildAdjacency() invalidates the index (checked).
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  /// Interns `name`, returning the existing id if already present.
  EntityId AddEntity(std::string_view name);

  /// Interns `name`, returning the existing id if already present.
  RelationId AddRelation(std::string_view name);

  /// Appends the triple (h, r, t). Ids must be valid.
  void AddTriple(EntityId h, RelationId r, EntityId t);

  /// Builds the per-entity adjacency index. Idempotent until new triples
  /// are added.
  void BuildAdjacency();

  int32_t num_entities() const {
    return static_cast<int32_t>(entity_names_.size());
  }
  int32_t num_relations() const {
    return static_cast<int32_t>(relation_names_.size());
  }
  int64_t num_triples() const {
    return static_cast<int64_t>(triples_.size());
  }

  const std::vector<Triple>& triples() const { return triples_; }

  const std::string& EntityName(EntityId e) const;
  const std::string& RelationName(RelationId r) const;

  /// Returns the id for `name`, or nullopt if absent.
  std::optional<EntityId> FindEntity(std::string_view name) const;
  std::optional<RelationId> FindRelation(std::string_view name) const;

  /// Incoming + outgoing edges of `e`. Requires BuildAdjacency().
  std::span<const NeighborEdge> Neighbors(EntityId e) const;

  /// Degree (in + out) of `e`. Requires BuildAdjacency().
  int32_t Degree(EntityId e) const;

  /// Projects the KG to an undirected, unlabelled CsrGraph with unit edge
  /// weights (parallel edges merged) — the input to graph partitioning.
  CsrGraph ToUndirectedGraph() const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, EntityId> entity_index_;
  std::unordered_map<std::string, RelationId> relation_index_;
  std::vector<Triple> triples_;

  bool adjacency_built_ = false;
  std::vector<int64_t> adj_offsets_;
  std::vector<NeighborEdge> adj_edges_;
};

}  // namespace largeea

#endif  // LARGEEA_KG_KNOWLEDGE_GRAPH_H_
