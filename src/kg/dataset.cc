#include "src/kg/dataset.h"

namespace largeea {
namespace {

EntityPairList ReversePairs(const EntityPairList& pairs) {
  EntityPairList out;
  out.reserve(pairs.size());
  for (const EntityPair& p : pairs) {
    out.push_back(EntityPair{p.target, p.source});
  }
  return out;
}

}  // namespace

EaDataset EaDataset::Reversed() const {
  EaDataset out;
  out.name = name + "-reversed";
  out.source = target;
  out.target = source;
  out.split.train = ReversePairs(split.train);
  out.split.test = ReversePairs(split.test);
  return out;
}

DatasetStats ComputeStats(const EaDataset& dataset) {
  DatasetStats stats;
  stats.source_entities = dataset.source.num_entities();
  stats.target_entities = dataset.target.num_entities();
  stats.source_relations = dataset.source.num_relations();
  stats.target_relations = dataset.target.num_relations();
  stats.source_triples = dataset.source.num_triples();
  stats.target_triples = dataset.target.num_triples();
  stats.alignment_pairs =
      static_cast<int64_t>(dataset.split.train.size() +
                           dataset.split.test.size());
  stats.seed_pairs = static_cast<int64_t>(dataset.split.train.size());
  return stats;
}

}  // namespace largeea
