#include "src/kg/dataset.h"

namespace largeea {
namespace {

EntityPairList ReversePairs(const EntityPairList& pairs) {
  EntityPairList out;
  out.reserve(pairs.size());
  for (const EntityPair& p : pairs) {
    out.push_back(EntityPair{p.target, p.source});
  }
  return out;
}

}  // namespace

EaDataset EaDataset::Reversed() const {
  EaDataset out;
  out.name = name + "-reversed";
  out.source = target;
  out.target = source;
  out.split.train = ReversePairs(split.train);
  out.split.test = ReversePairs(split.test);
  return out;
}

StatusOr<EaDataset> LoadEaDataset(const EaDatasetPaths& paths,
                                  const TsvReadOptions& options,
                                  std::string name) {
  EaDataset dataset;
  dataset.name = std::move(name);
  {
    auto source = LoadTriples(paths.source_triples, options);
    if (!source.ok()) return source.status().WithContext("source KG");
    dataset.source = std::move(source).value();
  }
  {
    auto target = LoadTriples(paths.target_triples, options);
    if (!target.ok()) return target.status().WithContext("target KG");
    dataset.target = std::move(target).value();
  }
  if (!paths.train_pairs.empty()) {
    auto train = LoadAlignment(paths.train_pairs, dataset.source,
                               dataset.target, options);
    if (!train.ok()) return train.status().WithContext("seed alignment");
    dataset.split.train = std::move(train).value();
  }
  if (!paths.test_pairs.empty()) {
    auto test = LoadAlignment(paths.test_pairs, dataset.source,
                              dataset.target, options);
    if (!test.ok()) return test.status().WithContext("test alignment");
    dataset.split.test = std::move(test).value();
  }
  return dataset;
}

DatasetStats ComputeStats(const EaDataset& dataset) {
  DatasetStats stats;
  stats.source_entities = dataset.source.num_entities();
  stats.target_entities = dataset.target.num_entities();
  stats.source_relations = dataset.source.num_relations();
  stats.target_relations = dataset.target.num_relations();
  stats.source_triples = dataset.source.num_triples();
  stats.target_triples = dataset.target.num_triples();
  stats.alignment_pairs =
      static_cast<int64_t>(dataset.split.train.size() +
                           dataset.split.test.size());
  stats.seed_pairs = static_cast<int64_t>(dataset.split.train.size());
  return stats;
}

}  // namespace largeea
