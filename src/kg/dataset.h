// An entity-alignment dataset: two KGs plus ground truth.
#ifndef LARGEEA_KG_DATASET_H_
#define LARGEEA_KG_DATASET_H_

#include <string>

#include "src/kg/alignment.h"
#include "src/kg/knowledge_graph.h"

namespace largeea {

/// A complete EA task instance. `source` plays the role of G_s and
/// `target` of G_t; `split.train` is the seed alignment ψ'.
struct EaDataset {
  std::string name;
  KnowledgeGraph source;
  KnowledgeGraph target;
  AlignmentSplit split;

  /// Swaps the roles of the two KGs (the paper evaluates both EN→L and
  /// L→EN directions).
  EaDataset Reversed() const;
};

/// Summary statistics in the shape of the paper's Table 1.
struct DatasetStats {
  int32_t source_entities = 0;
  int32_t target_entities = 0;
  int32_t source_relations = 0;
  int32_t target_relations = 0;
  int64_t source_triples = 0;
  int64_t target_triples = 0;
  int64_t alignment_pairs = 0;
  int64_t seed_pairs = 0;
};

/// Computes Table-1-style statistics for `dataset`.
DatasetStats ComputeStats(const EaDataset& dataset);

}  // namespace largeea

#endif  // LARGEEA_KG_DATASET_H_
