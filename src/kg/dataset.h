// An entity-alignment dataset: two KGs plus ground truth.
#ifndef LARGEEA_KG_DATASET_H_
#define LARGEEA_KG_DATASET_H_

#include <string>

#include "src/kg/alignment.h"
#include "src/kg/kg_io.h"
#include "src/kg/knowledge_graph.h"
#include "src/rt/status.h"

namespace largeea {

/// A complete EA task instance. `source` plays the role of G_s and
/// `target` of G_t; `split.train` is the seed alignment ψ'.
struct EaDataset {
  std::string name;
  KnowledgeGraph source;
  KnowledgeGraph target;
  AlignmentSplit split;

  /// Swaps the roles of the two KGs (the paper evaluates both EN→L and
  /// L→EN directions).
  EaDataset Reversed() const;
};

/// Summary statistics in the shape of the paper's Table 1.
struct DatasetStats {
  int32_t source_entities = 0;
  int32_t target_entities = 0;
  int32_t source_relations = 0;
  int32_t target_relations = 0;
  int64_t source_triples = 0;
  int64_t target_triples = 0;
  int64_t alignment_pairs = 0;
  int64_t seed_pairs = 0;
};

/// Computes Table-1-style statistics for `dataset`.
DatasetStats ComputeStats(const EaDataset& dataset);

/// File locations of an on-disk EA task (largeea_cli generate layout).
struct EaDatasetPaths {
  std::string source_triples;
  std::string target_triples;
  /// Optional: empty path = no pairs of that kind.
  std::string train_pairs;
  std::string test_pairs;
};

/// Loads a complete dataset from TSV files, resolving alignment names
/// against the freshly loaded KGs. Errors carry the failing path and, in
/// strict mode, the offending line number.
StatusOr<EaDataset> LoadEaDataset(const EaDatasetPaths& paths,
                                  const TsvReadOptions& options = {},
                                  std::string name = "dataset");

}  // namespace largeea

#endif  // LARGEEA_KG_DATASET_H_
