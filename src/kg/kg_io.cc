#include "src/kg/kg_io.h"

#include <fstream>

#include "src/common/string_util.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"

namespace largeea {
namespace {

/// Shared skip-or-fail bookkeeping for the lenient/strict loaders.
/// Returns a non-OK status only in strict mode.
Status RecordBadLine(const std::string& path, int64_t line_number,
                     std::string_view reason, const TsvReadOptions& options,
                     TsvReadStats* stats) {
  if (options.strict) {
    return InvalidArgumentError("'" + path + "' line " +
                                std::to_string(line_number) + ": " +
                                std::string(reason));
  }
  obs::MetricsRegistry::Get().GetCounter("io.lines_skipped").Increment();
  if (stats != nullptr) {
    ++stats->lines_skipped;
    if (static_cast<int32_t>(stats->skipped_line_numbers.size()) <
        options.max_reported_lines) {
      stats->skipped_line_numbers.push_back(line_number);
    }
  }
  if (stats == nullptr ||
      stats->lines_skipped <= options.max_reported_lines) {
    LARGEEA_LOG_WARN("%s line %lld: skipped (%.*s)", path.c_str(),
                     static_cast<long long>(line_number),
                     static_cast<int>(reason.size()), reason.data());
  }
  return OkStatus();
}

void LogSkipSummary(const std::string& path, const TsvReadStats* stats) {
  if (stats != nullptr && stats->lines_skipped > 0) {
    LARGEEA_LOG_WARN("%s: skipped %lld malformed line(s) of %lld",
                     path.c_str(),
                     static_cast<long long>(stats->lines_skipped),
                     static_cast<long long>(stats->lines_read));
  }
}

}  // namespace

StatusOr<KnowledgeGraph> LoadTriples(const std::string& path,
                                     const TsvReadOptions& options,
                                     TsvReadStats* stats) {
  LARGEEA_INJECT_FAULT("io.load_triples");
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open triples file '" + path + "'");
  TsvReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  KnowledgeGraph kg;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    ++stats->lines_read;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, '\t');
    if (fields.size() != 3) {
      LARGEEA_RETURN_IF_ERROR(RecordBadLine(
          path, line_number,
          "expected 3 tab-separated fields, got " +
              std::to_string(fields.size()),
          options, stats));
      continue;
    }
    if (fields[0].empty() || fields[1].empty() || fields[2].empty()) {
      LARGEEA_RETURN_IF_ERROR(RecordBadLine(path, line_number,
                                            "empty field", options, stats));
      continue;
    }
    const EntityId h = kg.AddEntity(fields[0]);
    const RelationId r = kg.AddRelation(fields[1]);
    const EntityId t = kg.AddEntity(fields[2]);
    kg.AddTriple(h, r, t);
  }
  LogSkipSummary(path, stats);
  kg.BuildAdjacency();
  return kg;
}

Status SaveTriples(const KnowledgeGraph& kg, const std::string& path) {
  std::string content;
  for (const Triple& t : kg.triples()) {
    content += kg.EntityName(t.head);
    content += '\t';
    content += kg.RelationName(t.relation);
    content += '\t';
    content += kg.EntityName(t.tail);
    content += '\n';
  }
  return rt::AtomicallyWriteFile(path, content)
      .WithContext("saving triples");
}

StatusOr<EntityPairList> LoadAlignment(const std::string& path,
                                       const KnowledgeGraph& source,
                                       const KnowledgeGraph& target,
                                       const TsvReadOptions& options,
                                       TsvReadStats* stats) {
  LARGEEA_INJECT_FAULT("io.load_alignment");
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open alignment file '" + path + "'");
  }
  TsvReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  EntityPairList pairs;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    ++stats->lines_read;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, '\t');
    if (fields.size() != 2) {
      LARGEEA_RETURN_IF_ERROR(RecordBadLine(
          path, line_number,
          "expected 2 tab-separated fields, got " +
              std::to_string(fields.size()),
          options, stats));
      continue;
    }
    const auto s = source.FindEntity(fields[0]);
    const auto t = target.FindEntity(fields[1]);
    if (!s || !t) {
      LARGEEA_RETURN_IF_ERROR(RecordBadLine(
          path, line_number,
          "unknown entity '" + (s ? fields[1] : fields[0]) + "'", options,
          stats));
      continue;
    }
    pairs.push_back(EntityPair{*s, *t});
  }
  LogSkipSummary(path, stats);
  return pairs;
}

Status SaveAlignment(const EntityPairList& pairs,
                     const KnowledgeGraph& source,
                     const KnowledgeGraph& target, const std::string& path) {
  std::string content;
  for (const EntityPair& p : pairs) {
    content += source.EntityName(p.source);
    content += '\t';
    content += target.EntityName(p.target);
    content += '\n';
  }
  return rt::AtomicallyWriteFile(path, content)
      .WithContext("saving alignment");
}

}  // namespace largeea
