#include "src/kg/kg_io.h"

#include <fstream>

#include "src/common/string_util.h"

namespace largeea {

std::optional<KnowledgeGraph> LoadTriples(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  KnowledgeGraph kg;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, '\t');
    if (fields.size() != 3) return std::nullopt;
    const EntityId h = kg.AddEntity(fields[0]);
    const RelationId r = kg.AddRelation(fields[1]);
    const EntityId t = kg.AddEntity(fields[2]);
    kg.AddTriple(h, r, t);
  }
  kg.BuildAdjacency();
  return kg;
}

bool SaveTriples(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const Triple& t : kg.triples()) {
    out << kg.EntityName(t.head) << '\t' << kg.RelationName(t.relation)
        << '\t' << kg.EntityName(t.tail) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<EntityPairList> LoadAlignment(const std::string& path,
                                            const KnowledgeGraph& source,
                                            const KnowledgeGraph& target) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  EntityPairList pairs;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, '\t');
    if (fields.size() != 2) return std::nullopt;
    const auto s = source.FindEntity(fields[0]);
    const auto t = target.FindEntity(fields[1]);
    if (!s || !t) return std::nullopt;
    pairs.push_back(EntityPair{*s, *t});
  }
  return pairs;
}

bool SaveAlignment(const EntityPairList& pairs, const KnowledgeGraph& source,
                   const KnowledgeGraph& target, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const EntityPair& p : pairs) {
    out << source.EntityName(p.source) << '\t' << target.EntityName(p.target)
        << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace largeea
