// TSV load/save for KGs and alignments (OpenEA-style file layout).
//
// Triples:    one "head<TAB>relation<TAB>tail" line per triple, all three
//             fields entity/relation *names*.
// Alignments: one "source_entity<TAB>target_entity" line per pair.
//
// Real dumps of DBP1M scale always contain a few mangled lines; by
// default the loaders *skip* malformed lines (counted, line numbers
// logged) so one bad line cannot discard a million good ones. `strict`
// restores fail-fast semantics for curated inputs.
#ifndef LARGEEA_KG_KG_IO_H_
#define LARGEEA_KG_KG_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kg/alignment.h"
#include "src/kg/knowledge_graph.h"
#include "src/rt/status.h"

namespace largeea {

struct TsvReadOptions {
  /// When true, any malformed line fails the whole load with
  /// INVALID_ARGUMENT (the pre-robustness behaviour). When false,
  /// malformed lines are skipped with a warning.
  bool strict = false;
  /// At most this many skipped lines are echoed into the log/stats
  /// detail; the count is always exact.
  int32_t max_reported_lines = 5;
};

/// What a lenient load skipped (all zero on a clean file).
struct TsvReadStats {
  int64_t lines_read = 0;
  int64_t lines_skipped = 0;
  /// 1-based numbers of the first `max_reported_lines` skipped lines.
  std::vector<int64_t> skipped_line_numbers;
};

/// Reads a triples file into a fresh KnowledgeGraph (adjacency built).
/// NOT_FOUND if the file cannot be opened; INVALID_ARGUMENT in strict
/// mode on the first malformed line. `stats` may be null.
StatusOr<KnowledgeGraph> LoadTriples(const std::string& path,
                                     const TsvReadOptions& options = {},
                                     TsvReadStats* stats = nullptr);

/// Writes `kg` to `path` atomically (temp file + rename).
Status SaveTriples(const KnowledgeGraph& kg, const std::string& path);

/// Reads an alignment file; names are resolved against the two KGs.
/// Lenient mode also skips pairs naming unknown entities; strict mode
/// fails on them.
StatusOr<EntityPairList> LoadAlignment(const std::string& path,
                                       const KnowledgeGraph& source,
                                       const KnowledgeGraph& target,
                                       const TsvReadOptions& options = {},
                                       TsvReadStats* stats = nullptr);

/// Writes `pairs` (as entity names) to `path` atomically.
Status SaveAlignment(const EntityPairList& pairs,
                     const KnowledgeGraph& source,
                     const KnowledgeGraph& target, const std::string& path);

}  // namespace largeea

#endif  // LARGEEA_KG_KG_IO_H_
