// TSV load/save for KGs and alignments (OpenEA-style file layout).
//
// Triples:    one "head<TAB>relation<TAB>tail" line per triple, all three
//             fields entity/relation *names*.
// Alignments: one "source_entity<TAB>target_entity" line per pair.
#ifndef LARGEEA_KG_KG_IO_H_
#define LARGEEA_KG_KG_IO_H_

#include <optional>
#include <string>

#include "src/kg/alignment.h"
#include "src/kg/knowledge_graph.h"

namespace largeea {

/// Reads a triples file into a fresh KnowledgeGraph (adjacency built).
/// Returns nullopt if the file cannot be opened or any line is malformed.
std::optional<KnowledgeGraph> LoadTriples(const std::string& path);

/// Writes `kg` to `path`. Returns false on IO failure.
bool SaveTriples(const KnowledgeGraph& kg, const std::string& path);

/// Reads an alignment file; names are resolved against the two KGs.
/// Returns nullopt on IO failure, malformed lines, or unknown entities.
std::optional<EntityPairList> LoadAlignment(const std::string& path,
                                            const KnowledgeGraph& source,
                                            const KnowledgeGraph& target);

/// Writes `pairs` (as entity names) to `path`. Returns false on failure.
bool SaveAlignment(const EntityPairList& pairs, const KnowledgeGraph& source,
                   const KnowledgeGraph& target, const std::string& path);

}  // namespace largeea

#endif  // LARGEEA_KG_KG_IO_H_
