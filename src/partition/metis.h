// Multilevel k-way graph partitioning (from-scratch METIS replacement).
//
// Follows the classic Karypis–Kumar recipe the paper relies on:
//   1. Coarsening: repeated heavy-edge matching collapses the graph until
//      it is small, preserving heavy edges inside super-vertices — this is
//      what makes METIS-CPS's w' >> 1 virtual edges effective, because
//      heavily-connected seed clusters merge early and are never split.
//   2. Initial partitioning: greedy graph growing on the coarsest graph,
//      balancing total vertex weight across the K parts.
//   3. Uncoarsening: the partition is projected back level by level, with
//      boundary greedy refinement (Kernighan–Lin style gain moves under a
//      balance constraint) at every level.
//
// Zero-weight edges (METIS-CPS phase 2) contribute nothing to cut cost, so
// the partitioner is free to cut them — exactly the intended semantics.
#ifndef LARGEEA_PARTITION_METIS_H_
#define LARGEEA_PARTITION_METIS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace largeea {

/// Tuning knobs for the multilevel partitioner.
struct MetisOptions {
  int32_t num_parts = 2;
  /// Allowed part overweight: max part weight <= (1+imbalance)*ideal.
  double imbalance = 0.08;
  uint64_t seed = 1;
  /// Coarsening stops once the graph has <= num_parts * this many vertices.
  int32_t coarsen_vertices_per_part = 16;
  /// Refinement sweeps per uncoarsening level.
  int32_t refinement_passes = 6;
};

/// A k-way partition of a graph.
struct PartitionResult {
  /// Part id in [0, num_parts) for every vertex.
  std::vector<int32_t> assignment;
  /// Total weight of edges whose endpoints land in different parts.
  int64_t edge_cut = 0;
};

/// Partitions `graph` into options.num_parts parts minimising weighted
/// edge cut under the balance constraint. Deterministic in options.seed.
PartitionResult MetisPartition(const CsrGraph& graph,
                               const MetisOptions& options);

/// Recomputes the weighted edge cut of `assignment` on `graph`.
int64_t ComputeEdgeCut(const CsrGraph& graph,
                       const std::vector<int32_t>& assignment);

/// Fraction of *edges* (unweighted) cut by `assignment` — the paper's
/// edge-cut rate R_ec from Appendix B.
double EdgeCutRate(const CsrGraph& graph,
                   const std::vector<int32_t>& assignment);

/// Total vertex weight per part.
std::vector<int64_t> PartWeights(const CsrGraph& graph,
                                 const std::vector<int32_t>& assignment,
                                 int32_t num_parts);

}  // namespace largeea

#endif  // LARGEEA_PARTITION_METIS_H_
