// Mini-batch types shared by the partition strategies.
#ifndef LARGEEA_PARTITION_MINI_BATCH_H_
#define LARGEEA_PARTITION_MINI_BATCH_H_

#include <vector>

#include "src/common/types.h"
#include "src/kg/dataset.h"

namespace largeea {

/// One training unit: a subgraph of G_s paired with a subgraph of G_t.
/// Entity ids are *global* ids in the respective KGs; the trainer
/// re-indexes locally.
struct MiniBatch {
  std::vector<EntityId> source_entities;
  std::vector<EntityId> target_entities;
  /// Seed pairs whose both endpoints fall inside this batch.
  EntityPairList seeds;
};

using MiniBatchSet = std::vector<MiniBatch>;

/// Fraction of `pairs` whose two endpoints were placed into the same
/// mini-batch — the paper's Table-5 metric. A pair whose endpoints appear
/// in no common batch counts as split.
double SameBatchFraction(const MiniBatchSet& batches,
                         const EntityPairList& pairs, int32_t num_source,
                         int32_t num_target);

/// Per-batch (|source| , |target|) sizes, for balance reporting.
std::vector<std::pair<int64_t, int64_t>> BatchSizes(
    const MiniBatchSet& batches);

}  // namespace largeea

#endif  // LARGEEA_PARTITION_MINI_BATCH_H_
