#include "src/partition/mini_batch.h"

#include "src/common/macros.h"

namespace largeea {

double SameBatchFraction(const MiniBatchSet& batches,
                         const EntityPairList& pairs, int32_t num_source,
                         int32_t num_target) {
  if (pairs.empty()) return 0.0;
  // Batch membership per entity. With overlapping batches an entity can be
  // in several, so store bitsets as small vectors of batch ids.
  std::vector<std::vector<int32_t>> source_batches(num_source);
  std::vector<std::vector<int32_t>> target_batches(num_target);
  for (size_t b = 0; b < batches.size(); ++b) {
    for (const EntityId e : batches[b].source_entities) {
      LARGEEA_CHECK_LT(e, num_source);
      source_batches[e].push_back(static_cast<int32_t>(b));
    }
    for (const EntityId e : batches[b].target_entities) {
      LARGEEA_CHECK_LT(e, num_target);
      target_batches[e].push_back(static_cast<int32_t>(b));
    }
  }
  int64_t together = 0;
  for (const EntityPair& p : pairs) {
    const auto& sb = source_batches[p.source];
    const auto& tb = target_batches[p.target];
    bool found = false;
    for (const int32_t b : sb) {
      for (const int32_t b2 : tb) {
        if (b == b2) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) ++together;
  }
  return static_cast<double>(together) / static_cast<double>(pairs.size());
}

std::vector<std::pair<int64_t, int64_t>> BatchSizes(
    const MiniBatchSet& batches) {
  std::vector<std::pair<int64_t, int64_t>> sizes;
  sizes.reserve(batches.size());
  for (const MiniBatch& b : batches) {
    sizes.emplace_back(static_cast<int64_t>(b.source_entities.size()),
                       static_cast<int64_t>(b.target_entities.size()));
  }
  return sizes;
}

}  // namespace largeea
