#include "src/partition/metis.h"

#include <algorithm>
#include <numeric>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace largeea {
namespace {

// Heavy-edge *clustering* coarsening. Unlike classic pairwise matching,
// an unassigned vertex may join an existing cluster, so dense groups and
// hub stars (METIS-CPS phase-1 virtual stars in particular) collapse into
// one super-vertex in a single level instead of shrinking by one member
// per level. Cluster weight is capped so super-vertices stay far below a
// part's weight budget. Returns the number of coarse vertices and fills
// `fine_to_coarse`.
int32_t HeavyEdgeCluster(const CsrGraph& graph, int64_t max_cluster_weight,
                         Rng& rng, std::vector<int32_t>& fine_to_coarse) {
  const int32_t n = graph.num_vertices();
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<int32_t> cluster_of(n, -1);
  std::vector<int64_t> cluster_weight;
  for (const int32_t u : order) {
    if (cluster_of[u] != -1) continue;
    const int64_t uw = graph.VertexWeight(u);
    const auto neighbors = graph.Neighbors(u);
    const auto weights = graph.EdgeWeights(u);
    // Best neighbour by edge weight whose cluster (existing, or a fresh
    // pair if the neighbour is free) still has room for u.
    int32_t best = -1;
    int64_t best_weight = 0;  // require a strictly positive edge
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const int32_t v = neighbors[i];
      if (v == u || weights[i] <= best_weight) continue;
      const int64_t joined_weight =
          cluster_of[v] != -1
              ? cluster_weight[cluster_of[v]] + uw
              : graph.VertexWeight(v) + uw;
      if (joined_weight > max_cluster_weight) continue;
      best_weight = weights[i];
      best = v;
    }
    if (best == -1) {
      cluster_of[u] = static_cast<int32_t>(cluster_weight.size());
      cluster_weight.push_back(uw);
    } else if (cluster_of[best] != -1) {
      cluster_of[u] = cluster_of[best];
      cluster_weight[cluster_of[best]] += uw;
    } else {
      const auto c = static_cast<int32_t>(cluster_weight.size());
      cluster_of[u] = c;
      cluster_of[best] = c;
      cluster_weight.push_back(uw + graph.VertexWeight(best));
    }
  }
  fine_to_coarse = std::move(cluster_of);
  return static_cast<int32_t>(cluster_weight.size());
}

// Collapses `graph` through `fine_to_coarse` into a coarse graph with
// summed vertex and edge weights.
CsrGraph Coarsen(const CsrGraph& graph,
                 const std::vector<int32_t>& fine_to_coarse,
                 int32_t coarse_count) {
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<size_t>(graph.num_edges()));
  for (int32_t u = 0; u < graph.num_vertices(); ++u) {
    const auto neighbors = graph.Neighbors(u);
    const auto weights = graph.EdgeWeights(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const int32_t v = neighbors[i];
      if (v <= u) continue;  // each undirected edge once
      const int32_t cu = fine_to_coarse[u];
      const int32_t cv = fine_to_coarse[v];
      if (cu == cv) continue;
      edges.push_back(WeightedEdge{cu, cv, weights[i]});
    }
  }
  CsrGraph coarse = CsrGraph::FromEdges(coarse_count, edges);
  std::vector<int64_t> vertex_weights(coarse_count, 0);
  for (int32_t u = 0; u < graph.num_vertices(); ++u) {
    vertex_weights[fine_to_coarse[u]] += graph.VertexWeight(u);
  }
  for (int32_t c = 0; c < coarse_count; ++c) {
    coarse.SetVertexWeight(c, vertex_weights[c]);
  }
  return coarse;
}

// Greedy graph-growing initial partition of the coarsest graph.
std::vector<int32_t> InitialPartition(const CsrGraph& graph, int32_t k,
                                      Rng& rng) {
  const int32_t n = graph.num_vertices();
  const int64_t total = graph.TotalVertexWeight();
  const double ideal = static_cast<double>(total) / k;

  std::vector<int32_t> assignment(n, -1);
  std::vector<int32_t> frontier;
  int32_t assigned = 0;
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  size_t seed_cursor = 0;

  for (int32_t part = 0; part < k; ++part) {
    const bool last = (part == k - 1);
    int64_t part_weight = 0;
    frontier.clear();
    while (last ? (assigned < n) : (part_weight < ideal && assigned < n)) {
      int32_t v = -1;
      // Prefer growing from the BFS frontier to keep the region connected.
      while (!frontier.empty()) {
        const int32_t cand = frontier.back();
        frontier.pop_back();
        if (assignment[cand] == -1) {
          v = cand;
          break;
        }
      }
      if (v == -1) {
        while (seed_cursor < order.size() &&
               assignment[order[seed_cursor]] != -1) {
          ++seed_cursor;
        }
        if (seed_cursor >= order.size()) break;
        v = order[seed_cursor];
      }
      assignment[v] = part;
      part_weight += graph.VertexWeight(v);
      ++assigned;
      for (const int32_t u : graph.Neighbors(v)) {
        if (assignment[u] == -1) frontier.push_back(u);
      }
      // Leave room for the remaining parts.
      const int32_t parts_left = k - part - 1;
      if (!last && n - assigned <= parts_left) break;
    }
  }
  // Anything left (possible when the loop broke early) goes to the
  // lightest part.
  std::vector<int64_t> weights(k, 0);
  for (int32_t v = 0; v < n; ++v) {
    if (assignment[v] != -1) weights[assignment[v]] += graph.VertexWeight(v);
  }
  for (int32_t v = 0; v < n; ++v) {
    if (assignment[v] == -1) {
      const int32_t lightest = static_cast<int32_t>(
          std::min_element(weights.begin(), weights.end()) - weights.begin());
      assignment[v] = lightest;
      weights[lightest] += graph.VertexWeight(v);
    }
  }
  return assignment;
}

// One greedy boundary-refinement sweep. Returns number of moves made.
int64_t RefineSweep(const CsrGraph& graph, int32_t k, int64_t max_part_weight,
                    Rng& rng, std::vector<int32_t>& assignment,
                    std::vector<int64_t>& part_weights,
                    std::vector<int32_t>& part_sizes) {
  const int32_t n = graph.num_vertices();
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<int64_t> conn(k, 0);
  std::vector<int32_t> touched;
  int64_t moves = 0;
  for (const int32_t v : order) {
    const auto neighbors = graph.Neighbors(v);
    const auto weights = graph.EdgeWeights(v);
    if (neighbors.empty()) continue;
    const int32_t from = assignment[v];
    if (part_sizes[from] <= 1) continue;  // never empty a part
    touched.clear();
    bool has_external = false;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const int32_t p = assignment[neighbors[i]];
      if (conn[p] == 0) touched.push_back(p);
      conn[p] += weights[i];
      if (p != from) has_external = true;
    }
    if (has_external) {
      const int64_t vw = graph.VertexWeight(v);
      int32_t best_part = from;
      int64_t best_gain = 0;
      const bool from_overweight = part_weights[from] > max_part_weight;
      for (const int32_t p : touched) {
        if (p == from) continue;
        if (part_weights[p] + vw > max_part_weight && !from_overweight) {
          continue;
        }
        const int64_t gain = conn[p] - conn[from];
        const bool better =
            gain > best_gain ||
            (gain == best_gain && from_overweight &&
             part_weights[p] + vw < part_weights[from]);
        if (better) {
          best_gain = gain;
          best_part = p;
        }
      }
      // When the home part is overweight, accept zero/negative-gain moves
      // that restore balance (cheapest boundary vertex drains first over
      // repeated sweeps).
      if (best_part == from && from_overweight) {
        int64_t best_balance_gain = 0;
        for (const int32_t p : touched) {
          if (p == from) continue;
          if (part_weights[p] + vw >= part_weights[from]) continue;
          const int64_t gain = conn[p] - conn[from];
          if (best_part == from || gain > best_balance_gain) {
            best_balance_gain = gain;
            best_part = p;
          }
        }
      }
      if (best_part != from) {
        assignment[v] = best_part;
        part_weights[from] -= vw;
        part_weights[best_part] += vw;
        --part_sizes[from];
        ++part_sizes[best_part];
        ++moves;
      }
    }
    for (const int32_t p : touched) conn[p] = 0;
  }
  return moves;
}

void Refine(const CsrGraph& graph, const MetisOptions& options, Rng& rng,
            std::vector<int32_t>& assignment) {
  const int32_t k = options.num_parts;
  std::vector<int64_t> part_weights(k, 0);
  std::vector<int32_t> part_sizes(k, 0);
  for (int32_t v = 0; v < graph.num_vertices(); ++v) {
    part_weights[assignment[v]] += graph.VertexWeight(v);
    ++part_sizes[assignment[v]];
  }
  const int64_t total = graph.TotalVertexWeight();
  const int64_t max_part_weight = static_cast<int64_t>(
      (1.0 + options.imbalance) * static_cast<double>(total) / k) + 1;
  for (int32_t pass = 0; pass < options.refinement_passes; ++pass) {
    const int64_t moves = RefineSweep(graph, k, max_part_weight, rng,
                                      assignment, part_weights, part_sizes);
    if (moves == 0) break;
  }
}

}  // namespace

PartitionResult MetisPartition(const CsrGraph& graph,
                               const MetisOptions& options) {
  LARGEEA_CHECK_GE(options.num_parts, 1);
  LARGEEA_CHECK_GE(graph.num_vertices(), options.num_parts);
  Rng rng(options.seed);

  if (options.num_parts == 1) {
    PartitionResult result;
    result.assignment.assign(graph.num_vertices(), 0);
    result.edge_cut = 0;
    return result;
  }

  // --- Coarsening ---
  std::vector<CsrGraph> levels;
  std::vector<std::vector<int32_t>> maps;  // maps[i]: levels[i] -> levels[i+1]
  levels.push_back(graph);
  const int32_t coarsen_target = std::max(
      options.num_parts * options.coarsen_vertices_per_part, 48);
  // A cluster must stay well below one part's weight budget, or the
  // initial partition cannot balance.
  const int64_t max_cluster_weight = std::max<int64_t>(
      graph.TotalVertexWeight() / (2 * static_cast<int64_t>(
                                           options.num_parts)),
      1);
  while (levels.back().num_vertices() > coarsen_target) {
    std::vector<int32_t> fine_to_coarse;
    const int32_t coarse_count = HeavyEdgeCluster(
        levels.back(), max_cluster_weight, rng, fine_to_coarse);
    // Stop if clustering stalled (almost no reduction).
    if (coarse_count >
        static_cast<int32_t>(0.95 * levels.back().num_vertices())) {
      break;
    }
    CsrGraph coarse = Coarsen(levels.back(), fine_to_coarse, coarse_count);
    maps.push_back(std::move(fine_to_coarse));
    levels.push_back(std::move(coarse));
  }

  // --- Initial partition on the coarsest graph ---
  std::vector<int32_t> assignment =
      InitialPartition(levels.back(), options.num_parts, rng);
  Refine(levels.back(), options, rng, assignment);

  // --- Uncoarsen and refine ---
  for (int64_t level = static_cast<int64_t>(maps.size()) - 1; level >= 0;
       --level) {
    const std::vector<int32_t>& fine_to_coarse = maps[level];
    std::vector<int32_t> fine_assignment(fine_to_coarse.size());
    for (size_t v = 0; v < fine_to_coarse.size(); ++v) {
      fine_assignment[v] = assignment[fine_to_coarse[v]];
    }
    assignment = std::move(fine_assignment);
    Refine(levels[level], options, rng, assignment);
  }

  PartitionResult result;
  result.edge_cut = ComputeEdgeCut(graph, assignment);
  result.assignment = std::move(assignment);
  return result;
}

int64_t ComputeEdgeCut(const CsrGraph& graph,
                       const std::vector<int32_t>& assignment) {
  LARGEEA_CHECK_EQ(static_cast<int32_t>(assignment.size()),
                   graph.num_vertices());
  int64_t cut = 0;
  for (int32_t u = 0; u < graph.num_vertices(); ++u) {
    const auto neighbors = graph.Neighbors(u);
    const auto weights = graph.EdgeWeights(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const int32_t v = neighbors[i];
      if (v > u && assignment[u] != assignment[v]) cut += weights[i];
    }
  }
  return cut;
}

double EdgeCutRate(const CsrGraph& graph,
                   const std::vector<int32_t>& assignment) {
  LARGEEA_CHECK_EQ(static_cast<int32_t>(assignment.size()),
                   graph.num_vertices());
  int64_t cut_edges = 0;
  int64_t total_edges = 0;
  for (int32_t u = 0; u < graph.num_vertices(); ++u) {
    for (const int32_t v : graph.Neighbors(u)) {
      if (v <= u) continue;
      ++total_edges;
      if (assignment[u] != assignment[v]) ++cut_edges;
    }
  }
  if (total_edges == 0) return 0.0;
  return static_cast<double>(cut_edges) / static_cast<double>(total_edges);
}

std::vector<int64_t> PartWeights(const CsrGraph& graph,
                                 const std::vector<int32_t>& assignment,
                                 int32_t num_parts) {
  std::vector<int64_t> weights(num_parts, 0);
  for (int32_t v = 0; v < graph.num_vertices(); ++v) {
    weights[assignment[v]] += graph.VertexWeight(v);
  }
  return weights;
}

}  // namespace largeea
