// METIS-CPS — the METIS-based collaborative partition strategy
// (Section 2.2.1, Figure 3), the paper's key structural contribution.
//
// Workflow:
//   1. Partition the source KG's undirected projection with METIS.
//   2. Collect L_t^i — the target counterparts of the seed entities in
//      each source part i.
//   3. Phase 1 ("increasing weight for relevant entities"): for each part
//      i, pick q hub entities from L_t^i and add *virtual* edges from each
//      hub to every other member, then raise the weight of all edges
//      inside this connected group to w' >> 1, so METIS keeps the group
//      together. The virtual edges exist only for partitioning; the KG
//      itself is untouched.
//   4. Phase 2 ("reducing weight for irrelevant entities"): any existing
//      target edge joining L_t^i and L_t^j (i != j) gets weight 0, so
//      cutting it is free and seeds of different source parts are not
//      glued together.
//   5. Partition the reweighted target graph with METIS.
//   6. Pair source parts with target parts greedily by shared seed count
//      to form the K mini-batches.
#ifndef LARGEEA_PARTITION_METIS_CPS_H_
#define LARGEEA_PARTITION_METIS_CPS_H_

#include <cstdint>

#include "src/partition/metis.h"
#include "src/partition/mini_batch.h"
#include "src/rt/status.h"

namespace largeea {

struct MetisCpsOptions {
  int32_t num_batches = 5;
  /// Weight w' assigned to intra-group edges in phase 1. Must dominate
  /// ordinary unit weights.
  int64_t high_weight = 1000;
  /// Number of hub entities q per group in phase 1 (the paper uses 1).
  int32_t hubs_per_group = 1;
  /// Ablation switches for the two phases.
  bool enable_phase1 = true;
  bool enable_phase2 = true;
  /// The multilevel partitioner is randomised, and an unlucky run can
  /// pair source/target parts badly (few seeds co-batched). Up to this
  /// many attempts are made, keeping the one that captures the most
  /// seeds; attempts stop early once 90% of seeds are captured.
  int32_t max_attempts = 3;
  uint64_t seed = 1;
  /// Underlying multilevel partitioner knobs (num_parts/seed overridden).
  MetisOptions metis;
};

/// Diagnostic outputs alongside the batches.
struct MetisCpsReport {
  int64_t source_edge_cut = 0;
  int64_t target_edge_cut = 0;
  double source_edge_cut_rate = 0.0;
  double target_edge_cut_rate = 0.0;
};

/// Generates K mini-batches with METIS-CPS. `report` may be null.
/// Fallible seam: the "partition.metis_cps" fault point fires here, and
/// future real failure modes (METIS defeat on pathological graphs)
/// surface as non-OK statuses instead of aborts.
StatusOr<MiniBatchSet> MetisCpsPartition(const KnowledgeGraph& source,
                                         const KnowledgeGraph& target,
                                         const EntityPairList& seeds,
                                         const MetisCpsOptions& options,
                                         MetisCpsReport* report = nullptr);

}  // namespace largeea

#endif  // LARGEEA_PARTITION_METIS_CPS_H_
