// Overlapping mini-batches (Appendix C of the paper).
//
// Given K disjoint mini-batches, each batch is merged with its top-D_ov
// most similar batches (similarity = cross-batch KG edges between their
// entity sets) to form K overlapping batches. D_ov = 1 keeps the batches
// disjoint, since every batch is most similar to itself.
#ifndef LARGEEA_PARTITION_OVERLAP_H_
#define LARGEEA_PARTITION_OVERLAP_H_

#include <cstdint>

#include "src/partition/mini_batch.h"

namespace largeea {

/// Builds overlapping batches with overlap degree `d_ov` >= 1.
MiniBatchSet MakeOverlappingBatches(const MiniBatchSet& batches,
                                    const KnowledgeGraph& source,
                                    const KnowledgeGraph& target,
                                    int32_t d_ov);

}  // namespace largeea

#endif  // LARGEEA_PARTITION_OVERLAP_H_
