#include "src/partition/overlap.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/common/macros.h"

namespace largeea {
namespace {

// Batch id of every entity in one KG (-1 if absent from all batches).
std::vector<int32_t> MembershipOf(const MiniBatchSet& batches,
                                  bool source_side, int32_t num_entities) {
  std::vector<int32_t> membership(num_entities, -1);
  for (size_t b = 0; b < batches.size(); ++b) {
    const auto& entities =
        source_side ? batches[b].source_entities : batches[b].target_entities;
    for (const EntityId e : entities) {
      membership[e] = static_cast<int32_t>(b);
    }
  }
  return membership;
}

// Adds the number of KG edges joining distinct batches into `similarity`.
void AccumulateCrossEdges(const KnowledgeGraph& kg,
                          const std::vector<int32_t>& membership,
                          std::vector<std::vector<int64_t>>& similarity) {
  for (const Triple& t : kg.triples()) {
    const int32_t a = membership[t.head];
    const int32_t b = membership[t.tail];
    if (a == -1 || b == -1 || a == b) continue;
    ++similarity[a][b];
    ++similarity[b][a];
  }
}

}  // namespace

MiniBatchSet MakeOverlappingBatches(const MiniBatchSet& batches,
                                    const KnowledgeGraph& source,
                                    const KnowledgeGraph& target,
                                    int32_t d_ov) {
  LARGEEA_CHECK_GE(d_ov, 1);
  const int32_t k = static_cast<int32_t>(batches.size());
  if (d_ov == 1 || k <= 1) return batches;

  // Similarity between batches: KG edges crossing them, on both sides.
  std::vector<std::vector<int64_t>> similarity(k, std::vector<int64_t>(k, 0));
  AccumulateCrossEdges(
      source, MembershipOf(batches, /*source_side=*/true,
                           source.num_entities()),
      similarity);
  AccumulateCrossEdges(
      target, MembershipOf(batches, /*source_side=*/false,
                           target.num_entities()),
      similarity);

  MiniBatchSet merged(k);
  for (int32_t b = 0; b < k; ++b) {
    // Rank other batches by similarity to b; self is always included and
    // counts as the first of the D_ov picks.
    std::vector<int32_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
      if (x == b) return true;
      if (y == b) return false;
      if (similarity[b][x] != similarity[b][y]) {
        return similarity[b][x] > similarity[b][y];
      }
      return x < y;
    });
    const int32_t take = std::min(d_ov, k);
    std::unordered_set<EntityId> source_seen, target_seen;
    for (int32_t i = 0; i < take; ++i) {
      const MiniBatch& other = batches[order[i]];
      for (const EntityId e : other.source_entities) {
        if (source_seen.insert(e).second) {
          merged[b].source_entities.push_back(e);
        }
      }
      for (const EntityId e : other.target_entities) {
        if (target_seen.insert(e).second) {
          merged[b].target_entities.push_back(e);
        }
      }
      merged[b].seeds.insert(merged[b].seeds.end(), other.seeds.begin(),
                             other.seeds.end());
    }
  }
  return merged;
}

}  // namespace largeea
