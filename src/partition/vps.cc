#include "src/partition/vps.h"

#include <numeric>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace largeea {

MiniBatchSet VpsPartition(const KnowledgeGraph& source,
                          const KnowledgeGraph& target,
                          const EntityPairList& seeds,
                          const VpsOptions& options) {
  LARGEEA_CHECK_GE(options.num_batches, 1);
  const int32_t k = options.num_batches;
  Rng rng(options.seed);

  MiniBatchSet batches(k);
  std::vector<bool> source_used(source.num_entities(), false);
  std::vector<bool> target_used(target.num_entities(), false);

  // Seeds round-robin (shuffled first so the deal is unbiased).
  EntityPairList shuffled = seeds;
  rng.Shuffle(shuffled);
  for (size_t i = 0; i < shuffled.size(); ++i) {
    const int32_t b = static_cast<int32_t>(i % k);
    const EntityPair& p = shuffled[i];
    if (source_used[p.source] || target_used[p.target]) continue;
    batches[b].source_entities.push_back(p.source);
    batches[b].target_entities.push_back(p.target);
    batches[b].seeds.push_back(p);
    source_used[p.source] = true;
    target_used[p.target] = true;
  }

  // Remaining entities uniformly at random.
  for (EntityId e = 0; e < source.num_entities(); ++e) {
    if (!source_used[e]) {
      batches[rng.Uniform(k)].source_entities.push_back(e);
    }
  }
  for (EntityId e = 0; e < target.num_entities(); ++e) {
    if (!target_used[e]) {
      batches[rng.Uniform(k)].target_entities.push_back(e);
    }
  }
  return batches;
}

}  // namespace largeea
