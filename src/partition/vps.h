// VPS — the vanilla (random) partition strategy from Section 2.2.1.
//
// Seeds are dealt into the K batches round-robin (both endpoints of each
// seed pair stay together, so every batch gets an equal share of training
// signal); all remaining entities are then assigned uniformly at random.
// O(|Es| + |Et|) time and space, but it ignores graph structure entirely.
#ifndef LARGEEA_PARTITION_VPS_H_
#define LARGEEA_PARTITION_VPS_H_

#include <cstdint>

#include "src/partition/mini_batch.h"

namespace largeea {

struct VpsOptions {
  int32_t num_batches = 5;
  uint64_t seed = 1;
};

/// Generates K mini-batches with VPS. `seeds` is the seed alignment ψ'
/// (train pairs, possibly augmented with pseudo seeds).
MiniBatchSet VpsPartition(const KnowledgeGraph& source,
                          const KnowledgeGraph& target,
                          const EntityPairList& seeds,
                          const VpsOptions& options);

}  // namespace largeea

#endif  // LARGEEA_PARTITION_VPS_H_
