#include "src/partition/metis_cps.h"

#include <algorithm>
#include <vector>

#include "src/common/macros.h"
#include "src/common/rng.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rt/fault_injection.h"

namespace largeea {
namespace {

// Greedy maximum matching of source parts to target parts by shared seed
// count: repeatedly take the unused (i, j) pair with the largest count.
std::vector<int32_t> PairPartsBySeeds(
    const std::vector<std::vector<int64_t>>& seed_counts, int32_t k) {
  struct Cell {
    int64_t count;
    int32_t i;
    int32_t j;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(k) * k);
  for (int32_t i = 0; i < k; ++i) {
    for (int32_t j = 0; j < k; ++j) {
      cells.push_back(Cell{seed_counts[i][j], i, j});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  std::vector<int32_t> source_to_target(k, -1);
  std::vector<bool> target_used(k, false);
  int32_t matched = 0;
  for (const Cell& c : cells) {
    if (matched == k) break;
    if (source_to_target[c.i] != -1 || target_used[c.j]) continue;
    source_to_target[c.i] = c.j;
    target_used[c.j] = true;
    ++matched;
  }
  return source_to_target;
}

}  // namespace

namespace {

// One randomised partition attempt (see MetisCpsOptions::max_attempts).
MiniBatchSet PartitionAttempt(const KnowledgeGraph& source,
                              const KnowledgeGraph& target,
                              const EntityPairList& seeds,
                              const MetisCpsOptions& options,
                              MetisCpsReport* report) {
  const int32_t k = options.num_batches;
  LARGEEA_CHECK_GE(k, 1);
  LARGEEA_CHECK_GT(options.high_weight, 1);
  Rng rng(options.seed);

  // --- Step 1: METIS on the source KG. ---
  MetisOptions source_metis = options.metis;
  source_metis.num_parts = k;
  source_metis.seed = rng.Next();
  obs::Span source_span("partition/metis_source");
  const CsrGraph source_graph = source.ToUndirectedGraph();
  PartitionResult source_part = MetisPartition(source_graph, source_metis);
  source_span.End();

  // --- Step 2: L_t^i — target counterparts per source part. ---
  // seed_group[t] = source part of the seed pair whose target is t,
  // -1 for non-seed target entities.
  std::vector<int32_t> seed_group(target.num_entities(), -1);
  std::vector<std::vector<EntityId>> groups(k);
  for (const EntityPair& p : seeds) {
    const int32_t part = source_part.assignment[p.source];
    seed_group[p.target] = part;
    groups[part].push_back(p.target);
  }

  // --- Steps 3-4: reweight the target graph. ---
  obs::Span reweight_span("partition/reweight_target");
  std::vector<WeightedEdge> target_edges;
  target_edges.reserve(target.triples().size() +
                       static_cast<size_t>(seeds.size()));
  for (const Triple& t : target.triples()) {
    if (t.head == t.tail) continue;
    int64_t w = 1;
    const int32_t gh = seed_group[t.head];
    const int32_t gt = seed_group[t.tail];
    if (gh != -1 && gt != -1) {
      if (gh == gt) {
        // Inside a phase-1 group: glue hard.
        if (options.enable_phase1) w = options.high_weight;
      } else {
        // Phase 2: joining seeds of different source parts is free to cut.
        if (options.enable_phase2) w = 0;
      }
    }
    target_edges.push_back(WeightedEdge{t.head, t.tail, w});
  }
  if (options.enable_phase1) {
    for (int32_t part = 0; part < k; ++part) {
      std::vector<EntityId>& members = groups[part];
      if (members.size() < 2) continue;
      rng.Shuffle(members);
      const int32_t q = std::min<int32_t>(
          options.hubs_per_group, static_cast<int32_t>(members.size()));
      for (int32_t h = 0; h < q; ++h) {
        const EntityId hub = members[h];
        for (const EntityId m : members) {
          if (m == hub) continue;
          // Virtual edge; FromEdges merges it with any real edge by
          // summing, which keeps the weight >= w' either way.
          target_edges.push_back(WeightedEdge{hub, m, options.high_weight});
        }
      }
    }
  }

  reweight_span.End();

  // --- Step 5: METIS on the reweighted target graph. ---
  MetisOptions target_metis = options.metis;
  target_metis.num_parts = k;
  target_metis.seed = rng.Next();
  obs::Span target_span("partition/metis_target");
  const CsrGraph target_graph =
      CsrGraph::FromEdges(target.num_entities(), target_edges);
  PartitionResult target_part = MetisPartition(target_graph, target_metis);
  target_span.End();

  // --- Step 6: pair parts by shared seed count. ---
  LARGEEA_TRACE_SPAN("partition/pair_parts");
  std::vector<std::vector<int64_t>> seed_counts(
      k, std::vector<int64_t>(k, 0));
  for (const EntityPair& p : seeds) {
    ++seed_counts[source_part.assignment[p.source]]
                 [target_part.assignment[p.target]];
  }
  const std::vector<int32_t> source_to_target = PairPartsBySeeds(seed_counts, k);

  MiniBatchSet batches(k);
  std::vector<int32_t> target_part_to_batch(k, -1);
  for (int32_t i = 0; i < k; ++i) {
    target_part_to_batch[source_to_target[i]] = i;
  }
  for (EntityId e = 0; e < source.num_entities(); ++e) {
    batches[source_part.assignment[e]].source_entities.push_back(e);
  }
  for (EntityId e = 0; e < target.num_entities(); ++e) {
    batches[target_part_to_batch[target_part.assignment[e]]]
        .target_entities.push_back(e);
  }
  for (const EntityPair& p : seeds) {
    const int32_t bs = source_part.assignment[p.source];
    const int32_t bt = target_part_to_batch[target_part.assignment[p.target]];
    if (bs == bt) batches[bs].seeds.push_back(p);
  }

  if (report != nullptr) {
    report->source_edge_cut = source_part.edge_cut;
    report->target_edge_cut = target_part.edge_cut;
    report->source_edge_cut_rate =
        EdgeCutRate(source_graph, source_part.assignment);
    // For the edge-cut *rate* we care about real KG edges, not virtual
    // ones, so recompute on the unweighted projection.
    report->target_edge_cut_rate =
        EdgeCutRate(target.ToUndirectedGraph(), target_part.assignment);
  }
  return batches;
}

}  // namespace

StatusOr<MiniBatchSet> MetisCpsPartition(const KnowledgeGraph& source,
                                         const KnowledgeGraph& target,
                                         const EntityPairList& seeds,
                                         const MetisCpsOptions& options,
                                         MetisCpsReport* report) {
  LARGEEA_INJECT_FAULT("partition.metis_cps");
  const int32_t attempts = std::max(options.max_attempts, 1);
  LARGEEA_TRACE_SPAN("partition/metis_cps");
  auto& registry = obs::MetricsRegistry::Get();
  MiniBatchSet best;
  MetisCpsReport best_report;
  size_t best_captured = 0;
  bool have_best = false;
  for (int32_t attempt = 0; attempt < attempts; ++attempt) {
    MetisCpsOptions attempt_options = options;
    attempt_options.seed =
        options.seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt);
    obs::Span attempt_span("partition/attempt");
    attempt_span.AddAttr("attempt", static_cast<int64_t>(attempt));
    MetisCpsReport attempt_report;
    MiniBatchSet batches = PartitionAttempt(source, target, seeds,
                                            attempt_options, &attempt_report);
    size_t captured = 0;
    for (const MiniBatch& b : batches) captured += b.seeds.size();
    attempt_span.AddAttr("captured_seeds", static_cast<int64_t>(captured));
    registry.GetCounter("partition.attempts").Increment();
    LARGEEA_LOG_DEBUG("METIS-CPS attempt %d captured %zu/%zu seeds",
                      attempt, captured, seeds.size());
    if (!have_best || captured > best_captured) {
      best = std::move(batches);
      best_report = attempt_report;
      best_captured = captured;
      have_best = true;
    }
    if (!seeds.empty() &&
        static_cast<double>(best_captured) >=
            0.9 * static_cast<double>(seeds.size())) {
      break;
    }
  }
  if (!seeds.empty()) {
    registry.GetGauge("partition.seed_retention")
        .Set(static_cast<double>(best_captured) /
             static_cast<double>(seeds.size()));
  }
  if (report != nullptr) *report = best_report;
  return best;
}

}  // namespace largeea
