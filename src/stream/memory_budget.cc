#include "src/stream/memory_budget.h"

#include <algorithm>

#include "src/common/memory_tracker.h"
#include "src/obs/metrics.h"

namespace largeea::stream {

namespace {
constexpr int64_t kBytesPerMb = int64_t{1} << 20;
}  // namespace

MemoryBudget::MemoryBudget(const StreamOptions& options)
    : budget_bytes_(options.memory_budget_mb > 0
                        ? options.memory_budget_mb * kBytesPerMb
                        : 0),
      requested_tile_rows_(options.tile_rows) {}

int64_t MemoryBudget::TileRowsFor(int64_t total_rows, int64_t row_bytes) const {
  if (total_rows <= 0) return 1;
  if (requested_tile_rows_ > 0) {
    return std::min<int64_t>(requested_tile_rows_, total_rows);
  }
  if (!enabled() || row_bytes <= 0) return total_rows;
  int64_t rows = budget_bytes_ / kAutoTilesPerBudget / row_bytes;
  rows = std::max(rows, kMinTileRows);
  return std::min(rows, total_rows);
}

int64_t MemoryBudget::CacheCapacityBytes(int64_t tile_bytes) const {
  const int64_t floor = 3 * std::max<int64_t>(tile_bytes, 1);
  if (!enabled()) return floor;
  // The cache's own resident tiles are tracked too, so headroom is what
  // the budget leaves over everything *else*; callers recompute this on
  // every eviction pass, which makes the cache shrink as the pipeline's
  // other buffers grow.
  const int64_t headroom =
      budget_bytes_ - MemoryTracker::Get().CurrentBytes() + tile_bytes;
  return std::max(floor, headroom);
}

void MemoryBudget::ReportCompliance(int64_t peak_bytes) const {
  auto& metrics = obs::MetricsRegistry::Get();
  metrics.GetGauge("stream.budget.bytes")
      .Set(static_cast<double>(budget_bytes_));
  metrics.GetGauge("stream.budget.peak_bytes")
      .Set(static_cast<double>(peak_bytes));
  metrics.GetGauge("stream.budget.compliant")
      .Set(!enabled() || peak_bytes <= budget_bytes_ ? 1.0 : 0.0);
}

}  // namespace largeea::stream
