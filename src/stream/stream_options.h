// Configuration of the memory-budgeted streaming execution layer.
//
// A pipeline run with a positive memory budget streams its whole-graph
// dense buffers (semantic embeddings) through a disk-backed TileStore
// and fuses its sparse matrices block-by-block, releasing inputs as they
// are consumed, so the MemoryTracker peak stays under the budget at any
// dataset scale. Results are bit-identical to the in-memory path — the
// budget only moves bytes between RAM and disk (DESIGN.md §10).
#ifndef LARGEEA_STREAM_STREAM_OPTIONS_H_
#define LARGEEA_STREAM_STREAM_OPTIONS_H_

#include <cstdint>
#include <string>

namespace largeea::stream {

/// Knobs of the streaming layer. Part of LargeEaOptions (and of the
/// unified Config); covered by the checkpoint configuration fingerprint
/// so `--resume` never mixes tile layouts across budgets.
struct StreamOptions {
  /// Tracked-memory budget in MiB. 0 disables streaming (the in-memory
  /// path); -1 means "unset" — consult LARGEEA_MEMORY_BUDGET_MB, then
  /// fall back to disabled. CLI: --memory-budget-mb.
  int64_t memory_budget_mb = -1;
  /// Rows per dense tile; 0 derives a size from the budget so that
  /// several tiles fit comfortably (see MemoryBudget::TileRowsFor).
  int32_t tile_rows = 0;
  /// Directory for spilled tiles; empty creates (and removes) a unique
  /// directory under the system temp path.
  std::string spill_dir;
  /// Prefetch the next tile on the background worker while the current
  /// block computes.
  bool prefetch = true;
  /// Release whole-graph intermediates (M_se, M_st, the per-channel
  /// matrices) as soon as they are fused; the corresponding result
  /// fields come back empty. Off keeps them, trading budget headroom
  /// for inspectability.
  bool release_inputs = true;
};

/// Applies the environment default: an unset budget (-1) resolves to
/// LARGEEA_MEMORY_BUDGET_MB when that holds a non-negative integer, else
/// to 0 (disabled). Idempotent; every consumer of StreamOptions
/// (pipeline, fingerprint, Config) resolves before use so they can never
/// disagree about whether a run streams.
StreamOptions ResolveStreamOptions(StreamOptions options);

/// True when `options` (already resolved) enables streaming.
inline bool StreamingEnabled(const StreamOptions& options) {
  return options.memory_budget_mb > 0;
}

}  // namespace largeea::stream

#endif  // LARGEEA_STREAM_STREAM_OPTIONS_H_
