// Per-run handle bundling the streaming layer's pieces.
//
// RunLargeEa creates one StreamContext when the resolved memory budget
// is positive and threads it (as a nullable pointer) through the phases
// that know how to stream — semantic top-k, NFF fusion, final fusion. A
// null context means "run in memory", so call sites stay byte-for-byte
// on the historical path when streaming is off.
#ifndef LARGEEA_STREAM_STREAM_CONTEXT_H_
#define LARGEEA_STREAM_STREAM_CONTEXT_H_

#include "src/stream/memory_budget.h"
#include "src/stream/stream_options.h"
#include "src/stream/tile_store.h"

namespace largeea::stream {

/// Owns the budget and the spill store for one pipeline run. The
/// options must already be resolved (ResolveStreamOptions) and enabled.
class StreamContext {
 public:
  explicit StreamContext(const StreamOptions& resolved)
      : options_(resolved),
        budget_(resolved),
        store_(budget_, resolved.spill_dir) {}

  const StreamOptions& options() const { return options_; }
  const MemoryBudget& budget() const { return budget_; }
  TileStore& store() { return store_; }

 private:
  StreamOptions options_;
  MemoryBudget budget_;
  TileStore store_;
};

}  // namespace largeea::stream

#endif  // LARGEEA_STREAM_STREAM_CONTEXT_H_
