#include "src/stream/stream_options.h"

#include <cstdlib>

namespace largeea::stream {

StreamOptions ResolveStreamOptions(StreamOptions options) {
  if (options.memory_budget_mb >= 0) return options;
  options.memory_budget_mb = 0;
  if (const char* env = std::getenv("LARGEEA_MEMORY_BUDGET_MB")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      options.memory_budget_mb = parsed;
    }
  }
  return options;
}

}  // namespace largeea::stream
