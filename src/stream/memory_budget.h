// Memory budget arithmetic for the streaming layer.
//
// A MemoryBudget translates the user-facing `--memory-budget-mb` into
// the two numbers the TileStore needs: how many rows a dense tile may
// hold, and how many bytes the LRU cache may keep resident. Both are
// derived against the *live* MemoryTracker total, so the budget bounds
// the whole process, not just the tiles.
#ifndef LARGEEA_STREAM_MEMORY_BUDGET_H_
#define LARGEEA_STREAM_MEMORY_BUDGET_H_

#include <cstdint>

#include "src/stream/stream_options.h"

namespace largeea::stream {

/// Byte-level view of a resolved StreamOptions budget. Copyable; all
/// methods are cheap and thread-safe (they read the global
/// MemoryTracker, which is internally synchronised).
class MemoryBudget {
 public:
  explicit MemoryBudget(const StreamOptions& options);

  /// Total budget in bytes (0 when streaming is disabled).
  int64_t budget_bytes() const { return budget_bytes_; }

  /// True when a positive budget is set.
  bool enabled() const { return budget_bytes_ > 0; }

  /// Rows per tile for a dense matrix of `total_rows` x `row_bytes`.
  /// Honours the explicit `tile_rows` option when positive; otherwise
  /// sizes tiles so ~kAutoTilesPerBudget of them fit in the budget,
  /// clamped to [kMinTileRows, total_rows]. Always >= 1.
  int64_t TileRowsFor(int64_t total_rows, int64_t row_bytes) const;

  /// Bytes the tile cache may keep resident right now: the budget minus
  /// the currently tracked bytes of everything else, floored at
  /// 3 * `tile_bytes` so compute (current tile + prefetched next +
  /// one in flight) can always make progress even when the rest of the
  /// pipeline has eaten the budget.
  int64_t CacheCapacityBytes(int64_t tile_bytes) const;

  /// Records `peak_bytes` (the pipeline's observed tracked peak)
  /// against the budget in the stream.budget.* gauges (peak, budget,
  /// compliant). Call once per pipeline run, after the streamed phases.
  void ReportCompliance(int64_t peak_bytes) const;

  /// Auto tile sizing targets this many tiles per budget.
  static constexpr int64_t kAutoTilesPerBudget = 16;
  /// Never shrink auto tiles below this many rows.
  static constexpr int64_t kMinTileRows = 64;

 private:
  int64_t budget_bytes_ = 0;
  int32_t requested_tile_rows_ = 0;
};

}  // namespace largeea::stream

#endif  // LARGEEA_STREAM_MEMORY_BUDGET_H_
