#include "src/stream/tile_store.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include <filesystem>
#include <string_view>
#include <utility>

#include "src/common/macros.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/rt/fault_injection.h"
#include "src/rt/io_util.h"

namespace largeea::stream {

namespace {

constexpr std::string_view kTileMagic = "largeea-tile v1";

std::string SerializeTile(const Matrix& tile, uint64_t* payload_hash) {
  const size_t payload_bytes =
      static_cast<size_t>(tile.size()) * sizeof(float);
  std::string_view payload(reinterpret_cast<const char*>(tile.data()),
                           payload_bytes);
  *payload_hash = rt::Fnv1a64(payload);
  char header[128];
  const int n = std::snprintf(
      header, sizeof(header),
      "%s %" PRId64 " %" PRId64 " %zu %016" PRIx64 "\n",
      kTileMagic.data(), tile.rows(), tile.cols(), payload_bytes,
      *payload_hash);
  LARGEEA_CHECK(n > 0 && n < static_cast<int>(sizeof(header)));
  std::string blob;
  blob.reserve(static_cast<size_t>(n) + payload_bytes);
  blob.append(header, static_cast<size_t>(n));
  blob.append(payload);
  return blob;
}

std::string UniqueSpillDir() {
  static std::atomic<int64_t> counter{0};
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = ".";
  char name[64];
  std::snprintf(name, sizeof(name), "largeea-tiles-%d-%" PRId64,
                static_cast<int>(::getpid()),
                counter.fetch_add(1));
  return (base / name).string();
}

}  // namespace

TileStore::TileStore(const MemoryBudget& budget, std::string spill_dir)
    : budget_(budget), spill_dir_(std::move(spill_dir)) {
  if (spill_dir_.empty()) {
    spill_dir_ = UniqueSpillDir();
    owns_dir_ = true;
  }
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  // A failing mkdir surfaces as per-tile spill failures (tiles then stay
  // pinned in RAM), so it is not fatal here.
}

TileStore::~TileStore() {
  (void)prefetcher_.Drain();
  std::error_code ec;
  for (const Tile& tile : tiles_) {
    if (tile.on_disk) std::filesystem::remove(tile.path, ec);
  }
  if (owns_dir_) std::filesystem::remove(spill_dir_, ec);
}

TileId TileStore::Put(Matrix tile) {
  TileId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = static_cast<TileId>(tiles_.size());
    tiles_.emplace_back();
  }
  char file[32];
  std::snprintf(file, sizeof(file), "tile-%06" PRId64 ".bin", id);
  const std::string path =
      (std::filesystem::path(spill_dir_) / file).string();

  obs::Span span("stream/spill");
  span.AddAttr("tile", id);
  uint64_t hash = 0;
  // Tile IO bytes are the actual blob size (header + payload), so a
  // profile's stream.tile_write GB/s is real disk write throughput.
  obs::ProfileScope prof("stream.tile_write");
  const std::string blob = SerializeTile(tile, &hash);
  prof.AddBytes(tile.size() * static_cast<int64_t>(sizeof(float)),
                static_cast<int64_t>(blob.size()));
  // The named fault point simulates a full scratch disk: a failed spill
  // write leaves the tile pinned in RAM (on_disk=false below), which
  // breaks the budget but never the results.
  const Status write_status = [&]() -> Status {
    LARGEEA_INJECT_FAULT("stream.spill.write");
    return rt::AtomicallyWriteFile(path, blob);
  }();
  span.End();

  auto& metrics = obs::MetricsRegistry::Get();
  const int64_t bytes = tile.size() * static_cast<int64_t>(sizeof(float));

  std::lock_guard<std::mutex> lock(mu_);
  Tile& t = tiles_[id];
  t.path = path;
  t.rows = tile.rows();
  t.cols = tile.cols();
  t.resident = std::make_shared<const Matrix>(std::move(tile));
  t.on_disk = write_status.ok();
  t.lru = ++lru_clock_;
  resident_bytes_ += bytes;
  if (bytes > max_tile_bytes_) max_tile_bytes_ = bytes;
  if (t.on_disk) {
    metrics.GetCounter("stream.spill.tiles").Increment();
    metrics.GetCounter("stream.spill.bytes").Add(static_cast<int64_t>(blob.size()));
  } else {
    metrics.GetCounter("stream.spill_failures").Increment();
  }
  EvictLocked();
  return id;
}

std::shared_ptr<const Matrix> TileStore::Get(TileId id) {
  std::unique_lock<std::mutex> lock(mu_);
  LARGEEA_CHECK_GE(id, 0);
  LARGEEA_CHECK_LT(id, static_cast<TileId>(tiles_.size()));
  Tile& t = tiles_[id];
  auto& metrics = obs::MetricsRegistry::Get();
  while (true) {
    if (t.resident) {
      metrics.GetCounter("stream.cache.hits").Increment();
      t.lru = ++lru_clock_;
      return t.resident;
    }
    if (!t.loading) break;
    // Another thread (usually the prefetcher) is reading this tile;
    // piggy-back on its load instead of issuing a second read.
    load_cv_.wait(lock);
  }
  metrics.GetCounter("stream.cache.misses").Increment();
  t.loading = true;
  lock.unlock();

  obs::Span span("stream/load");
  span.AddAttr("tile", id);
  auto loaded = std::make_shared<const Matrix>(LoadTileFile(t));
  metrics.GetHistogram("stream.load_ms").Observe(span.End() * 1e3);

  const int64_t bytes = loaded->size() * static_cast<int64_t>(sizeof(float));
  lock.lock();
  t.loading = false;
  t.resident = loaded;
  t.lru = ++lru_clock_;
  resident_bytes_ += bytes;
  EvictLocked();
  load_cv_.notify_all();
  return loaded;
}

void TileStore::Prefetch(TileId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LARGEEA_CHECK_GE(id, 0);
    LARGEEA_CHECK_LT(id, static_cast<TileId>(tiles_.size()));
    const Tile& t = tiles_[id];
    if (t.resident || t.loading || !t.on_disk) return;
  }
  obs::MetricsRegistry::Get().GetCounter("stream.prefetch.issued").Increment();
  // The loaded tile lands in the cache; the value is dropped here and
  // picked up by the consumer's Get(), which counts as a hit.
  const Status submitted =
      prefetcher_.Submit([this, id] { (void)Get(id); });
  if (!submitted.ok()) {
    // A failed earlier prefetch costs its cache miss; nothing to do but
    // make the loss visible.
    LARGEEA_LOG_WARN("stream: %s", submitted.ToString().c_str());
  }
}

void TileStore::DrainPrefetches() {
  const Status drained = prefetcher_.Drain();
  if (!drained.ok()) {
    LARGEEA_LOG_WARN("stream: %s", drained.ToString().c_str());
  }
}

int64_t TileStore::num_tiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tiles_.size());
}

int64_t TileStore::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

void TileStore::EvictLocked() {
  const int64_t capacity = budget_.CacheCapacityBytes(max_tile_bytes_);
  auto& evictions = obs::MetricsRegistry::Get().GetCounter("stream.cache.evictions");
  while (resident_bytes_ > capacity) {
    Tile* victim = nullptr;
    for (Tile& t : tiles_) {
      // Only unpinned on-disk tiles are evictable; a use_count above 1
      // means a caller still holds the pin from Get().
      if (!t.resident || !t.on_disk || t.resident.use_count() > 1) continue;
      if (victim == nullptr || t.lru < victim->lru) victim = &t;
    }
    if (victim == nullptr) return;  // everything resident is pinned
    resident_bytes_ -=
        victim->resident->size() * static_cast<int64_t>(sizeof(float));
    victim->resident.reset();
    evictions.Increment();
  }
}

Matrix TileStore::LoadTileFile(const Tile& tile) const {
  obs::ProfileScope prof("stream.tile_read");
  StatusOr<std::string> blob = rt::ReadFileToString(tile.path);
  if (!blob.ok()) {
    std::fprintf(stderr, "stream: cannot reload tile %s: %s\n",
                 tile.path.c_str(), blob.status().ToString().c_str());
    LARGEEA_CHECK(blob.ok());
  }
  const std::string& data = *blob;
  const size_t header_end = data.find('\n');
  LARGEEA_CHECK(header_end != std::string::npos);

  int64_t rows = 0;
  int64_t cols = 0;
  size_t payload_bytes = 0;
  uint64_t stored_hash = 0;
  char magic[32] = {0};
  char version[16] = {0};
  const int fields = std::sscanf(
      data.c_str(), "%31s %15s %" SCNd64 " %" SCNd64 " %zu %" SCNx64,
      magic, version, &rows, &cols, &payload_bytes, &stored_hash);
  LARGEEA_CHECK_EQ(fields, 6);
  LARGEEA_CHECK(std::string(magic) + " " + version == kTileMagic);
  LARGEEA_CHECK_EQ(rows, tile.rows);
  LARGEEA_CHECK_EQ(cols, tile.cols);
  LARGEEA_CHECK_EQ(data.size() - header_end - 1, payload_bytes);
  LARGEEA_CHECK_EQ(payload_bytes,
                   static_cast<size_t>(rows * cols) * sizeof(float));

  std::string_view payload(data.data() + header_end + 1, payload_bytes);
  LARGEEA_CHECK_EQ(rt::Fnv1a64(payload), stored_hash);  // DATA_LOSS

  prof.AddBytes(static_cast<int64_t>(data.size()),
                static_cast<int64_t>(payload_bytes));
  Matrix m(rows, cols);
  std::memcpy(m.data(), payload.data(), payload_bytes);
  return m;
}

TileMatrix::TileMatrix(TileStore* store, int64_t rows, int64_t cols,
                       int64_t tile_rows)
    : store_(store), rows_(rows), cols_(cols), tile_rows_(tile_rows) {
  LARGEEA_CHECK(store != nullptr);
  LARGEEA_CHECK_GE(rows, 0);
  LARGEEA_CHECK_GE(cols, 0);
  LARGEEA_CHECK_GT(tile_rows, 0);
  ids_.reserve(static_cast<size_t>(num_tiles()));
}

void TileMatrix::Append(Matrix tile) {
  const int64_t t = static_cast<int64_t>(ids_.size());
  LARGEEA_CHECK_LT(t, num_tiles());
  LARGEEA_CHECK_EQ(tile.rows(), TileEnd(t) - TileBegin(t));
  LARGEEA_CHECK_EQ(tile.cols(), cols_);
  ids_.push_back(store_->Put(std::move(tile)));
}

std::shared_ptr<const Matrix> TileMatrix::Tile(int64_t t) const {
  LARGEEA_CHECK_GE(t, 0);
  LARGEEA_CHECK_LT(t, static_cast<int64_t>(ids_.size()));
  return store_->Get(ids_[t]);
}

void TileMatrix::Prefetch(int64_t t) const {
  if (t < 0 || t >= static_cast<int64_t>(ids_.size())) return;
  store_->Prefetch(ids_[t]);
}

}  // namespace largeea::stream
