// Disk-backed tile storage with an LRU cache and async prefetch.
//
// The TileStore is the mechanism behind `--memory-budget-mb`: a dense
// matrix too large for the budget is cut into fixed-size row tiles,
// each spilled to disk once (checksummed, atomically written with the
// checkpoint plumbing from src/rt/) and re-loaded on demand through an
// LRU cache whose capacity follows the live MemoryBudget headroom.
// Sequential consumers overlap I/O with compute by prefetching the next
// tile on a background worker (src/par/background_worker.h).
//
// Determinism: a tile's bytes are written once at Put() and never
// change, so where a tile currently lives (RAM vs disk) cannot affect
// any computed value — the streamed path is bit-identical to the
// in-memory path by construction (DESIGN.md §10).
//
// Tile file format (version "largeea-tile v1"):
//   largeea-tile v1 <rows> <cols> <payload_bytes> <fnv1a64-hex>\n
//   <rows*cols little-endian IEEE-754 floats>
// The checksum covers the payload; a mismatch at load is DATA_LOSS and
// aborts (a silently corrupt tile would poison a deterministic run).
#ifndef LARGEEA_STREAM_TILE_STORE_H_
#define LARGEEA_STREAM_TILE_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/la/matrix.h"
#include "src/par/background_worker.h"
#include "src/stream/memory_budget.h"

namespace largeea::stream {

/// Index of a tile within its TileStore, assigned by Put() in order.
using TileId = int64_t;

/// Spill/reload store for dense matrix tiles. All methods are
/// thread-safe; Get() may be called concurrently with Put() and with
/// the background prefetcher.
class TileStore {
 public:
  /// `spill_dir` empty creates a unique "largeea-tiles-*" directory
  /// under the system temp path, removed (with all tiles) at
  /// destruction. A caller-provided directory is created if missing but
  /// only the tile files themselves are removed.
  explicit TileStore(const MemoryBudget& budget, std::string spill_dir = "");

  /// Drains the prefetcher and deletes the spilled tile files.
  ~TileStore();

  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  /// Spills `tile` to disk and registers it, returning its id. The tile
  /// stays resident in the cache (subject to eviction). If the spill
  /// write fails the tile is pinned in RAM instead — the pipeline
  /// degrades to the in-memory footprint rather than losing data
  /// (counted as stream.spill_failures).
  TileId Put(Matrix tile);

  /// Returns the tile, loading it from disk if evicted. The returned
  /// pointer pins the tile: the cache never evicts a tile a caller
  /// still holds.
  std::shared_ptr<const Matrix> Get(TileId id);

  /// Starts loading the tile on the background worker if it is on disk
  /// and not already resident or loading. Never blocks.
  void Prefetch(TileId id);

  /// Blocks until outstanding prefetches finish (test hook).
  void DrainPrefetches();

  int64_t num_tiles() const;
  /// Bytes of tile payload currently resident in the cache.
  int64_t ResidentBytes() const;
  const std::string& spill_dir() const { return spill_dir_; }
  const MemoryBudget& budget() const { return budget_; }

 private:
  struct Tile {
    std::string path;
    int64_t rows = 0;
    int64_t cols = 0;
    std::shared_ptr<const Matrix> resident;
    bool on_disk = false;  ///< spill succeeded; tile may be evicted
    bool loading = false;  ///< a thread is reading it from disk
    int64_t lru = 0;       ///< last-touch stamp from lru_clock_
  };

  /// Evicts least-recently-used unpinned on-disk tiles until resident
  /// bytes fit CacheCapacityBytes(). Requires mu_ held.
  void EvictLocked();

  /// Reads and verifies one tile file. Aborts on corruption.
  Matrix LoadTileFile(const Tile& tile) const;

  const MemoryBudget budget_;
  std::string spill_dir_;
  bool owns_dir_ = false;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;  ///< signalled when a load finishes
  // deque: Put() must not invalidate Tile references that Get() holds
  // across the load (done outside the lock).
  std::deque<Tile> tiles_;
  int64_t lru_clock_ = 0;
  int64_t resident_bytes_ = 0;
  int64_t max_tile_bytes_ = 0;

  par::BackgroundWorker prefetcher_{"stream/prefetch"};
};

/// A logical `rows` x `cols` matrix stored as consecutive row tiles in
/// a TileStore. Tiles are appended in row order; all tiles span
/// `tile_rows` rows except possibly the last. Not thread-safe during
/// Append; read access (Tile/Prefetch) is as thread-safe as the store.
class TileMatrix {
 public:
  TileMatrix() = default;
  TileMatrix(TileStore* store, int64_t rows, int64_t cols, int64_t tile_rows);

  /// Spills the next tile. Must cover rows [TileBegin(n), TileEnd(n))
  /// for the current tile count n — enforced by shape checks.
  void Append(Matrix tile);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t tile_rows() const { return tile_rows_; }
  int64_t num_tiles() const {
    return rows_ == 0 ? 0 : (rows_ + tile_rows_ - 1) / tile_rows_;
  }
  /// True once every tile has been appended.
  bool complete() const {
    return static_cast<int64_t>(ids_.size()) == num_tiles();
  }

  int64_t TileBegin(int64_t t) const { return t * tile_rows_; }
  int64_t TileEnd(int64_t t) const {
    const int64_t end = (t + 1) * tile_rows_;
    return end < rows_ ? end : rows_;
  }

  /// Pins and returns tile `t`.
  std::shared_ptr<const Matrix> Tile(int64_t t) const;
  /// Hints that tile `t` is needed soon (no-op out of range).
  void Prefetch(int64_t t) const;

 private:
  TileStore* store_ = nullptr;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t tile_rows_ = 1;
  std::vector<TileId> ids_;
};

}  // namespace largeea::stream

#endif  // LARGEEA_STREAM_TILE_STORE_H_
