#include "src/graph/csr_graph.h"

#include <algorithm>
#include <numeric>

#include "src/common/macros.h"

namespace largeea {

CsrGraph CsrGraph::FromEdges(int32_t num_vertices,
                             std::span<const WeightedEdge> edges) {
  LARGEEA_CHECK_GE(num_vertices, 0);
  // Count directed half-edges per vertex (self-loops dropped).
  std::vector<int64_t> counts(num_vertices + 1, 0);
  for (const WeightedEdge& e : edges) {
    LARGEEA_CHECK_GE(e.u, 0);
    LARGEEA_CHECK_LT(e.u, num_vertices);
    LARGEEA_CHECK_GE(e.v, 0);
    LARGEEA_CHECK_LT(e.v, num_vertices);
    if (e.u == e.v) continue;
    ++counts[e.u + 1];
    ++counts[e.v + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  CsrGraph g;
  g.offsets_ = counts;  // will stay valid: we fill via a cursor copy
  g.targets_.resize(static_cast<size_t>(counts[num_vertices]));
  g.edge_weights_.resize(g.targets_.size());
  std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    g.targets_[cursor[e.u]] = e.v;
    g.edge_weights_[cursor[e.u]++] = e.weight;
    g.targets_[cursor[e.v]] = e.u;
    g.edge_weights_[cursor[e.v]++] = e.weight;
  }

  // Sort each adjacency list and merge parallel edges by summing weights.
  std::vector<int64_t> new_offsets(num_vertices + 1, 0);
  std::vector<int32_t> merged_targets;
  std::vector<int64_t> merged_weights;
  merged_targets.reserve(g.targets_.size());
  merged_weights.reserve(g.targets_.size());
  std::vector<std::pair<int32_t, int64_t>> scratch;
  for (int32_t v = 0; v < num_vertices; ++v) {
    scratch.clear();
    for (int64_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      scratch.emplace_back(g.targets_[i], g.edge_weights_[i]);
    }
    std::sort(scratch.begin(), scratch.end());
    for (size_t i = 0; i < scratch.size();) {
      int64_t w = scratch[i].second;
      size_t j = i + 1;
      while (j < scratch.size() && scratch[j].first == scratch[i].first) {
        w += scratch[j].second;
        ++j;
      }
      merged_targets.push_back(scratch[i].first);
      merged_weights.push_back(w);
      i = j;
    }
    new_offsets[v + 1] = static_cast<int64_t>(merged_targets.size());
  }
  g.offsets_ = std::move(new_offsets);
  g.targets_ = std::move(merged_targets);
  g.edge_weights_ = std::move(merged_weights);
  g.vertex_weights_.assign(num_vertices, 1);
  return g;
}

int64_t CsrGraph::TotalVertexWeight() const {
  int64_t total = 0;
  for (const int64_t w : vertex_weights_) total += w;
  return total;
}

int64_t CsrGraph::WeightedDegree(int32_t v) const {
  int64_t total = 0;
  for (const int64_t w : EdgeWeights(v)) total += w;
  return total;
}

int32_t CsrGraph::CountConnectedComponents() const {
  const int32_t n = num_vertices();
  std::vector<bool> visited(n, false);
  std::vector<int32_t> stack;
  int32_t components = 0;
  for (int32_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      for (const int32_t u : Neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace largeea
