// Compressed-sparse-row undirected weighted graph.
//
// This is the representation the multilevel partitioner (src/partition)
// works on. Vertices carry integer weights (coarsened super-vertices
// accumulate them); edges carry integer weights (METIS-CPS manipulates
// these: w' >> 1 for virtual-hub edges, 0 for cross-batch seed edges).
#ifndef LARGEEA_GRAPH_CSR_GRAPH_H_
#define LARGEEA_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace largeea {

/// One endpoint of an undirected weighted edge during graph construction.
struct WeightedEdge {
  int32_t u = 0;
  int32_t v = 0;
  int64_t weight = 1;
};

/// Immutable CSR adjacency structure for an undirected weighted graph.
/// Parallel edges given to the builder are merged by summing weights;
/// self-loops are dropped.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list over vertices [0, num_vertices). Each edge is
  /// stored in both directions. All vertex weights default to 1.
  static CsrGraph FromEdges(int32_t num_vertices,
                            std::span<const WeightedEdge> edges);

  int32_t num_vertices() const {
    return static_cast<int32_t>(offsets_.size()) - 1;
  }
  int64_t num_edges() const {
    return static_cast<int64_t>(targets_.size()) / 2;
  }

  /// Neighbour vertex ids of `v`.
  std::span<const int32_t> Neighbors(int32_t v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Edge weights aligned with Neighbors(v).
  std::span<const int64_t> EdgeWeights(int32_t v) const {
    return {edge_weights_.data() + offsets_[v],
            edge_weights_.data() + offsets_[v + 1]};
  }

  int32_t Degree(int32_t v) const {
    return static_cast<int32_t>(offsets_[v + 1] - offsets_[v]);
  }

  int64_t VertexWeight(int32_t v) const { return vertex_weights_[v]; }
  void SetVertexWeight(int32_t v, int64_t w) { vertex_weights_[v] = w; }

  /// Sum of all vertex weights.
  int64_t TotalVertexWeight() const;

  /// Sum of weights of edges incident to `v`.
  int64_t WeightedDegree(int32_t v) const;

  /// Number of connected components (ignoring edge weights).
  int32_t CountConnectedComponents() const;

 private:
  std::vector<int64_t> offsets_;       // size num_vertices + 1
  std::vector<int32_t> targets_;       // size 2 * num_edges
  std::vector<int64_t> edge_weights_;  // aligned with targets_
  std::vector<int64_t> vertex_weights_;
};

}  // namespace largeea

#endif  // LARGEEA_GRAPH_CSR_GRAPH_H_
