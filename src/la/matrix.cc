#include "src/la/matrix.h"

#include <algorithm>
#include <cmath>

namespace largeea {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::GlorotInit(Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(std::max<int64_t>(rows_ + cols_, 1)));
  for (float& v : data_) {
    v = (2.0f * rng.UniformFloat() - 1.0f) * limit;
  }
}

void Matrix::GaussianInit(Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.Gaussian()) * stddev;
  }
}

}  // namespace largeea
