// Bulk math on dense matrices and rows.
//
// These free functions are the only place the library does dense numeric
// work. The GEMM kernels are cache-blocked and run on the par::ThreadPool
// with deterministic chunking (see src/par/ and DESIGN.md §8): results
// are bit-identical at any thread count. The inner loops route through
// the runtime-dispatched SIMD kernel layer (src/simd/, DESIGN.md §9),
// whose eight-lane accumulation tree is identical in every backend, so
// results are also bit-identical across `--simd scalar/sse2/avx2`.
#ifndef LARGEEA_LA_OPS_H_
#define LARGEEA_LA_OPS_H_

#include <cstdint>

#include "src/la/matrix.h"

namespace largeea {

/// C = A * B. Shapes must agree; C is overwritten.
void Gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T. Shapes must agree; C is overwritten.
void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B. Shapes must agree; C is overwritten.
void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix& c);

/// y += alpha * x, over whole matrices of identical shape.
void Axpy(float alpha, const Matrix& x, Matrix& y);

/// Scales every element of `m` by `alpha`.
void Scale(Matrix& m, float alpha);

/// L2-normalises every row in place: row /= (||row||_2 + epsilon).
/// This is the normalisation NFF applies to semantic name embeddings.
void L2NormalizeRows(Matrix& m, float epsilon = 1e-12f);

/// Element-wise ReLU in place.
void ReluInPlace(Matrix& m);

/// Writes the ReLU derivative mask of `pre` (1 where pre>0) times `grad`
/// into `grad` (in place backward pass helper).
void ReluBackwardInPlace(const Matrix& pre_activation, Matrix& grad);

/// Dot product of two length-`dim` rows.
float Dot(const float* a, const float* b, int64_t dim);

/// L1 (Manhattan) distance between two length-`dim` rows. The paper uses
/// Manhattan distance for both structural and semantic similarity.
float ManhattanDistance(const float* a, const float* b, int64_t dim);

/// L2 norm of a length-`dim` row.
float Norm2(const float* a, int64_t dim);

/// Frobenius norm of the whole matrix.
float FrobeniusNorm(const Matrix& m);

/// Converts a Manhattan distance into a similarity in (0, 1]:
/// sim = 1 / (1 + d). Monotone-decreasing in d, so rankings match.
inline float ManhattanSimilarity(float distance) {
  return 1.0f / (1.0f + distance);
}

}  // namespace largeea

#endif  // LARGEEA_LA_OPS_H_
