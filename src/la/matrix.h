// Dense row-major float matrix used for embeddings and GNN weights.
//
// This is deliberately a small, predictable container — no expression
// templates, no lazy evaluation. All bulk math lives in free functions in
// ops.h so the data layout stays obvious. Storage is 64-byte aligned
// (AlignedBuffer) for the SIMD kernel layer, and buffers register with
// the MemoryTracker so the Table-6 bench can report working-set peaks.
#ifndef LARGEEA_LA_MATRIX_H_
#define LARGEEA_LA_MATRIX_H_

#include <cstdint>
#include <utility>

#include "src/common/macros.h"
#include "src/common/memory_tracker.h"
#include "src/common/rng.h"
#include "src/la/aligned_buffer.h"

namespace largeea {

/// Row-major dense matrix of float. Movable and copyable; copies duplicate
/// the buffer (and its tracker registration).
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A `rows` x `cols` matrix initialised to zero.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows * cols)),
        tracked_(static_cast<int64_t>(data_.size() * sizeof(float))) {
    LARGEEA_CHECK_GE(rows, 0);
    LARGEEA_CHECK_GE(cols, 0);
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(other.data_),
        tracked_(static_cast<int64_t>(data_.size() * sizeof(float))) {}

  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      tracked_.Resize(static_cast<int64_t>(data_.size() * sizeof(float)));
    }
    return *this;
  }

  // Moves reset the source to an empty 0x0 matrix. The defaulted
  // operations used to leave rows_/cols_ nonzero on an empty buffer,
  // breaking the size()/Row() invariants of the moved-from object.
  Matrix(Matrix&& other) noexcept
      : rows_(std::exchange(other.rows_, 0)),
        cols_(std::exchange(other.cols_, 0)),
        data_(std::move(other.data_)),
        tracked_(std::move(other.tracked_)) {}

  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      rows_ = std::exchange(other.rows_, 0);
      cols_ = std::exchange(other.cols_, 0);
      data_ = std::move(other.data_);
      tracked_ = std::move(other.tracked_);
    }
    return *this;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float& At(int64_t r, int64_t c) { return data_[Index(r, c)]; }
  float At(int64_t r, int64_t c) const { return data_[Index(r, c)]; }

  /// Pointer to the start of row `r`.
  float* Row(int64_t r) { return data_.data() + Index(r, 0); }
  const float* Row(int64_t r) const { return data_.data() + Index(r, 0); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Glorot/Xavier-uniform initialisation: U(-limit, limit) with
  /// limit = sqrt(6 / (rows + cols)). Standard for GNN weight matrices.
  void GlorotInit(Rng& rng);

  /// Gaussian initialisation with the given standard deviation.
  void GaussianInit(Rng& rng, float stddev);

 private:
  int64_t Index(int64_t r, int64_t c) const {
    LARGEEA_CHECK_GE(r, 0);
    LARGEEA_CHECK_LT(r, rows_);
    LARGEEA_CHECK_GE(c, 0);
    LARGEEA_CHECK_LT(c, cols_);
    return r * cols_ + c;
  }

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  AlignedBuffer data_;  // 64-byte aligned for the SIMD kernels (§9)
  TrackedAllocation tracked_;
};

/// Non-owning view of a contiguous row range [row_begin, row_end) of a
/// Matrix. Implicitly constructible from a whole Matrix, so APIs can
/// migrate from `const Matrix&` to views without touching call sites.
/// The viewed Matrix must outlive the view (same contract as a span).
class MatrixRowRange {
 public:
  MatrixRowRange(const Matrix& m)  // NOLINT: implicit by design
      : matrix_(&m), row_begin_(0), row_end_(m.rows()) {}

  MatrixRowRange(const Matrix& m, int64_t row_begin, int64_t row_end)
      : matrix_(&m), row_begin_(row_begin), row_end_(row_end) {
    LARGEEA_CHECK_GE(row_begin, 0);
    LARGEEA_CHECK_LE(row_begin, row_end);
    LARGEEA_CHECK_LE(row_end, m.rows());
  }

  int64_t rows() const { return row_end_ - row_begin_; }
  int64_t cols() const { return matrix_->cols(); }

  /// Pointer to view-relative row `r` (row 0 is `row_begin` of the
  /// underlying matrix).
  const float* Row(int64_t r) const { return matrix_->Row(row_begin_ + r); }

  const Matrix& matrix() const { return *matrix_; }
  int64_t row_begin() const { return row_begin_; }

 private:
  const Matrix* matrix_;
  int64_t row_begin_;
  int64_t row_end_;
};

}  // namespace largeea

#endif  // LARGEEA_LA_MATRIX_H_
