// Fixed-size float buffer with 64-byte-aligned storage.
//
// Matrix rows used to live in a std::vector<float>, whose allocation is
// only 16-byte aligned; the SIMD kernel layer (src/simd/, DESIGN.md §9)
// wants the buffer start on a cache-line boundary so whole-matrix
// kernels stream aligned lines and row starts are aligned whenever
// cols is a multiple of 16. The kernels themselves use unaligned loads
// (arbitrary row views can never all be aligned), so alignment here is
// a throughput contract, not a correctness one.
//
// Deliberately minimal: size is fixed at construction (Matrix never
// grows in place), copies duplicate the contents, moves empty the
// source. No tail padding — kernels handle tails explicitly, so the
// buffer never over-allocates and ASan can fence the exact extent.
#ifndef LARGEEA_LA_ALIGNED_BUFFER_H_
#define LARGEEA_LA_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <utility>

namespace largeea {

class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;  // one cache line

  AlignedBuffer() = default;

  /// `size` floats, zero-initialised.
  explicit AlignedBuffer(size_t size) : size_(size), data_(Allocate(size)) {
    if (data_ != nullptr) std::memset(data_, 0, size_ * sizeof(float));
  }

  AlignedBuffer(const AlignedBuffer& other)
      : size_(other.size_), data_(Allocate(other.size_)) {
    if (data_ != nullptr) {
      std::memcpy(data_, other.data_, size_ * sizeof(float));
    }
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) *this = AlignedBuffer(other);  // copy, then move in
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Deallocate(data_);
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }

  ~AlignedBuffer() { Deallocate(data_); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

 private:
  static float* Allocate(size_t size) {
    if (size == 0) return nullptr;
    return static_cast<float*>(::operator new(
        size * sizeof(float), std::align_val_t(kAlignment)));
  }

  static void Deallocate(float* p) {
    if (p != nullptr) {
      ::operator delete(p, std::align_val_t(kAlignment));
    }
  }

  size_t size_ = 0;
  float* data_ = nullptr;
};

}  // namespace largeea

#endif  // LARGEEA_LA_ALIGNED_BUFFER_H_
