#include "src/la/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/common/macros.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/par/parallel_for.h"
#include "src/simd/simd.h"
#include "src/tune/tune_table.h"

namespace largeea {
namespace {

// Logical traffic declarations for the profiler (DESIGN.md §11): each
// operand is counted once per algorithmic pass, not per cache miss —
// the roofline convention. sizeof(float) spelled as 4 to match the
// declared-bytes semantics (these are f32 kernels by construction).
constexpr int64_t kF = 4;

// Grain and block sizes come from the tune::TuneTable (DESIGN.md §13):
// shape-aware analytic defaults, optionally overridden by a tuning file
// or --tune-override. Every tunable parameter is a function of the
// problem shape and the table only — never of the thread count — so
// chunk boundaries, and therefore every float reduction order, are
// identical at any `--threads N` (DESIGN.md §8).

/// Bounded pool of k×n scratch matrices for GemmTransposeA partials:
/// reusing a partial across jobs replaces an alloc + full zero-fill
/// with first-touch zeroing of only the rows a chunk actually writes.
/// Contents are stale by design — TaPartial's touched bitmap is what
/// makes reuse safe.
class ScratchPool {
 public:
  static ScratchPool& Get() {
    static ScratchPool* const pool = new ScratchPool();
    return *pool;
  }

  Matrix Acquire(int64_t rows, int64_t cols) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < pool_.size(); ++i) {
        if (pool_[i].rows() == rows && pool_[i].cols() == cols) {
          Matrix m = std::move(pool_[i]);
          pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
          obs::MetricsRegistry::Get().GetCounter("par.scratch.reused").Add(1);
          return m;
        }
      }
    }
    obs::MetricsRegistry::Get().GetCounter("par.scratch.allocated").Add(1);
    return Matrix(rows, cols);
  }

  void Release(Matrix&& m) {
    if (m.size() == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_.size() < kMaxPooled) pool_.push_back(std::move(m));
  }

 private:
  static constexpr size_t kMaxPooled = 16;
  std::mutex mu_;
  std::vector<Matrix> pool_;
};

/// Chunk-private GemmTransposeA state: a scratch partial plus per-row
/// dirty bits. Rows are zeroed on first touch, so an untouched row may
/// hold stale bytes from a previous job — the merge skips it.
struct TaPartial {
  Matrix m;
  std::vector<uint8_t> touched;
  bool active = false;
};

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  obs::ProfileScope prof("la.gemm");
  prof.AddBytes(kF * (m * k + k * n), kF * m * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  const tune::TuneTable& tt = tune::TuneTable::Get();
  // p-panel blocking keeps the active rows of B cache-resident while the
  // chunk's C rows accumulate — but when all of B fits in cache anyway,
  // panelling only re-streams A and C, so the table returns one panel.
  // Either way each c[i][j] receives its contributions in ascending p
  // order, so the blocking (shape + table, never thread count) never
  // changes the result.
  const int64_t panel = tt.GemmPanel(k, n);
  par::ParallelFor(0, m, tt.GemmRowGrain(m), [&](const par::ChunkRange& rows) {
    for (int64_t p0 = 0; p0 < k; p0 += panel) {
      const int64_t p1 = std::min(p0 + panel, k);
      for (int64_t i = rows.begin; i < rows.end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (int64_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          kt.axpy(av, b.Row(p), crow, n);
        }
      }
    }
  });
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.cols());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  obs::ProfileScope prof("la.gemm_tb");
  prof.AddBytes(kF * (m * k + n * k), kF * m * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  const tune::TuneTable& tt = tune::TuneTable::Get();
  const int64_t tile_cols = tt.GemmTileCols(k);
  par::ParallelFor(0, m, tt.GemmRowGrain(m), [&](const par::ChunkRange& rows) {
    // Tile over B rows so a tile of B is reused across every A row of
    // the chunk. Each element is one dot kernel call — no cross-tile
    // sums.
    for (int64_t j0 = 0; j0 < n; j0 += tile_cols) {
      const int64_t j1 = std::min(j0 + tile_cols, n);
      for (int64_t i = rows.begin; i < rows.end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (int64_t j = j0; j < j1; ++j) crow[j] = kt.dot(arow, b.Row(j), k);
      }
    }
  });
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.rows(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.cols());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0) return;
  obs::ProfileScope prof("la.gemm_ta");
  prof.AddBytes(kF * (m * k + m * n), kF * k * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  // Every input row touches all of C, so chunks accumulate into private
  // partial matrices merged in chunk order. The chunk count picks the
  // float merge order, so the grain is an analytic-only shape function
  // (tune::TuneTable::GemmTransposeAGrain) — never overridable.
  const int64_t grain = tune::TuneTable::GemmTransposeAGrain(m);
  par::ParallelReduceOrdered<TaPartial>(
      0, m, grain,
      [&](const par::ChunkRange& rows, TaPartial& partial) {
        for (int64_t i = rows.begin; i < rows.end; ++i) {
          const float* arow = a.Row(i);
          const float* brow = b.Row(i);
          for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            if (!partial.active) {
              partial.m = ScratchPool::Get().Acquire(k, n);
              partial.touched.assign(static_cast<size_t>(k), 0);
              partial.active = true;
            }
            if (!partial.touched[static_cast<size_t>(p)]) {
              std::memset(partial.m.Row(p), 0,
                          static_cast<size_t>(n) * sizeof(float));
              partial.touched[static_cast<size_t>(p)] = 1;
            }
            kt.axpy(av, brow, partial.m.Row(p), n);
          }
        }
      },
      [&](const par::ChunkRange&, TaPartial&& partial) {
        if (!partial.active) return;
        // Same ascending-chunk axpy order (and bytes) as accumulating
        // full zero-filled partials; untouched rows would only have
        // added 0.0f and are skipped instead.
        for (int64_t p = 0; p < k; ++p) {
          if (!partial.touched[static_cast<size_t>(p)]) continue;
          kt.axpy(1.0f, partial.m.Row(p), c.Row(p), n);
        }
        ScratchPool::Get().Release(std::move(partial.m));
      });
}

void Axpy(float alpha, const Matrix& x, Matrix& y) {
  LARGEEA_CHECK_EQ(x.rows(), y.rows());
  LARGEEA_CHECK_EQ(x.cols(), y.cols());
  const float* xv = x.data();
  float* yv = y.data();
  obs::ProfileScope prof("la.axpy");
  prof.AddBytes(kF * 2 * x.size(), kF * x.size());
  prof.AddFlops(2 * x.size());
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t grain = tune::TuneTable::Get().ElemGrain(x.size());
  par::ParallelFor(0, x.size(), grain, [&](const par::ChunkRange& r) {
    kt.axpy(alpha, xv + r.begin, yv + r.begin, r.end - r.begin);
  });
}

void Scale(Matrix& m, float alpha) {
  float* v = m.data();
  obs::ProfileScope prof("la.scale");
  prof.AddBytes(kF * m.size(), kF * m.size());
  prof.AddFlops(m.size());
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t grain = tune::TuneTable::Get().ElemGrain(m.size());
  par::ParallelFor(0, m.size(), grain, [&](const par::ChunkRange& r) {
    kt.scale(v + r.begin, alpha, r.end - r.begin);
  });
}

void L2NormalizeRows(Matrix& m, float epsilon) {
  const int64_t cols = m.cols();
  obs::ProfileScope prof("la.l2norm_rows");
  prof.AddBytes(kF * m.size(), kF * m.size());
  prof.AddFlops(3 * m.size());
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t grain = tune::TuneTable::Get().NormRowGrain(m.rows());
  par::ParallelFor(0, m.rows(), grain, [&](const par::ChunkRange& r) {
    for (int64_t row = r.begin; row < r.end; ++row) {
      float* v = m.Row(row);
      const float norm = std::sqrt(kt.dot(v, v, cols)) + epsilon;
      kt.divide(v, norm, cols);
    }
  });
}

void ReluInPlace(Matrix& m) {
  float* v = m.data();
  const int64_t grain = tune::TuneTable::Get().ElemGrain(m.size());
  par::ParallelFor(0, m.size(), grain, [&](const par::ChunkRange& r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      if (v[i] < 0.0f) v[i] = 0.0f;
    }
  });
}

void ReluBackwardInPlace(const Matrix& pre_activation, Matrix& grad) {
  LARGEEA_CHECK_EQ(pre_activation.rows(), grad.rows());
  LARGEEA_CHECK_EQ(pre_activation.cols(), grad.cols());
  const float* pre = pre_activation.data();
  float* g = grad.data();
  const int64_t grain = tune::TuneTable::Get().ElemGrain(grad.size());
  par::ParallelFor(0, grad.size(), grain, [&](const par::ChunkRange& r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      if (pre[i] <= 0.0f) g[i] = 0.0f;
    }
  });
}

float Dot(const float* a, const float* b, int64_t dim) {
  return simd::Kernels().dot(a, b, dim);
}

float ManhattanDistance(const float* a, const float* b, int64_t dim) {
  return simd::Kernels().manhattan(a, b, dim);
}

float Norm2(const float* a, int64_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

float FrobeniusNorm(const Matrix& m) { return Norm2(m.data(), m.size()); }

}  // namespace largeea
