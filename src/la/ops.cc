#include "src/la/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/macros.h"
#include "src/obs/profiler.h"
#include "src/par/parallel_for.h"
#include "src/simd/simd.h"

namespace largeea {
namespace {

// Logical traffic declarations for the profiler (DESIGN.md §11): each
// operand is counted once per algorithmic pass, not per cache miss —
// the roofline convention. sizeof(float) spelled as 4 to match the
// declared-bytes semantics (these are f32 kernels by construction).
constexpr int64_t kF = 4;

// Grain/block sizes for the parallel and cache-blocked loops. These are
// functions of nothing (or of the problem shape only) — never of the
// thread count — so chunk boundaries, and therefore every float
// reduction order, are identical at any `--threads N` (DESIGN.md §8).
constexpr int64_t kRowGrain = 32;        // GEMM output-row chunks
constexpr int64_t kPanelSize = 64;       // Gemm p-panel (cache block over K)
constexpr int64_t kGemmCacheBytes = 1 << 20;  // B-fits-in-cache threshold
constexpr int64_t kTileCols = 32;        // GemmTransposeB tile of B rows
constexpr int64_t kElemGrain = 1 << 15;  // element-wise op chunks
constexpr int64_t kNormRowGrain = 128;   // row-normalisation chunks
// GemmTransposeA accumulates chunk-private partial C matrices, so cap the
// chunk count to bound the extra memory and merge traffic.
constexpr int64_t kTransposeAMaxChunks = 16;
constexpr int64_t kTransposeAMinGrain = 64;

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  obs::ProfileScope prof("la.gemm");
  prof.AddBytes(kF * (m * k + k * n), kF * m * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  // p-panel blocking keeps the active rows of B cache-resident while the
  // chunk's C rows accumulate — but when all of B fits in cache anyway,
  // panelling only re-streams A and C, so fall back to one panel. Either
  // way each c[i][j] receives its contributions in ascending p order, so
  // the blocking (a function of the problem shape alone) never changes
  // the result.
  const int64_t panel = k * n * 4 <= kGemmCacheBytes ? k : kPanelSize;
  par::ParallelFor(0, m, kRowGrain, [&](const par::ChunkRange& rows) {
    for (int64_t p0 = 0; p0 < k; p0 += panel) {
      const int64_t p1 = std::min(p0 + panel, k);
      for (int64_t i = rows.begin; i < rows.end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (int64_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          kt.axpy(av, b.Row(p), crow, n);
        }
      }
    }
  });
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.cols());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  obs::ProfileScope prof("la.gemm_tb");
  prof.AddBytes(kF * (m * k + n * k), kF * m * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  par::ParallelFor(0, m, kRowGrain, [&](const par::ChunkRange& rows) {
    // Tile over B rows so a tile of B is reused across every A row of
    // the chunk. Each element is one dot kernel call — no cross-tile
    // sums.
    for (int64_t j0 = 0; j0 < n; j0 += kTileCols) {
      const int64_t j1 = std::min(j0 + kTileCols, n);
      for (int64_t i = rows.begin; i < rows.end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (int64_t j = j0; j < j1; ++j) crow[j] = kt.dot(arow, b.Row(j), k);
      }
    }
  });
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.rows(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.cols());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0) return;
  obs::ProfileScope prof("la.gemm_ta");
  prof.AddBytes(kF * (m * k + m * n), kF * k * n);
  prof.AddFlops(2 * m * k * n);
  const simd::KernelTable& kt = simd::Kernels();
  // Every input row touches all of C, so chunks accumulate into private
  // partial matrices merged in chunk order.
  const int64_t grain =
      std::max(kTransposeAMinGrain,
               (m + kTransposeAMaxChunks - 1) / kTransposeAMaxChunks);
  par::ParallelReduceOrdered<Matrix>(
      0, m, grain,
      [&](const par::ChunkRange& rows, Matrix& partial) {
        partial = Matrix(k, n);
        for (int64_t i = rows.begin; i < rows.end; ++i) {
          const float* arow = a.Row(i);
          const float* brow = b.Row(i);
          for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            kt.axpy(av, brow, partial.Row(p), n);
          }
        }
      },
      [&](const par::ChunkRange&, Matrix&& partial) {
        Axpy(1.0f, partial, c);
      });
}

void Axpy(float alpha, const Matrix& x, Matrix& y) {
  LARGEEA_CHECK_EQ(x.rows(), y.rows());
  LARGEEA_CHECK_EQ(x.cols(), y.cols());
  const float* xv = x.data();
  float* yv = y.data();
  obs::ProfileScope prof("la.axpy");
  prof.AddBytes(kF * 2 * x.size(), kF * x.size());
  prof.AddFlops(2 * x.size());
  const simd::KernelTable& kt = simd::Kernels();
  par::ParallelFor(0, x.size(), kElemGrain, [&](const par::ChunkRange& r) {
    kt.axpy(alpha, xv + r.begin, yv + r.begin, r.end - r.begin);
  });
}

void Scale(Matrix& m, float alpha) {
  float* v = m.data();
  obs::ProfileScope prof("la.scale");
  prof.AddBytes(kF * m.size(), kF * m.size());
  prof.AddFlops(m.size());
  const simd::KernelTable& kt = simd::Kernels();
  par::ParallelFor(0, m.size(), kElemGrain, [&](const par::ChunkRange& r) {
    kt.scale(v + r.begin, alpha, r.end - r.begin);
  });
}

void L2NormalizeRows(Matrix& m, float epsilon) {
  const int64_t cols = m.cols();
  obs::ProfileScope prof("la.l2norm_rows");
  prof.AddBytes(kF * m.size(), kF * m.size());
  prof.AddFlops(3 * m.size());
  const simd::KernelTable& kt = simd::Kernels();
  par::ParallelFor(0, m.rows(), kNormRowGrain, [&](const par::ChunkRange& r) {
    for (int64_t row = r.begin; row < r.end; ++row) {
      float* v = m.Row(row);
      const float norm = std::sqrt(kt.dot(v, v, cols)) + epsilon;
      kt.divide(v, norm, cols);
    }
  });
}

void ReluInPlace(Matrix& m) {
  float* v = m.data();
  par::ParallelFor(0, m.size(), kElemGrain, [&](const par::ChunkRange& r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      if (v[i] < 0.0f) v[i] = 0.0f;
    }
  });
}

void ReluBackwardInPlace(const Matrix& pre_activation, Matrix& grad) {
  LARGEEA_CHECK_EQ(pre_activation.rows(), grad.rows());
  LARGEEA_CHECK_EQ(pre_activation.cols(), grad.cols());
  const float* pre = pre_activation.data();
  float* g = grad.data();
  par::ParallelFor(0, grad.size(), kElemGrain, [&](const par::ChunkRange& r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      if (pre[i] <= 0.0f) g[i] = 0.0f;
    }
  });
}

float Dot(const float* a, const float* b, int64_t dim) {
  return simd::Kernels().dot(a, b, dim);
}

float ManhattanDistance(const float* a, const float* b, int64_t dim) {
  return simd::Kernels().manhattan(a, b, dim);
}

float Norm2(const float* a, int64_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

float FrobeniusNorm(const Matrix& m) { return Norm2(m.data(), m.size()); }

}  // namespace largeea
