#include "src/la/ops.h"

#include <cmath>
#include <cstring>

#include "src/common/macros.h"

namespace largeea {

void Gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.cols(), b.cols());
  LARGEEA_CHECK_EQ(c.rows(), a.rows());
  LARGEEA_CHECK_EQ(c.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = Dot(arow, b.Row(j), k);
    }
  }
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix& c) {
  LARGEEA_CHECK_EQ(a.rows(), b.rows());
  LARGEEA_CHECK_EQ(c.rows(), a.cols());
  LARGEEA_CHECK_EQ(c.cols(), b.cols());
  c.Fill(0.0f);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    const float* brow = b.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c.Row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void Axpy(float alpha, const Matrix& x, Matrix& y) {
  LARGEEA_CHECK_EQ(x.rows(), y.rows());
  LARGEEA_CHECK_EQ(x.cols(), y.cols());
  const int64_t size = x.size();
  const float* xv = x.data();
  float* yv = y.data();
  for (int64_t i = 0; i < size; ++i) yv[i] += alpha * xv[i];
}

void Scale(Matrix& m, float alpha) {
  float* v = m.data();
  const int64_t size = m.size();
  for (int64_t i = 0; i < size; ++i) v[i] *= alpha;
}

void L2NormalizeRows(Matrix& m, float epsilon) {
  for (int64_t r = 0; r < m.rows(); ++r) {
    float* row = m.Row(r);
    const float norm = Norm2(row, m.cols()) + epsilon;
    for (int64_t c = 0; c < m.cols(); ++c) row[c] /= norm;
  }
}

void ReluInPlace(Matrix& m) {
  float* v = m.data();
  const int64_t size = m.size();
  for (int64_t i = 0; i < size; ++i) {
    if (v[i] < 0.0f) v[i] = 0.0f;
  }
}

void ReluBackwardInPlace(const Matrix& pre_activation, Matrix& grad) {
  LARGEEA_CHECK_EQ(pre_activation.rows(), grad.rows());
  LARGEEA_CHECK_EQ(pre_activation.cols(), grad.cols());
  const float* pre = pre_activation.data();
  float* g = grad.data();
  const int64_t size = grad.size();
  for (int64_t i = 0; i < size; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

float Dot(const float* a, const float* b, int64_t dim) {
  float sum = 0.0f;
  for (int64_t i = 0; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

float ManhattanDistance(const float* a, const float* b, int64_t dim) {
  float sum = 0.0f;
  for (int64_t i = 0; i < dim; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

float Norm2(const float* a, int64_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

float FrobeniusNorm(const Matrix& m) { return Norm2(m.data(), m.size()); }

}  // namespace largeea
