// Synthetic entity-name model for the benchmark generator.
//
// Real cross-lingual DBpedia entity names are mostly cognates: "Barack
// Obama" is identical across EN/FR/DE, "Allemagne"/"Deutschland" are not.
// The paper's name channel exploits precisely this: multilingual-BERT
// semantics plus raw string similarity. This model reproduces the regime:
//
//   * a shared base vocabulary of word roots;
//   * per (word, language), a deterministic translation that is either a
//     *cognate* (systematic + random character edits of the root, so
//     character n-grams largely survive) or *opaque* (an unrelated word,
//     so neither semantic hashing nor edit distance can link it);
//   * per-language rendering noise (occasional article prefix, character
//     typos) controlling how hard string matching is.
//
// All randomness is hash-derived from (seed, word, language), so the same
// word translates identically wherever it appears — exactly like a real
// translation dictionary.
#ifndef LARGEEA_GEN_NAME_MODEL_H_
#define LARGEEA_GEN_NAME_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace largeea {

/// A fixed list of synthetic word roots shared by all languages.
class Vocabulary {
 public:
  /// Generates `size` distinct pronounceable-ish lowercase words of 3-9
  /// characters.
  Vocabulary(int32_t size, uint64_t seed);

  int32_t size() const { return static_cast<int32_t>(words_.size()); }
  const std::string& Word(int32_t index) const { return words_[index]; }

  /// Samples a word index with a Zipf-like bias toward low indices, which
  /// makes common words reappear across entity names (as in real KGs).
  int32_t SampleZipf(Rng& rng) const;

 private:
  std::vector<std::string> words_;
};

/// Per-language rendering parameters.
struct LanguageNameStyle {
  std::string code;          ///< e.g. "EN", "FR"
  double cognate_prob = 0.85;  ///< word translated as a cognate vs. opaque
  double char_noise_prob = 0.03;  ///< per-character typo rate when rendering
  double article_prob = 0.0;  ///< chance of a language article prefix
  std::string article;        ///< e.g. "le" for FR, "der" for DE
};

/// Renders canonical token sequences into language-specific entity names.
class NameTranslator {
 public:
  NameTranslator(const Vocabulary* vocabulary, LanguageNameStyle style,
                 uint64_t seed);

  /// Renders the entity whose canonical name is `tokens` (vocabulary
  /// indices) in this translator's language. `entity_salt` seeds the
  /// per-entity rendering noise so distinct entities with the same tokens
  /// still get deterministic (but different) noise.
  std::string Render(const std::vector<int32_t>& tokens,
                     uint64_t entity_salt) const;

  /// The translation of a single word root in this language (no rendering
  /// noise). Exposed for tests.
  std::string TranslateWord(int32_t word_index) const;

  const LanguageNameStyle& style() const { return style_; }

 private:
  const Vocabulary* vocabulary_;  // not owned
  LanguageNameStyle style_;
  uint64_t seed_;
};

}  // namespace largeea

#endif  // LARGEEA_GEN_NAME_MODEL_H_
