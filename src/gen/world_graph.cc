#include "src/gen/world_graph.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/common/rng.h"
#include "src/gen/name_model.h"

namespace largeea {

WorldKg GenerateWorldKg(const WorldSpec& spec, const Vocabulary& vocabulary) {
  LARGEEA_CHECK_GT(spec.num_entities, 1);
  LARGEEA_CHECK_GT(spec.edges_per_entity, 0);
  LARGEEA_CHECK_GT(spec.num_relations, 0);
  Rng rng(spec.seed);

  WorldKg world;
  world.num_relations = spec.num_relations;

  // Canonical names.
  LARGEEA_CHECK_GE(spec.max_name_tokens, spec.min_name_tokens);
  LARGEEA_CHECK_GT(spec.min_name_tokens, 0);
  world.entity_tokens.resize(spec.num_entities);
  for (auto& tokens : world.entity_tokens) {
    const int32_t count =
        spec.min_name_tokens +
        static_cast<int32_t>(rng.Uniform(
            spec.max_name_tokens - spec.min_name_tokens + 1));
    tokens.reserve(count);
    for (int32_t i = 0; i < count; ++i) {
      tokens.push_back(vocabulary.SampleZipf(rng));
    }
  }

  // Preferential-attachment triples with community structure: entity i
  // (i >= 1) attaches edges_per_entity edges whose other endpoint is
  // sampled from a repeat list (each prior edge endpoint appears once),
  // giving a power-law-ish degree distribution; with probability
  // intra_community_prob the endpoint is drawn from the entity's own
  // community, which gives the graph the topical clusters real KGs have.
  // Relations are drawn with a head-heavy skew so a few dominate.
  const int32_t communities =
      spec.num_communities > 0
          ? spec.num_communities
          : std::max(1, spec.num_entities / 150);
  std::vector<int32_t> community(spec.num_entities);
  for (auto& c : community) {
    c = static_cast<int32_t>(rng.Uniform(communities));
  }
  std::vector<EntityId> repeat;
  repeat.reserve(static_cast<size_t>(spec.num_entities) *
                 spec.edges_per_entity * 2);
  repeat.push_back(0);
  std::vector<std::vector<EntityId>> community_repeat(communities);
  community_repeat[community[0]].push_back(0);
  for (EntityId e = 1; e < spec.num_entities; ++e) {
    for (int32_t j = 0; j < spec.edges_per_entity; ++j) {
      const std::vector<EntityId>& own =
          community_repeat[community[e]];
      const bool intra =
          !own.empty() && rng.Bernoulli(spec.intra_community_prob);
      const EntityId other =
          intra ? own[rng.Uniform(own.size())]
                : repeat[rng.Uniform(repeat.size())];
      if (other == e) continue;
      const double u = rng.UniformDouble();
      const RelationId r =
          static_cast<RelationId>(u * u * spec.num_relations) %
          spec.num_relations;
      // Direction chosen at random so both in- and out-degrees grow.
      if (rng.Bernoulli(0.5)) {
        world.triples.push_back(Triple{e, r, other});
      } else {
        world.triples.push_back(Triple{other, r, e});
      }
      repeat.push_back(e);
      repeat.push_back(other);
      community_repeat[community[e]].push_back(e);
      community_repeat[community[other]].push_back(other);
    }
  }
  return world;
}

}  // namespace largeea
