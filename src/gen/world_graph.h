// Latent "world" knowledge graph from which both language KGs are sampled.
#ifndef LARGEEA_GEN_WORLD_GRAPH_H_
#define LARGEEA_GEN_WORLD_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace largeea {

/// The shared latent KG. Entities carry canonical names as vocabulary
/// token sequences; language derivation renders them per language.
struct WorldKg {
  /// Canonical name of each entity, as vocabulary word indices.
  std::vector<std::vector<int32_t>> entity_tokens;
  /// World-level relation count; relations are abstract ids [0, n).
  int32_t num_relations = 0;
  /// World triples over world entity/relation ids.
  std::vector<Triple> triples;

  int32_t num_entities() const {
    return static_cast<int32_t>(entity_tokens.size());
  }
};

/// Parameters for world-graph generation.
struct WorldSpec {
  int32_t num_entities = 1000;
  /// Average out-edges attached per entity (preferential attachment), so
  /// the degree distribution is power-law-ish like real KGs.
  int32_t edges_per_entity = 3;
  int32_t num_relations = 50;
  int32_t vocab_size = 2000;
  /// Real KGs have topical community structure (which is what makes them
  /// partitionable at all — Figure 7's low edge-cut rates rely on it).
  /// Entities are assigned to communities and attach mostly within them.
  /// 0 = choose automatically (~150 entities per community).
  int32_t num_communities = 0;
  /// Probability an edge stays inside its head's community.
  double intra_community_prob = 0.85;
  /// Tokens per canonical entity name (uniform min..max). Real entity
  /// names are rarely a single word, so the default minimum is 2.
  int32_t min_name_tokens = 2;
  int32_t max_name_tokens = 3;
  uint64_t seed = 1;
};

class Vocabulary;

/// Generates the world KG. `vocabulary` must outlive the call only.
WorldKg GenerateWorldKg(const WorldSpec& spec, const Vocabulary& vocabulary);

}  // namespace largeea

#endif  // LARGEEA_GEN_WORLD_GRAPH_H_
