#include "src/gen/benchmark_gen.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace largeea {
namespace {

/// One language's sample of the world: which entities/triples survive.
struct LanguageSample {
  std::vector<bool> keep_entity;       // indexed by world entity id
  std::vector<bool> keep_triple;       // indexed by world triple index
};

LanguageSample SampleLanguage(const WorldKg& world, const LanguageSpec& spec,
                              Rng& rng) {
  LanguageSample sample;
  sample.keep_entity.resize(world.num_entities());
  for (int32_t e = 0; e < world.num_entities(); ++e) {
    sample.keep_entity[e] = rng.Bernoulli(spec.entity_keep_prob);
  }
  sample.keep_triple.resize(world.triples.size());
  std::vector<bool> covered(world.num_entities(), false);
  for (size_t i = 0; i < world.triples.size(); ++i) {
    const Triple& t = world.triples[i];
    if (!sample.keep_entity[t.head] || !sample.keep_entity[t.tail]) continue;
    if (rng.Bernoulli(spec.triple_keep_prob)) {
      sample.keep_triple[i] = true;
      covered[t.head] = true;
      covered[t.tail] = true;
    }
  }
  // Repair pass: an entity that survived but lost all of its triples would
  // be structurally invisible; force-keep one eligible triple, or drop the
  // entity if none exists.
  for (size_t i = 0; i < world.triples.size(); ++i) {
    const Triple& t = world.triples[i];
    if (sample.keep_triple[i]) continue;
    if (!sample.keep_entity[t.head] || !sample.keep_entity[t.tail]) continue;
    if (!covered[t.head] || !covered[t.tail]) {
      sample.keep_triple[i] = true;
      covered[t.head] = true;
      covered[t.tail] = true;
    }
  }
  for (int32_t e = 0; e < world.num_entities(); ++e) {
    if (sample.keep_entity[e] && !covered[e]) sample.keep_entity[e] = false;
  }
  return sample;
}

/// Builds one language KG; fills `world_to_local` with the id mapping
/// (kInvalidEntity where the entity is absent).
KnowledgeGraph BuildLanguageKg(const WorldKg& world,
                               const LanguageSample& sample,
                               const LanguageSpec& spec,
                               const NameTranslator& translator,
                               Rng& rng,
                               std::vector<EntityId>& world_to_local) {
  KnowledgeGraph kg;
  world_to_local.assign(world.num_entities(), kInvalidEntity);
  std::unordered_map<std::string, int32_t> name_counts;
  for (int32_t e = 0; e < world.num_entities(); ++e) {
    if (!sample.keep_entity[e]) continue;
    std::string name =
        translator.Render(world.entity_tokens[e], static_cast<uint64_t>(e));
    // Disambiguate colliding rendered names, like DBpedia's "Foo (2)".
    const int32_t count = ++name_counts[name];
    if (count > 1) name += " (" + std::to_string(count) + ")";
    world_to_local[e] = kg.AddEntity(name);
  }

  // Fold world relations onto this language's smaller vocabulary with a
  // language-specific shuffle, so relation ids do not align across KGs.
  std::vector<RelationId> relation_map(world.num_relations);
  for (int32_t r = 0; r < world.num_relations; ++r) {
    relation_map[r] = static_cast<RelationId>(
        (static_cast<int64_t>(r) * 2654435761u + rng.Uniform(2)) %
        spec.num_relations);
  }
  for (RelationId r = 0; r < spec.num_relations; ++r) {
    kg.AddRelation(translator.style().code + "_rel_" + std::to_string(r));
  }

  for (size_t i = 0; i < world.triples.size(); ++i) {
    if (!sample.keep_triple[i]) continue;
    const Triple& t = world.triples[i];
    kg.AddTriple(world_to_local[t.head], relation_map[t.relation],
                 world_to_local[t.tail]);
  }
  kg.BuildAdjacency();
  return kg;
}

LanguageNameStyle EnglishStyle() {
  return LanguageNameStyle{
      .code = "EN", .cognate_prob = 1.0, .char_noise_prob = 0.01,
      .article_prob = 0.0, .article = ""};
}

LanguageNameStyle FrenchStyle() {
  return LanguageNameStyle{
      .code = "FR", .cognate_prob = 0.82, .char_noise_prob = 0.03,
      .article_prob = 0.15, .article = "le"};
}

LanguageNameStyle GermanStyle() {
  return LanguageNameStyle{
      .code = "DE", .cognate_prob = 0.80, .char_noise_prob = 0.03,
      .article_prob = 0.15, .article = "der"};
}

LanguageNameStyle TargetStyle(LanguagePair pair) {
  return pair == LanguagePair::kEnFr ? FrenchStyle() : GermanStyle();
}

// The IDS benchmarks are curated extracts with clean labels; DBP1M is a
// raw dump with messier cross-lingual names. The tier factories model
// that by tightening/loosening the rendering noise.
LanguageNameStyle WithNoiseProfile(LanguageNameStyle style,
                                   double cognate_prob,
                                   double char_noise_prob) {
  if (style.code != "EN") {
    style.cognate_prob = cognate_prob;
  }
  style.char_noise_prob = char_noise_prob;
  return style;
}

}  // namespace

EaDataset GenerateBenchmark(const BenchmarkSpec& spec) {
  Rng rng(spec.seed);
  Vocabulary vocabulary(spec.world.vocab_size, rng.Next());
  WorldSpec world_spec = spec.world;
  world_spec.seed = rng.Next();
  const WorldKg world = GenerateWorldKg(world_spec, vocabulary);

  const NameTranslator source_translator(&vocabulary, spec.source.name_style,
                                         spec.seed * 31 + 1);
  const NameTranslator target_translator(&vocabulary, spec.target.name_style,
                                         spec.seed * 31 + 2);

  Rng source_rng = rng.Fork(1);
  Rng target_rng = rng.Fork(2);
  const LanguageSample source_sample =
      SampleLanguage(world, spec.source, source_rng);
  const LanguageSample target_sample =
      SampleLanguage(world, spec.target, target_rng);

  EaDataset dataset;
  dataset.name = spec.name;
  std::vector<EntityId> source_map, target_map;
  dataset.source = BuildLanguageKg(world, source_sample, spec.source,
                                   source_translator, source_rng, source_map);
  dataset.target = BuildLanguageKg(world, target_sample, spec.target,
                                   target_translator, target_rng, target_map);

  EntityPairList ground_truth;
  for (int32_t e = 0; e < world.num_entities(); ++e) {
    if (source_map[e] != kInvalidEntity && target_map[e] != kInvalidEntity) {
      ground_truth.push_back(EntityPair{source_map[e], target_map[e]});
    }
  }
  LARGEEA_CHECK(IsOneToOne(ground_truth));
  Rng split_rng = rng.Fork(3);
  dataset.split = SplitAlignment(ground_truth, spec.train_ratio, split_rng);
  return dataset;
}

std::string LanguagePairName(LanguagePair pair) {
  return pair == LanguagePair::kEnFr ? "EN-FR" : "EN-DE";
}

BenchmarkSpec Ids15kSpec(LanguagePair pair, double scale, uint64_t seed) {
  // Default tier size 4000 entities/side: the IDS15K experiments sweep
  // many configurations, so the default is sized for a single CPU core.
  const auto n = static_cast<int32_t>(4000 * scale);
  BenchmarkSpec spec;
  spec.name = "IDS15K_" + LanguagePairName(pair);
  spec.world = WorldSpec{.num_entities = n,
                         .edges_per_entity = 3,
                         .num_relations = pair == LanguagePair::kEnFr ? 60 : 55,
                         .vocab_size = std::max(400, n),
                         .max_name_tokens = 3,
                         .seed = 0};
  spec.source = LanguageSpec{.name_style = WithNoiseProfile(EnglishStyle(),
                                                             1.0, 0.005),
                             .entity_keep_prob = 1.0,
                             .triple_keep_prob = 0.92,
                             .num_relations =
                                 pair == LanguagePair::kEnFr ? 55 : 50};
  spec.target =
      LanguageSpec{.name_style = WithNoiseProfile(TargetStyle(pair),
                                                  0.88, 0.015),
                   .entity_keep_prob = 1.0,
                   .triple_keep_prob =
                       pair == LanguagePair::kEnFr ? 0.85 : 0.80,
                   .num_relations = pair == LanguagePair::kEnFr ? 45 : 35};
  spec.seed = seed;
  spec.paper_source_entities = 15000;
  spec.paper_target_entities = 15000;
  return spec;
}

BenchmarkSpec Ids100kSpec(LanguagePair pair, double scale, uint64_t seed) {
  BenchmarkSpec spec = Ids15kSpec(pair, scale, seed);
  const auto n = static_cast<int32_t>(12000 * scale);
  spec.name = "IDS100K_" + LanguagePairName(pair);
  spec.world.num_entities = n;
  spec.world.num_relations = pair == LanguagePair::kEnFr ? 90 : 85;
  spec.world.vocab_size = std::max(800, n);
  spec.source.num_relations = pair == LanguagePair::kEnFr ? 80 : 75;
  spec.target.num_relations = pair == LanguagePair::kEnFr ? 65 : 50;
  spec.paper_source_entities = 100000;
  spec.paper_target_entities = 100000;
  return spec;
}

BenchmarkSpec Dbp1mSpec(LanguagePair pair, double scale, uint64_t seed) {
  // DBP1M's defining features at any scale: the sides are unbalanced
  // (EN keeps more entities), the non-EN side is much sparser, and both
  // sides contain unknown entities with no counterpart.
  BenchmarkSpec spec = Ids15kSpec(pair, 1.0, seed);
  const auto n = static_cast<int32_t>(30000 * scale);
  spec.name = "DBP1M_" + LanguagePairName(pair);
  spec.world.num_entities = n;
  spec.world.num_relations = pair == LanguagePair::kEnFr ? 120 : 115;
  spec.world.vocab_size = std::max(2000, n);
  spec.source.entity_keep_prob = 0.92;
  spec.source.triple_keep_prob = 0.90;
  spec.source.num_relations = 110;
  spec.source.name_style = WithNoiseProfile(EnglishStyle(), 1.0, 0.02);
  spec.target.entity_keep_prob = pair == LanguagePair::kEnFr ? 0.68 : 0.62;
  spec.target.triple_keep_prob = pair == LanguagePair::kEnFr ? 0.62 : 0.55;
  spec.target.num_relations = pair == LanguagePair::kEnFr ? 70 : 45;
  spec.target.name_style =
      WithNoiseProfile(TargetStyle(pair), 0.72, 0.04);
  // DBP1M sizes from the paper's Table 1.
  spec.paper_source_entities =
      pair == LanguagePair::kEnFr ? 1877793 : 1625999;
  spec.paper_target_entities =
      pair == LanguagePair::kEnFr ? 1365118 : 1112970;
  return spec;
}

}  // namespace largeea
