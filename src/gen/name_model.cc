#include "src/gen/name_model.h"

#include <cmath>
#include <unordered_set>

#include "src/common/macros.h"

namespace largeea {
namespace {

constexpr char kConsonants[] = "bcdfghjklmnprstvwz";
constexpr char kVowels[] = "aeiou";

// Alternating consonant/vowel word of the requested length.
std::string MakeWord(Rng& rng, int length) {
  std::string w;
  w.reserve(length);
  bool consonant = rng.Bernoulli(0.7);
  for (int i = 0; i < length; ++i) {
    if (consonant) {
      w.push_back(kConsonants[rng.Uniform(sizeof(kConsonants) - 1)]);
    } else {
      w.push_back(kVowels[rng.Uniform(sizeof(kVowels) - 1)]);
    }
    consonant = !consonant;
  }
  return w;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // 64-bit mix (based on splitmix64 finalizer).
  uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(uint64_t seed, const std::string& s) {
  uint64_t h = seed;
  for (const char c : s) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

// Applies `edits` deterministic single-character edits to `word`.
std::string ApplyCharEdits(const std::string& word, Rng& rng, int edits) {
  std::string out = word;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos = rng.Uniform(out.size());
    switch (rng.Uniform(3)) {
      case 0:  // substitute
        out[pos] = "abcdefghijklmnopqrstuvwxyz"[rng.Uniform(26)];
        break;
      case 1:  // insert
        out.insert(out.begin() + pos,
                   "abcdefghijklmnopqrstuvwxyz"[rng.Uniform(26)]);
        break;
      default:  // delete (keep words non-empty)
        if (out.size() > 2) out.erase(out.begin() + pos);
        break;
    }
  }
  return out;
}

}  // namespace

Vocabulary::Vocabulary(int32_t size, uint64_t seed) {
  LARGEEA_CHECK_GT(size, 0);
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  words_.reserve(size);
  while (static_cast<int32_t>(words_.size()) < size) {
    const int length = 3 + static_cast<int>(rng.Uniform(7));
    std::string w = MakeWord(rng, length);
    if (seen.insert(w).second) words_.push_back(std::move(w));
  }
}

int32_t Vocabulary::SampleZipf(Rng& rng) const {
  // Mild power-law skew (u^1.5): common words recur across entity names
  // (as in real KGs) without collapsing the effective vocabulary so far
  // that entity names stop being discriminative.
  const double u = rng.UniformDouble();
  const double skewed = std::pow(u, 1.5);
  return static_cast<int32_t>(skewed * size()) % size();
}

NameTranslator::NameTranslator(const Vocabulary* vocabulary,
                               LanguageNameStyle style, uint64_t seed)
    : vocabulary_(vocabulary), style_(std::move(style)), seed_(seed) {
  LARGEEA_CHECK(vocabulary_ != nullptr);
}

std::string NameTranslator::TranslateWord(int32_t word_index) const {
  const std::string& root = vocabulary_->Word(word_index);
  Rng rng(HashCombine(HashString(seed_, style_.code),
                      static_cast<uint64_t>(word_index)));
  if (!rng.Bernoulli(style_.cognate_prob)) {
    // Opaque translation: an unrelated word of similar length.
    return MakeWord(rng, 3 + static_cast<int>(rng.Uniform(7)));
  }
  // Cognate: 0-2 character edits of the shared root. Half of cognates are
  // identical — matching real cross-lingual DBpedia, where proper names
  // usually carry over verbatim.
  const double u = rng.UniformDouble();
  const int edits = u < 0.5 ? 0 : (u < 0.85 ? 1 : 2);
  return ApplyCharEdits(root, rng, edits);
}

std::string NameTranslator::Render(const std::vector<int32_t>& tokens,
                                   uint64_t entity_salt) const {
  Rng noise_rng(HashCombine(HashString(seed_ + 1, style_.code), entity_salt));
  std::string name;
  if (!style_.article.empty() && noise_rng.Bernoulli(style_.article_prob)) {
    name += style_.article;
  }
  for (const int32_t token : tokens) {
    if (!name.empty()) name.push_back(' ');
    std::string word = TranslateWord(token);
    // Per-entity rendering typos.
    for (char& c : word) {
      if (noise_rng.Bernoulli(style_.char_noise_prob)) {
        c = "abcdefghijklmnopqrstuvwxyz"[noise_rng.Uniform(26)];
      }
    }
    name += word;
  }
  return name;
}

}  // namespace largeea
