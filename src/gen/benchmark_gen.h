// Builds complete EA benchmark datasets (the stand-in for IDS / DBP1M).
//
// Each language KG is a sample of the shared world KG: entities survive
// with a per-language probability (DBP1M's EN side keeps more), triples
// survive with a per-language probability (German KGs are sparser), the
// world relation vocabulary is folded onto a smaller per-language one, and
// names are rendered by the language's NameTranslator. Entities present in
// both samples form the ground-truth alignment; one-sided survivors are
// exactly the paper's "unknown entities".
#ifndef LARGEEA_GEN_BENCHMARK_GEN_H_
#define LARGEEA_GEN_BENCHMARK_GEN_H_

#include <cstdint>
#include <string>

#include "src/gen/name_model.h"
#include "src/gen/world_graph.h"
#include "src/kg/dataset.h"

namespace largeea {

/// How one language samples the world KG.
struct LanguageSpec {
  LanguageNameStyle name_style;
  /// Probability a world entity exists in this language's KG.
  double entity_keep_prob = 1.0;
  /// Probability a world triple (with both endpoints kept) survives.
  double triple_keep_prob = 0.9;
  /// Size of this language's relation vocabulary (world relations are
  /// folded onto it, so it may be smaller than the world's).
  int32_t num_relations = 50;
};

/// Full benchmark recipe.
struct BenchmarkSpec {
  std::string name;
  WorldSpec world;
  LanguageSpec source;
  LanguageSpec target;
  /// Fraction of ground-truth pairs used as seed alignment ψ'.
  double train_ratio = 0.2;
  uint64_t seed = 7;
  /// Entity counts of the *paper's* dataset this tier models (Table 1).
  /// Used by the paper-calibrated memory-feasibility model; zero when the
  /// spec does not correspond to a paper tier.
  int64_t paper_source_entities = 0;
  int64_t paper_target_entities = 0;
};

/// Generates the dataset described by `spec`. Deterministic in spec.seed.
EaDataset GenerateBenchmark(const BenchmarkSpec& spec);

/// The language pairs the paper evaluates.
enum class LanguagePair { kEnFr, kEnDe };

/// Tier factories mirroring the paper's benchmarks. `scale` multiplies
/// entity counts; scale = 1.0 gives defaults sized for a single CPU core
/// (see EXPERIMENTS.md for the mapping to the paper's sizes).
BenchmarkSpec Ids15kSpec(LanguagePair pair, double scale = 1.0,
                         uint64_t seed = 15);
BenchmarkSpec Ids100kSpec(LanguagePair pair, double scale = 1.0,
                          uint64_t seed = 100);
BenchmarkSpec Dbp1mSpec(LanguagePair pair, double scale = 1.0,
                        uint64_t seed = 1000);

/// Human-readable pair suffix: "EN-FR" or "EN-DE".
std::string LanguagePairName(LanguagePair pair);

}  // namespace largeea

#endif  // LARGEEA_GEN_BENCHMARK_GEN_H_
