// Crash-tolerant multi-process shard orchestrator (DESIGN.md §12).
//
// RunShardedLargeEa splits the structure channel's mini-batch training
// across N supervised worker subprocesses and merges their checkpointed
// blocks through the single-process resume path, so the fused matrix is
// bit-identical to a plain RunLargeEa at ANY shard count — including
// after a worker was SIGKILLed mid-batch and respawned.
//
// Phases:
//   A. Parent: name channel + seed augmentation + partition, all
//      checkpointed (identical to the single-process prefix).
//   B. Supervision loop: spawn one worker per incomplete shard, watch
//      heartbeats and deadlines, classify failures (exit code, signal,
//      hang, deadline), retry with bounded exponential backoff; a shard
//      that exhausts its retries is degraded — its batches fall out of
//      M_s and are counted, never silently wrong.
//   C. Merge: RunLargeEa with resume=true over the shared checkpoint
//      directory; the in-order block merge cannot tell worker-trained
//      artifacts from locally trained ones.
#ifndef LARGEEA_SHARD_ORCHESTRATOR_H_
#define LARGEEA_SHARD_ORCHESTRATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/large_ea.h"
#include "src/kg/dataset.h"
#include "src/rt/status.h"

namespace largeea::shard {

struct ShardOptions {
  /// Number of worker processes. 0 = run single-process (plain
  /// RunLargeEa); shard counts beyond the batch count just leave the
  /// surplus workers with empty shards (they are not spawned).
  int32_t num_shards = 0;
  /// Respawns allowed per shard after its first attempt fails.
  int32_t max_shard_retries = 2;
  /// Backoff before attempt k+1 is `retry_backoff_ms << (k-1)`.
  int32_t retry_backoff_ms = 200;
  /// Interval workers are told to rewrite their heartbeat file at.
  int32_t heartbeat_interval_ms = 250;
  /// A worker whose heartbeat file does not change for this long is
  /// classified as hung and SIGKILLed. Must comfortably exceed the
  /// longest single training epoch; hang detection is based on content
  /// change, not timestamps, so there is no cross-process clock skew.
  int32_t heartbeat_timeout_ms = 30000;
  /// Hard wall-clock deadline per worker attempt; 0 disables.
  int32_t shard_deadline_s = 0;
  /// When a shard exhausts its retries: true counts it as degraded and
  /// continues (its batches are dropped from M_s, the name channel
  /// still covers its pairs); false fails the run.
  bool degrade_failed_shards = true;
  /// Supervision poll cadence.
  int32_t poll_interval_ms = 50;
  /// Command line to re-invoke this pipeline as a worker; the
  /// orchestrator appends `--shard-worker <i> --shards <N> ...`
  /// overrides (the flag parser is last-wins). Typically the
  /// orchestrator's own argv with argv[0] resolved to /proc/self/exe.
  std::vector<std::string> worker_command;
  /// Extra "NAME=value" entries for worker environments (fault
  /// injection in tests rides in here).
  std::vector<std::string> worker_env;
  /// Ask each worker for a Chrome trace and record the file paths in
  /// ShardRunStats for a post-run multi-process merge.
  bool capture_worker_traces = false;
};

/// Supervision outcome, mirrored into shard.* metrics.
struct ShardRunStats {
  int32_t num_shards = 0;
  int32_t workers_launched = 0;      ///< processes actually spawned
  int32_t workers_retried = 0;       ///< respawns after a failure
  int32_t shards_degraded = 0;       ///< shards that exhausted retries
  int32_t shards_resumed = 0;        ///< complete before any spawn
  int32_t workers_killed_hung = 0;   ///< SIGKILLed on stale heartbeat
  int32_t workers_killed_deadline = 0;
  std::vector<std::string> worker_trace_files;  ///< one per shard, may
                                                ///< be missing on disk
};

/// Runs the sharded pipeline. Requires a checkpoint directory and a
/// worker command when `shards.num_shards > 0`. On success the result
/// is bit-identical to RunLargeEa(dataset, options) modulo explicitly
/// counted degradation. `stats` (optional) receives the supervision
/// tallies also published as shard.* metrics.
StatusOr<LargeEaResult> RunShardedLargeEa(const EaDataset& dataset,
                                          const LargeEaOptions& options,
                                          const ShardOptions& shards,
                                          ShardRunStats* stats = nullptr);

}  // namespace largeea::shard

#endif  // LARGEEA_SHARD_ORCHESTRATOR_H_
