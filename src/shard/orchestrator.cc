#include "src/shard/orchestrator.h"

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/core/name_channel.h"
#include "src/core/pipeline_fingerprint.h"
#include "src/core/structure_channel.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rt/checkpoint.h"
#include "src/rt/fault_injection.h"
#include "src/shard/heartbeat.h"
#include "src/shard/shard_plan.h"
#include "src/shard/subprocess.h"
#include "src/stream/stream_context.h"

namespace largeea::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// One supervised shard's lifecycle.
struct ShardState {
  enum class Phase { kPending, kRunning, kDone, kDegraded };
  Phase phase = Phase::kPending;
  std::vector<size_t> batches;
  int32_t attempts = 0;  ///< spawns so far (first attempt included)
  pid_t pid = -1;
  Clock::time_point spawn_time;
  Clock::time_point earliest_spawn;  ///< backoff gate for the next try
  Clock::time_point last_progress;
  std::string heartbeat_file;
  std::optional<HeartbeatMonitor> monitor;
};

std::string ShardTracePath(const std::string& dir, int32_t shard) {
  return dir + "/worker-" + std::to_string(shard) + "-trace.json";
}

/// Fresh (non-resume) sharded runs own the checkpoint directory: stale
/// artifacts from an earlier run would make the pre-spawn completeness
/// check skip shards against data the user asked to recompute.
void WipeCheckpoints(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace

StatusOr<LargeEaResult> RunShardedLargeEa(const EaDataset& dataset,
                                          const LargeEaOptions& options,
                                          const ShardOptions& shards,
                                          ShardRunStats* stats_out) {
  if (shards.num_shards <= 0) return RunLargeEa(dataset, options);
  const std::string& dir = options.fault_tolerance.checkpoint_dir;
  if (dir.empty()) {
    return InvalidArgumentError("sharded execution requires --checkpoint-dir "
                                "(workers hand their blocks to the merge "
                                "through it)");
  }
  if (shards.worker_command.empty()) {
    return InvalidArgumentError("sharded execution requires a worker command");
  }

  ShardRunStats stats;
  stats.num_shards = shards.num_shards;
  obs::Span span("shard/orchestrator");
  span.AddAttr("shards", static_cast<int64_t>(shards.num_shards));

  if (!options.fault_tolerance.resume) WipeCheckpoints(dir);

  // --- Phase A: the single-process prefix (name channel, seed
  // augmentation, partition), checkpointed so every worker and the merge
  // read one shared, fingerprint-stamped partition. This mirrors
  // RunLargeEa exactly — including the streaming context — so the
  // artifacts are the ones a plain run would have written.
  const stream::StreamOptions stream_options =
      stream::ResolveStreamOptions(options.stream);
  // The pipeline manager (global fingerprint + per-node overrides) —
  // workers and the merge construct the identical manager, so artifacts
  // from the three process roles validate interchangeably.
  rt::CheckpointManager checkpoint =
      MakePipelineCheckpointManager(dataset, options, dir, /*resume=*/true);
  MiniBatchSet batches;
  {
    obs::Span prefix_span("shard/prefix");
    std::unique_ptr<stream::StreamContext> stream_ctx;
    if (stream::StreamingEnabled(stream_options)) {
      stream_ctx = std::make_unique<stream::StreamContext>(stream_options);
    }
    EntityPairList effective_seeds = dataset.split.train;
    if (options.use_name_channel) {
      auto name = RunNameChannel(dataset.source, dataset.target,
                                 dataset.split.train, options.name_channel,
                                 &checkpoint, stream_ctx.get());
      if (!name.ok()) {
        return name.status().WithContext("shard orchestrator: name channel");
      }
      effective_seeds.insert(effective_seeds.end(),
                             name->pseudo_seeds.begin(),
                             name->pseudo_seeds.end());
    }
    if (options.use_structure_channel) {
      auto prepared = PrepareStructureBatches(dataset.source, dataset.target,
                                              effective_seeds,
                                              options.structure_channel,
                                              &checkpoint);
      if (!prepared.ok()) {
        return prepared.status().WithContext("shard orchestrator: partition");
      }
      batches = std::move(prepared).value();
    }
  }

  // --- Phase B: supervised workers, one per non-empty shard. ---
  const ShardPlan plan = PlanShards(batches, shards.num_shards);
  std::vector<ShardState> states(
      static_cast<size_t>(shards.num_shards));
  int32_t open_shards = 0;
  for (int32_t i = 0; i < shards.num_shards; ++i) {
    ShardState& s = states[static_cast<size_t>(i)];
    s.batches = plan.batches_of[static_cast<size_t>(i)];
    s.heartbeat_file = dir + "/hb-worker-" + std::to_string(i) + ".txt";
    if (s.batches.empty() || ShardComplete(checkpoint, s.batches)) {
      s.phase = ShardState::Phase::kDone;
      if (!s.batches.empty()) {
        ++stats.shards_resumed;
        LARGEEA_LOG_INFO("shard %d: all %zu batch artifact(s) already "
                         "present, not spawning a worker",
                         i, s.batches.size());
      }
    } else {
      ++open_shards;
    }
  }
  const auto deadline =
      std::chrono::seconds(std::max<int32_t>(shards.shard_deadline_s, 0));
  const auto hb_timeout =
      std::chrono::milliseconds(shards.heartbeat_timeout_ms);

  auto classify_failure = [&](int32_t i, ShardState& s,
                              const std::string& why) {
    LARGEEA_LOG_WARN("shard %d attempt %d failed: %s", i, s.attempts,
                     why.c_str());
    s.pid = -1;
    s.monitor.reset();
    // A worker can die between finishing its last batch and exiting
    // cleanly (killed while hung in finalize, SIGTERM during teardown).
    // The artifacts are the contract, not the exit code: if they all
    // load, the shard is done and respawning would only retrain work
    // the merge can already use.
    if (ShardComplete(checkpoint, s.batches)) {
      s.phase = ShardState::Phase::kDone;
      --open_shards;
      LARGEEA_LOG_INFO("shard %d: worker died but every batch artifact is "
                       "loadable; accepting the shard as complete",
                       i);
      return;
    }
    if (s.attempts > shards.max_shard_retries) {
      s.phase = ShardState::Phase::kDegraded;
      ++stats.shards_degraded;
      --open_shards;
      LARGEEA_LOG_ERROR(
          "shard %d: out of retries after %d attempt(s); its %zu batch(es) "
          "degrade to the name channel",
          i, s.attempts, s.batches.size());
    } else {
      s.phase = ShardState::Phase::kPending;
      const int64_t backoff_ms =
          static_cast<int64_t>(shards.retry_backoff_ms)
          << (s.attempts - 1);
      s.earliest_spawn =
          Clock::now() + std::chrono::milliseconds(backoff_ms);
      ++stats.workers_retried;
    }
  };

  while (open_shards > 0) {
    const auto now = Clock::now();
    for (int32_t i = 0; i < shards.num_shards; ++i) {
      ShardState& s = states[static_cast<size_t>(i)];
      if (s.phase == ShardState::Phase::kPending && now >= s.earliest_spawn) {
        std::vector<std::string> argv = shards.worker_command;
        argv.push_back("--shard-worker=" + std::to_string(i));
        argv.push_back("--shards=" + std::to_string(shards.num_shards));
        argv.push_back("--checkpoint-dir=" + dir);
        argv.push_back("--resume=true");
        argv.push_back("--shard-heartbeat-file=" + s.heartbeat_file);
        argv.push_back("--shard-heartbeat-ms=" +
                       std::to_string(shards.heartbeat_interval_ms));
        if (shards.capture_worker_traces) {
          argv.push_back("--trace-out=" + ShardTracePath(dir, i));
        }
        const std::string log_path = dir + "/worker-" + std::to_string(i) +
                                     "-attempt-" +
                                     std::to_string(s.attempts + 1) + ".log";
        // A fresh monitor per attempt: the heartbeat baseline must not
        // carry over, or a respawn writing the same first beat as its
        // predecessor would look stalled.
        std::error_code ec;
        std::filesystem::remove(s.heartbeat_file, ec);
        auto spawned = SpawnProcess(argv, shards.worker_env, log_path);
        if (!spawned.ok()) {
          ++s.attempts;
          classify_failure(i, s, spawned.status().message());
          continue;
        }
        s.pid = spawned.value();
        s.phase = ShardState::Phase::kRunning;
        ++s.attempts;
        s.spawn_time = now;
        s.last_progress = now;
        s.monitor.emplace(s.heartbeat_file);
        ++stats.workers_launched;
        LARGEEA_LOG_INFO("shard %d attempt %d: spawned pid %d (%zu batches)",
                         i, s.attempts, static_cast<int>(s.pid),
                         s.batches.size());
        continue;
      }
      if (s.phase != ShardState::Phase::kRunning) continue;

      const ProcessStatus ps = PollProcess(s.pid);
      if (!ps.running()) {
        if (ps.succeeded()) {
          // Exit 0 is a claim, not proof: verify the artifacts load.
          if (ShardComplete(checkpoint, s.batches)) {
            s.phase = ShardState::Phase::kDone;
            s.pid = -1;
            s.monitor.reset();
            --open_shards;
            LARGEEA_LOG_INFO("shard %d: complete after %d attempt(s)", i,
                             s.attempts);
          } else {
            classify_failure(i, s, "exited 0 but batch artifacts missing "
                                   "or unloadable");
          }
        } else if (ps.state == ProcessStatus::State::kSignaled) {
          classify_failure(i, s,
                           "killed by signal " +
                               std::to_string(ps.term_signal));
        } else {
          classify_failure(i, s, "exit code " +
                                     std::to_string(ps.exit_code));
        }
        continue;
      }

      if (s.monitor && s.monitor->Poll()) s.last_progress = Clock::now();
      const auto current = Clock::now();
      if (deadline.count() > 0 && current - s.spawn_time > deadline) {
        KillProcess(s.pid);
        WaitProcess(s.pid);
        ++stats.workers_killed_deadline;
        classify_failure(i, s, "over wall-clock deadline");
        continue;
      }
      if (hb_timeout.count() > 0 && current - s.last_progress > hb_timeout) {
        // Content-change detection on our own clock: a SIGSTOPped or
        // livelocked worker stops rewriting the file, and no amount of
        // clock skew between processes can fake progress.
        KillProcess(s.pid);
        WaitProcess(s.pid);
        ++stats.workers_killed_hung;
        classify_failure(i, s, "heartbeat stale (hung)");
        continue;
      }
    }
    if (open_shards > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(shards.poll_interval_ms));
    }
  }

  if (stats.shards_degraded > 0 && !shards.degrade_failed_shards) {
    return UnavailableError(
        std::to_string(stats.shards_degraded) +
        " shard(s) failed after retries and degradation is disabled");
  }

  LARGEEA_INJECT_FAULT("shard.orchestrator.merge");

  // --- Phase C: merge through the single-process resume path. Every
  // present batch artifact loads at the in-order merge cursor exactly as
  // a local run's would; batches a degraded shard never produced are
  // classified failed-on-load and dropped with the existing counted
  // degradation (structure channel falls back to M_n for those pairs).
  LargeEaOptions merged = options;
  merged.fault_tolerance.resume = true;
  merged.structure_channel.resume_missing_batches_as_failed = true;
  merged.structure_channel.drop_failed_batches = shards.degrade_failed_shards;
  auto result = RunLargeEa(dataset, merged);
  if (!result.ok()) {
    return result.status().WithContext("shard orchestrator: merge");
  }

  if (shards.capture_worker_traces) {
    for (int32_t i = 0; i < shards.num_shards; ++i) {
      if (!states[static_cast<size_t>(i)].batches.empty()) {
        stats.worker_trace_files.push_back(ShardTracePath(dir, i));
      }
    }
  }

  auto& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("shard.launched").Add(stats.workers_launched);
  registry.GetCounter("shard.retried").Add(stats.workers_retried);
  registry.GetCounter("shard.degraded").Add(stats.shards_degraded);
  registry.GetCounter("shard.resumed").Add(stats.shards_resumed);
  registry.GetCounter("shard.killed_hung").Add(stats.workers_killed_hung);
  registry.GetCounter("shard.killed_deadline")
      .Add(stats.workers_killed_deadline);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace largeea::shard
