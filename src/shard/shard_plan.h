// Shard planning: which METIS-CPS mini-batches each worker process owns.
//
// The batch is the paper's own unit of scale (Section 2.2), and PR 2
// made it the unit of recovery — every trained batch persists its
// similarity block as a checksummed checkpoint artifact. The shard
// layer builds on exactly that: shard s owns every trainable batch b
// with b % num_shards == s, a pure function of the checkpointed batch
// set, so the orchestrator, each worker, and a resumed orchestrator all
// derive the *same* plan independently, with no plan file to corrupt.
#ifndef LARGEEA_SHARD_SHARD_PLAN_H_
#define LARGEEA_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/partition/mini_batch.h"
#include "src/rt/checkpoint.h"

namespace largeea::shard {

/// The batch→shard assignment for one run. Only trainable batches are
/// assigned; too-small batches are skipped by every process identically.
struct ShardPlan {
  int32_t num_shards = 0;
  /// batches_of[s] = ascending batch indices shard s owns. A trailing
  /// shard can be empty when num_shards exceeds the trainable batch
  /// count; empty shards are complete by definition and never spawned.
  std::vector<std::vector<size_t>> batches_of;

  int64_t total_batches() const {
    int64_t n = 0;
    for (const auto& b : batches_of) n += static_cast<int64_t>(b.size());
    return n;
  }
};

/// Deterministic round-robin assignment of the trainable batches in
/// `batches` over `num_shards` shards (requires num_shards >= 1).
ShardPlan PlanShards(const MiniBatchSet& batches, int32_t num_shards);

/// True when every batch in `batch_indices` has a loadable similarity
/// artifact in `checkpoint` — the shard's completion predicate, checked
/// against shared disk so a restarted orchestrator re-attaches to
/// finished shards instead of recomputing them. A corrupt artifact
/// fails the check (and is quarantined by the load), which is what
/// forces the owning shard to be re-run.
bool ShardComplete(rt::CheckpointManager& checkpoint,
                   const std::vector<size_t>& batch_indices);

}  // namespace largeea::shard

#endif  // LARGEEA_SHARD_SHARD_PLAN_H_
