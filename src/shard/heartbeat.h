// Worker liveness via heartbeat files on shared disk.
//
// A worker process cannot be trusted to report its own death, and an
// exit code cannot distinguish "still training a slow batch" from
// "wedged in a deadlock". The heartbeat file resolves the ambiguity
// with one observable: a counter the worker rewrites every interval.
// The orchestrator never compares file timestamps or clocks across
// processes — it remembers the last *content* it saw and how long ago
// (on its own steady clock) the content last changed. A frozen worker
// (SIGSTOP, deadlock, infinite loop with the writer thread starved)
// stops changing the content; wall-clock skew between machines is
// irrelevant.
#ifndef LARGEEA_SHARD_HEARTBEAT_H_
#define LARGEEA_SHARD_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace largeea::shard {

/// Worker side: rewrites `path` with an increasing beat counter and a
/// phase label every `interval_ms` on a dedicated thread (atomic
/// tmp+rename writes, so the orchestrator never reads a torn beat).
/// Construction writes the first beat synchronously; destruction stops
/// the thread and leaves the file behind for post-mortems.
class HeartbeatWriter {
 public:
  HeartbeatWriter(std::string path, int32_t interval_ms);
  ~HeartbeatWriter();

  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  /// Labels subsequent beats ("partition", "train", "finalize") — pure
  /// diagnostics for the orchestrator's failure classification logs.
  void SetPhase(std::string phase);

  int64_t beats() const { return beats_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void WriteBeat();

  std::string path_;
  int32_t interval_ms_;
  std::atomic<int64_t> beats_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::string phase_ = "start";  ///< guarded by mu_
  bool stopping_ = false;        ///< guarded by mu_
  std::thread thread_;
};

/// Orchestrator side: the content-change detector for one worker's
/// heartbeat file. Thread-compatible; owned by the supervision loop.
class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(std::string path);

  /// Re-reads the file; returns true when its content changed since the
  /// last Poll (a missing file counts as unchanged — the worker may not
  /// have started yet, which the spawn deadline covers).
  bool Poll();

  /// Last content seen ("beat 42 train"), for failure classification.
  const std::string& last_content() const { return last_content_; }

 private:
  std::string path_;
  std::string last_content_;
};

}  // namespace largeea::shard

#endif  // LARGEEA_SHARD_HEARTBEAT_H_
