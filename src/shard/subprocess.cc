#include "src/shard/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace largeea::shard {

namespace {

ProcessStatus Classify(int wait_status) {
  ProcessStatus out;
  if (WIFEXITED(wait_status)) {
    out.state = ProcessStatus::State::kExited;
    out.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    out.state = ProcessStatus::State::kSignaled;
    out.term_signal = WTERMSIG(wait_status);
  }
  return out;
}

}  // namespace

StatusOr<pid_t> SpawnProcess(const std::vector<std::string>& argv,
                             const std::vector<std::string>& extra_env,
                             const std::string& output_path) {
  if (argv.empty()) return InvalidArgumentError("empty argv");

  // Materialise argv/envp before forking: the child must not allocate
  // (malloc may hold a lock owned by another thread at fork time).
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  std::vector<char*> cenv;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    cenv.push_back(*e);
  }
  for (const std::string& e : extra_env) {
    cenv.push_back(const_cast<char*>(e.c_str()));
  }
  cenv.push_back(nullptr);

  int out_fd = -1;
  if (!output_path.empty()) {
    out_fd = ::open(output_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (out_fd < 0) {
      return UnavailableError("cannot open worker log '" + output_path +
                              "': " + ::strerror(errno));
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (out_fd >= 0) ::close(out_fd);
    return UnavailableError(std::string("fork failed: ") +
                            ::strerror(errno));
  }
  if (pid == 0) {
    // Child: async-signal-safe territory only.
    if (out_fd >= 0) {
      ::dup2(out_fd, STDOUT_FILENO);
      ::dup2(out_fd, STDERR_FILENO);
      ::close(out_fd);
    }
    ::execve(cargv[0], cargv.data(), cenv.data());
    // Exec failed; 127 is the shell convention for "command not found".
    ::_exit(127);
  }
  if (out_fd >= 0) ::close(out_fd);
  return pid;
}

ProcessStatus PollProcess(pid_t pid) {
  int wait_status = 0;
  const pid_t r = ::waitpid(pid, &wait_status, WNOHANG);
  if (r == 0) return ProcessStatus{};  // still running
  if (r < 0) {
    // Already reaped (or never ours): report a clean exit-with-error so
    // the supervision loop classifies and moves on instead of spinning.
    ProcessStatus out;
    out.state = ProcessStatus::State::kExited;
    out.exit_code = 255;
    return out;
  }
  return Classify(wait_status);
}

ProcessStatus WaitProcess(pid_t pid) {
  int wait_status = 0;
  while (::waitpid(pid, &wait_status, 0) < 0) {
    if (errno != EINTR) {
      ProcessStatus out;
      out.state = ProcessStatus::State::kExited;
      out.exit_code = 255;
      return out;
    }
  }
  return Classify(wait_status);
}

void KillProcess(pid_t pid) { ::kill(pid, SIGKILL); }

}  // namespace largeea::shard
