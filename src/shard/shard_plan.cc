#include "src/shard/shard_plan.h"

#include "src/common/macros.h"
#include "src/core/structure_channel.h"

namespace largeea::shard {

ShardPlan PlanShards(const MiniBatchSet& batches, int32_t num_shards) {
  LARGEEA_CHECK_GE(num_shards, 1);
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.batches_of.resize(static_cast<size_t>(num_shards));
  for (size_t b = 0; b < batches.size(); ++b) {
    if (!StructureBatchTrainable(batches[b])) continue;
    plan.batches_of[b % static_cast<size_t>(num_shards)].push_back(b);
  }
  return plan;
}

bool ShardComplete(rt::CheckpointManager& checkpoint,
                   const std::vector<size_t>& batch_indices) {
  for (const size_t b : batch_indices) {
    if (!checkpoint.LoadMatrix(StructureBatchArtifactKind(b)).ok()) {
      return false;
    }
  }
  return true;
}

}  // namespace largeea::shard
