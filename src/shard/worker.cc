#include "src/shard/worker.h"

#include <memory>
#include <optional>

#include "src/core/pipeline_fingerprint.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"
#include "src/rt/checkpoint.h"
#include "src/rt/fault_injection.h"
#include "src/shard/heartbeat.h"
#include "src/shard/shard_plan.h"

namespace largeea::shard {

Status RunShardWorker(const EaDataset& dataset,
                      const LargeEaOptions& options,
                      const ShardWorkerOptions& worker) {
  if (options.fault_tolerance.checkpoint_dir.empty()) {
    return InvalidArgumentError("shard worker requires --checkpoint-dir");
  }
  if (worker.shard_count < 1 || worker.shard_index < 0 ||
      worker.shard_index >= worker.shard_count) {
    return InvalidArgumentError(
        "shard index " + std::to_string(worker.shard_index) +
        " out of range for " + std::to_string(worker.shard_count) +
        " shards");
  }

  obs::Span span("shard/worker");
  span.AddAttr("shard", static_cast<int64_t>(worker.shard_index));

  std::optional<HeartbeatWriter> heartbeat;
  if (!worker.heartbeat_file.empty()) {
    heartbeat.emplace(worker.heartbeat_file, worker.heartbeat_interval_ms);
  }
  LARGEEA_INJECT_FAULT("shard.worker.start");

  // The fingerprints come from the orchestrator's options, BEFORE the
  // worker-side adjustments below: shard layout and the skipped CSLS
  // pass must never produce artifacts the parent would reject. The
  // per-node batch fingerprint excludes apply_csls by design (blocks
  // are saved pre-CSLS), so the adjusted options below would stamp the
  // same batch fingerprint anyway.
  rt::CheckpointManager checkpoint = MakePipelineCheckpointManager(
      dataset, options, options.fault_tolerance.checkpoint_dir,
      /*resume=*/true);

  StructureChannelOptions structure = options.structure_channel;
  structure.shard_count = worker.shard_count;
  structure.shard_index = worker.shard_index;
  // CSLS rescales across the whole M_s; it belongs to the merge phase.
  structure.apply_csls = false;
  // A batch the worker cannot train is a worker failure — degradation
  // policy (drop vs fail the run) is the orchestrator's call, after
  // retries across fresh processes are exhausted.
  structure.drop_failed_batches = false;

  if (heartbeat) heartbeat->SetPhase("train");
  auto trained = RunStructureChannel(dataset.source, dataset.target,
                                     /*seeds=*/{}, structure, &checkpoint);
  if (!trained.ok()) {
    return trained.status().WithContext(
        "shard worker " + std::to_string(worker.shard_index));
  }

  if (heartbeat) heartbeat->SetPhase("finalize");
  LARGEEA_INJECT_FAULT("shard.worker.finalize");

  // Trust nothing that is not on disk: training can succeed while every
  // checkpoint save fails (best-effort writes, full disk). The contract
  // with the orchestrator is "exit 0 == my artifacts load".
  const ShardPlan plan =
      PlanShards(trained->batches, worker.shard_count);
  const auto& mine = plan.batches_of[static_cast<size_t>(worker.shard_index)];
  if (!ShardComplete(checkpoint, mine)) {
    return UnavailableError(
        "shard " + std::to_string(worker.shard_index) +
        ": trained, but not every batch artifact is loadable "
        "(checkpoint writes failing? disk full?)");
  }
  LARGEEA_LOG_INFO("shard worker %d: %zu batch(es) trained and verified",
                   worker.shard_index, mine.size());
  return OkStatus();
}

}  // namespace largeea::shard
