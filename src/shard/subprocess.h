// Minimal POSIX subprocess supervision: spawn, poll, kill, reap.
//
// Deliberately not a general process library — just the four operations
// the shard orchestrator needs, with the two properties it cares about:
// (a) everything between fork() and execve() is async-signal-safe
// (argv/envp arrays are materialised *before* forking, the child only
// dup2s and execs), because the orchestrator forks from a process with
// live threads; (b) polling never blocks (waitpid WNOHANG), so one hung
// worker cannot stall supervision of the others.
#ifndef LARGEEA_SHARD_SUBPROCESS_H_
#define LARGEEA_SHARD_SUBPROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "src/rt/status.h"

namespace largeea::shard {

/// Outcome of one Poll/Wait on a child.
struct ProcessStatus {
  enum class State { kRunning, kExited, kSignaled };
  State state = State::kRunning;
  int exit_code = 0;    ///< valid when kExited
  int term_signal = 0;  ///< valid when kSignaled

  bool running() const { return state == State::kRunning; }
  bool succeeded() const {
    return state == State::kExited && exit_code == 0;
  }
};

/// Forks and execs `argv` (argv[0] is the binary path). `extra_env`
/// entries ("NAME=value") are appended to the inherited environment —
/// later entries win over inherited ones at getenv time on every libc
/// that scans linearly, but pass distinct names to be portable. When
/// `output_path` is non-empty, the child's stdout+stderr are redirected
/// there (truncating), keeping worker chatter out of the orchestrator's
/// terminal and preserving it for failure forensics.
StatusOr<pid_t> SpawnProcess(const std::vector<std::string>& argv,
                             const std::vector<std::string>& extra_env,
                             const std::string& output_path);

/// Non-blocking status check; reaps the child if it finished.
ProcessStatus PollProcess(pid_t pid);

/// Blocks until the child finishes; reaps it.
ProcessStatus WaitProcess(pid_t pid);

/// SIGKILL — for workers classified as hung or over deadline. The
/// caller must still Poll/Wait to reap the corpse.
void KillProcess(pid_t pid);

}  // namespace largeea::shard

#endif  // LARGEEA_SHARD_SUBPROCESS_H_
