// Shard worker: the in-process half of `largeea_cli --shard-worker`.
//
// A worker is a whole largeea_cli process that trains exactly one
// shard's mini-batches against the shared checkpoint directory and then
// exits. It never runs the name channel, never merges, never evaluates:
// its only output is the per-batch similarity artifacts it checkpoints,
// written under the SAME config fingerprint the orchestrator computes,
// so the merge phase cannot tell worker-trained blocks from blocks
// trained in-process (the root of the bit-identity guarantee,
// DESIGN.md §12).
#ifndef LARGEEA_SHARD_WORKER_H_
#define LARGEEA_SHARD_WORKER_H_

#include <cstdint>
#include <string>

#include "src/core/large_ea.h"
#include "src/kg/dataset.h"
#include "src/rt/status.h"

namespace largeea::shard {

struct ShardWorkerOptions {
  int32_t shard_index = 0;
  int32_t shard_count = 1;
  /// Heartbeat file to rewrite while alive; empty disables (tests).
  std::string heartbeat_file;
  int32_t heartbeat_interval_ms = 200;
};

/// Trains this worker's shard of the structure channel. `options` must
/// be the orchestrator's ORIGINAL pipeline options (the fingerprint is
/// computed from them before any worker-side adjustment). Requires the
/// partition artifact to already exist. Fails — with a non-zero exit in
/// the CLI — when any assigned batch ends the run without a loadable
/// artifact, so a silently failing checkpoint disk (disk-full) turns
/// into a classified worker failure instead of a wrong merge.
Status RunShardWorker(const EaDataset& dataset,
                      const LargeEaOptions& options,
                      const ShardWorkerOptions& worker);

}  // namespace largeea::shard

#endif  // LARGEEA_SHARD_WORKER_H_
