#include "src/shard/heartbeat.h"

#include <chrono>
#include <utility>

#include "src/rt/io_util.h"

namespace largeea::shard {

HeartbeatWriter::HeartbeatWriter(std::string path, int32_t interval_ms)
    : path_(std::move(path)), interval_ms_(interval_ms) {
  WriteBeat();
  thread_ = std::thread([this] { Loop(); });
}

HeartbeatWriter::~HeartbeatWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void HeartbeatWriter::SetPhase(std::string phase) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = std::move(phase);
  }
  // Beat immediately so the orchestrator's logs see phase transitions
  // without waiting out an interval.
  WriteBeat();
}

void HeartbeatWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    WriteBeat();
    lock.lock();
  }
}

void HeartbeatWriter::WriteBeat() {
  const int64_t beat = beats_.fetch_add(1) + 1;
  std::string phase;
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase = phase_;
  }
  // Best-effort: a worker that cannot write beats will be classified as
  // hung and SIGKILLed — which is the correct outcome for a worker whose
  // scratch disk has died under it.
  (void)rt::AtomicallyWriteFile(
      path_, "beat " + std::to_string(beat) + ' ' + phase + '\n');
}

HeartbeatMonitor::HeartbeatMonitor(std::string path)
    : path_(std::move(path)) {}

bool HeartbeatMonitor::Poll() {
  auto content = rt::ReadFileToString(path_);
  if (!content.ok()) return false;
  if (*content == last_content_) return false;
  last_content_ = std::move(content).value();
  return true;
}

}  // namespace largeea::shard
