// Levenshtein edit distance and the derived string similarity.
//
// The production distance is Myers' bit-parallel algorithm: one 64-bit
// word tracks the +1/-1 deltas of a whole DP column, so the inner loop
// does O(ceil(|shorter|/64)) word operations per character of the longer
// string instead of O(|shorter|) cell updates. It is exact and integer,
// so — unlike the float kernels — identical on every ISA by
// construction. The classic DP survives as LevenshteinDistanceDp, the
// test oracle the bit-parallel versions are fuzzed against.
#ifndef LARGEEA_NAME_LEVENSHTEIN_H_
#define LARGEEA_NAME_LEVENSHTEIN_H_

#include <cstdint>
#include <string_view>

namespace largeea {

/// Classic edit distance (insert/delete/substitute, all cost 1).
/// Myers' bit-parallel algorithm: O(ceil(min/64) * max) time.
int32_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Reference DP implementation of the same distance. O(|a| * |b|) time,
/// O(min) memory. Kept as the oracle for the bit-parallel versions (and
/// as the pre-SIMD baseline in `bench_micro --mode=backend`).
int32_t LevenshteinDistanceDp(std::string_view a, std::string_view b);

/// Edit distance capped at `max_distance` (>= 0): returns the exact
/// distance when it is <= max_distance, and max_distance + 1 as soon as
/// the cap is provably exceeded. Runs a banded DP over the
/// 2*max_distance+1 diagonal band and bails out the moment a whole row
/// exceeds the cap, so a hopeless pair costs O(max_distance * |longer|)
/// at worst and often just the length-difference check.
int32_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                   int32_t max_distance);

/// Normalised similarity in [0, 1]: 1 - distance / max(|a|, |b|).
/// Two empty strings score 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace largeea

#endif  // LARGEEA_NAME_LEVENSHTEIN_H_
