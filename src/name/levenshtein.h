// Levenshtein edit distance and the derived string similarity.
#ifndef LARGEEA_NAME_LEVENSHTEIN_H_
#define LARGEEA_NAME_LEVENSHTEIN_H_

#include <cstdint>
#include <string_view>

namespace largeea {

/// Classic edit distance (insert/delete/substitute, all cost 1).
/// O(|a| * |b|) time, O(min) memory.
int32_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalised similarity in [0, 1]: 1 - distance / max(|a|, |b|).
/// Two empty strings score 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace largeea

#endif  // LARGEEA_NAME_LEVENSHTEIN_H_
