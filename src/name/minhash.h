// MinHash signatures and LSH banding (datasketch substitute).
//
// STNS needs the Jaccard-similar name pairs without comparing all
// |Es| x |Et| names. MinHash signatures estimate Jaccard similarity of
// token sets; LSH banding buckets signatures so that pairs above the
// threshold collide in at least one band with high probability.
#ifndef LARGEEA_NAME_MINHASH_H_
#define LARGEEA_NAME_MINHASH_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/name/tokenizer.h"

namespace largeea {

/// A fixed family of `num_permutations` universal hash functions; all
/// signatures meant to be compared must come from the same family.
class MinHasher {
 public:
  MinHasher(int32_t num_permutations, uint64_t seed);

  /// Signature of a token multiset (duplicates are irrelevant). An empty
  /// token list yields the all-max signature (similar to nothing).
  std::vector<uint64_t> Signature(
      const std::vector<std::string>& tokens) const;

  /// Jaccard estimate: fraction of positions where signatures agree.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  int32_t num_permutations() const {
    return static_cast<int32_t>(mult_.size());
  }

 private:
  std::vector<uint64_t> mult_;
  std::vector<uint64_t> add_;
};

/// LSH banding over MinHash signatures: signatures are split into
/// `num_bands` bands of `rows_per_band` values; two items collide if any
/// band hashes identically.
class MinHashLsh {
 public:
  /// num_bands * rows_per_band must equal the signature length used.
  MinHashLsh(int32_t num_bands, int32_t rows_per_band);

  /// Inserts an item with the given signature.
  void Insert(int32_t id, const std::vector<uint64_t>& signature);

  /// Returns the de-duplicated ids colliding with `signature`.
  std::vector<int32_t> Query(const std::vector<uint64_t>& signature) const;

  /// Like Query(), but keeps at most `limit` ids, preferring those that
  /// collide in more bands (a higher band count is a higher Jaccard
  /// estimate). Ties and the returned order are id-ascending, so the
  /// cut is deterministic. With `limit <= 0` or fewer collisions than
  /// `limit`, identical to Query(). Serving uses this to bound the
  /// re-rank cost of one query against a popular bucket.
  std::vector<int32_t> QueryTop(const std::vector<uint64_t>& signature,
                                int32_t limit) const;

 private:
  uint64_t BandKey(const std::vector<uint64_t>& signature,
                   int32_t band) const;

  int32_t num_bands_;
  int32_t rows_per_band_;
  std::vector<std::unordered_map<uint64_t, std::vector<int32_t>>> buckets_;
};

}  // namespace largeea

#endif  // LARGEEA_NAME_MINHASH_H_
