#include "src/name/levenshtein.h"

#include <algorithm>
#include <vector>

#include "src/common/macros.h"

namespace largeea {
namespace {

// Myers (1999) bit-parallel edit distance, single-word case
// (|pattern| <= 64). Pv/Mv hold the +1/-1 vertical deltas of the current
// DP column; each text character advances the whole column in a handful
// of word operations. The score tracks D[m][j] via the horizontal delta
// at the pattern's last row.
int32_t MyersDistance64(std::string_view pattern, std::string_view text) {
  const size_t m = pattern.size();
  uint64_t peq[256] = {};
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<uint8_t>(pattern[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  auto score = static_cast<int32_t>(m);
  const uint64_t last = uint64_t{1} << (m - 1);
  for (const char tc : text) {
    const uint64_t eq = peq[static_cast<uint8_t>(tc)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) ++score;
    if (mh & last) --score;
    ph = (ph << 1) | 1;  // the DP's first row increases by 1 per column
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Multi-word case (|pattern| > 64): the column lives in ceil(m/64)
// blocks chained through horizontal carries (Hyyrö's block formulation).
// hin/hout in {-1, 0, +1} are the horizontal delta entering the bottom
// of a block / leaving its top.
int32_t MyersDistanceBlocks(std::string_view pattern, std::string_view text) {
  const size_t m = pattern.size();
  const size_t blocks = (m + 63) / 64;
  std::vector<uint64_t> peq(blocks * 256, 0);
  for (size_t i = 0; i < m; ++i) {
    peq[(i >> 6) * 256 + static_cast<uint8_t>(pattern[i])] |=
        uint64_t{1} << (i & 63);
  }
  std::vector<uint64_t> pv(blocks, ~uint64_t{0});
  std::vector<uint64_t> mv(blocks, 0);
  auto score = static_cast<int32_t>(m);
  const size_t last_block = blocks - 1;
  const uint64_t last_bit = uint64_t{1} << ((m - 1) & 63);
  constexpr uint64_t kHighBit = uint64_t{1} << 63;
  for (const char tc : text) {
    int hin = 1;  // first row of the DP increases by 1 per column
    for (size_t b = 0; b < blocks; ++b) {
      uint64_t eq = peq[b * 256 + static_cast<uint8_t>(tc)];
      const uint64_t pvb = pv[b];
      const uint64_t mvb = mv[b];
      const uint64_t xv = eq | mvb;
      if (hin < 0) eq |= 1;
      const uint64_t xh = (((eq & pvb) + pvb) ^ pvb) | eq;
      uint64_t ph = mvb | ~(xh | pvb);
      uint64_t mh = pvb & xh;
      if (b == last_block) {
        if (ph & last_bit) ++score;
        if (mh & last_bit) --score;
      }
      int hout = 0;
      if (ph & kHighBit) hout = 1;
      if (mh & kHighBit) hout = -1;
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) ph |= 1;
      if (hin < 0) mh |= 1;
      pv[b] = mh | ~(xv | ph);
      mv[b] = ph & xv;
      hin = hout;
    }
  }
  return score;
}

}  // namespace

int32_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter (pattern)
  if (b.empty()) return static_cast<int32_t>(a.size());
  return b.size() <= 64 ? MyersDistance64(b, a) : MyersDistanceBlocks(b, a);
}

int32_t LevenshteinDistanceDp(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  if (b.empty()) return static_cast<int32_t>(a.size());

  std::vector<int32_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<int32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    int32_t diagonal = row[0];  // D[i-1][j-1]
    row[0] = static_cast<int32_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const int32_t up = row[j];  // D[i-1][j]
      const int32_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, substitution});
      diagonal = up;
    }
  }
  return row[b.size()];
}

int32_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                   int32_t max_distance) {
  LARGEEA_CHECK_GE(max_distance, 0);
  if (a.size() < b.size()) std::swap(a, b);  // a is the longer
  const auto la = static_cast<int64_t>(a.size());
  const auto lb = static_cast<int64_t>(b.size());
  // Every alignment needs at least |la - lb| insertions — the common
  // rejection for non-matching candidate pairs, costing nothing.
  if (la - lb > max_distance) return max_distance + 1;
  if (lb == 0) return static_cast<int32_t>(la);  // la <= max_distance here
  if (max_distance >= la) return LevenshteinDistance(a, b);

  // Banded DP: D[i][j] >= |i - j|, so cells outside the band
  // |i - j| <= max_distance can never come back under the cap and are
  // pinned at `inf`. One row of the band costs O(2*max_distance+1).
  const int32_t inf = max_distance + 1;
  std::vector<int32_t> row(b.size() + 1);
  for (int64_t j = 0; j <= lb; ++j) {
    row[j] = j <= max_distance ? static_cast<int32_t>(j) : inf;
  }
  for (int64_t i = 1; i <= la; ++i) {
    const int64_t j_lo = std::max<int64_t>(1, i - max_distance);
    const int64_t j_hi = std::min<int64_t>(lb, i + max_distance);
    // D[i-1][j_lo-1]: column 0 is the boundary D[i-1][0] = i-1 (row[0]
    // keeps its initial value and cannot serve it); elsewhere the band
    // cell computed last row.
    int32_t diagonal =
        j_lo == 1 ? (i - 1 <= max_distance ? static_cast<int32_t>(i - 1) : inf)
                  : row[j_lo - 1];
    // D[i][j_lo-1]: the column-0 boundary inside the band, inf outside.
    int32_t left = (j_lo == 1 && i <= max_distance)
                       ? static_cast<int32_t>(i)
                       : inf;
    int32_t row_min = inf;
    for (int64_t j = j_lo; j <= j_hi; ++j) {
      const int32_t up = row[j];  // D[i-1][j]
      const int32_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      const int32_t value =
          std::min({std::min(left, up) + 1, substitution, inf});
      diagonal = up;
      left = value;
      row[j] = value;
      row_min = std::min(row_min, value);
    }
    // The cell just right of the band leaves it next row; make sure its
    // stale in-band value from an earlier row cannot be read as D[i][j].
    if (j_hi < lb) row[j_hi + 1] = inf;
    if (row_min > max_distance) return max_distance + 1;  // cannot recover
  }
  return std::min(row[lb], inf);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace largeea
