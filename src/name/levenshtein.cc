#include "src/name/levenshtein.h"

#include <algorithm>
#include <vector>

namespace largeea {

int32_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  if (b.empty()) return static_cast<int32_t>(a.size());

  std::vector<int32_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<int32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    int32_t diagonal = row[0];  // D[i-1][j-1]
    row[0] = static_cast<int32_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const int32_t up = row[j];  // D[i-1][j]
      const int32_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, substitution});
      diagonal = up;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace largeea
