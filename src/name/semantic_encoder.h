// SENS semantic name encoder (the paper's BERT substitute).
//
// The paper feeds entity names through BERT, pools the token embeddings,
// and L2-normalises — *without fine-tuning*, because training is
// unaffordable at DBP1M scale. The only property SENS needs from the
// encoder is that names sharing meaning land close in embedding space
// and unrelated names land far apart.
//
// This encoder gets that property without pretrained weights via signed
// feature hashing: every token (word or character n-gram) activates a few
// pseudo-random dimensions with ±1 values, an entity embedding is the
// (optionally IDF-weighted) sum of its token features, and rows are
// L2-normalised (the paper's h_e / (||h_e|| + eps)). Cognate names share
// most n-gram tokens and therefore most active features; unrelated names
// collide only by chance. See DESIGN.md §1 for the substitution rationale.
#ifndef LARGEEA_NAME_SEMANTIC_ENCODER_H_
#define LARGEEA_NAME_SEMANTIC_ENCODER_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/la/matrix.h"
#include "src/name/tokenizer.h"

namespace largeea {

class KnowledgeGraph;

struct SemanticEncoderOptions {
  int32_t dim = 192;
  /// Dimensions each token activates (signed feature hashing).
  int32_t active_slots_per_token = 4;
  /// Weight multiplier for whole-word tokens relative to n-grams; exact
  /// word matches are stronger evidence than shared n-grams.
  float word_token_weight = 1.0f;
  TokenizerOptions tokenizer;
  /// Seed of the hashing family. Must be identical for the two KGs being
  /// aligned (it defines the shared semantic space).
  uint64_t seed = 42;
  float epsilon = 1e-6f;
};

/// Deterministic, training-free name embedder.
///
/// Optionally IDF-weighted: FitIdf() counts token document frequencies
/// over the KGs being aligned so that distinctive tokens dominate the
/// embedding (no training involved — pure corpus statistics, computed the
/// same way for both sides).
class SemanticEncoder {
 public:
  explicit SemanticEncoder(const SemanticEncoderOptions& options);

  /// Computes IDF weights from the entity names of the given KGs.
  /// Call before encoding; both aligned KGs should be passed.
  void FitIdf(const std::vector<const KnowledgeGraph*>& kgs);

  /// Same statistic computed from bare name lists (order across corpora
  /// must match the FitIdf call being reproduced: source then target).
  /// The serve index artifact stores name tables, not KGs, and refits
  /// the query-side encoder at load — document frequency is a multiset
  /// statistic, so the result is bit-identical to the pipeline's fit.
  void FitIdfFromNames(
      const std::vector<const std::vector<std::string>*>& corpora);

  /// Embeds one name into `out` (length dim()): weighted sum of hashed
  /// token features, L2-normalised. A token-less name embeds to zero.
  void EncodeName(std::string_view name, float* out) const;

  /// Embeds every entity name of `kg`; row e is entity e.
  Matrix EncodeAllNames(const KnowledgeGraph& kg) const;

  /// Embeds entities [begin, end); row i is entity begin + i. Encoding
  /// is per-name, so range-encoded tiles are bit-identical to the
  /// corresponding rows of EncodeAllNames (the streaming layer relies
  /// on this).
  Matrix EncodeNameRange(const KnowledgeGraph& kg, EntityId begin,
                         EntityId end) const;

  int32_t dim() const { return options_.dim; }

 private:
  /// Adds `weight` times the signed hashed feature of `token_hash`.
  void AddTokenFeature(uint64_t token_hash, float weight, float* out) const;

  /// Shared per-name document-frequency accumulation for the two fits.
  void CountNameFrequencies(
      std::string_view name,
      std::unordered_map<uint64_t, int64_t>& document_frequency,
      std::unordered_set<uint64_t>& seen_in_name);
  void FinishIdf(
      const std::unordered_map<uint64_t, int64_t>& document_frequency);

  SemanticEncoderOptions options_;
  /// token hash -> IDF weight; empty when FitIdf was not called.
  std::unordered_map<uint64_t, float> idf_;
  int64_t idf_documents_ = 0;
};

}  // namespace largeea

#endif  // LARGEEA_NAME_SEMANTIC_ENCODER_H_
