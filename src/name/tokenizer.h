// Name tokenisation for the semantic encoder and MinHash.
//
// Mirrors what a subword tokenizer gives BERT: lower-cased word tokens
// plus character n-grams, so cognate names in different languages share
// many tokens even when whole words differ slightly.
#ifndef LARGEEA_NAME_TOKENIZER_H_
#define LARGEEA_NAME_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace largeea {

struct TokenizerOptions {
  /// Character n-gram length (3 is the classic choice).
  int32_t ngram_size = 3;
  /// Emit whole lower-cased words as tokens too.
  bool include_words = true;
  /// Emit character n-grams (with word-boundary padding '#').
  bool include_ngrams = true;
};

/// Lower-cases `name`, splits into words on non-alphanumeric characters,
/// and returns word tokens and/or padded character n-grams per `options`.
std::vector<std::string> TokenizeName(std::string_view name,
                                      const TokenizerOptions& options = {});

/// Stable 64-bit hash of a token (FNV-1a); used to map tokens into the
/// hashed embedding table and MinHash universe.
uint64_t TokenHash(std::string_view token);

}  // namespace largeea

#endif  // LARGEEA_NAME_TOKENIZER_H_
