#include "src/name/nff.h"

#include "src/obs/trace.h"

namespace largeea {

NffResult ComputeNameFeatures(const KnowledgeGraph& source,
                              const KnowledgeGraph& target,
                              const NffOptions& options) {
  NffResult result;
  {
    obs::Span sens_span("name/sens");
    sens_span.AddAttr("use_lsh",
                      options.sens.use_lsh ? std::string("true")
                                           : std::string("false"));
    result.semantic = ComputeSemanticSimilarity(source, target, options.sens);
    result.sens_seconds = sens_span.End();
  }
  {
    obs::Span stns_span("name/stns");
    result.string = ComputeStringSimilarity(source, target, options.stns);
    result.stns_seconds = stns_span.End();
  }
  LARGEEA_TRACE_SPAN("name/fuse");
  result.fused = result.semantic.Fuse(result.string, 1.0f,
                                      options.string_weight,
                                      options.max_entries_per_row);
  return result;
}

}  // namespace largeea
