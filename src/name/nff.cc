#include "src/name/nff.h"

#include <utility>

#include "src/obs/trace.h"
#include "src/stream/stream_context.h"

namespace largeea {

NffResult ComputeNameFeatures(const KnowledgeGraph& source,
                              const KnowledgeGraph& target,
                              const NffOptions& options,
                              stream::StreamContext* stream_ctx) {
  NffResult result;
  {
    obs::Span sens_span("name/sens");
    sens_span.AddAttr("use_lsh",
                      options.sens.use_lsh ? std::string("true")
                                           : std::string("false"));
    sens_span.AddAttr("streamed", int64_t{stream_ctx != nullptr});
    result.semantic =
        ComputeSemanticSimilarity(source, target, options.sens, stream_ctx);
    result.sens_seconds = sens_span.End();
  }
  {
    obs::Span stns_span("name/stns");
    result.string = ComputeStringSimilarity(source, target, options.stns);
    result.stns_seconds = stns_span.End();
  }
  LARGEEA_TRACE_SPAN("name/fuse");
  if (stream_ctx != nullptr && stream_ctx->options().release_inputs) {
    // Row-streamed fusion consumes M_se and M_st as it goes; the moved-
    // from members are left empty, which the budget counts on.
    result.fused = SparseSimMatrix::FuseStreamed(
        std::move(result.semantic), std::move(result.string), 1.0f,
        options.string_weight, options.max_entries_per_row);
    result.semantic = SparseSimMatrix();
    result.string = SparseSimMatrix();
  } else {
    result.fused = result.semantic.Fuse(result.string, 1.0f,
                                        options.string_weight,
                                        options.max_entries_per_row);
  }
  return result;
}

}  // namespace largeea
