#include "src/name/nff.h"

#include "src/common/timer.h"

namespace largeea {

NffResult ComputeNameFeatures(const KnowledgeGraph& source,
                              const KnowledgeGraph& target,
                              const NffOptions& options) {
  NffResult result;
  Timer timer;
  result.semantic = ComputeSemanticSimilarity(source, target, options.sens);
  result.sens_seconds = timer.Seconds();
  timer.Reset();
  result.string = ComputeStringSimilarity(source, target, options.stns);
  result.stns_seconds = timer.Seconds();
  result.fused = result.semantic.Fuse(result.string, 1.0f,
                                      options.string_weight,
                                      options.max_entries_per_row);
  return result;
}

}  // namespace largeea
