#include "src/name/string_sim.h"

#include <vector>

#include "src/common/macros.h"
#include "src/name/levenshtein.h"
#include "src/name/minhash.h"

namespace largeea {

SparseSimMatrix ComputeStringSimilarity(const KnowledgeGraph& source,
                                        const KnowledgeGraph& target,
                                        const StnsOptions& options) {
  LARGEEA_CHECK_GT(options.jaccard_threshold, 0.0);
  const int32_t signature_length = options.num_bands * options.rows_per_band;
  const MinHasher hasher(signature_length, options.seed);
  MinHashLsh lsh(options.num_bands, options.rows_per_band);

  // Index the target names.
  std::vector<std::vector<uint64_t>> target_signatures(
      target.num_entities());
  for (EntityId t = 0; t < target.num_entities(); ++t) {
    target_signatures[t] =
        hasher.Signature(TokenizeName(target.EntityName(t),
                                      options.tokenizer));
    lsh.Insert(t, target_signatures[t]);
  }

  SparseSimMatrix m_st(source.num_entities(), target.num_entities(),
                       options.max_entries_per_row);
  for (EntityId s = 0; s < source.num_entities(); ++s) {
    const std::string& source_name = source.EntityName(s);
    const std::vector<uint64_t> signature =
        hasher.Signature(TokenizeName(source_name, options.tokenizer));
    for (const int32_t t : lsh.Query(signature)) {
      if (MinHasher::EstimateJaccard(signature, target_signatures[t]) <
          options.jaccard_threshold) {
        continue;
      }
      const double sim =
          LevenshteinSimilarity(source_name, target.EntityName(t));
      if (sim > 0.0) {
        m_st.Accumulate(s, t, static_cast<float>(sim));
      }
    }
  }
  m_st.RefreshMemoryTracking();
  return m_st;
}

}  // namespace largeea
