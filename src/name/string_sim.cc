#include "src/name/string_sim.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/common/macros.h"
#include "src/name/levenshtein.h"
#include "src/name/minhash.h"
#include "src/obs/profiler.h"
#include "src/par/parallel_for.h"

namespace largeea {
namespace {

// Entities per parallel chunk for signature building and candidate
// scoring. Shape-only constants (DESIGN.md §8).
constexpr int64_t kSignatureGrain = 256;
constexpr int64_t kScoreGrain = 64;

// The largest edit distance a candidate pair may have and still clear
// `sim > threshold` with sim = 1 - distance / longest. Solving for
// distance gives d < (1 - threshold) * longest; one extra unit of slack
// absorbs the float division's rounding so the cap can never reject a
// pair the exact `sim > threshold` comparison would keep (the final
// keep/drop decision always re-checks that comparison).
int32_t AdmissibleDistance(double threshold, size_t longest) {
  const auto length = static_cast<int64_t>(longest);
  const auto bound =
      static_cast<int64_t>((1.0 - threshold) * static_cast<double>(length));
  return static_cast<int32_t>(std::min(length - 1, bound + 1));
}

}  // namespace

SparseSimMatrix ComputeStringSimilarity(const KnowledgeGraph& source,
                                        const KnowledgeGraph& target,
                                        const StnsOptions& options) {
  LARGEEA_CHECK_GT(options.jaccard_threshold, 0.0);
  const int32_t signature_length = options.num_bands * options.rows_per_band;
  const MinHasher hasher(signature_length, options.seed);
  MinHashLsh lsh(options.num_bands, options.rows_per_band);

  // Index the target names. Signatures are independent, so they build in
  // parallel (each task writes its own slot); the LSH inserts mutate
  // shared buckets and stay serial, in id order.
  std::vector<std::vector<uint64_t>> target_signatures(
      target.num_entities());
  {
    // Signature build: each entity's name is hashed signature_length
    // times; the output is one u64 per hash slot.
    obs::ProfileScope prof("name.minhash.signatures");
    prof.AddBytes(0, static_cast<int64_t>(target.num_entities()) *
                         signature_length * 8);
    par::ParallelFor(
        0, target.num_entities(), kSignatureGrain,
        [&](const par::ChunkRange& range) {
          for (int64_t t = range.begin; t < range.end; ++t) {
            target_signatures[t] = hasher.Signature(
                TokenizeName(target.EntityName(static_cast<EntityId>(t)),
                             options.tokenizer));
          }
        });
  }
  for (EntityId t = 0; t < target.num_entities(); ++t) {
    lsh.Insert(t, target_signatures[t]);
  }

  // Score source entities against their LSH candidates in parallel:
  // every chunk collects its (s, t, sim) hits privately, and chunks
  // merge into the sparse matrix in ascending source order.
  SparseSimMatrix m_st(source.num_entities(), target.num_entities(),
                       options.max_entries_per_row);
  using Hit = std::tuple<EntityId, int32_t, float>;
  // Scoring reads each source signature once; candidate Jaccard checks
  // and Levenshtein work are data-dependent and not declared — the
  // profiler still times the pass, it just has no GB/s for it.
  obs::ProfileScope prof("name.stns.score");
  prof.AddBytes(static_cast<int64_t>(source.num_entities()) *
                    signature_length * 8,
                0);
  par::ParallelReduceOrdered<std::vector<Hit>>(
      0, source.num_entities(), kScoreGrain,
      [&](const par::ChunkRange& range, std::vector<Hit>& hits) {
        for (int64_t i = range.begin; i < range.end; ++i) {
          const EntityId s = static_cast<EntityId>(i);
          const std::string& source_name = source.EntityName(s);
          const std::vector<uint64_t> signature =
              hasher.Signature(TokenizeName(source_name, options.tokenizer));
          for (const int32_t t : lsh.Query(signature)) {
            if (MinHasher::EstimateJaccard(signature, target_signatures[t]) <
                options.jaccard_threshold) {
              continue;
            }
            const std::string& target_name = target.EntityName(t);
            const size_t longest =
                std::max(source_name.size(), target_name.size());
            if (longest == 0) {  // two empty names: similarity 1
              if (1.0 > options.levenshtein_threshold) {
                hits.emplace_back(s, t, 1.0f);
              }
              continue;
            }
            // Bail out of scoring as soon as the distance provably
            // exceeds what the similarity threshold admits.
            const int32_t cap =
                AdmissibleDistance(options.levenshtein_threshold, longest);
            const int32_t distance =
                BoundedLevenshteinDistance(source_name, target_name, cap);
            if (distance > cap) continue;
            const double sim = 1.0 - static_cast<double>(distance) /
                                         static_cast<double>(longest);
            if (sim > options.levenshtein_threshold) {
              hits.emplace_back(s, t, static_cast<float>(sim));
            }
          }
        }
      },
      [&](const par::ChunkRange&, std::vector<Hit>&& hits) {
        for (const auto& [s, t, sim] : hits) {
          m_st.Accumulate(s, t, sim);
        }
      });
  m_st.RefreshMemoryTracking();
  return m_st;
}

}  // namespace largeea
