// STNS — string-based name similarity (Section 2.3).
//
// Computing Levenshtein distance for all |Es| x |Et| name pairs is
// intractable, so STNS first finds candidate pairs whose token-set Jaccard
// similarity is at least θ using MinHash-LSH, then scores only those
// candidates with normalised Levenshtein similarity. The result is the
// sparse string similarity matrix M_st.
#ifndef LARGEEA_NAME_STRING_SIM_H_
#define LARGEEA_NAME_STRING_SIM_H_

#include <cstdint>

#include "src/kg/knowledge_graph.h"
#include "src/name/tokenizer.h"
#include "src/sim/sparse_sim.h"

namespace largeea {

struct StnsOptions {
  /// θ — candidate pairs below this (estimated) Jaccard are discarded.
  double jaccard_threshold = 0.5;
  /// τ — scored candidates are kept only when their Levenshtein
  /// similarity exceeds this. Also drives the scoring early exit: the
  /// threshold and the two name lengths bound the admissible edit
  /// distance, so hopeless pairs (the common case for non-matches) are
  /// rejected by a capped/banded distance — often by the length
  /// difference alone. 0 keeps every pair with positive similarity.
  double levenshtein_threshold = 0.0;
  /// MinHash signature length = num_bands * rows_per_band.
  int32_t num_bands = 16;
  int32_t rows_per_band = 4;
  /// Cap on stored candidates per source entity.
  int32_t max_entries_per_row = 50;
  /// Shingling used for the Jaccard universe (character n-grams only, the
  /// datasketch-on-names convention).
  TokenizerOptions tokenizer{.ngram_size = 3,
                             .include_words = false,
                             .include_ngrams = true};
  uint64_t seed = 17;
};

/// Computes M_st between the entity names of the two KGs.
SparseSimMatrix ComputeStringSimilarity(const KnowledgeGraph& source,
                                        const KnowledgeGraph& target,
                                        const StnsOptions& options);

}  // namespace largeea

#endif  // LARGEEA_NAME_STRING_SIM_H_
