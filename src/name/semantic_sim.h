// SENS — semantic name similarity (Section 2.3).
//
// Entity names are embedded by the SemanticEncoder, embeddings are split
// into segments for memory-bounded search, and only the top-φ most
// similar target entities per source entity are retained — the paper's
// Faiss-backed pipeline, with O(k|Es|) instead of O(|Es||Et|) memory.
#ifndef LARGEEA_NAME_SEMANTIC_SIM_H_
#define LARGEEA_NAME_SEMANTIC_SIM_H_

#include <cstdint>

#include "src/kg/knowledge_graph.h"
#include "src/name/semantic_encoder.h"
#include "src/sim/lsh.h"
#include "src/sim/topk_search.h"

namespace largeea {

struct SensOptions {
  SemanticEncoderOptions encoder;
  /// Weight tokens by inverse document frequency over the two KGs'
  /// entity names (pure corpus statistics, no training).
  bool use_idf = true;
  /// φ — semantic candidates kept per source entity.
  int32_t top_k = 50;
  /// Number of segments the embedding matrices are split into; search
  /// runs per segment pair so only one block is hot at a time.
  int32_t num_segments = 1;
  /// Use the approximate LSH path instead of exact blocked search
  /// (the DBP1M-tier setting).
  bool use_lsh = false;
  LshOptions lsh;
  SimMetric metric = SimMetric::kManhattan;
};

namespace stream {
class StreamContext;
}  // namespace stream

/// Computes M_se between the entity names of the two KGs. With a
/// non-null `stream_ctx` the target embeddings are tiled through its
/// spill store and the source is encoded block-by-block, keeping the
/// working set under the memory budget; the result is bit-identical
/// either way.
SparseSimMatrix ComputeSemanticSimilarity(const KnowledgeGraph& source,
                                          const KnowledgeGraph& target,
                                          const SensOptions& options,
                                          stream::StreamContext* stream_ctx =
                                              nullptr);

}  // namespace largeea

#endif  // LARGEEA_NAME_SEMANTIC_SIM_H_
