// Name-based data augmentation (Section 2.3): pseudo seed generation.
//
// Inspired by cycle consistency in word translation — a pair is accepted
// only if the two entities are *mutually* each other's best match in the
// name similarity matrix. Such pairs are precise enough (the paper
// measures ~94% on DBP1M) to serve as extra — or, in the unsupervised
// case, the only — seed alignment.
#ifndef LARGEEA_NAME_DATA_AUGMENTATION_H_
#define LARGEEA_NAME_DATA_AUGMENTATION_H_

#include "src/common/types.h"
#include "src/sim/sparse_sim.h"

namespace largeea {

/// Extracts mutual-nearest-neighbour pairs from `name_sim`, skipping any
/// pair that conflicts with `existing_seeds` (either endpoint already
/// seeded). `min_margin` additionally requires the row's best score to
/// beat its runner-up by that relative margin — ambiguous names (several
/// near-identical candidates) are exactly where mutual-NN errs, so a
/// small margin buys precision for little recall. Output is sorted by
/// source id and 1-to-1 by construction.
EntityPairList GeneratePseudoSeeds(const SparseSimMatrix& name_sim,
                                   const EntityPairList& existing_seeds,
                                   float min_margin = 0.0f);

/// Precision of `pseudo_seeds` against a ground-truth pair list: the
/// fraction whose exact pair appears in `ground_truth`. (Diagnostic for
/// the Table-4 bench; real deployments have no such ground truth.)
double PseudoSeedPrecision(const EntityPairList& pseudo_seeds,
                           const EntityPairList& ground_truth);

}  // namespace largeea

#endif  // LARGEEA_NAME_DATA_AUGMENTATION_H_
