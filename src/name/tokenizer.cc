#include "src/name/tokenizer.h"

#include <cctype>

#include "src/common/macros.h"

namespace largeea {

std::vector<std::string> TokenizeName(std::string_view name,
                                      const TokenizerOptions& options) {
  LARGEEA_CHECK_GT(options.ngram_size, 0);
  std::vector<std::string> tokens;

  // Split into lower-cased words on non-alphanumeric boundaries.
  std::vector<std::string> words;
  std::string current;
  for (const char raw : name) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));

  for (const std::string& word : words) {
    if (options.include_words) tokens.push_back(word);
    if (options.include_ngrams) {
      // Pad with '#' so prefixes/suffixes are distinguishable.
      const std::string padded = "#" + word + "#";
      const auto n = static_cast<size_t>(options.ngram_size);
      if (padded.size() <= n) {
        tokens.push_back(padded);
      } else {
        for (size_t i = 0; i + n <= padded.size(); ++i) {
          tokens.push_back(padded.substr(i, n));
        }
      }
    }
  }
  return tokens;
}

uint64_t TokenHash(std::string_view token) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace largeea
