#include "src/name/data_augmentation.h"

#include <unordered_set>

namespace largeea {

EntityPairList GeneratePseudoSeeds(const SparseSimMatrix& name_sim,
                                   const EntityPairList& existing_seeds,
                                   float min_margin) {
  std::unordered_set<EntityId> seeded_sources, seeded_targets;
  for (const EntityPair& p : existing_seeds) {
    seeded_sources.insert(p.source);
    seeded_targets.insert(p.target);
  }

  const std::vector<EntityId> best_row_of_col = name_sim.ArgmaxPerColumn();
  EntityPairList pseudo;
  for (int32_t s = 0; s < name_sim.num_rows(); ++s) {
    const auto row = name_sim.Row(s);
    if (row.empty()) continue;
    const EntityId t = row[0].column;
    if (best_row_of_col[t] != s) continue;  // not mutual
    if (min_margin > 0.0f && row.size() > 1) {
      // Require a clear winner over the runner-up candidate.
      if (row[0].score < (1.0f + min_margin) * row[1].score) continue;
    }
    if (seeded_sources.contains(s) || seeded_targets.contains(t)) continue;
    pseudo.push_back(EntityPair{s, t});
  }
  return pseudo;
}

double PseudoSeedPrecision(const EntityPairList& pseudo_seeds,
                           const EntityPairList& ground_truth) {
  if (pseudo_seeds.empty()) return 0.0;
  // 64-bit key per pair for set membership.
  std::unordered_set<int64_t> truth;
  truth.reserve(ground_truth.size());
  for (const EntityPair& p : ground_truth) {
    truth.insert((static_cast<int64_t>(p.source) << 32) |
                 static_cast<uint32_t>(p.target));
  }
  int64_t correct = 0;
  for (const EntityPair& p : pseudo_seeds) {
    if (truth.contains((static_cast<int64_t>(p.source) << 32) |
                       static_cast<uint32_t>(p.target))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(pseudo_seeds.size());
}

}  // namespace largeea
