#include "src/name/minhash.h"

#include <algorithm>
#include <limits>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace largeea {

MinHasher::MinHasher(int32_t num_permutations, uint64_t seed) {
  LARGEEA_CHECK_GT(num_permutations, 0);
  Rng rng(seed);
  mult_.resize(num_permutations);
  add_.resize(num_permutations);
  for (int32_t i = 0; i < num_permutations; ++i) {
    mult_[i] = rng.Next() | 1;  // odd multiplier: bijective mod 2^64
    add_[i] = rng.Next();
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> signature(mult_.size(),
                                  std::numeric_limits<uint64_t>::max());
  for (const std::string& token : tokens) {
    const uint64_t h = TokenHash(token);
    for (size_t i = 0; i < mult_.size(); ++i) {
      const uint64_t permuted = h * mult_[i] + add_[i];
      if (permuted < signature[i]) signature[i] = permuted;
    }
  }
  return signature;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  LARGEEA_CHECK_EQ(a.size(), b.size());
  LARGEEA_CHECK(!a.empty());
  int64_t equal = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

MinHashLsh::MinHashLsh(int32_t num_bands, int32_t rows_per_band)
    : num_bands_(num_bands),
      rows_per_band_(rows_per_band),
      buckets_(num_bands) {
  LARGEEA_CHECK_GT(num_bands, 0);
  LARGEEA_CHECK_GT(rows_per_band, 0);
}

uint64_t MinHashLsh::BandKey(const std::vector<uint64_t>& signature,
                             int32_t band) const {
  LARGEEA_CHECK_EQ(static_cast<int32_t>(signature.size()),
                   num_bands_ * rows_per_band_);
  uint64_t key = 0xcbf29ce484222325ULL;
  for (int32_t r = 0; r < rows_per_band_; ++r) {
    key ^= signature[static_cast<size_t>(band) * rows_per_band_ + r];
    key *= 0x100000001b3ULL;
  }
  return key;
}

void MinHashLsh::Insert(int32_t id, const std::vector<uint64_t>& signature) {
  for (int32_t band = 0; band < num_bands_; ++band) {
    buckets_[band][BandKey(signature, band)].push_back(id);
  }
}

std::vector<int32_t> MinHashLsh::Query(
    const std::vector<uint64_t>& signature) const {
  std::vector<int32_t> candidates;
  for (int32_t band = 0; band < num_bands_; ++band) {
    const auto it = buckets_[band].find(BandKey(signature, band));
    if (it == buckets_[band].end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

std::vector<int32_t> MinHashLsh::QueryTop(
    const std::vector<uint64_t>& signature, int32_t limit) const {
  std::vector<int32_t> collisions;  // one entry per (band, id) collision
  for (int32_t band = 0; band < num_bands_; ++band) {
    const auto it = buckets_[band].find(BandKey(signature, band));
    if (it == buckets_[band].end()) continue;
    collisions.insert(collisions.end(), it->second.begin(), it->second.end());
  }
  std::sort(collisions.begin(), collisions.end());

  // Run-length encode into (id, band count); ids stay ascending.
  std::vector<std::pair<int32_t, int32_t>> counted;
  for (size_t i = 0; i < collisions.size();) {
    size_t j = i;
    while (j < collisions.size() && collisions[j] == collisions[i]) ++j;
    counted.push_back({collisions[i], static_cast<int32_t>(j - i)});
    i = j;
  }
  if (limit > 0 && static_cast<int32_t>(counted.size()) > limit) {
    std::nth_element(counted.begin(), counted.begin() + limit, counted.end(),
                     [](const std::pair<int32_t, int32_t>& a,
                        const std::pair<int32_t, int32_t>& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    counted.resize(limit);
  }
  std::vector<int32_t> ids;
  ids.reserve(counted.size());
  for (const auto& [id, count] : counted) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace largeea
