// NFF — name feature fusion (Section 2.3): M_n = M_se + γ · M_st.
#ifndef LARGEEA_NAME_NFF_H_
#define LARGEEA_NAME_NFF_H_

#include "src/name/semantic_sim.h"
#include "src/name/string_sim.h"

namespace largeea {

struct NffOptions {
  SensOptions sens;
  StnsOptions stns;
  /// γ — weight of string similarity in the fusion. The paper uses 0.05
  /// (semantic features dominate).
  float string_weight = 0.05f;
  /// Entries kept per row in the fused M_n.
  int32_t max_entries_per_row = 50;
};

/// The fused name similarity matrix plus its ingredients (kept so the
/// ablation bench can report them separately).
struct NffResult {
  SparseSimMatrix semantic;  ///< M_se
  SparseSimMatrix string;    ///< M_st
  SparseSimMatrix fused;     ///< M_n = M_se + γ·M_st
  double sens_seconds = 0.0;
  double stns_seconds = 0.0;
};

/// Runs SENS and STNS and fuses them. With a non-null `stream_ctx` the
/// semantic search streams target embedding tiles through the spill
/// store and the fusion consumes its inputs row-by-row — `semantic` and
/// `string` come back empty (released) when the context's
/// release_inputs option is set; `fused` is bit-identical either way.
NffResult ComputeNameFeatures(const KnowledgeGraph& source,
                              const KnowledgeGraph& target,
                              const NffOptions& options,
                              stream::StreamContext* stream_ctx = nullptr);

}  // namespace largeea

#endif  // LARGEEA_NAME_NFF_H_
