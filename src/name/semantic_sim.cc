#include "src/name/semantic_sim.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/macros.h"

namespace largeea {

SparseSimMatrix ComputeSemanticSimilarity(const KnowledgeGraph& source,
                                          const KnowledgeGraph& target,
                                          const SensOptions& options) {
  LARGEEA_CHECK_GE(options.num_segments, 1);
  SemanticEncoder encoder(options.encoder);
  if (options.use_idf) encoder.FitIdf({&source, &target});
  const Matrix source_emb = encoder.EncodeAllNames(source);
  const Matrix target_emb = encoder.EncodeAllNames(target);

  SparseSimMatrix m_se(source.num_entities(), target.num_entities(),
                       options.top_k);
  const TopKOptions topk{.k = options.top_k, .metric = options.metric};

  if (options.use_lsh) {
    const LshIndex index(target_emb, options.lsh);
    std::vector<EntityId> row_ids(source.num_entities());
    std::vector<EntityId> col_ids(target.num_entities());
    std::iota(row_ids.begin(), row_ids.end(), 0);
    std::iota(col_ids.begin(), col_ids.end(), 0);
    LshTopKInto(source_emb, row_ids, target_emb, col_ids, index, topk, m_se);
    m_se.RefreshMemoryTracking();
    return m_se;
  }

  // Exact search, one (source segment, target segment) block at a time.
  // Because the sparse matrix keeps a global top-k per row with
  // order-independent tie-breaking, iterating block pairs yields exactly
  // the unsegmented result. Blocks are row-range *views* into the
  // embedding matrices — segmentation bounds the working set without
  // copying a single row. The block loop stays serial (that bounding is
  // its point); the parallelism lives inside ExactTopKInto.
  const int32_t segments = options.num_segments;
  const int64_t src_step =
      (source_emb.rows() + segments - 1) / segments;
  const int64_t tgt_step =
      (target_emb.rows() + segments - 1) / segments;
  for (int64_t sb = 0; sb < source_emb.rows(); sb += src_step) {
    const int64_t se = std::min(sb + src_step, source_emb.rows());
    std::vector<EntityId> row_ids(se - sb);
    std::iota(row_ids.begin(), row_ids.end(), static_cast<EntityId>(sb));
    for (int64_t tb = 0; tb < target_emb.rows(); tb += tgt_step) {
      const int64_t te = std::min(tb + tgt_step, target_emb.rows());
      std::vector<EntityId> col_ids(te - tb);
      std::iota(col_ids.begin(), col_ids.end(), static_cast<EntityId>(tb));
      ExactTopKInto(MatrixRowRange(source_emb, sb, se), row_ids,
                    MatrixRowRange(target_emb, tb, te), col_ids, topk, m_se);
    }
  }
  m_se.RefreshMemoryTracking();
  return m_se;
}

}  // namespace largeea
