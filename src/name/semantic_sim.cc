#include "src/name/semantic_sim.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "src/common/macros.h"
#include "src/sim/similarity_search.h"
#include "src/stream/stream_context.h"

namespace largeea {

SparseSimMatrix ComputeSemanticSimilarity(const KnowledgeGraph& source,
                                          const KnowledgeGraph& target,
                                          const SensOptions& options,
                                          stream::StreamContext* stream_ctx) {
  LARGEEA_CHECK_GE(options.num_segments, 1);
  SemanticEncoder encoder(options.encoder);
  if (options.use_idf) encoder.FitIdf({&source, &target});

  SparseSimMatrix m_se(source.num_entities(), target.num_entities(),
                       options.top_k);
  SimilaritySearchOptions search_options{
      .topk = {.k = options.top_k, .metric = options.metric},
      .use_lsh = options.use_lsh,
      .lsh = options.lsh,
      .num_segments = options.num_segments,
  };

  if (stream_ctx != nullptr) {
    // Memory-budgeted path: the target embeddings are encoded tile by
    // tile into the spill store, and source blocks are encoded on the
    // fly — neither whole-graph embedding matrix ever exists. Per-name
    // encoding and order-independent top-k make this bit-identical to
    // the in-memory path below.
    search_options.prefetch = stream_ctx->options().prefetch;
    const int64_t dim = encoder.dim();
    const int64_t tile_rows = stream_ctx->budget().TileRowsFor(
        target.num_entities(), dim * static_cast<int64_t>(sizeof(float)));
    stream::TileMatrix tiles(&stream_ctx->store(), target.num_entities(), dim,
                             tile_rows);
    for (int64_t t = 0; t < tiles.num_tiles(); ++t) {
      tiles.Append(encoder.EncodeNameRange(
          target, static_cast<EntityId>(tiles.TileBegin(t)),
          static_cast<EntityId>(tiles.TileEnd(t))));
    }
    const std::unique_ptr<SimilaritySearch> search =
        MakeStreamedSimilaritySearch(tiles, search_options);
    for (int64_t sb = 0; sb < source.num_entities(); sb += tile_rows) {
      const int64_t se =
          std::min<int64_t>(sb + tile_rows, source.num_entities());
      const Matrix block = encoder.EncodeNameRange(
          source, static_cast<EntityId>(sb), static_cast<EntityId>(se));
      std::vector<EntityId> row_ids(se - sb);
      std::iota(row_ids.begin(), row_ids.end(), static_cast<EntityId>(sb));
      search->SearchInto(block, row_ids, m_se);
    }
    m_se.RefreshMemoryTracking();
    return m_se;
  }

  const Matrix source_emb = encoder.EncodeAllNames(source);
  const Matrix target_emb = encoder.EncodeAllNames(target);
  std::vector<EntityId> col_ids(target.num_entities());
  std::iota(col_ids.begin(), col_ids.end(), 0);
  const std::unique_ptr<SimilaritySearch> search =
      MakeSimilaritySearch(target_emb, col_ids, search_options);

  // Source segments are scored one at a time; the search object applies
  // the same segmentation to the target (exact path) or its LSH index.
  // Segmented accumulation yields exactly the unsegmented result.
  const int64_t src_step =
      (source_emb.rows() + options.num_segments - 1) / options.num_segments;
  for (int64_t sb = 0; sb < source_emb.rows(); sb += src_step) {
    const int64_t se = std::min(sb + src_step, source_emb.rows());
    std::vector<EntityId> row_ids(se - sb);
    std::iota(row_ids.begin(), row_ids.end(), static_cast<EntityId>(sb));
    search->SearchInto(MatrixRowRange(source_emb, sb, se), row_ids, m_se);
  }
  m_se.RefreshMemoryTracking();
  return m_se;
}

}  // namespace largeea
