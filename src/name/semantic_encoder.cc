#include "src/name/semantic_encoder.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/macros.h"
#include "src/kg/knowledge_graph.h"
#include "src/la/ops.h"

namespace largeea {
namespace {

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Heuristic: word tokens were requested with include_words and are
// distinguishable from padded n-grams by the absence of the '#' pad.
bool IsWordToken(const std::string& token) {
  return token.find('#') == std::string::npos;
}

}  // namespace

SemanticEncoder::SemanticEncoder(const SemanticEncoderOptions& options)
    : options_(options) {
  LARGEEA_CHECK_GT(options.dim, 0);
  LARGEEA_CHECK_GT(options.active_slots_per_token, 0);
  LARGEEA_CHECK_LE(options.active_slots_per_token, options.dim);
}

void SemanticEncoder::FitIdf(const std::vector<const KnowledgeGraph*>& kgs) {
  std::unordered_map<uint64_t, int64_t> document_frequency;
  idf_documents_ = 0;
  std::unordered_set<uint64_t> seen_in_name;
  for (const KnowledgeGraph* kg : kgs) {
    LARGEEA_CHECK(kg != nullptr);
    for (EntityId e = 0; e < kg->num_entities(); ++e) {
      CountNameFrequencies(kg->EntityName(e), document_frequency,
                           seen_in_name);
    }
  }
  FinishIdf(document_frequency);
}

void SemanticEncoder::FitIdfFromNames(
    const std::vector<const std::vector<std::string>*>& corpora) {
  std::unordered_map<uint64_t, int64_t> document_frequency;
  idf_documents_ = 0;
  std::unordered_set<uint64_t> seen_in_name;
  for (const std::vector<std::string>* names : corpora) {
    LARGEEA_CHECK(names != nullptr);
    for (const std::string& name : *names) {
      CountNameFrequencies(name, document_frequency, seen_in_name);
    }
  }
  FinishIdf(document_frequency);
}

void SemanticEncoder::CountNameFrequencies(
    std::string_view name,
    std::unordered_map<uint64_t, int64_t>& document_frequency,
    std::unordered_set<uint64_t>& seen_in_name) {
  ++idf_documents_;
  seen_in_name.clear();
  for (const std::string& token : TokenizeName(name, options_.tokenizer)) {
    const uint64_t h = TokenHash(token);
    if (seen_in_name.insert(h).second) ++document_frequency[h];
  }
}

void SemanticEncoder::FinishIdf(
    const std::unordered_map<uint64_t, int64_t>& document_frequency) {
  idf_.clear();
  idf_.reserve(document_frequency.size());
  for (const auto& [hash, df] : document_frequency) {
    idf_[hash] = static_cast<float>(
        std::log(1.0 + static_cast<double>(idf_documents_) /
                           (1.0 + static_cast<double>(df))));
  }
}

void SemanticEncoder::AddTokenFeature(uint64_t token_hash, float weight,
                                      float* out) const {
  // Each token activates `active_slots_per_token` pseudo-random
  // dimensions with ±1 values — signed feature hashing.
  uint64_t state = token_hash ^ options_.seed;
  for (int32_t s = 0; s < options_.active_slots_per_token; ++s) {
    state = Mix(state + 0x9e3779b97f4a7c15ULL);
    const auto slot = static_cast<int32_t>(state % options_.dim);
    const float sign = (state >> 60) & 1 ? 1.0f : -1.0f;
    out[slot] += weight * sign;
  }
}

void SemanticEncoder::EncodeName(std::string_view name, float* out) const {
  std::fill(out, out + options_.dim, 0.0f);
  const std::vector<std::string> tokens =
      TokenizeName(name, options_.tokenizer);
  if (tokens.empty()) return;
  for (const std::string& token : tokens) {
    const uint64_t h = TokenHash(token);
    float weight = IsWordToken(token) ? options_.word_token_weight : 1.0f;
    if (!idf_.empty()) {
      const auto it = idf_.find(h);
      // Unseen tokens get the maximal IDF (they are maximally rare).
      weight *= it != idf_.end()
                    ? it->second
                    : static_cast<float>(
                          std::log(1.0 + static_cast<double>(
                                             idf_documents_)));
    }
    AddTokenFeature(h, weight, out);
  }
  const float norm = Norm2(out, options_.dim) + options_.epsilon;
  for (int32_t i = 0; i < options_.dim; ++i) out[i] /= norm;
}

Matrix SemanticEncoder::EncodeAllNames(const KnowledgeGraph& kg) const {
  return EncodeNameRange(kg, 0, kg.num_entities());
}

Matrix SemanticEncoder::EncodeNameRange(const KnowledgeGraph& kg,
                                        EntityId begin, EntityId end) const {
  LARGEEA_CHECK_GE(begin, 0);
  LARGEEA_CHECK_LE(begin, end);
  LARGEEA_CHECK_LE(end, kg.num_entities());
  Matrix embeddings(end - begin, options_.dim);
  for (EntityId e = begin; e < end; ++e) {
    EncodeName(kg.EntityName(e), embeddings.Row(e - begin));
  }
  return embeddings;
}

}  // namespace largeea
