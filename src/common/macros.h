// Assertion macros used across the library.
//
// The library does not use exceptions (see DESIGN.md §5). Programmer errors
// — violated preconditions, broken invariants — abort the process through
// the LARGEEA_CHECK family, printing the failing condition and location.
// Recoverable conditions (bad input files, missing entities) are reported
// through return values instead.
#ifndef LARGEEA_COMMON_MACROS_H_
#define LARGEEA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace largeea::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace largeea::internal

// Aborts if `condition` is false. Enabled in all build types: the cost is
// negligible next to the graph/matrix work this library does, and silent
// corruption in a research library is far worse than an abort.
#define LARGEEA_CHECK(condition)                                        \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::largeea::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                                   \
  } while (false)

#define LARGEEA_CHECK_EQ(a, b) LARGEEA_CHECK((a) == (b))
#define LARGEEA_CHECK_NE(a, b) LARGEEA_CHECK((a) != (b))
#define LARGEEA_CHECK_LT(a, b) LARGEEA_CHECK((a) < (b))
#define LARGEEA_CHECK_LE(a, b) LARGEEA_CHECK((a) <= (b))
#define LARGEEA_CHECK_GT(a, b) LARGEEA_CHECK((a) > (b))
#define LARGEEA_CHECK_GE(a, b) LARGEEA_CHECK((a) >= (b))

// Debug-only variant for checks that are too hot (or too redundant) to
// keep in release builds — e.g. cross-validating an invariant that the
// surrounding code no longer relies on.
#ifdef NDEBUG
#define LARGEEA_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define LARGEEA_DCHECK(condition) LARGEEA_CHECK(condition)
#endif

#define LARGEEA_DCHECK_EQ(a, b) LARGEEA_DCHECK((a) == (b))
#define LARGEEA_DCHECK_GE(a, b) LARGEEA_DCHECK((a) >= (b))
#define LARGEEA_DCHECK_LE(a, b) LARGEEA_DCHECK((a) <= (b))

#endif  // LARGEEA_COMMON_MACROS_H_
