#include "src/common/rng.h"

#include <cmath>

namespace largeea {

double Rng::Gaussian() {
  // Box–Muller transform. u1 is nudged away from zero so log() is finite.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace largeea
