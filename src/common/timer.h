// Wall-clock timing used by the benchmark harnesses.
#ifndef LARGEEA_COMMON_TIMER_H_
#define LARGEEA_COMMON_TIMER_H_

#include <chrono>

namespace largeea {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction / last Reset.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_TIMER_H_
