// Small string helpers shared by the tokenizer, IO, and CLI code.
#ifndef LARGEEA_COMMON_STRING_UTIL_H_
#define LARGEEA_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace largeea {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Returns a lower-cased copy (ASCII only; bytes >= 0x80 pass through,
/// which is the right behaviour for UTF-8 payloads).
std::string AsciiToLower(std::string_view s);

/// Parses a decimal integer; returns nullopt on any malformed input.
std::optional<int64_t> ParseInt(std::string_view s);

/// Parses a floating-point number; returns nullopt on any malformed input.
std::optional<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace largeea

#endif  // LARGEEA_COMMON_STRING_UTIL_H_
