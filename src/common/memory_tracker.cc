#include "src/common/memory_tracker.h"

namespace largeea {

MemoryTracker& MemoryTracker::Get() {
  // Function-local static pointer: trivially-destructible global per the
  // style guide's static-storage rules.
  static MemoryTracker* const tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Add(int64_t bytes) {
  const int64_t now = current_.fetch_add(bytes) + bytes;
  // Lock-free peak update.
  int64_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
}

void MemoryTracker::Remove(int64_t bytes) { current_.fetch_sub(bytes); }

void MemoryTracker::ResetPeak() { peak_.store(current_.load()); }

TrackedAllocation::TrackedAllocation(int64_t bytes) : bytes_(bytes) {
  MemoryTracker::Get().Add(bytes_);
}

TrackedAllocation::~TrackedAllocation() {
  if (bytes_ != 0) MemoryTracker::Get().Remove(bytes_);
}

TrackedAllocation::TrackedAllocation(TrackedAllocation&& other) noexcept
    : bytes_(other.bytes_) {
  other.bytes_ = 0;
}

TrackedAllocation& TrackedAllocation::operator=(
    TrackedAllocation&& other) noexcept {
  if (this != &other) {
    if (bytes_ != 0) MemoryTracker::Get().Remove(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
  }
  return *this;
}

void TrackedAllocation::Resize(int64_t bytes) {
  MemoryTracker::Get().Add(bytes - bytes_);
  bytes_ = bytes;
}

}  // namespace largeea
