#include "src/common/memory_tracker.h"

#include <algorithm>
#include <utility>

#include "src/common/macros.h"

namespace largeea {

MemoryTracker& MemoryTracker::Get() {
  // Function-local static pointer: trivially-destructible global per the
  // style guide's static-storage rules.
  static MemoryTracker* const tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Add(int64_t bytes) {
  const int64_t now = current_.fetch_add(bytes) + bytes;
  // Lock-free peak update.
  int64_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
  // Per-phase peaks. Registration events are rare (one per large buffer,
  // not per element), so a mutex here is cheap; the atomic pre-check
  // keeps the common no-phase case lock-free.
  if (open_phases_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(phase_mu_);
    for (ActivePhase& phase : active_) {
      if (phase.open) phase.peak_bytes = std::max(phase.peak_bytes, now);
    }
  }
}

void MemoryTracker::Remove(int64_t bytes) { current_.fetch_sub(bytes); }

void MemoryTracker::ResetPeak() { peak_.store(current_.load()); }

int32_t MemoryTracker::BeginPhase(std::string name) {
  const int64_t now = current_.load();
  std::lock_guard<std::mutex> lock(phase_mu_);
  ActivePhase phase;
  phase.name = std::move(name);
  phase.start_bytes = now;
  phase.peak_bytes = now;
  phase.start = std::chrono::steady_clock::now();
  phase.open = true;
  active_.push_back(std::move(phase));
  open_phases_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int32_t>(active_.size() - 1);
}

MemoryPhase MemoryTracker::EndPhase(int32_t handle) {
  std::lock_guard<std::mutex> lock(phase_mu_);
  LARGEEA_CHECK_GE(handle, 0);
  LARGEEA_CHECK_LT(static_cast<size_t>(handle), active_.size());
  ActivePhase& phase = active_[handle];
  LARGEEA_CHECK(phase.open);
  phase.open = false;
  open_phases_.fetch_sub(1, std::memory_order_relaxed);
  MemoryPhase record;
  record.name = phase.name;
  record.start_bytes = phase.start_bytes;
  // The peak may have moved since the last Add() if buffers were only
  // released; current never exceeds the tracked peak, so no max needed.
  record.peak_bytes = phase.peak_bytes;
  record.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - phase.start)
                       .count();
  finished_.push_back(record);
  // Compact fully-drained tail so handles stay small across many runs.
  while (!active_.empty() && !active_.back().open) active_.pop_back();
  return record;
}

std::vector<MemoryPhase> MemoryTracker::FinishedPhases() const {
  std::lock_guard<std::mutex> lock(phase_mu_);
  return finished_;
}

void MemoryTracker::ClearFinishedPhases() {
  std::lock_guard<std::mutex> lock(phase_mu_);
  finished_.clear();
}

TrackedAllocation::TrackedAllocation(int64_t bytes) : bytes_(bytes) {
  MemoryTracker::Get().Add(bytes_);
}

TrackedAllocation::~TrackedAllocation() {
  if (bytes_ != 0) MemoryTracker::Get().Remove(bytes_);
}

TrackedAllocation::TrackedAllocation(TrackedAllocation&& other) noexcept
    : bytes_(other.bytes_) {
  other.bytes_ = 0;
}

TrackedAllocation& TrackedAllocation::operator=(
    TrackedAllocation&& other) noexcept {
  if (this != &other) {
    if (bytes_ != 0) MemoryTracker::Get().Remove(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
  }
  return *this;
}

void TrackedAllocation::Resize(int64_t bytes) {
  MemoryTracker::Get().Add(bytes - bytes_);
  bytes_ = bytes;
}

}  // namespace largeea
