// Core identifier types shared by every module.
#ifndef LARGEEA_COMMON_TYPES_H_
#define LARGEEA_COMMON_TYPES_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace largeea {

/// Dense 0-based entity identifier, local to one KnowledgeGraph.
using EntityId = int32_t;

/// Dense 0-based relation identifier, local to one KnowledgeGraph.
using RelationId = int32_t;

/// Sentinel for "no entity".
inline constexpr EntityId kInvalidEntity = -1;

/// Sentinel for "no relation".
inline constexpr RelationId kInvalidRelation = -1;

/// A directed labelled edge (h, r, t): head entity, relation, tail entity.
struct Triple {
  EntityId head = kInvalidEntity;
  RelationId relation = kInvalidRelation;
  EntityId tail = kInvalidEntity;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// An aligned entity pair: `source` lives in the source KG, `target` in the
/// target KG.
struct EntityPair {
  EntityId source = kInvalidEntity;
  EntityId target = kInvalidEntity;

  friend bool operator==(const EntityPair&, const EntityPair&) = default;
};

using EntityPairList = std::vector<EntityPair>;

}  // namespace largeea

#endif  // LARGEEA_COMMON_TYPES_H_
