// Working-set accounting, the stand-in for the paper's GPU-memory probe.
//
// The paper reports the maximum GPU memory each method needs (Table 2/3/6,
// measured with NVIDIA Nsight). This repo runs on CPU, so instead every
// large buffer — entity embeddings, optimizer state, similarity matrices —
// registers its byte count with the process-wide MemoryTracker. Benches
// reset the peak before a phase and read it afterwards; the *relative*
// numbers (mini-batch vs. whole-graph, name channel vs. structure channel)
// are what the paper's tables demonstrate, and those ratios are preserved.
#ifndef LARGEEA_COMMON_MEMORY_TRACKER_H_
#define LARGEEA_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace largeea {

/// Process-wide tracker of bytes in registered large buffers.
/// All methods are thread-safe.
class MemoryTracker {
 public:
  /// Returns the singleton tracker.
  static MemoryTracker& Get();

  /// Records that `bytes` of tracked memory were allocated.
  void Add(int64_t bytes);

  /// Records that `bytes` of tracked memory were released.
  void Remove(int64_t bytes);

  /// Currently-live tracked bytes.
  int64_t CurrentBytes() const { return current_.load(); }

  /// Highest value CurrentBytes() has reached since the last ResetPeak().
  int64_t PeakBytes() const { return peak_.load(); }

  /// Sets the peak to the current live amount (start of a measured phase).
  void ResetPeak();

 private:
  MemoryTracker() = default;

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII registration of an externally-owned buffer with the tracker.
/// Move-only; the moved-from object stops tracking.
class TrackedAllocation {
 public:
  TrackedAllocation() = default;
  explicit TrackedAllocation(int64_t bytes);
  ~TrackedAllocation();

  TrackedAllocation(TrackedAllocation&& other) noexcept;
  TrackedAllocation& operator=(TrackedAllocation&& other) noexcept;
  TrackedAllocation(const TrackedAllocation&) = delete;
  TrackedAllocation& operator=(const TrackedAllocation&) = delete;

  /// Changes the registered size to `bytes` (e.g. after a resize).
  void Resize(int64_t bytes);

  int64_t bytes() const { return bytes_; }

 private:
  int64_t bytes_ = 0;
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_MEMORY_TRACKER_H_
