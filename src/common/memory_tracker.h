// Working-set accounting, the stand-in for the paper's GPU-memory probe.
//
// The paper reports the maximum GPU memory each method needs (Table 2/3/6,
// measured with NVIDIA Nsight). This repo runs on CPU, so instead every
// large buffer — entity embeddings, optimizer state, similarity matrices —
// registers its byte count with the process-wide MemoryTracker. Benches
// reset the peak before a phase and read it afterwards; the *relative*
// numbers (mini-batch vs. whole-graph, name channel vs. structure channel)
// are what the paper's tables demonstrate, and those ratios are preserved.
#ifndef LARGEEA_COMMON_MEMORY_TRACKER_H_
#define LARGEEA_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace largeea {

/// A closed named phase: the peak tracked working set while it was open,
/// plus its wall-clock duration. Phases nest and overlap freely — each
/// one tracks its own peak independently of ResetPeak() and of other
/// phases, so "name channel" and the enclosing "pipeline" both report
/// correct peaks.
struct MemoryPhase {
  std::string name;
  int64_t start_bytes = 0;  ///< live tracked bytes when the phase opened
  int64_t peak_bytes = 0;   ///< max live tracked bytes while open
  double seconds = 0.0;     ///< wall-clock duration of the phase
};

/// Process-wide tracker of bytes in registered large buffers.
/// All methods are thread-safe.
class MemoryTracker {
 public:
  /// Returns the singleton tracker.
  static MemoryTracker& Get();

  /// Records that `bytes` of tracked memory were allocated.
  void Add(int64_t bytes);

  /// Records that `bytes` of tracked memory were released.
  void Remove(int64_t bytes);

  /// Currently-live tracked bytes.
  int64_t CurrentBytes() const { return current_.load(); }

  /// Highest value CurrentBytes() has reached since the last ResetPeak().
  int64_t PeakBytes() const { return peak_.load(); }

  /// Sets the peak to the current live amount (start of a measured phase).
  void ResetPeak();

  /// Opens a named phase and returns its handle. Prefer the RAII
  /// MemoryPhaseScope (or obs::Span with kTrackMemory) over calling this
  /// directly.
  int32_t BeginPhase(std::string name);

  /// Closes the phase, appends it to FinishedPhases(), and returns its
  /// record. Each handle may be ended once.
  MemoryPhase EndPhase(int32_t handle);

  /// Phases closed since the last ClearFinishedPhases(), in close order.
  std::vector<MemoryPhase> FinishedPhases() const;

  /// Drops the finished-phase history (start of a fresh run).
  void ClearFinishedPhases();

 private:
  MemoryTracker() = default;

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};

  struct ActivePhase {
    std::string name;
    int64_t start_bytes = 0;
    int64_t peak_bytes = 0;
    std::chrono::steady_clock::time_point start;
    bool open = false;
  };
  /// Open-phase count mirrored outside the mutex so Add() can skip the
  /// lock entirely when no phase is active.
  std::atomic<int32_t> open_phases_{0};
  mutable std::mutex phase_mu_;
  std::vector<ActivePhase> active_;    // indexed by handle
  std::vector<MemoryPhase> finished_;
};

/// RAII wrapper around Begin/EndPhase.
class MemoryPhaseScope {
 public:
  explicit MemoryPhaseScope(std::string name)
      : handle_(MemoryTracker::Get().BeginPhase(std::move(name))) {}
  ~MemoryPhaseScope() {
    if (!ended_) End();
  }

  MemoryPhaseScope(const MemoryPhaseScope&) = delete;
  MemoryPhaseScope& operator=(const MemoryPhaseScope&) = delete;

  /// Closes the phase now and returns its record. Idempotent.
  MemoryPhase End() {
    if (!ended_) {
      record_ = MemoryTracker::Get().EndPhase(handle_);
      ended_ = true;
    }
    return record_;
  }

 private:
  int32_t handle_;
  bool ended_ = false;
  MemoryPhase record_;
};

/// RAII registration of an externally-owned buffer with the tracker.
/// Move-only; the moved-from object stops tracking.
class TrackedAllocation {
 public:
  TrackedAllocation() = default;
  explicit TrackedAllocation(int64_t bytes);
  ~TrackedAllocation();

  TrackedAllocation(TrackedAllocation&& other) noexcept;
  TrackedAllocation& operator=(TrackedAllocation&& other) noexcept;
  TrackedAllocation(const TrackedAllocation&) = delete;
  TrackedAllocation& operator=(const TrackedAllocation&) = delete;

  /// Changes the registered size to `bytes` (e.g. after a resize).
  void Resize(int64_t bytes);

  int64_t bytes() const { return bytes_; }

 private:
  int64_t bytes_ = 0;
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_MEMORY_TRACKER_H_
