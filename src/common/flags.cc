#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/common/string_util.h"

namespace largeea {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "flag error: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) Die("expected --flag, got '" + std::string(arg) + "'");
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` if the next token is not itself a flag; bare boolean
    // otherwise.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseInt(it->second);
  if (!parsed) Die("flag --" + name + " is not an integer: " + it->second);
  return *parsed;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseDouble(it->second);
  if (!parsed) Die("flag --" + name + " is not a number: " + it->second);
  return *parsed;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  Die("flag --" + name + " is not a boolean: " + it->second);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

}  // namespace largeea
