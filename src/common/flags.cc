#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/common/string_util.h"

namespace largeea {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "flag error: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) Die("expected --flag, got '" + std::string(arg) + "'");
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` if the next token is not itself a flag; bare boolean
    // otherwise.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseInt(it->second);
  if (!parsed) Die("flag --" + name + " is not an integer: " + it->second);
  return *parsed;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseDouble(it->second);
  if (!parsed) Die("flag --" + name + " is not a number: " + it->second);
  return *parsed;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  Die("flag --" + name + " is not a boolean: " + it->second);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

void FlagRegistry::Add(const std::string& name, Kind kind, void* field,
                       const std::string& help) {
  for (const Binding& b : bindings_) {
    if (b.name == name) Die("flag --" + name + " registered twice");
  }
  bindings_.push_back(Binding{name, help, kind, field});
}

void FlagRegistry::Int32(const std::string& name, int32_t* field,
                         const std::string& help) {
  Add(name, Kind::kInt32, field, help);
}
void FlagRegistry::Int64(const std::string& name, int64_t* field,
                         const std::string& help) {
  Add(name, Kind::kInt64, field, help);
}
void FlagRegistry::Uint64(const std::string& name, uint64_t* field,
                          const std::string& help) {
  Add(name, Kind::kUint64, field, help);
}
void FlagRegistry::Float(const std::string& name, float* field,
                         const std::string& help) {
  Add(name, Kind::kFloat, field, help);
}
void FlagRegistry::Double(const std::string& name, double* field,
                          const std::string& help) {
  Add(name, Kind::kDouble, field, help);
}
void FlagRegistry::Bool(const std::string& name, bool* field,
                        const std::string& help) {
  Add(name, Kind::kBool, field, help);
}
void FlagRegistry::String(const std::string& name, std::string* field,
                          const std::string& help) {
  Add(name, Kind::kString, field, help);
}

bool FlagRegistry::Knows(const std::string& name) const {
  for (const Binding& b : bindings_) {
    if (b.name == name) return true;
  }
  return false;
}

Status FlagRegistry::ApplyFrom(const Flags& flags) {
  for (Binding& b : bindings_) {
    if (!flags.Has(b.name)) continue;
    const std::string raw = flags.GetString(b.name, "");
    switch (b.kind) {
      case Kind::kInt32:
      case Kind::kInt64:
      case Kind::kUint64: {
        const auto parsed = ParseInt(raw);
        if (!parsed) {
          return InvalidArgumentError("flag --" + b.name +
                                      " is not an integer: " + raw);
        }
        if (b.kind == Kind::kInt32) {
          *static_cast<int32_t*>(b.field) = static_cast<int32_t>(*parsed);
        } else if (b.kind == Kind::kInt64) {
          *static_cast<int64_t*>(b.field) = *parsed;
        } else {
          *static_cast<uint64_t*>(b.field) = static_cast<uint64_t>(*parsed);
        }
        break;
      }
      case Kind::kFloat:
      case Kind::kDouble: {
        const auto parsed = ParseDouble(raw);
        if (!parsed) {
          return InvalidArgumentError("flag --" + b.name +
                                      " is not a number: " + raw);
        }
        if (b.kind == Kind::kFloat) {
          *static_cast<float*>(b.field) = static_cast<float>(*parsed);
        } else {
          *static_cast<double*>(b.field) = *parsed;
        }
        break;
      }
      case Kind::kBool: {
        if (raw == "true" || raw == "1") {
          *static_cast<bool*>(b.field) = true;
        } else if (raw == "false" || raw == "0") {
          *static_cast<bool*>(b.field) = false;
        } else {
          return InvalidArgumentError("flag --" + b.name +
                                      " is not a boolean: " + raw);
        }
        break;
      }
      case Kind::kString:
        *static_cast<std::string*>(b.field) = raw;
        break;
    }
  }
  return OkStatus();
}

std::vector<std::pair<std::string, std::string>> FlagRegistry::Values() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(bindings_.size());
  char buf[64];
  for (const Binding& b : bindings_) {
    std::string value;
    switch (b.kind) {
      case Kind::kInt32:
        std::snprintf(buf, sizeof(buf), "%d", *static_cast<int32_t*>(b.field));
        value = buf;
        break;
      case Kind::kInt64:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(*static_cast<int64_t*>(b.field)));
        value = buf;
        break;
      case Kind::kUint64:
        std::snprintf(
            buf, sizeof(buf), "%llu",
            static_cast<unsigned long long>(*static_cast<uint64_t*>(b.field)));
        value = buf;
        break;
      case Kind::kFloat:
        // %.9g round-trips every float exactly, so a value read back from
        // a run report re-parses to the same bits.
        std::snprintf(buf, sizeof(buf), "%.9g",
                      static_cast<double>(*static_cast<float*>(b.field)));
        value = buf;
        break;
      case Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.17g",
                      *static_cast<double*>(b.field));
        value = buf;
        break;
      case Kind::kBool:
        value = *static_cast<bool*>(b.field) ? "true" : "false";
        break;
      case Kind::kString:
        value = *static_cast<std::string*>(b.field);
        break;
    }
    out.emplace_back(b.name, std::move(value));
  }
  return out;
}

std::string FlagRegistry::HelpText() const {
  const auto values = Values();
  std::string out;
  for (size_t i = 0; i < bindings_.size(); ++i) {
    out += "  --" + bindings_[i].name;
    if (!values[i].second.empty()) {
      out += " (default: " + values[i].second + ")";
    }
    out += "\n";
    if (!bindings_[i].help.empty()) {
      out += "      " + bindings_[i].help + "\n";
    }
  }
  return out;
}

}  // namespace largeea
