#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace largeea {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = StripAsciiWhitespace(s);
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for doubles is available in libstdc++ 11+, but strtod
  // through a bounded copy is simpler and portable.
  std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace largeea
