// Minimal command-line flag parsing for the bench and example binaries.
//
// Accepted forms: --name=value, --name value, and bare --name for booleans.
// Unknown flags abort with a message listing what was seen, so typos in a
// bench invocation fail loudly instead of silently running the default.
//
// Two layers:
//   * Flags — the raw argv -> string map with typed lookups;
//   * FlagRegistry — a declarative binding table mapping flag names to
//     struct fields, so a configuration struct (largeea::Config) declares
//     each knob exactly once and every binary parses, documents, and
//     reports it identically.
#ifndef LARGEEA_COMMON_FLAGS_H_
#define LARGEEA_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/rt/status.h"

namespace largeea {

/// Parses argv into a name->value map and serves typed lookups.
class Flags {
 public:
  /// Parses the command line. Aborts on malformed arguments.
  Flags(int argc, char** argv);

  /// Returns the flag value or `def` if the flag was not passed.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

/// Declarative flag -> struct-field binding table.
///
/// A config struct registers each knob once (name, target field, help
/// text); the registry then overlays parsed Flags onto the fields
/// (`ApplyFrom`), renders `--help` output (`HelpText`), and snapshots
/// the *effective* values for run reports (`Values`) — so parsing,
/// documentation, and reporting can never drift apart.
class FlagRegistry {
 public:
  void Int32(const std::string& name, int32_t* field, const std::string& help);
  void Int64(const std::string& name, int64_t* field, const std::string& help);
  void Uint64(const std::string& name, uint64_t* field,
              const std::string& help);
  void Float(const std::string& name, float* field, const std::string& help);
  void Double(const std::string& name, double* field, const std::string& help);
  void Bool(const std::string& name, bool* field, const std::string& help);
  void String(const std::string& name, std::string* field,
              const std::string& help);

  /// Overlays every flag present in `flags` onto its bound field.
  /// Unparseable values (e.g. --epochs=abc) fail with kInvalidArgument
  /// naming the flag; flags with no binding are left for the caller.
  Status ApplyFrom(const Flags& flags);

  /// True if `name` is bound. Lets callers distinguish registry flags
  /// from binary-local ones (positional-ish inputs like --source).
  bool Knows(const std::string& name) const;

  /// (flag name, current value) for every binding, in registration
  /// order. After ApplyFrom this is the effective configuration;
  /// floats render with %.9g so reports round-trip exactly.
  std::vector<std::pair<std::string, std::string>> Values() const;

  /// One "  --name (default: value)\n      help" block per binding.
  std::string HelpText() const;

 private:
  enum class Kind { kInt32, kInt64, kUint64, kFloat, kDouble, kBool, kString };
  struct Binding {
    std::string name;
    std::string help;
    Kind kind;
    void* field;
  };
  void Add(const std::string& name, Kind kind, void* field,
           const std::string& help);

  std::vector<Binding> bindings_;
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_FLAGS_H_
