// Minimal command-line flag parsing for the bench and example binaries.
//
// Accepted forms: --name=value, --name value, and bare --name for booleans.
// Unknown flags abort with a message listing what was seen, so typos in a
// bench invocation fail loudly instead of silently running the default.
#ifndef LARGEEA_COMMON_FLAGS_H_
#define LARGEEA_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace largeea {

/// Parses argv into a name->value map and serves typed lookups.
class Flags {
 public:
  /// Parses the command line. Aborts on malformed arguments.
  Flags(int argc, char** argv);

  /// Returns the flag value or `def` if the flag was not passed.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_FLAGS_H_
