// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed and
// derives all randomness from an Rng instance, so that identical seeds
// reproduce identical results bit-for-bit across runs (the test suite
// relies on this). The generator is xoshiro256**, seeded via SplitMix64.
#ifndef LARGEEA_COMMON_RNG_H_
#define LARGEEA_COMMON_RNG_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/macros.h"

namespace largeea {

/// Fast, deterministic PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Creates a generator whose entire stream is a function of `seed`.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state; this is the
    // initialisation recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    LARGEEA_CHECK_GT(bound, 0u);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LARGEEA_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform float in [0, 1).
  float UniformFloat() {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Returns a sample from the standard normal distribution
  /// (Box–Muller; one of the two generated values is discarded for
  /// simplicity — throughput is not a concern here).
  double Gaussian();

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator. Children with distinct tags
  /// from the same parent produce independent streams; used to give each
  /// mini-batch its own deterministic randomness.
  Rng Fork(uint64_t tag) {
    return Rng(Next() ^ (0x9e3779b97f4a7c15ULL * (tag + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace largeea

#endif  // LARGEEA_COMMON_RNG_H_
