// Internal: per-backend kernel tables, one TU each so the AVX2 body can
// be compiled with -mavx2 while the rest of the library stays at the
// baseline ISA. Only src/simd/simd.cc (the dispatcher) and the
// equivalence tests should need this header; everything else goes
// through simd::Kernels().
#ifndef LARGEEA_SIMD_BACKENDS_H_
#define LARGEEA_SIMD_BACKENDS_H_

#include "src/simd/simd.h"

namespace largeea::simd {

/// Always available.
const KernelTable* ScalarKernelTable();

/// Null when the library was built for a non-x86 target (the TU
/// compiles to a stub). Availability on the *running* CPU is a separate
/// question — see BackendAvailable().
const KernelTable* Sse2KernelTable();
const KernelTable* Avx2KernelTable();

}  // namespace largeea::simd

#endif  // LARGEEA_SIMD_BACKENDS_H_
