// Portable fixed-width SIMD kernel layer with runtime dispatch.
//
// Every dense float kernel in the library (dot products, GEMM
// microkernels, Sinkhorn normalisation, element-wise ops) routes through
// the KernelTable returned by Kernels(). Three backends implement the
// table — scalar, SSE2 (2x4 lanes), and AVX2 (8 lanes) — and the active
// one is chosen at runtime: CLI `--simd {auto,avx2,sse2,scalar}`, then
// the LARGEEA_SIMD environment variable, then a CPUID probe for the best
// ISA the machine supports.
//
// Determinism contract (DESIGN.md §9). Every backend computes every
// reduction over the *same lane-structured accumulation tree*: eight
// independent accumulator lanes fed in fixed stride-8 order, a scalar
// tail folded into lanes [0, dim % 8), and a horizontal sum in fixed
// lane order ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Element-wise kernels
// perform the identical per-element operations in every backend. Because
// each lane operation is one IEEE-754 single-precision mul/add (never an
// FMA — the build sets -ffp-contract=off so the scalar backend cannot be
// contracted either), results are bit-identical across backends and
// machines. This extends §8's guarantee ("same result at any thread
// count") to "same result on any ISA".
#ifndef LARGEEA_SIMD_SIMD_H_
#define LARGEEA_SIMD_SIMD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace largeea::simd {

/// The selectable kernel backends, ordered worst to best.
enum class Backend : int32_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Stable lowercase name ("scalar", "sse2", "avx2") — the same tokens
/// `--simd` and LARGEEA_SIMD accept.
const char* BackendName(Backend backend);

/// Parses "auto"/"scalar"/"sse2"/"avx2" (case-sensitive). For "auto",
/// stores the CPUID-probed best backend. Returns false on any other
/// token.
bool ParseBackend(std::string_view text, Backend* backend);

/// The best backend the running CPU supports (CPUID probe; kScalar on
/// non-x86 builds).
Backend BestBackend();

/// True if the running CPU can execute `backend`.
bool BackendAvailable(Backend backend);

/// Every backend the running CPU supports, worst (scalar) to best.
std::vector<Backend> AvailableBackends();

/// The dispatched float kernels. All functions accept unaligned
/// pointers; `dim`/`n` may be any length >= 0 (tails are handled inside,
/// uniformly across backends — see the determinism contract above).
struct KernelTable {
  /// Sum of a[i] * b[i] over the lane tree.
  float (*dot)(const float* a, const float* b, int64_t dim);
  /// Sum of |a[i] - b[i]| over the lane tree.
  float (*manhattan)(const float* a, const float* b, int64_t dim);
  /// Sum of a[i] over the lane tree.
  float (*sum)(const float* a, int64_t dim);
  /// y[i] += alpha * x[i] (element-wise; one mul, one add per element).
  void (*axpy)(float alpha, const float* x, float* y, int64_t n);
  /// x[i] *= alpha.
  void (*scale)(float* x, float alpha, int64_t n);
  /// x[i] /= denom (true division — not multiplication by 1/denom).
  void (*divide)(float* x, float denom, int64_t n);
};

/// The active backend. Resolved lazily on first use: LARGEEA_SIMD if set
/// to a valid token (invalid values warn and fall through), else
/// BestBackend().
Backend ActiveBackend();

/// Forces the active backend (CLI `--simd`). Aborts if the CPU cannot
/// execute it — callers should gate on BackendAvailable() to fail
/// gracefully. Swaps the table returned by Kernels(); must not race
/// in-flight kernel calls (set it at startup or between pipeline
/// phases). Updates the `simd.backend` gauge.
void SetBackend(Backend backend);

/// The kernel table of the active backend. The reference is to a static
/// table and stays valid forever; re-call after SetBackend() to observe
/// a switch.
const KernelTable& Kernels();

/// The kernel table of a specific backend, regardless of the active one
/// (the equivalence tests compare backends side by side). Aborts if
/// unavailable on this CPU.
const KernelTable& KernelsFor(Backend backend);

}  // namespace largeea::simd

#endif  // LARGEEA_SIMD_SIMD_H_
