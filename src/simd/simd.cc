#include "src/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "src/common/macros.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/simd/backends.h"

namespace largeea::simd {
namespace {

const KernelTable* TableFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return ScalarKernelTable();
    case Backend::kSse2:
      return Sse2KernelTable();
    case Backend::kAvx2:
      return Avx2KernelTable();
  }
  return nullptr;
}

bool CpuSupports(Backend backend) {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
      return __builtin_cpu_supports("sse2");
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return backend == Backend::kScalar;
#endif
}

/// The active table, published as an atomic pointer so kernel call
/// sites pay one relaxed load. Null until the first resolution.
std::atomic<const KernelTable*> g_active_table{nullptr};
std::atomic<Backend> g_active_backend{Backend::kScalar};
std::once_flag g_resolve_once;

void Publish(Backend backend) {
  const KernelTable* table = TableFor(backend);
  LARGEEA_CHECK(table != nullptr);
  g_active_backend.store(backend, std::memory_order_relaxed);
  g_active_table.store(table, std::memory_order_release);
  obs::MetricsRegistry::Get().GetGauge("simd.backend").Set(
      static_cast<double>(static_cast<int32_t>(backend)));
}

/// First-use resolution: LARGEEA_SIMD if valid, else the CPUID best.
void ResolveFromEnvironment() {
  Backend backend = BestBackend();
  if (const char* env = std::getenv("LARGEEA_SIMD"); env != nullptr) {
    Backend requested;
    if (!ParseBackend(env, &requested)) {
      LARGEEA_LOG_WARN(
          "LARGEEA_SIMD='%s' is not auto|scalar|sse2|avx2; using %s", env,
          BackendName(backend));
    } else if (!BackendAvailable(requested)) {
      LARGEEA_LOG_WARN("LARGEEA_SIMD=%s not supported by this CPU; using %s",
                       BackendName(requested), BackendName(backend));
    } else {
      backend = requested;
    }
  }
  Publish(backend);
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool ParseBackend(std::string_view text, Backend* backend) {
  if (text == "auto") {
    *backend = BestBackend();
    return true;
  }
  if (text == "scalar") {
    *backend = Backend::kScalar;
    return true;
  }
  if (text == "sse2") {
    *backend = Backend::kSse2;
    return true;
  }
  if (text == "avx2") {
    *backend = Backend::kAvx2;
    return true;
  }
  return false;
}

Backend BestBackend() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendAvailable(Backend::kSse2)) return Backend::kSse2;
  return Backend::kScalar;
}

bool BackendAvailable(Backend backend) {
  // Needs both a table compiled into the binary and CPU support.
  return TableFor(backend) != nullptr && CpuSupports(backend);
}

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> backends;
  for (const Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (BackendAvailable(b)) backends.push_back(b);
  }
  return backends;
}

Backend ActiveBackend() {
  std::call_once(g_resolve_once, ResolveFromEnvironment);
  return g_active_backend.load(std::memory_order_relaxed);
}

void SetBackend(Backend backend) {
  LARGEEA_CHECK(BackendAvailable(backend));
  // Run the env resolution first so a later lazy first-use cannot
  // overwrite this explicit choice.
  std::call_once(g_resolve_once, ResolveFromEnvironment);
  Publish(backend);
}

const KernelTable& Kernels() {
  const KernelTable* table = g_active_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    std::call_once(g_resolve_once, ResolveFromEnvironment);
    table = g_active_table.load(std::memory_order_acquire);
  }
  return *table;
}

const KernelTable& KernelsFor(Backend backend) {
  LARGEEA_CHECK(BackendAvailable(backend));
  return *TableFor(backend);
}

}  // namespace largeea::simd
