// SSE2 backend: the 8 logical lanes live in two __m128 registers
// (lanes 0-3 low, 4-7 high). SSE2 is part of the x86-64 baseline, so
// this TU needs no special compile flags; on non-x86 targets it compiles
// to a stub returning null.
#include "src/simd/backends.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#include <emmintrin.h>

#include "src/simd/kernels_impl.h"

namespace largeea::simd {
namespace {

struct Sse2Vec {
  struct Reg {
    __m128 lo;  // lanes 0-3
    __m128 hi;  // lanes 4-7
  };

  static Reg Zero() { return Reg{_mm_setzero_ps(), _mm_setzero_ps()}; }

  static Reg LoadU(const float* p) {
    return Reg{_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }

  static void StoreU(float* p, Reg r) {
    _mm_storeu_ps(p, r.lo);
    _mm_storeu_ps(p + 4, r.hi);
  }

  static void Store(float out[8], Reg r) { StoreU(out, r); }

  static Reg Broadcast(float s) { return Reg{_mm_set1_ps(s), _mm_set1_ps(s)}; }

  static Reg Add(Reg a, Reg b) {
    return Reg{_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }

  static Reg Sub(Reg a, Reg b) {
    return Reg{_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
  }

  static Reg Mul(Reg a, Reg b) {
    return Reg{_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }

  static Reg Div(Reg a, Reg b) {
    return Reg{_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
  }

  static Reg Abs(Reg a) {
    // Clear the sign bit — the same result std::fabs produces, for every
    // input including -0.0 and NaNs.
    const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    return Reg{_mm_and_ps(a.lo, mask), _mm_and_ps(a.hi, mask)};
  }
};

}  // namespace

const KernelTable* Sse2KernelTable() {
  static constexpr KernelTable kTable = MakeKernelTable<Sse2Vec>();
  return &kTable;
}

}  // namespace largeea::simd

#else  // non-x86

namespace largeea::simd {

const KernelTable* Sse2KernelTable() { return nullptr; }

}  // namespace largeea::simd

#endif
