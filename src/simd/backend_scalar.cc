// Scalar backend: eight plain-float accumulator lanes. This is the
// portable reference the other backends must match bit for bit; it is
// also what non-x86 builds run. The compiler is free to auto-vectorise
// these loops — lane-wise IEEE mul/add semantics are preserved either
// way (the build disables fp contraction, so no FMA can sneak in).
#include <cmath>

#include "src/simd/backends.h"
#include "src/simd/kernels_impl.h"

namespace largeea::simd {
namespace {

struct ScalarVec {
  struct Reg {
    float lane[8];
  };

  static Reg Zero() { return Reg{{0, 0, 0, 0, 0, 0, 0, 0}}; }

  static Reg LoadU(const float* p) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = p[l];
    return r;
  }

  static void StoreU(float* p, Reg r) {
    for (int l = 0; l < 8; ++l) p[l] = r.lane[l];
  }

  static void Store(float out[8], Reg r) { StoreU(out, r); }

  static Reg Broadcast(float s) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = s;
    return r;
  }

  static Reg Add(Reg a, Reg b) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = a.lane[l] + b.lane[l];
    return r;
  }

  static Reg Sub(Reg a, Reg b) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = a.lane[l] - b.lane[l];
    return r;
  }

  static Reg Mul(Reg a, Reg b) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = a.lane[l] * b.lane[l];
    return r;
  }

  static Reg Div(Reg a, Reg b) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = a.lane[l] / b.lane[l];
    return r;
  }

  static Reg Abs(Reg a) {
    Reg r;
    for (int l = 0; l < 8; ++l) r.lane[l] = std::fabs(a.lane[l]);
    return r;
  }
};

}  // namespace

const KernelTable* ScalarKernelTable() {
  static constexpr KernelTable kTable = MakeKernelTable<ScalarVec>();
  return &kTable;
}

}  // namespace largeea::simd
