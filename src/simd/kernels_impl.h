// Backend-generic kernel bodies, templated on an 8-lane vector trait.
//
// Each backend TU (backend_scalar.cc, backend_sse2.cc, backend_avx2.cc)
// instantiates these templates with its own trait — a type V exposing:
//
//   V::Reg                       8 packed floats
//   V::Zero()                    all-zero register
//   V::LoadU(p) / V::StoreU(p)   unaligned load/store of 8 floats
//   V::Store(out8, r)            spill to a float[8] in lane order
//   V::Broadcast(s)              all lanes = s
//   V::Add / Sub / Mul / Div     lane-wise IEEE single ops
//   V::Abs                       lane-wise |x| (sign-bit clear)
//
// The bodies are what make the backends bit-identical (DESIGN.md §9):
// every reduction feeds eight accumulator lanes in stride-8 order, folds
// the tail element i into lane i % 8, and horizontal-sums in the fixed
// tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Per-lane arithmetic is one
// mul and one add — never an FMA — so each lane value is the same
// IEEE-754 result in every backend.
#ifndef LARGEEA_SIMD_KERNELS_IMPL_H_
#define LARGEEA_SIMD_KERNELS_IMPL_H_

#include <cmath>
#include <cstdint>

#include "src/simd/simd.h"

namespace largeea::simd {

/// Fixed-order horizontal sum of the eight accumulator lanes.
inline float LaneTreeSum(const float lanes[8]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

template <typename V>
float DotImpl(const float* a, const float* b, int64_t dim) {
  typename V::Reg acc = V::Zero();
  int64_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc = V::Add(acc, V::Mul(V::LoadU(a + i), V::LoadU(b + i)));
  }
  alignas(32) float lanes[8];
  V::Store(lanes, acc);
  for (int64_t lane = 0; i < dim; ++i, ++lane) lanes[lane] += a[i] * b[i];
  return LaneTreeSum(lanes);
}

template <typename V>
float ManhattanImpl(const float* a, const float* b, int64_t dim) {
  typename V::Reg acc = V::Zero();
  int64_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc = V::Add(acc, V::Abs(V::Sub(V::LoadU(a + i), V::LoadU(b + i))));
  }
  alignas(32) float lanes[8];
  V::Store(lanes, acc);
  for (int64_t lane = 0; i < dim; ++i, ++lane) {
    lanes[lane] += std::fabs(a[i] - b[i]);
  }
  return LaneTreeSum(lanes);
}

template <typename V>
float SumImpl(const float* a, int64_t dim) {
  typename V::Reg acc = V::Zero();
  int64_t i = 0;
  for (; i + 8 <= dim; i += 8) acc = V::Add(acc, V::LoadU(a + i));
  alignas(32) float lanes[8];
  V::Store(lanes, acc);
  for (int64_t lane = 0; i < dim; ++i, ++lane) lanes[lane] += a[i];
  return LaneTreeSum(lanes);
}

template <typename V>
void AxpyImpl(float alpha, const float* x, float* y, int64_t n) {
  const typename V::Reg va = V::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    V::StoreU(y + i, V::Add(V::LoadU(y + i), V::Mul(va, V::LoadU(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

template <typename V>
void ScaleImpl(float* x, float alpha, int64_t n) {
  const typename V::Reg va = V::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    V::StoreU(x + i, V::Mul(V::LoadU(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

template <typename V>
void DivideImpl(float* x, float denom, int64_t n) {
  const typename V::Reg vd = V::Broadcast(denom);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    V::StoreU(x + i, V::Div(V::LoadU(x + i), vd));
  }
  for (; i < n; ++i) x[i] /= denom;
}

/// Assembles a KernelTable from one trait.
template <typename V>
constexpr KernelTable MakeKernelTable() {
  return KernelTable{&DotImpl<V>,  &ManhattanImpl<V>, &SumImpl<V>,
                     &AxpyImpl<V>, &ScaleImpl<V>,     &DivideImpl<V>};
}

}  // namespace largeea::simd

#endif  // LARGEEA_SIMD_KERNELS_IMPL_H_
