// AVX2 backend: the 8 logical lanes are one __m256. This TU (and only
// this TU) is compiled with -mavx2 — see src/CMakeLists.txt — so the
// rest of the library never emits AVX instructions and the runtime
// CPUID dispatch in simd.cc stays sound on SSE-only machines. Note the
// deliberate absence of _mm256_fmadd_ps: a fused multiply-add rounds
// once where the other backends round twice, which would break the
// cross-backend bit-identity contract.
#include "src/simd/backends.h"

#if (defined(__x86_64__) || defined(__i386__) || defined(_M_X64)) && \
    defined(__AVX2__)

#include <immintrin.h>

#include "src/simd/kernels_impl.h"

namespace largeea::simd {
namespace {

struct Avx2Vec {
  using Reg = __m256;

  static Reg Zero() { return _mm256_setzero_ps(); }
  static Reg LoadU(const float* p) { return _mm256_loadu_ps(p); }
  static void StoreU(float* p, Reg r) { _mm256_storeu_ps(p, r); }
  static void Store(float out[8], Reg r) { _mm256_store_ps(out, r); }
  static Reg Broadcast(float s) { return _mm256_set1_ps(s); }
  static Reg Add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg Sub(Reg a, Reg b) { return _mm256_sub_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg Div(Reg a, Reg b) { return _mm256_div_ps(a, b); }

  static Reg Abs(Reg a) {
    const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    return _mm256_and_ps(a, mask);
  }
};

}  // namespace

const KernelTable* Avx2KernelTable() {
  static constexpr KernelTable kTable = MakeKernelTable<Avx2Vec>();
  return &kTable;
}

}  // namespace largeea::simd

#else  // non-x86 build, or the toolchain did not get -mavx2

namespace largeea::simd {

const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace largeea::simd

#endif
