// Margin ranking (triplet) loss over aligned entity embeddings.
//
// L = Σ_seeds Σ_negatives [ d(z_s, z_t) + γ − d(neg) ]₊  with L1 distance,
// the loss family shared by GCN-Align and RREA.
#ifndef LARGEEA_NN_LOSS_H_
#define LARGEEA_NN_LOSS_H_

#include <cstdint>
#include <span>
#include <utility>

#include "src/la/matrix.h"
#include "src/nn/negative_sampler.h"

namespace largeea {

struct MarginLossResult {
  double loss = 0.0;
  int64_t active_triplets = 0;
};

/// Computes the loss and *accumulates* dL/dZ into the gradient matrices
/// (caller zeroes them). Gradients are averaged over the triplet count so
/// the learning rate is insensitive to batch size.
MarginLossResult MarginLossAndGrad(
    const Matrix& source_embeddings, const Matrix& target_embeddings,
    std::span<const std::pair<int32_t, int32_t>> seeds,
    const NegativeSamples& negatives, float margin,
    Matrix& source_grad, Matrix& target_grad);

}  // namespace largeea

#endif  // LARGEEA_NN_LOSS_H_
