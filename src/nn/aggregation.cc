#include "src/nn/aggregation.h"

#include <cmath>

#include "src/common/macros.h"

namespace largeea {

NormalizedAdjacency::NormalizedAdjacency(const LocalGraph& graph) {
  const int32_t n = graph.num_vertices();
  self_coeff_.resize(n);
  for (int32_t v = 0; v < n; ++v) {
    self_coeff_[v] = 1.0f / static_cast<float>(graph.degree[v] + 1);
  }
  entries_.reserve(graph.edges.size() * 2);
  for (const LocalEdge& e : graph.edges) {
    if (e.head == e.tail) continue;
    const float coeff =
        1.0f / std::sqrt(static_cast<float>(graph.degree[e.head] + 1) *
                         static_cast<float>(graph.degree[e.tail] + 1));
    entries_.push_back(Entry{e.head, e.tail, coeff});
    entries_.push_back(Entry{e.tail, e.head, coeff});
  }
}

void NormalizedAdjacency::Apply(const Matrix& in, Matrix& out) const {
  LARGEEA_CHECK_EQ(in.rows(), num_vertices());
  LARGEEA_CHECK_EQ(out.rows(), in.rows());
  LARGEEA_CHECK_EQ(out.cols(), in.cols());
  const int64_t dim = in.cols();
  for (int32_t v = 0; v < num_vertices(); ++v) {
    const float c = self_coeff_[v];
    const float* src = in.Row(v);
    float* dst = out.Row(v);
    for (int64_t k = 0; k < dim; ++k) dst[k] = c * src[k];
  }
  for (const Entry& e : entries_) {
    const float* src = in.Row(e.j);
    float* dst = out.Row(e.i);
    for (int64_t k = 0; k < dim; ++k) dst[k] += e.coeff * src[k];
  }
}

}  // namespace largeea
