// Adam optimizer state for a dense parameter matrix.
#ifndef LARGEEA_NN_ADAM_H_
#define LARGEEA_NN_ADAM_H_

#include <cstdint>

#include "src/la/matrix.h"

namespace largeea {

struct AdamOptions {
  float learning_rate = 0.005f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// Per-parameter Adam moments. One instance per parameter matrix; Step()
/// applies an update in place.
class AdamState {
 public:
  AdamState(int64_t rows, int64_t cols, const AdamOptions& options);

  /// Applies one Adam update: param -= lr * m_hat / (sqrt(v_hat) + eps).
  /// Shapes of `param` and `grad` must match the constructor's.
  void Step(Matrix& param, const Matrix& grad);

  int64_t step_count() const { return step_; }

 private:
  AdamOptions options_;
  Matrix m_;
  Matrix v_;
  int64_t step_ = 0;
};

}  // namespace largeea

#endif  // LARGEEA_NN_ADAM_H_
