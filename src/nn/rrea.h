// RREA-style structural model (LargeEA-R's plug-in).
//
// Captures RREA's core idea — relation-specific *reflection* transforms.
// A reflection M_r = I − 2 n_r n_rᵀ (unit normal n_r, learned) is
// orthogonal, so neighbour messages keep their norms, which is the
// property the RREA paper credits for its stability. Aggregation:
//
//   h⁰ = X,   h^{l+1}_i = c_i ( h^l_i + Σ_{(j,r)∈N(i)} Reflect(n_r, h^l_j) )
//
// with c_i = 1/(deg_i + 1), two rounds, free X per KG and per-relation
// normals per KG; gradients (including dL/dn_r) are hand-derived, and the
// normals are re-projected to unit norm after every optimizer step.
#ifndef LARGEEA_NN_RREA_H_
#define LARGEEA_NN_RREA_H_

#include "src/nn/ea_model.h"

namespace largeea {

class RreaModel final : public EaModel {
 public:
  TrainedEmbeddings Train(
      const LocalGraph& source, const LocalGraph& target,
      const std::vector<std::pair<int32_t, int32_t>>& seeds,
      const TrainOptions& options) override;

  const char* name() const override { return "RREA"; }
};

}  // namespace largeea

#endif  // LARGEEA_NN_RREA_H_
