// Negative sampling for the margin ranking loss.
//
// Two flavours: uniform random corruption, and (approximate) nearest-
// neighbour sampling à la RREA — for each seed the hardest negatives are
// picked from a random candidate pool by current embedding distance, which
// keeps the cost bounded on large batches.
#ifndef LARGEEA_NN_NEGATIVE_SAMPLER_H_
#define LARGEEA_NN_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/la/matrix.h"

namespace largeea {

/// Per-seed negatives. target_negatives[i] corrupt the target side of
/// seed i; source_negatives[i] corrupt the source side.
struct NegativeSamples {
  std::vector<std::vector<int32_t>> target_negatives;
  std::vector<std::vector<int32_t>> source_negatives;
};

/// Uniform random corruption (excludes the true counterpart).
NegativeSamples SampleRandomNegatives(
    std::span<const std::pair<int32_t, int32_t>> seeds, int32_t num_source,
    int32_t num_target, int32_t negatives_per_seed, Rng& rng);

/// Approximate nearest-neighbour corruption: for each seed, negatives are
/// the `negatives_per_seed` closest (L1) entities to the anchor among
/// `pool_size` random candidates. Requires current embeddings.
NegativeSamples SampleNearestNegatives(
    std::span<const std::pair<int32_t, int32_t>> seeds,
    const Matrix& source_embeddings, const Matrix& target_embeddings,
    int32_t negatives_per_seed, int32_t pool_size, Rng& rng);

}  // namespace largeea

#endif  // LARGEEA_NN_NEGATIVE_SAMPLER_H_
