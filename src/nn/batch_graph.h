// Local re-indexed training graph for one side of a mini-batch.
//
// Mini-batch training never touches global KG ids: the batch's entity
// list defines a dense local id space, and only triples with both
// endpoints inside the batch survive (edges cut by partitioning are
// exactly the structural information the batch loses — the paper's
// accuracy-vs-K trade-off).
#ifndef LARGEEA_NN_BATCH_GRAPH_H_
#define LARGEEA_NN_BATCH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/kg/knowledge_graph.h"

namespace largeea {

/// A directed labelled edge in local id space.
struct LocalEdge {
  int32_t head = 0;
  RelationId relation = 0;
  int32_t tail = 0;
};

/// One KG restricted to a batch's entities, re-indexed to [0, n).
struct LocalGraph {
  /// global_ids[local] = the KG entity id of local vertex `local`.
  std::vector<EntityId> global_ids;
  /// Surviving triples in local ids.
  std::vector<LocalEdge> edges;
  /// Number of relations in the parent KG (relation ids are global).
  int32_t num_relations = 0;
  /// Undirected degree (in+out, counting both edge directions) per local
  /// vertex — used for mean-aggregation normalisation.
  std::vector<int32_t> degree;

  int32_t num_vertices() const {
    return static_cast<int32_t>(global_ids.size());
  }
};

/// Restricts `kg` to `entities` and re-indexes.
LocalGraph BuildLocalGraph(const KnowledgeGraph& kg,
                           std::span<const EntityId> entities);

/// Maps `seeds` (global ids) into local (source_local, target_local)
/// index pairs given the two local graphs. Seeds with either endpoint
/// outside the batch are dropped.
std::vector<std::pair<int32_t, int32_t>> LocalizeSeeds(
    const LocalGraph& source, const LocalGraph& target,
    const EntityPairList& seeds);

}  // namespace largeea

#endif  // LARGEEA_NN_BATCH_GRAPH_H_
