#include "src/nn/transe.h"

#include <cmath>

#include "src/common/macros.h"
#include "src/la/ops.h"
#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/nn/negative_sampler.h"

namespace largeea {
namespace {

float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }

// One KG's TransE state: entity embeddings + relation translations.
struct TransESide {
  TransESide(const LocalGraph& graph_in, int32_t dim, Rng& rng)
      : graph(&graph_in),
        x(graph_in.num_vertices(), dim),
        r(std::max(graph_in.num_relations, 1), dim),
        dx(graph_in.num_vertices(), dim),
        dr(std::max(graph_in.num_relations, 1), dim) {
    x.GlorotInit(rng);
    r.GlorotInit(rng);
    L2NormalizeRows(x);
  }

  // Margin ranking over triples: [ d(h+r, t) + margin − d(h'+r, t') ]₊
  // with L1 distance and a uniformly corrupted head or tail. Gradients
  // are accumulated into dx / dr (caller zeroes them).
  double TripleLossAndGrad(float margin, Rng& rng) {
    const int64_t dim = x.cols();
    if (graph->edges.empty()) return 0.0;
    const float scale = 1.0f / static_cast<float>(graph->edges.size());
    double loss = 0.0;
    std::vector<float> pos_sign(dim), neg_sign(dim);
    for (const LocalEdge& e : graph->edges) {
      const bool corrupt_tail = rng.Bernoulli(0.5);
      int32_t ch = e.head, ct = e.tail;
      const auto random_vertex = [&] {
        return static_cast<int32_t>(rng.Uniform(graph->num_vertices()));
      };
      if (corrupt_tail) {
        ct = random_vertex();
        if (ct == e.tail) ct = (ct + 1) % graph->num_vertices();
      } else {
        ch = random_vertex();
        if (ch == e.head) ch = (ch + 1) % graph->num_vertices();
      }
      const float* h = x.Row(e.head);
      const float* t = x.Row(e.tail);
      const float* hn = x.Row(ch);
      const float* tn = x.Row(ct);
      const float* rel = this->r.Row(e.relation);
      float d_pos = 0.0f, d_neg = 0.0f;
      for (int64_t k = 0; k < dim; ++k) {
        const float pd = h[k] + rel[k] - t[k];
        const float nd = hn[k] + rel[k] - tn[k];
        d_pos += std::fabs(pd);
        d_neg += std::fabs(nd);
        pos_sign[k] = Sign(pd);
        neg_sign[k] = Sign(nd);
      }
      const float v = d_pos + margin - d_neg;
      if (v <= 0.0f) continue;
      loss += static_cast<double>(v) * scale;
      float* gh = dx.Row(e.head);
      float* gt = dx.Row(e.tail);
      float* ghn = dx.Row(ch);
      float* gtn = dx.Row(ct);
      float* gr = dr.Row(e.relation);
      for (int64_t k = 0; k < dim; ++k) {
        gh[k] += scale * pos_sign[k];
        gt[k] -= scale * pos_sign[k];
        gr[k] += scale * (pos_sign[k] - neg_sign[k]);
        ghn[k] -= scale * neg_sign[k];
        gtn[k] += scale * neg_sign[k];
      }
    }
    return loss;
  }

  const LocalGraph* graph;
  Matrix x, r;
  Matrix dx, dr;
};

}  // namespace

TrainedEmbeddings TransEModel::Train(
    const LocalGraph& source, const LocalGraph& target,
    const std::vector<std::pair<int32_t, int32_t>>& seeds,
    const TrainOptions& options) {
  LARGEEA_CHECK_GT(source.num_vertices(), 1);
  LARGEEA_CHECK_GT(target.num_vertices(), 1);
  Rng rng(options.seed);

  TransESide src_side(source, options.dim, rng);
  TransESide tgt_side(target, options.dim, rng);
  if (options.source_init != nullptr) {
    LARGEEA_CHECK_EQ(options.source_init->rows(), src_side.x.rows());
    src_side.x = *options.source_init;
  }
  if (options.target_init != nullptr) {
    LARGEEA_CHECK_EQ(options.target_init->rows(), tgt_side.x.rows());
    tgt_side.x = *options.target_init;
  }

  const AdamOptions adam_options{.learning_rate = options.learning_rate};
  AdamState adam_xs(src_side.x.rows(), options.dim, adam_options);
  AdamState adam_xt(tgt_side.x.rows(), options.dim, adam_options);
  AdamState adam_rs(src_side.r.rows(), options.dim, adam_options);
  AdamState adam_rt(tgt_side.r.rows(), options.dim, adam_options);

  // TransE's triple margin is conventionally smaller than the alignment
  // margin; keep the classic 1.0.
  constexpr float kTripleMargin = 1.0f;

  NegativeSamples negatives;
  double last_loss = 0.0;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    src_side.dx.Fill(0.0f);
    src_side.dr.Fill(0.0f);
    tgt_side.dx.Fill(0.0f);
    tgt_side.dr.Fill(0.0f);

    double loss = src_side.TripleLossAndGrad(kTripleMargin, rng);
    loss += tgt_side.TripleLossAndGrad(kTripleMargin, rng);

    const bool refresh =
        options.hard_negative_refresh > 0
            ? (epoch % options.hard_negative_refresh == 0)
            : (epoch == 0);
    if (refresh) {
      if (options.hard_negative_refresh > 0 && epoch > 0) {
        negatives = SampleNearestNegatives(
            seeds, src_side.x, tgt_side.x, options.negatives_per_seed,
            options.hard_negative_pool, rng);
      } else {
        negatives = SampleRandomNegatives(
            seeds, source.num_vertices(), target.num_vertices(),
            options.negatives_per_seed, rng);
      }
    }
    const MarginLossResult align =
        MarginLossAndGrad(src_side.x, tgt_side.x, seeds, negatives,
                          options.margin, src_side.dx, tgt_side.dx);
    last_loss = loss + align.loss;

    adam_xs.Step(src_side.x, src_side.dx);
    adam_xt.Step(tgt_side.x, tgt_side.dx);
    adam_rs.Step(src_side.r, src_side.dr);
    adam_rt.Step(tgt_side.r, tgt_side.dr);
    // Classic TransE constraint: entities stay on the unit ball.
    L2NormalizeRows(src_side.x);
    L2NormalizeRows(tgt_side.x);
  }

  TrainedEmbeddings result;
  result.source = src_side.x;
  result.target = tgt_side.x;
  result.final_loss = last_loss;
  return result;
}

}  // namespace largeea
