#include "src/nn/batch_graph.h"

#include <unordered_map>

#include "src/common/macros.h"

namespace largeea {

LocalGraph BuildLocalGraph(const KnowledgeGraph& kg,
                           std::span<const EntityId> entities) {
  LocalGraph graph;
  graph.global_ids.assign(entities.begin(), entities.end());
  graph.num_relations = kg.num_relations();

  std::unordered_map<EntityId, int32_t> to_local;
  to_local.reserve(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    LARGEEA_CHECK_GE(entities[i], 0);
    LARGEEA_CHECK_LT(entities[i], kg.num_entities());
    const bool inserted =
        to_local.emplace(entities[i], static_cast<int32_t>(i)).second;
    LARGEEA_CHECK(inserted);  // duplicate entity in batch
  }

  graph.degree.assign(entities.size(), 0);
  for (const Triple& t : kg.triples()) {
    const auto head_it = to_local.find(t.head);
    if (head_it == to_local.end()) continue;
    const auto tail_it = to_local.find(t.tail);
    if (tail_it == to_local.end()) continue;
    graph.edges.push_back(
        LocalEdge{head_it->second, t.relation, tail_it->second});
    ++graph.degree[head_it->second];
    ++graph.degree[tail_it->second];
  }
  return graph;
}

std::vector<std::pair<int32_t, int32_t>> LocalizeSeeds(
    const LocalGraph& source, const LocalGraph& target,
    const EntityPairList& seeds) {
  std::unordered_map<EntityId, int32_t> source_local, target_local;
  for (size_t i = 0; i < source.global_ids.size(); ++i) {
    source_local.emplace(source.global_ids[i], static_cast<int32_t>(i));
  }
  for (size_t i = 0; i < target.global_ids.size(); ++i) {
    target_local.emplace(target.global_ids[i], static_cast<int32_t>(i));
  }
  std::vector<std::pair<int32_t, int32_t>> local;
  local.reserve(seeds.size());
  for (const EntityPair& p : seeds) {
    const auto s = source_local.find(p.source);
    const auto t = target_local.find(p.target);
    if (s == source_local.end() || t == target_local.end()) continue;
    local.emplace_back(s->second, t->second);
  }
  return local;
}

}  // namespace largeea
