// Sparse neighbourhood aggregation operators for the GNN models.
#ifndef LARGEEA_NN_AGGREGATION_H_
#define LARGEEA_NN_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "src/la/matrix.h"
#include "src/nn/batch_graph.h"

namespace largeea {

/// Symmetric-normalised adjacency with self-loops,
/// Â = D^{-1/2} (A + I) D^{-1/2}, applied as a sparse-dense product.
/// Â is symmetric, so the same Apply() serves forward and backward.
class NormalizedAdjacency {
 public:
  explicit NormalizedAdjacency(const LocalGraph& graph);

  /// out = Â · in. `out` is overwritten; shapes must match.
  void Apply(const Matrix& in, Matrix& out) const;

  int32_t num_vertices() const {
    return static_cast<int32_t>(self_coeff_.size());
  }

 private:
  struct Entry {
    int32_t i;
    int32_t j;
    float coeff;
  };
  std::vector<Entry> entries_;      // off-diagonal, both directions
  std::vector<float> self_coeff_;   // diagonal
};

}  // namespace largeea

#endif  // LARGEEA_NN_AGGREGATION_H_
