// GCN-Align-style structural model (LargeEA-G's plug-in).
//
// A 2-layer graph convolutional network per KG with shared weight
// matrices: Z = Â · relu(Â X W1) · W2, where Â is the symmetric-normalised
// adjacency with self-loops and X are free (learned) entity features.
// Gradients are hand-derived; Â's symmetry makes the backward aggregation
// identical to the forward one.
#ifndef LARGEEA_NN_GCN_ALIGN_H_
#define LARGEEA_NN_GCN_ALIGN_H_

#include "src/nn/ea_model.h"

namespace largeea {

class GcnAlignModel final : public EaModel {
 public:
  TrainedEmbeddings Train(
      const LocalGraph& source, const LocalGraph& target,
      const std::vector<std::pair<int32_t, int32_t>>& seeds,
      const TrainOptions& options) override;

  const char* name() const override { return "GCN-Align"; }
};

}  // namespace largeea

#endif  // LARGEEA_NN_GCN_ALIGN_H_
