// TransE-style translational structural model (MTransE-like plug-in).
//
// The paper's related work splits structural EA into GNN-based and
// *translational* families; this model covers the latter so LargeEA can
// be instantiated with either. Each KG learns entity embeddings X and
// relation translation vectors R under the classic TransE objective
// (h + r ≈ t, margin ranking with corrupted triples), while the alignment
// margin loss on seed pairs ties the two spaces together — the MTransE /
// BootEA recipe reduced to its core.
#ifndef LARGEEA_NN_TRANSE_H_
#define LARGEEA_NN_TRANSE_H_

#include "src/nn/ea_model.h"

namespace largeea {

class TransEModel final : public EaModel {
 public:
  TrainedEmbeddings Train(
      const LocalGraph& source, const LocalGraph& target,
      const std::vector<std::pair<int32_t, int32_t>>& seeds,
      const TrainOptions& options) override;

  const char* name() const override { return "TransE"; }
};

}  // namespace largeea

#endif  // LARGEEA_NN_TRANSE_H_
