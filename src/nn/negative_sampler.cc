#include "src/nn/negative_sampler.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/la/ops.h"

namespace largeea {
namespace {

// `count` hardest candidates for `anchor` among `pool_size` random rows of
// `candidates`, excluding `exclude`.
std::vector<int32_t> NearestFromPool(const float* anchor,
                                     const Matrix& candidates,
                                     int32_t exclude, int32_t count,
                                     int32_t pool_size, Rng& rng) {
  const int32_t n = static_cast<int32_t>(candidates.rows());
  std::vector<std::pair<float, int32_t>> scored;
  scored.reserve(pool_size);
  for (int32_t i = 0; i < pool_size; ++i) {
    const int32_t cand = static_cast<int32_t>(rng.Uniform(n));
    if (cand == exclude) continue;
    scored.emplace_back(
        ManhattanDistance(anchor, candidates.Row(cand), candidates.cols()),
        cand);
  }
  const size_t take = std::min<size_t>(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<int32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

NegativeSamples SampleRandomNegatives(
    std::span<const std::pair<int32_t, int32_t>> seeds, int32_t num_source,
    int32_t num_target, int32_t negatives_per_seed, Rng& rng) {
  LARGEEA_CHECK_GT(num_source, 1);
  LARGEEA_CHECK_GT(num_target, 1);
  NegativeSamples samples;
  samples.target_negatives.resize(seeds.size());
  samples.source_negatives.resize(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (int32_t j = 0; j < negatives_per_seed; ++j) {
      int32_t t = static_cast<int32_t>(rng.Uniform(num_target));
      if (t == seeds[i].second) t = (t + 1) % num_target;
      samples.target_negatives[i].push_back(t);
      int32_t s = static_cast<int32_t>(rng.Uniform(num_source));
      if (s == seeds[i].first) s = (s + 1) % num_source;
      samples.source_negatives[i].push_back(s);
    }
  }
  return samples;
}

NegativeSamples SampleNearestNegatives(
    std::span<const std::pair<int32_t, int32_t>> seeds,
    const Matrix& source_embeddings, const Matrix& target_embeddings,
    int32_t negatives_per_seed, int32_t pool_size, Rng& rng) {
  NegativeSamples samples;
  samples.target_negatives.resize(seeds.size());
  samples.source_negatives.resize(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    const auto [s, t] = seeds[i];
    samples.target_negatives[i] = NearestFromPool(
        source_embeddings.Row(s), target_embeddings, t, negatives_per_seed,
        pool_size, rng);
    samples.source_negatives[i] = NearestFromPool(
        target_embeddings.Row(t), source_embeddings, s, negatives_per_seed,
        pool_size, rng);
  }
  return samples;
}

}  // namespace largeea
