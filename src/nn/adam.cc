#include "src/nn/adam.h"

#include <cmath>

#include "src/common/macros.h"

namespace largeea {

AdamState::AdamState(int64_t rows, int64_t cols, const AdamOptions& options)
    : options_(options), m_(rows, cols), v_(rows, cols) {}

void AdamState::Step(Matrix& param, const Matrix& grad) {
  LARGEEA_CHECK_EQ(param.rows(), m_.rows());
  LARGEEA_CHECK_EQ(param.cols(), m_.cols());
  LARGEEA_CHECK_EQ(grad.rows(), m_.rows());
  LARGEEA_CHECK_EQ(grad.cols(), m_.cols());
  ++step_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_));
  const float lr = options_.learning_rate;
  const float eps = options_.epsilon;

  float* p = param.data();
  const float* g = grad.data();
  float* m = m_.data();
  float* v = v_.data();
  const int64_t size = param.size();
  for (int64_t i = 0; i < size; ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * g[i];
    v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace largeea
