#include "src/nn/rrea.h"

#include <vector>

#include "src/common/macros.h"
#include "src/la/ops.h"
#include "src/nn/adam.h"
#include "src/nn/gcn_align.h"
#include "src/nn/transe.h"
#include "src/nn/loss.h"
#include "src/nn/negative_sampler.h"

namespace largeea {
namespace {

// out = h - 2 (n·h) n, written into dst (+= if accumulate).
inline void ReflectInto(const float* n, const float* h, int64_t dim,
                        float scale, float* dst) {
  const float nh = Dot(n, h, dim);
  for (int64_t k = 0; k < dim; ++k) {
    dst[k] += scale * (h[k] - 2.0f * nh * n[k]);
  }
}

// One KG's state: embeddings, per-relation unit normals, layer buffers.
struct RreaSide {
  RreaSide(const LocalGraph& graph_in, int32_t dim, Rng& rng)
      : graph(&graph_in),
        x(graph_in.num_vertices(), dim),
        normals(std::max(graph_in.num_relations, 1), dim),
        h1(graph_in.num_vertices(), dim),
        h2(graph_in.num_vertices(), dim),
        dx(graph_in.num_vertices(), dim),
        dh1(graph_in.num_vertices(), dim),
        dh2(graph_in.num_vertices(), dim),
        dn(std::max(graph_in.num_relations, 1), dim),
        coeff(graph_in.num_vertices()) {
    x.GlorotInit(rng);
    normals.GaussianInit(rng, 1.0f);
    L2NormalizeRows(normals);
    for (int32_t v = 0; v < graph_in.num_vertices(); ++v) {
      coeff[v] = 1.0f / static_cast<float>(graph_in.degree[v] + 1);
    }
  }

  // dst = layer(src): dst[i] = c_i (src[i] + Σ reflections of neighbours).
  void ForwardLayer(const Matrix& src, Matrix& dst) const {
    const int64_t dim = src.cols();
    dst.Fill(0.0f);
    for (const LocalEdge& e : graph->edges) {
      const float* n = normals.Row(e.relation);
      ReflectInto(n, src.Row(e.head), dim, coeff[e.tail], dst.Row(e.tail));
      ReflectInto(n, src.Row(e.tail), dim, coeff[e.head], dst.Row(e.head));
    }
    for (int32_t v = 0; v < graph->num_vertices(); ++v) {
      const float c = coeff[v];
      const float* s = src.Row(v);
      float* d = dst.Row(v);
      for (int64_t k = 0; k < dim; ++k) d[k] += c * s[k];
    }
  }

  // Backward of one layer: given d(out) and the layer input `src`,
  // accumulates d(src) into dsrc (overwritten) and dL/dn into dn.
  void BackwardLayer(const Matrix& src, const Matrix& dout, Matrix& dsrc) {
    const int64_t dim = src.cols();
    dsrc.Fill(0.0f);
    for (int32_t v = 0; v < graph->num_vertices(); ++v) {
      const float c = coeff[v];
      const float* g = dout.Row(v);
      float* d = dsrc.Row(v);
      for (int64_t k = 0; k < dim; ++k) d[k] += c * g[k];
    }
    std::vector<float> g(dim);
    for (const LocalEdge& e : graph->edges) {
      const float* n = normals.Row(e.relation);
      float* dnr = dn.Row(e.relation);
      // Direction tail <- head.
      {
        const float c = coeff[e.tail];
        const float* gout = dout.Row(e.tail);
        const float* h = src.Row(e.head);
        for (int64_t k = 0; k < dim; ++k) g[k] = c * gout[k];
        // d(src[head]) += Reflect(n, g): reflections are symmetric.
        ReflectInto(n, g.data(), dim, 1.0f, dsrc.Row(e.head));
        const float gn = Dot(g.data(), n, dim);
        const float nh = Dot(n, h, dim);
        for (int64_t k = 0; k < dim; ++k) {
          dnr[k] += -2.0f * (gn * h[k] + nh * g[k]);
        }
      }
      // Direction head <- tail.
      {
        const float c = coeff[e.head];
        const float* gout = dout.Row(e.head);
        const float* h = src.Row(e.tail);
        for (int64_t k = 0; k < dim; ++k) g[k] = c * gout[k];
        ReflectInto(n, g.data(), dim, 1.0f, dsrc.Row(e.tail));
        const float gn = Dot(g.data(), n, dim);
        const float nh = Dot(n, h, dim);
        for (int64_t k = 0; k < dim; ++k) {
          dnr[k] += -2.0f * (gn * h[k] + nh * g[k]);
        }
      }
    }
  }

  void Forward() {
    ForwardLayer(x, h1);
    ForwardLayer(h1, h2);
  }

  // Backward from dh2 into dx and dn (dn zeroed here).
  void Backward() {
    dn.Fill(0.0f);
    BackwardLayer(h1, dh2, dh1);
    BackwardLayer(x, dh1, dx);
  }

  const LocalGraph* graph;
  Matrix x;
  Matrix normals;
  Matrix h1, h2;
  Matrix dx, dh1, dh2, dn;
  std::vector<float> coeff;
};

}  // namespace

TrainedEmbeddings RreaModel::Train(
    const LocalGraph& source, const LocalGraph& target,
    const std::vector<std::pair<int32_t, int32_t>>& seeds,
    const TrainOptions& options) {
  LARGEEA_CHECK_GT(source.num_vertices(), 1);
  LARGEEA_CHECK_GT(target.num_vertices(), 1);
  Rng rng(options.seed);

  RreaSide src_side(source, options.dim, rng);
  RreaSide tgt_side(target, options.dim, rng);
  if (options.source_init != nullptr) {
    LARGEEA_CHECK_EQ(options.source_init->rows(), src_side.x.rows());
    LARGEEA_CHECK_EQ(options.source_init->cols(), options.dim);
    src_side.x = *options.source_init;
  }
  if (options.target_init != nullptr) {
    LARGEEA_CHECK_EQ(options.target_init->rows(), tgt_side.x.rows());
    LARGEEA_CHECK_EQ(options.target_init->cols(), options.dim);
    tgt_side.x = *options.target_init;
  }

  const AdamOptions adam_options{.learning_rate = options.learning_rate};
  AdamState adam_xs(src_side.x.rows(), options.dim, adam_options);
  AdamState adam_xt(tgt_side.x.rows(), options.dim, adam_options);
  AdamState adam_ns(src_side.normals.rows(), options.dim, adam_options);
  AdamState adam_nt(tgt_side.normals.rows(), options.dim, adam_options);

  NegativeSamples negatives;
  double last_loss = 0.0;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    src_side.Forward();
    tgt_side.Forward();

    const bool refresh =
        options.hard_negative_refresh > 0
            ? (epoch % options.hard_negative_refresh == 0)
            : (epoch == 0);
    if (refresh) {
      if (options.hard_negative_refresh > 0 && epoch > 0) {
        negatives = SampleNearestNegatives(
            seeds, src_side.h2, tgt_side.h2, options.negatives_per_seed,
            options.hard_negative_pool, rng);
      } else {
        negatives = SampleRandomNegatives(
            seeds, source.num_vertices(), target.num_vertices(),
            options.negatives_per_seed, rng);
      }
    }

    src_side.dh2.Fill(0.0f);
    tgt_side.dh2.Fill(0.0f);
    const MarginLossResult loss =
        MarginLossAndGrad(src_side.h2, tgt_side.h2, seeds, negatives,
                          options.margin, src_side.dh2, tgt_side.dh2);
    last_loss = loss.loss;

    src_side.Backward();
    tgt_side.Backward();

    adam_xs.Step(src_side.x, src_side.dx);
    adam_xt.Step(tgt_side.x, tgt_side.dx);
    adam_ns.Step(src_side.normals, src_side.dn);
    adam_nt.Step(tgt_side.normals, tgt_side.dn);
    // Keep the reflections orthogonal: project normals back to unit norm.
    L2NormalizeRows(src_side.normals);
    L2NormalizeRows(tgt_side.normals);
  }

  src_side.Forward();
  tgt_side.Forward();
  TrainedEmbeddings result;
  result.source = src_side.h2;
  result.target = tgt_side.h2;
  L2NormalizeRows(result.source);
  L2NormalizeRows(result.target);
  result.final_loss = last_loss;
  return result;
}

std::unique_ptr<EaModel> MakeModel(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcnAlign:
      return std::make_unique<GcnAlignModel>();
    case ModelKind::kRrea:
      return std::make_unique<RreaModel>();
    case ModelKind::kTransE:
      return std::make_unique<TransEModel>();
  }
  return nullptr;  // unreachable
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcnAlign:
      return "GCN-Align";
    case ModelKind::kRrea:
      return "RREA";
    case ModelKind::kTransE:
      return "TransE";
  }
  return "?";
}

}  // namespace largeea
