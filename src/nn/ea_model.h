// Common interface of the structural EA models (mini-batch black box).
//
// LargeEA treats the structural trainer as a pluggable black box
// (Section 2.2.2); this interface is that plug. Both bundled models learn
// free entity embeddings for the two local graphs, tied only through the
// margin ranking loss on the batch's seed pairs.
#ifndef LARGEEA_NN_EA_MODEL_H_
#define LARGEEA_NN_EA_MODEL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/la/matrix.h"
#include "src/nn/batch_graph.h"

namespace largeea {

/// Hyper-parameters shared by the structural models.
struct TrainOptions {
  int32_t dim = 48;
  int32_t epochs = 60;
  float margin = 2.0f;
  float learning_rate = 0.02f;
  int32_t negatives_per_seed = 4;
  /// Nearest-neighbour negatives are refreshed every this many epochs
  /// (RREA's truncated sampling); 0 disables and uses random negatives.
  int32_t hard_negative_refresh = 10;
  /// Candidate pool size for nearest-negative search.
  int32_t hard_negative_pool = 256;
  uint64_t seed = 1;
  /// Optional initial entity features (RDGCN-style name initialisation).
  /// When set, must have one row per local vertex and `dim` columns, and
  /// must outlive Train(). Null means Glorot-random initialisation.
  const Matrix* source_init = nullptr;
  const Matrix* target_init = nullptr;
};

/// Final embeddings for one trained batch, row-aligned with the local
/// graphs' vertex order, L2-normalised for similarity scoring.
struct TrainedEmbeddings {
  Matrix source;
  Matrix target;
  double final_loss = 0.0;
};

/// A structural EA model trainable on one (source, target) graph pair.
class EaModel {
 public:
  virtual ~EaModel() = default;

  /// Trains on the pair of local graphs using `seeds` (local index pairs)
  /// and returns the aligned embeddings. Deterministic in options.seed.
  virtual TrainedEmbeddings Train(
      const LocalGraph& source, const LocalGraph& target,
      const std::vector<std::pair<int32_t, int32_t>>& seeds,
      const TrainOptions& options) = 0;

  /// Model name for reporting ("GCN-Align", "RREA").
  virtual const char* name() const = 0;
};

/// Which bundled model to use.
enum class ModelKind {
  kGcnAlign,  ///< vanilla 2-layer GCN (LargeEA-G)
  kRrea,      ///< relational-reflection aggregation (LargeEA-R)
  kTransE,    ///< translational embeddings (LargeEA-T)
};

/// Factory for the bundled models.
std::unique_ptr<EaModel> MakeModel(ModelKind kind);

/// Human-readable model name.
const char* ModelKindName(ModelKind kind);

}  // namespace largeea

#endif  // LARGEEA_NN_EA_MODEL_H_
