#include "src/nn/gcn_align.h"

#include "src/common/macros.h"
#include "src/la/ops.h"
#include "src/nn/adam.h"
#include "src/nn/aggregation.h"
#include "src/nn/loss.h"
#include "src/nn/negative_sampler.h"

namespace largeea {
namespace {

// Forward/backward workspace for one KG's GCN pass.
struct GcnSide {
  explicit GcnSide(const LocalGraph& graph, int32_t dim, Rng& rng)
      : adjacency(graph),
        x(graph.num_vertices(), dim),
        p1(graph.num_vertices(), dim),
        q1(graph.num_vertices(), dim),
        h1(graph.num_vertices(), dim),
        p2(graph.num_vertices(), dim),
        z(graph.num_vertices(), dim),
        dx(graph.num_vertices(), dim),
        dz(graph.num_vertices(), dim),
        scratch(graph.num_vertices(), dim) {
    x.GlorotInit(rng);
  }

  // Z = Â · relu(Â X W1) · W2, intermediates retained for backward.
  void Forward(const Matrix& w1, const Matrix& w2) {
    adjacency.Apply(x, p1);
    Gemm(p1, w1, q1);
    h1 = q1;
    ReluInPlace(h1);
    adjacency.Apply(h1, p2);
    Gemm(p2, w2, z);
  }

  // Backward from dz; accumulates into dw1/dw2, overwrites dx.
  void Backward(const Matrix& w1, const Matrix& w2, Matrix& dw1,
                Matrix& dw2) {
    // dW2 += P2^T dZ ; dP2 = dZ W2^T
    GemmTransposeA(p2, dz, scratch_w2_);
    Axpy(1.0f, scratch_w2_, dw2);
    Matrix dp2(z.rows(), w2.rows());
    GemmTransposeB(dz, w2, dp2);
    // dH1 = Â dP2 (Â symmetric)
    adjacency.Apply(dp2, scratch);
    // dQ1 = relu'(Q1) ⊙ dH1
    ReluBackwardInPlace(q1, scratch);
    // dW1 += P1^T dQ1 ; dP1 = dQ1 W1^T
    GemmTransposeA(p1, scratch, scratch_w1_);
    Axpy(1.0f, scratch_w1_, dw1);
    Matrix dp1(z.rows(), w1.rows());
    GemmTransposeB(scratch, w1, dp1);
    // dX = Â dP1
    adjacency.Apply(dp1, dx);
  }

  void InitScratch(int32_t dim) {
    scratch_w1_ = Matrix(dim, dim);
    scratch_w2_ = Matrix(dim, dim);
  }

  NormalizedAdjacency adjacency;
  Matrix x, p1, q1, h1, p2, z;
  Matrix dx, dz, scratch;
  Matrix scratch_w1_, scratch_w2_;
};

}  // namespace

TrainedEmbeddings GcnAlignModel::Train(
    const LocalGraph& source, const LocalGraph& target,
    const std::vector<std::pair<int32_t, int32_t>>& seeds,
    const TrainOptions& options) {
  LARGEEA_CHECK_GT(source.num_vertices(), 1);
  LARGEEA_CHECK_GT(target.num_vertices(), 1);
  Rng rng(options.seed);
  const int32_t dim = options.dim;

  GcnSide src_side(source, dim, rng);
  GcnSide tgt_side(target, dim, rng);
  src_side.InitScratch(dim);
  tgt_side.InitScratch(dim);
  if (options.source_init != nullptr) {
    LARGEEA_CHECK_EQ(options.source_init->rows(), src_side.x.rows());
    LARGEEA_CHECK_EQ(options.source_init->cols(), dim);
    src_side.x = *options.source_init;
  }
  if (options.target_init != nullptr) {
    LARGEEA_CHECK_EQ(options.target_init->rows(), tgt_side.x.rows());
    LARGEEA_CHECK_EQ(options.target_init->cols(), dim);
    tgt_side.x = *options.target_init;
  }

  Matrix w1(dim, dim), w2(dim, dim);
  w1.GlorotInit(rng);
  w2.GlorotInit(rng);
  Matrix dw1(dim, dim), dw2(dim, dim);

  const AdamOptions adam_options{.learning_rate = options.learning_rate};
  AdamState adam_xs(src_side.x.rows(), dim, adam_options);
  AdamState adam_xt(tgt_side.x.rows(), dim, adam_options);
  AdamState adam_w1(dim, dim, adam_options);
  AdamState adam_w2(dim, dim, adam_options);

  NegativeSamples negatives;
  double last_loss = 0.0;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    src_side.Forward(w1, w2);
    tgt_side.Forward(w1, w2);

    const bool refresh =
        options.hard_negative_refresh > 0
            ? (epoch % options.hard_negative_refresh == 0)
            : (epoch == 0);
    if (refresh) {
      if (options.hard_negative_refresh > 0 && epoch > 0) {
        negatives = SampleNearestNegatives(
            seeds, src_side.z, tgt_side.z, options.negatives_per_seed,
            options.hard_negative_pool, rng);
      } else {
        negatives = SampleRandomNegatives(
            seeds, source.num_vertices(), target.num_vertices(),
            options.negatives_per_seed, rng);
      }
    }

    src_side.dz.Fill(0.0f);
    tgt_side.dz.Fill(0.0f);
    const MarginLossResult loss =
        MarginLossAndGrad(src_side.z, tgt_side.z, seeds, negatives,
                          options.margin, src_side.dz, tgt_side.dz);
    last_loss = loss.loss;

    dw1.Fill(0.0f);
    dw2.Fill(0.0f);
    src_side.Backward(w1, w2, dw1, dw2);
    tgt_side.Backward(w1, w2, dw1, dw2);

    adam_xs.Step(src_side.x, src_side.dx);
    adam_xt.Step(tgt_side.x, tgt_side.dx);
    adam_w1.Step(w1, dw1);
    adam_w2.Step(w2, dw2);
  }

  src_side.Forward(w1, w2);
  tgt_side.Forward(w1, w2);
  TrainedEmbeddings result;
  result.source = src_side.z;
  result.target = tgt_side.z;
  L2NormalizeRows(result.source);
  L2NormalizeRows(result.target);
  result.final_loss = last_loss;
  return result;
}

}  // namespace largeea
