#include "src/nn/loss.h"

#include "src/common/macros.h"
#include "src/la/ops.h"

namespace largeea {
namespace {

float Sign(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }

}  // namespace

MarginLossResult MarginLossAndGrad(
    const Matrix& source_embeddings, const Matrix& target_embeddings,
    std::span<const std::pair<int32_t, int32_t>> seeds,
    const NegativeSamples& negatives, float margin,
    Matrix& source_grad, Matrix& target_grad) {
  LARGEEA_CHECK_EQ(source_embeddings.cols(), target_embeddings.cols());
  LARGEEA_CHECK_EQ(negatives.target_negatives.size(), seeds.size());
  LARGEEA_CHECK_EQ(negatives.source_negatives.size(), seeds.size());
  const int64_t dim = source_embeddings.cols();

  // Triplet count for gradient averaging.
  int64_t total_triplets = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    total_triplets +=
        static_cast<int64_t>(negatives.target_negatives[i].size()) +
        static_cast<int64_t>(negatives.source_negatives[i].size());
  }
  MarginLossResult result;
  if (total_triplets == 0) return result;
  const float scale = 1.0f / static_cast<float>(total_triplets);

  for (size_t i = 0; i < seeds.size(); ++i) {
    const auto [s, t] = seeds[i];
    const float* zs = source_embeddings.Row(s);
    const float* zt = target_embeddings.Row(t);
    const float d_pos = ManhattanDistance(zs, zt, dim);

    // Corrupted target: d(z_s, z_t').
    for (const int32_t tn : negatives.target_negatives[i]) {
      const float* ztn = target_embeddings.Row(tn);
      const float v = d_pos + margin - ManhattanDistance(zs, ztn, dim);
      if (v <= 0.0f) continue;
      result.loss += v * scale;
      ++result.active_triplets;
      float* gs = source_grad.Row(s);
      float* gt = target_grad.Row(t);
      float* gtn = target_grad.Row(tn);
      for (int64_t k = 0; k < dim; ++k) {
        const float sp = Sign(zs[k] - zt[k]);
        const float sn = Sign(zs[k] - ztn[k]);
        gs[k] += scale * (sp - sn);
        gt[k] -= scale * sp;
        gtn[k] += scale * sn;
      }
    }

    // Corrupted source: d(z_s', z_t).
    for (const int32_t sn : negatives.source_negatives[i]) {
      const float* zsn = source_embeddings.Row(sn);
      const float v = d_pos + margin - ManhattanDistance(zsn, zt, dim);
      if (v <= 0.0f) continue;
      result.loss += v * scale;
      ++result.active_triplets;
      float* gs = source_grad.Row(s);
      float* gt = target_grad.Row(t);
      float* gsn = source_grad.Row(sn);
      for (int64_t k = 0; k < dim; ++k) {
        const float sp = Sign(zs[k] - zt[k]);
        const float sneg = Sign(zsn[k] - zt[k]);
        gs[k] += scale * sp;
        gt[k] += scale * (-sp + sneg);
        gsn[k] -= scale * sneg;
      }
    }
  }
  return result;
}

}  // namespace largeea
