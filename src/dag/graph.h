// Explicit operator graph for the LargeEA pipeline (DESIGN.md §14).
//
// A Graph is a set of nodes (operators) wired through values (the
// intermediates flowing between them). Each node declares which values
// it reads and writes plus an estimated working-set footprint; each
// value declares its estimated size, whether it must survive the run
// (`retain`), and how to free its backing storage. The scheduler
// (src/dag/scheduler.h) uses exactly these declarations to overlap
// independent subgraphs, admit nodes under the memory budget, and
// release every intermediate the moment its last consumer finishes.
//
// Node ids double as the topological (and serial-execution) order:
// AddNode requires every input value's producer to already exist, so
// ascending id is always a valid schedule — the property the scheduler
// leans on for determinism and that Validate() re-checks.
#ifndef LARGEEA_DAG_GRAPH_H_
#define LARGEEA_DAG_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/rt/status.h"

namespace largeea::dag {

/// One intermediate (or output) flowing along the graph's edges. The
/// value's storage lives wherever the producing node put it (typically
/// a field of the pipeline result); the graph only tracks metadata.
struct Value {
  std::string name;
  /// Estimated bytes the materialised value occupies (admission input).
  int64_t estimated_bytes = 0;
  /// Values the caller keeps (pipeline outputs) are never released.
  bool retain = true;
  /// Frees the backing storage, leaving a valid empty object behind.
  /// Invoked at most once, by the scheduler, when the last consumer
  /// finishes and `retain` is false. May be null.
  std::function<void()> release;
  int32_t producer = -1;  ///< producing node id; -1 = external input
  std::vector<int32_t> consumers;  ///< filled by Graph::AddNode
};

/// Handed to a node body; lets it report how it completed.
class NodeContext {
 public:
  /// The node satisfied its contract from a checkpoint artifact instead
  /// of computing (feeds the run report and the resume tests).
  void MarkFromCheckpoint() { from_checkpoint_ = true; }
  bool from_checkpoint() const { return from_checkpoint_; }

 private:
  bool from_checkpoint_ = false;
};

/// One operator. `estimated_bytes` is the node's peak transient working
/// set *on top of* its inputs (admission adds it to the tracker's
/// current bytes); outputs' sizes live on the values.
struct Node {
  std::string name;
  std::string span_name;  ///< "dag/<name>", stable storage for the span
  std::vector<int32_t> inputs;   ///< value ids read
  std::vector<int32_t> outputs;  ///< value ids written
  int64_t estimated_bytes = 0;
  std::function<Status(NodeContext&)> body;
};

class Graph {
 public:
  /// Declares a value; returns its id. `release` may be null (e.g. for
  /// trivially small values).
  int32_t AddValue(std::string name, int64_t estimated_bytes, bool retain,
                   std::function<void()> release = nullptr);

  /// Declares a node; returns its id. Every input must already have a
  /// producer node (or be an external input); every output must be a
  /// not-yet-produced value. Violations are reported by Validate().
  int32_t AddNode(std::string name, std::vector<int32_t> inputs,
                  std::vector<int32_t> outputs, int64_t estimated_bytes,
                  std::function<Status(NodeContext&)> body);

  /// Structural checks: ids in range, exactly one producer per produced
  /// value, and producer-before-consumer in id order (acyclicity).
  Status Validate() const;

  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Value>& values() { return values_; }
  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Node> nodes_;
  std::vector<Value> values_;
};

}  // namespace largeea::dag

#endif  // LARGEEA_DAG_GRAPH_H_
