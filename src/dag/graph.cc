#include "src/dag/graph.h"

#include <utility>

namespace largeea::dag {

int32_t Graph::AddValue(std::string name, int64_t estimated_bytes,
                        bool retain, std::function<void()> release) {
  Value v;
  v.name = std::move(name);
  v.estimated_bytes = estimated_bytes;
  v.retain = retain;
  v.release = std::move(release);
  values_.push_back(std::move(v));
  return static_cast<int32_t>(values_.size() - 1);
}

int32_t Graph::AddNode(std::string name, std::vector<int32_t> inputs,
                       std::vector<int32_t> outputs, int64_t estimated_bytes,
                       std::function<Status(NodeContext&)> body) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  Node n;
  n.span_name = "dag/" + name;
  n.name = std::move(name);
  n.inputs = std::move(inputs);
  n.outputs = std::move(outputs);
  n.estimated_bytes = estimated_bytes;
  n.body = std::move(body);
  for (const int32_t v : n.inputs) {
    if (v >= 0 && v < static_cast<int32_t>(values_.size())) {
      values_[static_cast<size_t>(v)].consumers.push_back(id);
    }
  }
  for (const int32_t v : n.outputs) {
    if (v >= 0 && v < static_cast<int32_t>(values_.size()) &&
        values_[static_cast<size_t>(v)].producer < 0) {
      values_[static_cast<size_t>(v)].producer = id;
    }
  }
  nodes_.push_back(std::move(n));
  return id;
}

Status Graph::Validate() const {
  const auto in_range = [this](int32_t v) {
    return v >= 0 && v < static_cast<int32_t>(values_.size());
  };
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (const int32_t v : n.inputs) {
      if (!in_range(v)) {
        return InternalError("dag: node '" + n.name +
                             "' reads an undeclared value");
      }
      const int32_t producer = values_[static_cast<size_t>(v)].producer;
      // producer == id would be a self-loop; producer > id a back edge.
      // Either breaks the ascending-id schedule the scheduler relies on.
      if (producer >= static_cast<int32_t>(i)) {
        return InternalError("dag: node '" + n.name + "' reads value '" +
                             values_[static_cast<size_t>(v)].name +
                             "' before it is produced (cycle?)");
      }
    }
    for (const int32_t v : n.outputs) {
      if (!in_range(v)) {
        return InternalError("dag: node '" + n.name +
                             "' writes an undeclared value");
      }
      if (values_[static_cast<size_t>(v)].producer !=
          static_cast<int32_t>(i)) {
        return InternalError("dag: value '" +
                             values_[static_cast<size_t>(v)].name +
                             "' has more than one producer");
      }
    }
  }
  for (const Value& v : values_) {
    if (v.producer >= static_cast<int32_t>(nodes_.size())) {
      return InternalError("dag: value '" + v.name +
                           "' produced by an unknown node");
    }
  }
  return OkStatus();
}

}  // namespace largeea::dag
