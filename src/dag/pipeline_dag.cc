#include "src/dag/pipeline_dag.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/dag/graph.h"
#include "src/name/data_augmentation.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/rt/fault_injection.h"

namespace largeea::dag {
namespace {

// Artifact kinds shared with the serial path (src/core/name_channel.cc,
// src/core/large_ea.cc) — the two executors must read and write the
// same checkpoint store interchangeably.
constexpr const char* kSemanticKind = "name_semantic";
constexpr const char* kStringKind = "name_string";
constexpr const char* kNameFusedKind = "name_fused";
constexpr const char* kPseudoSeedKind = "name_pseudo_seeds";
constexpr const char* kFusedKind = "fused";

/// Rough footprint of a top-k sparse similarity matrix (entries plus
/// per-row bookkeeping) — admission estimates, not accounting.
int64_t SimBytes(int64_t rows, int64_t k) {
  return rows * (k * static_cast<int64_t>(sizeof(SimEntry)) + 32);
}

/// Loads `kind` into `out` if resume mode has a usable artifact.
/// Non-NOT_FOUND failures are counted and logged (the serial path's
/// behaviour) and the node recomputes.
bool TryLoadMatrix(rt::CheckpointManager& checkpoint, const char* kind,
                   SparseSimMatrix& out, NodeContext& ctx) {
  if (!checkpoint.should_load()) return false;
  auto loaded = checkpoint.LoadMatrix(kind);
  if (loaded.ok()) {
    out = std::move(loaded).value();
    ctx.MarkFromCheckpoint();
    return true;
  }
  if (loaded.status().code() != StatusCode::kNotFound) {
    obs::MetricsRegistry::Get()
        .GetCounter("checkpoint.load_failures")
        .Increment();
    LARGEEA_LOG_WARN("dag: ignoring unusable '%s' checkpoint (%s); "
                     "recomputing",
                     kind, loaded.status().ToString().c_str());
  }
  return false;
}

/// Mutable state the node bodies close over. Lives on the caller's
/// stack for the whole schedule; concurrent nodes touch disjoint
/// fields (the graph's edges are exactly the cross-node accesses).
struct PipelineState {
  LargeEaResult result;
  MiniBatchSet batches;
  double partition_seconds = 0.0;
};

}  // namespace

StatusOr<LargeEaResult> RunLargeEaPipeline(
    const EaDataset& dataset, const LargeEaOptions& options,
    rt::CheckpointManager& checkpoint, stream::StreamContext* stream_ctx,
    int32_t max_concurrency) {
  const KnowledgeGraph& source = dataset.source;
  const KnowledgeGraph& target = dataset.target;
  const NameChannelOptions& n = options.name_channel;
  const StructureChannelOptions& s = options.structure_channel;
  const bool consume =
      stream_ctx != nullptr && stream_ctx->options().release_inputs;
  const int64_t src_rows = source.num_entities();
  const int64_t all_rows = src_rows + target.num_entities();

  PipelineState state;
  Graph graph;
  auto& registry = obs::MetricsRegistry::Get();

  // --- Name channel: M_se ∥ M_st → M_n → pseudo seeds. ---
  int32_t v_name = -1, v_pseudo = -1;
  int32_t n_sem = -1, n_str = -1, n_fuse = -1, n_aug = -1;
  if (options.use_name_channel) {
    const int32_t v_sem = graph.AddValue(
        "M_se", SimBytes(src_rows, n.nff.sens.top_k), /*retain=*/!consume,
        [&state] {
          state.result.name_channel.nff.semantic = SparseSimMatrix();
        });
    const int32_t v_str = graph.AddValue(
        "M_st", SimBytes(src_rows, n.nff.stns.max_entries_per_row),
        /*retain=*/!consume, [&state] {
          state.result.name_channel.nff.string = SparseSimMatrix();
        });
    v_name = graph.AddValue(
        "M_n", SimBytes(src_rows, n.nff.max_entries_per_row),
        /*retain=*/!consume, [&state] {
          state.result.name_channel.nff.fused = SparseSimMatrix();
        });
    v_pseudo = graph.AddValue("pseudo_seeds", src_rows * 8,
                              /*retain=*/true);

    n_sem = graph.AddNode(
        "name_semantic", {}, {v_sem},
        all_rows * n.nff.sens.encoder.dim * 4 +
            SimBytes(src_rows, n.nff.sens.top_k),
        [&](NodeContext& ctx) -> Status {
          SparseSimMatrix& out = state.result.name_channel.nff.semantic;
          if (TryLoadMatrix(checkpoint, kSemanticKind, out, ctx)) {
            return OkStatus();
          }
          LARGEEA_INJECT_FAULT("name.features");
          out = ComputeSemanticSimilarity(source, target, n.nff.sens,
                                          stream_ctx);
          if (checkpoint.enabled()) {
            (void)checkpoint.SaveMatrix(kSemanticKind, out);
          }
          return OkStatus();
        });
    n_str = graph.AddNode(
        "name_string", {}, {v_str},
        all_rows * n.nff.stns.num_bands * n.nff.stns.rows_per_band * 8 +
            SimBytes(src_rows, n.nff.stns.max_entries_per_row),
        [&](NodeContext& ctx) -> Status {
          SparseSimMatrix& out = state.result.name_channel.nff.string;
          if (TryLoadMatrix(checkpoint, kStringKind, out, ctx)) {
            return OkStatus();
          }
          out = ComputeStringSimilarity(source, target, n.nff.stns);
          if (checkpoint.enabled()) {
            (void)checkpoint.SaveMatrix(kStringKind, out);
          }
          return OkStatus();
        });
    n_fuse = graph.AddNode(
        "name_fuse", {v_sem, v_str}, {v_name},
        SimBytes(src_rows, n.nff.max_entries_per_row),
        [&](NodeContext& ctx) -> Status {
          NffResult& nff = state.result.name_channel.nff;
          if (TryLoadMatrix(checkpoint, kNameFusedKind, nff.fused, ctx)) {
            return OkStatus();
          }
          if (consume) {
            // Row-streamed fusion consumes M_se and M_st; the scheduler
            // releases the moved-from values right after this node.
            nff.fused = SparseSimMatrix::FuseStreamed(
                std::move(nff.semantic), std::move(nff.string), 1.0f,
                n.nff.string_weight, n.nff.max_entries_per_row);
          } else {
            nff.fused = nff.semantic.Fuse(nff.string, 1.0f,
                                          n.nff.string_weight,
                                          n.nff.max_entries_per_row);
          }
          if (checkpoint.enabled()) {
            (void)checkpoint.SaveMatrix(kNameFusedKind, nff.fused);
          }
          return OkStatus();
        });
    // Augmentation disabled still gets a node: ψ'_p is then constantly
    // empty, and saving the artifact keeps resume-completeness the same
    // as the serial path's four-artifact contract. Without the M_n edge
    // the node is a source, so the whole structure channel overlaps the
    // name channel.
    std::vector<int32_t> aug_inputs;
    if (n.enable_augmentation) aug_inputs.push_back(v_name);
    n_aug = graph.AddNode(
        "name_augmentation", std::move(aug_inputs), {v_pseudo}, src_rows * 8,
        [&](NodeContext& ctx) -> Status {
          EntityPairList& pseudo = state.result.name_channel.pseudo_seeds;
          if (checkpoint.should_load()) {
            auto loaded = checkpoint.LoadPairs(kPseudoSeedKind);
            if (loaded.ok()) {
              pseudo = std::move(loaded).value();
              obs::MetricsRegistry::Get()
                  .GetGauge("name.pseudo_seeds")
                  .Set(static_cast<double>(pseudo.size()));
              ctx.MarkFromCheckpoint();
              return OkStatus();
            }
            if (loaded.status().code() != StatusCode::kNotFound) {
              obs::MetricsRegistry::Get()
                  .GetCounter("checkpoint.load_failures")
                  .Increment();
              LARGEEA_LOG_WARN("dag: ignoring unusable '%s' checkpoint "
                               "(%s); recomputing",
                               kPseudoSeedKind,
                               loaded.status().ToString().c_str());
            }
          }
          if (n.enable_augmentation) {
            LARGEEA_INJECT_FAULT("name.augmentation");
            pseudo = GeneratePseudoSeeds(state.result.name_channel.nff.fused,
                                         dataset.split.train,
                                         n.augmentation_margin);
            obs::MetricsRegistry::Get()
                .GetGauge("name.pseudo_seeds")
                .Set(static_cast<double>(pseudo.size()));
          }
          if (checkpoint.enabled()) {
            (void)checkpoint.SavePairs(kPseudoSeedKind, pseudo);
          }
          return OkStatus();
        });
  }

  // --- ψ' ← ψ ∪ ψ'_p. Depends on the name channel only when pseudo
  // seeds can actually be non-empty; otherwise it is a source node and
  // the structure channel launches immediately. ---
  const bool seeds_need_name =
      options.use_name_channel && n.enable_augmentation;
  const int32_t v_seeds =
      graph.AddValue("psi_prime", src_rows * 8, /*retain=*/true);
  graph.AddNode(
      "seed_augmentation",
      seeds_need_name ? std::vector<int32_t>{v_pseudo}
                      : std::vector<int32_t>{},
      {v_seeds}, src_rows * 8, [&, seeds_need_name](NodeContext&) -> Status {
        state.result.effective_seeds = dataset.split.train;
        if (seeds_need_name) {
          const EntityPairList& pseudo =
              state.result.name_channel.pseudo_seeds;
          state.result.effective_seeds.insert(
              state.result.effective_seeds.end(), pseudo.begin(),
              pseudo.end());
        }
        return OkStatus();
      });

  // --- Structure channel: partition → per-batch training → M_s. ---
  int32_t v_struct = -1;
  if (options.use_structure_channel) {
    const int32_t v_batches =
        graph.AddValue("batches", all_rows * 16, /*retain=*/true);
    v_struct = graph.AddValue(
        "M_s", SimBytes(src_rows, s.top_k), /*retain=*/!consume, [&state] {
          state.result.structure_channel.similarity = SparseSimMatrix();
        });
    graph.AddNode(
        "partition", {v_seeds}, {v_batches}, all_rows * 32,
        [&](NodeContext&) -> Status {
          auto batches = PrepareStructureBatches(
              source, target, state.result.effective_seeds, s, &checkpoint,
              &state.partition_seconds);
          if (!batches.ok()) return batches.status();
          state.batches = std::move(batches).value();
          return OkStatus();
        });
    graph.AddNode(
        "structure_train", {v_batches}, {v_struct},
        all_rows * s.train.dim * 4 * 3 + SimBytes(src_rows, s.top_k),
        [&](NodeContext& ctx) -> Status {
          auto trained = TrainStructureChannel(
              source, target, std::move(state.batches), s, &checkpoint);
          if (!trained.ok()) return trained.status();
          state.result.structure_channel = std::move(trained).value();
          state.result.structure_channel.partition_seconds =
              state.partition_seconds;
          // "From checkpoint" when every trainable batch resumed.
          int32_t trainable = 0;
          for (const MiniBatch& b : state.result.structure_channel.batches) {
            if (StructureBatchTrainable(b)) ++trainable;
          }
          if (trainable > 0 &&
              state.result.structure_channel.batches_resumed == trainable) {
            ctx.MarkFromCheckpoint();
          }
          return OkStatus();
        });
  }

  // --- Fusion M = M_s + M_n, then evaluation. ---
  const int32_t v_fused = graph.AddValue(
      "M", SimBytes(src_rows, options.fused_top_k), /*retain=*/true);
  std::vector<int32_t> fusion_inputs;
  if (v_struct >= 0) fusion_inputs.push_back(v_struct);
  if (v_name >= 0) fusion_inputs.push_back(v_name);
  graph.AddNode(
      "fusion", std::move(fusion_inputs), {v_fused},
      SimBytes(src_rows, options.fused_top_k) * 2,
      [&](NodeContext& ctx) -> Status {
        LARGEEA_INJECT_FAULT("pipeline.fusion");
        LargeEaResult& r = state.result;
        if (TryLoadMatrix(checkpoint, kFusedKind, r.fused, ctx)) {
          return OkStatus();
        }
        // Same four-way branch as the serial path; under a consuming
        // stream context the inputs are moved and the scheduler's value
        // release resets the moved-from fields to clean empties.
        if (options.use_name_channel && options.use_structure_channel &&
            !options.fuse_name_similarity) {
          r.fused = consume ? std::move(r.structure_channel.similarity)
                            : r.structure_channel.similarity;
        } else if (options.use_name_channel &&
                   options.use_structure_channel) {
          if (consume) {
            r.fused = SparseSimMatrix::FuseStreamed(
                std::move(r.structure_channel.similarity),
                std::move(r.name_channel.nff.fused),
                options.structure_weight, options.name_weight,
                options.fused_top_k);
          } else {
            r.fused = r.structure_channel.similarity.Fuse(
                r.name_channel.nff.fused, options.structure_weight,
                options.name_weight, options.fused_top_k);
          }
        } else if (options.use_structure_channel) {
          r.fused = consume ? std::move(r.structure_channel.similarity)
                            : r.structure_channel.similarity;
        } else {
          r.fused = consume ? std::move(r.name_channel.nff.fused)
                            : r.name_channel.nff.fused;
        }
        if (checkpoint.enabled()) {
          (void)checkpoint.SaveMatrix(kFusedKind, r.fused);
        }
        return OkStatus();
      });
  graph.AddNode("evaluate", {v_fused}, {}, 0,
                [&](NodeContext&) -> Status {
                  LARGEEA_INJECT_FAULT("pipeline.evaluate");
                  state.result.metrics =
                      Evaluate(state.result.fused, dataset.split.test);
                  return OkStatus();
                });

  ScheduleOptions schedule;
  schedule.max_concurrency = max_concurrency;
  schedule.memory_budget_bytes =
      stream_ctx != nullptr ? stream_ctx->budget().budget_bytes() : 0;
  auto scheduled = Execute(graph, schedule);
  if (!scheduled.ok()) return scheduled.status();
  ScheduleResult& sched = scheduled.value();

  // Reconstruct the serial path's channel-level bookkeeping from the
  // per-node runs (component timings stay zero for resumed nodes, as
  // the serial resume leaves them).
  if (options.use_name_channel) {
    NameChannelResult& name = state.result.name_channel;
    const NodeRun& sem = sched.node_runs[static_cast<size_t>(n_sem)];
    const NodeRun& str = sched.node_runs[static_cast<size_t>(n_str)];
    const NodeRun& fuse = sched.node_runs[static_cast<size_t>(n_fuse)];
    const NodeRun& aug = sched.node_runs[static_cast<size_t>(n_aug)];
    name.resumed = sem.from_checkpoint && str.from_checkpoint &&
                   fuse.from_checkpoint && aug.from_checkpoint;
    if (!name.resumed) {
      name.nff.sens_seconds = sem.from_checkpoint ? 0.0 : sem.seconds;
      name.nff.stns_seconds = str.from_checkpoint ? 0.0 : str.seconds;
      name.total_seconds =
          sem.seconds + str.seconds + fuse.seconds + aug.seconds;
      for (const NodeRun* run : {&sem, &str, &fuse, &aug}) {
        name.peak_bytes = std::max(name.peak_bytes, run->peak_bytes);
      }
    }
  }
  state.result.dag_nodes.reserve(sched.node_runs.size());
  for (const NodeRun& run : sched.node_runs) {
    state.result.dag_nodes.push_back(DagNodeStats{
        run.name, run.seconds, run.peak_bytes, run.estimated_bytes,
        run.from_checkpoint, run.deferrals});
  }
  state.result.dag_critical_path_seconds = sched.critical_path_seconds;
  state.result.dag_critical_path = std::move(sched.critical_path);
  state.result.dag_deferrals = sched.total_deferrals;
  registry.GetGauge("dag.nodes.deferred")
      .Set(static_cast<double>(sched.total_deferrals));
  return std::move(state.result);
}

}  // namespace largeea::dag
