// Memory-budget-aware concurrent executor for a dag::Graph.
//
// Execution model (DESIGN.md §14):
//
// * Ready nodes (all producers done) are admitted in ascending node-id
//   order — which is the graph's serial order — so with
//   max_concurrency == 1 the scheduler reproduces the serial pipeline
//   exactly, fault-injection sequence included.
// * Admission under the budget: a ready node is started only if it is
//   the sole runnable node (progress guarantee) or the tracker's
//   current bytes plus the node's estimated footprint fit under the
//   budget; otherwise it is deferred (counted) and reconsidered when a
//   running node finishes or releases values.
// * Every intermediate value is released the moment its last consumer
//   finishes (unless retained), generalising the streaming layer's
//   ad-hoc release_inputs.
// * Each node runs inside a "dag/<name>" span with memory tracking, so
//   per-node wall time and peak bytes land in the trace and the run
//   report; Chrome flow arrows are recorded along every edge (start at
//   the producer's completion, end at each consumer's admission).
//
// Determinism: node bodies only decide *what* to compute; chunking
// inside them goes through par::ComputeChunks (thread-count-invariant)
// and concurrent bodies touch disjoint state, so the scheduled result
// is bit-identical to the serial order at any concurrency, budget, or
// SIMD backend. The schedule changes *when* things run, never what
// they produce.
#ifndef LARGEEA_DAG_SCHEDULER_H_
#define LARGEEA_DAG_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dag/graph.h"
#include "src/rt/status.h"

namespace largeea::dag {

struct ScheduleOptions {
  /// Maximum nodes in flight; 1 reproduces the serial pipeline order.
  int32_t max_concurrency = 1;
  /// Tracked-bytes ceiling for admission; <= 0 means unbounded.
  int64_t memory_budget_bytes = 0;
  /// Thread-name prefix for the node worker threads in traces.
  std::string thread_prefix = "dag";
};

/// Per-node execution record, indexed like the graph's nodes.
struct NodeRun {
  std::string name;
  double seconds = 0.0;
  int64_t peak_bytes = 0;       ///< tracked peak while the node ran
  int64_t estimated_bytes = 0;  ///< the declared admission estimate
  bool from_checkpoint = false;
  int32_t deferrals = 0;  ///< times admission was denied by the budget
};

struct ScheduleResult {
  std::vector<NodeRun> node_runs;
  /// Longest dependency chain by measured node seconds — the lower
  /// bound on wall time at infinite concurrency.
  double critical_path_seconds = 0.0;
  std::vector<std::string> critical_path;  ///< node names, source→sink
  int64_t total_deferrals = 0;
};

/// Runs every node of `graph`. On a node failure, no further nodes are
/// started, in-flight nodes drain, and the failure of the lowest node
/// id is returned (the same error a serial run would have hit first).
StatusOr<ScheduleResult> Execute(Graph& graph,
                                 const ScheduleOptions& options);

}  // namespace largeea::dag

#endif  // LARGEEA_DAG_SCHEDULER_H_
