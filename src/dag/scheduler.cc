#include "src/dag/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "src/common/memory_tracker.h"
#include "src/obs/trace.h"
#include "src/par/task_group.h"

namespace largeea::dag {
namespace {

enum class NodeState { kWaiting, kRunning, kDone };

}  // namespace

StatusOr<ScheduleResult> Execute(Graph& graph,
                                 const ScheduleOptions& options) {
  LARGEEA_RETURN_IF_ERROR(graph.Validate());
  auto& nodes = graph.nodes();
  auto& values = graph.values();
  const size_t num_nodes = nodes.size();
  const int32_t max_concurrency = std::max(1, options.max_concurrency);

  // Dependency counts over *nodes*: a node waits on the distinct
  // producers of its inputs.
  std::vector<std::vector<int32_t>> successors(num_nodes);
  std::vector<int32_t> unmet(num_nodes, 0);
  for (size_t i = 0; i < num_nodes; ++i) {
    std::vector<int32_t> producers;
    for (const int32_t v : nodes[i].inputs) {
      const int32_t p = values[static_cast<size_t>(v)].producer;
      if (p >= 0 &&
          std::find(producers.begin(), producers.end(), p) ==
              producers.end()) {
        producers.push_back(p);
      }
    }
    unmet[i] = static_cast<int32_t>(producers.size());
    for (const int32_t p : producers) {
      successors[static_cast<size_t>(p)].push_back(static_cast<int32_t>(i));
    }
  }
  std::vector<int32_t> pending_consumers(values.size(), 0);
  for (size_t v = 0; v < values.size(); ++v) {
    pending_consumers[v] = static_cast<int32_t>(values[v].consumers.size());
  }

  ScheduleResult result;
  result.node_runs.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    result.node_runs[i].name = nodes[i].name;
    result.node_runs[i].estimated_bytes = nodes[i].estimated_bytes;
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<NodeState> state(num_nodes, NodeState::kWaiting);
  int32_t running = 0;
  size_t done = 0;
  bool draining = false;  // stop admitting after a failure
  Status first_error;
  int32_t first_error_node = std::numeric_limits<int32_t>::max();

  // Must hold mu. Frees every input whose last consumer just finished —
  // the generalisation of the streaming layer's release_inputs: the
  // budget gets its bytes back at the earliest provably-safe moment.
  const auto release_inputs_of = [&](size_t node_id) {
    for (const int32_t v : nodes[node_id].inputs) {
      Value& value = values[static_cast<size_t>(v)];
      if (--pending_consumers[static_cast<size_t>(v)] == 0 &&
          !value.retain && value.release) {
        value.release();
        value.release = nullptr;
      }
    }
  };

  const auto run_node = [&](size_t i) {
    NodeContext ctx;
    Status status;
    double seconds = 0.0;
    int64_t peak = 0;
    {
      obs::Span span(nodes[i].span_name.c_str(), obs::Span::kTrackMemory);
      span.AddAttr("estimated_bytes", nodes[i].estimated_bytes);
      auto& recorder = obs::TraceRecorder::Get();
      // Flow-arrow ends bind to this span (bp:"e"), so record them
      // while it is open; starts for our outputs likewise below.
      for (const int32_t v : nodes[i].inputs) {
        const Value& value = values[static_cast<size_t>(v)];
        if (value.producer >= 0) recorder.RecordFlowEnd(value.name, v);
      }
      status = nodes[i].body ? nodes[i].body(ctx) : OkStatus();
      if (status.ok()) {
        for (const int32_t v : nodes[i].outputs) {
          if (!values[static_cast<size_t>(v)].consumers.empty()) {
            recorder.RecordFlowStart(values[static_cast<size_t>(v)].name,
                                     v);
          }
        }
      }
      seconds = span.End();
      peak = span.peak_bytes();
    }
    std::lock_guard<std::mutex> lock(mu);
    NodeRun& run = result.node_runs[i];
    run.seconds = seconds;
    run.peak_bytes = peak;
    run.from_checkpoint = ctx.from_checkpoint();
    state[i] = NodeState::kDone;
    ++done;
    --running;
    if (status.ok()) {
      for (const int32_t s : successors[i]) {
        --unmet[static_cast<size_t>(s)];
      }
      release_inputs_of(i);
    } else {
      draining = true;
      // Report the failure a serial run would have hit first, however
      // the concurrent completion order interleaved.
      if (static_cast<int32_t>(i) < first_error_node) {
        first_error_node = static_cast<int32_t>(i);
        first_error = status.WithContext("dag node '" + nodes[i].name + "'");
      }
    }
    cv.notify_all();
  };

  par::TaskGroup group(options.thread_prefix);
  auto& tracker = MemoryTracker::Get();
  {
    std::unique_lock<std::mutex> lock(mu);
    while (done < num_nodes) {
      if (draining) {
        if (running == 0) break;
        cv.wait(lock);
        continue;
      }
      // Admit the lowest-id ready node the budget allows. Ascending id
      // is the serial order, so max_concurrency == 1 degenerates to the
      // exact serial pipeline.
      int32_t picked = -1;
      bool any_ready = false;
      if (running < max_concurrency) {
        for (size_t i = 0; i < num_nodes && picked < 0; ++i) {
          if (state[i] != NodeState::kWaiting || unmet[i] != 0) continue;
          any_ready = true;
          const bool admit =
              running == 0 || options.memory_budget_bytes <= 0 ||
              tracker.CurrentBytes() + nodes[i].estimated_bytes <=
                  options.memory_budget_bytes;
          if (admit) {
            picked = static_cast<int32_t>(i);
          } else {
            // Deferred: re-examined when a running node finishes (and
            // its dead inputs are released, lowering current bytes).
            ++result.node_runs[i].deferrals;
            ++result.total_deferrals;
          }
        }
      }
      if (picked >= 0) {
        const size_t i = static_cast<size_t>(picked);
        state[i] = NodeState::kRunning;
        ++running;
        group.Spawn([&run_node, i] { run_node(i); });
        continue;  // a further node may also be admissible right now
      }
      if (running == 0) {
        if (any_ready) {
          // Unreachable: a sole runnable node is always admitted.
          return InternalError("dag: scheduler wedged with ready nodes");
        }
        return InternalError("dag: no runnable node but graph unfinished");
      }
      cv.wait(lock);
    }
  }
  group.JoinAll();
  if (!first_error.ok()) return first_error;

  // Critical path over measured seconds: cp(i) = t_i + max cp(deps).
  std::vector<double> cp(num_nodes, 0.0);
  std::vector<int32_t> cp_prev(num_nodes, -1);
  double best = 0.0;
  int32_t best_node = -1;
  for (size_t i = 0; i < num_nodes; ++i) {
    double longest_dep = 0.0;
    for (const int32_t v : nodes[i].inputs) {
      const int32_t p = values[static_cast<size_t>(v)].producer;
      if (p >= 0 && cp[static_cast<size_t>(p)] > longest_dep) {
        longest_dep = cp[static_cast<size_t>(p)];
        cp_prev[i] = p;
      }
    }
    cp[i] = result.node_runs[i].seconds + longest_dep;
    if (cp[i] >= best) {
      best = cp[i];
      best_node = static_cast<int32_t>(i);
    }
  }
  result.critical_path_seconds = best;
  for (int32_t i = best_node; i >= 0; i = cp_prev[static_cast<size_t>(i)]) {
    result.critical_path.push_back(nodes[static_cast<size_t>(i)].name);
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
  return result;
}

}  // namespace largeea::dag
