// The LargeEA pipeline expressed as an operator DAG (DESIGN.md §14).
//
// BuildLargeEaGraph decomposes Algorithm 1 into nine operators —
//
//   name_semantic ─┐
//                  ├─ name_fuse ── name_augmentation ─┐
//   name_string ──┘                                   │
//                                 seed_augmentation ──┴─ (ψ')
//                                        │
//                                    partition ── structure_train ─┐
//                                                                  │
//                              name_fuse ──────────────── fusion ──┴─ eval
//
// — wired so the two channels' independent prefixes (the whole name
// string/semantic computation vs. nothing-to-wait-for structure work)
// overlap: with augmentation disabled (or the name channel ablated)
// ψ' needs no name-channel output, so the structure channel launches
// immediately and runs concurrently with SENS/STNS.
//
// Every operator keeps the serial pipeline's checkpoint artifact, fault
// injection point, and numeric behaviour; only the schedule differs.
// RunLargeEaPipeline is the drop-in body RunLargeEa delegates to when
// LargeEaOptions::dag is set.
#ifndef LARGEEA_DAG_PIPELINE_DAG_H_
#define LARGEEA_DAG_PIPELINE_DAG_H_

#include "src/core/large_ea.h"
#include "src/dag/scheduler.h"
#include "src/rt/checkpoint.h"
#include "src/stream/stream_context.h"

namespace largeea::dag {

/// Runs the full pipeline as a scheduled operator graph and fills a
/// LargeEaResult identical (bit-for-bit on `fused`, the metrics, and
/// every checkpoint artifact) to the serial path's. `checkpoint` must
/// come from MakePipelineCheckpointManager so per-node artifacts carry
/// per-node fingerprints; `stream_ctx` may be null (unbudgeted).
/// `max_concurrency` bounds overlapping operators (1 = serial order).
StatusOr<LargeEaResult> RunLargeEaPipeline(
    const EaDataset& dataset, const LargeEaOptions& options,
    rt::CheckpointManager& checkpoint, stream::StreamContext* stream_ctx,
    int32_t max_concurrency);

}  // namespace largeea::dag

#endif  // LARGEEA_DAG_PIPELINE_DAG_H_
