#include "src/serve/serve_loop.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/par/parallel_for.h"

namespace largeea::serve {
namespace {

/// Skips JSON whitespace starting at `i`.
void SkipWs(std::string_view s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

/// Parses a JSON string literal at s[i] (which must be '"'); advances i
/// past the closing quote and appends the decoded characters to `out`.
Status ParseJsonString(std::string_view s, size_t& i, std::string& out) {
  LARGEEA_CHECK(i < s.size() && s[i] == '"');
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return OkStatus();
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) break;
      const char esc = s[i + 1];
      i += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i + 4 > s.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          uint32_t cp = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = s[i + d];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= h - '0';
            else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
            else return InvalidArgumentError("bad \\u escape digit");
          }
          i += 4;
          // UTF-8 encode (surrogate pairs are not recombined; entity
          // names are produced by our own JsonEscape, which never emits
          // them for code points above U+001F).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return InvalidArgumentError(std::string("unknown escape \\") + esc);
      }
      continue;
    }
    out += c;
    ++i;
  }
  return InvalidArgumentError("unterminated string literal");
}

}  // namespace

StatusOr<std::map<std::string, std::string>> ParseFlatObject(
    std::string_view line) {
  std::map<std::string, std::string> result;
  size_t i = 0;
  SkipWs(line, i);
  if (i >= line.size() || line[i] != '{') {
    return InvalidArgumentError("request is not a JSON object");
  }
  ++i;
  SkipWs(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      SkipWs(line, i);
      if (i >= line.size() || line[i] != '"') {
        return InvalidArgumentError("expected string key");
      }
      std::string key;
      LARGEEA_RETURN_IF_ERROR(ParseJsonString(line, i, key));
      SkipWs(line, i);
      if (i >= line.size() || line[i] != ':') {
        return InvalidArgumentError("expected ':' after key");
      }
      ++i;
      SkipWs(line, i);
      if (i >= line.size()) return InvalidArgumentError("missing value");
      std::string value;
      if (line[i] == '"') {
        LARGEEA_RETURN_IF_ERROR(ParseJsonString(line, i, value));
      } else if (line[i] == '{' || line[i] == '[') {
        return InvalidArgumentError("nested values are not supported");
      } else {
        // Number / true / false / null: take the literal token.
        const size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               line[i] != ' ' && line[i] != '\t') {
          ++i;
        }
        value = std::string(line.substr(start, i - start));
        if (value.empty()) return InvalidArgumentError("empty value");
      }
      result.insert_or_assign(std::move(key), std::move(value));
      SkipWs(line, i);
      if (i >= line.size()) return InvalidArgumentError("unterminated object");
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return InvalidArgumentError("expected ',' or '}'");
    }
  }
  SkipWs(line, i);
  if (i != line.size()) {
    return InvalidArgumentError("trailing bytes after object");
  }
  return result;
}

namespace {

std::string Hex64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string ErrorLine(const Status& status) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("ok").Bool(false)
      .Key("code").String(StatusCodeName(status.code()))
      .Key("error").String(status.message())
      .EndObject();
  return w.str();
}

std::string ResponseLine(const QueryResponse& response) {
  if (!response.status.ok()) return ErrorLine(response.status);
  obs::JsonWriter w;
  w.BeginObject()
      .Key("ok").Bool(true)
      .Key("version").Int(response.index_version)
      .Key("fingerprint").String(Hex64(response.index_fingerprint))
      .Key("candidates").BeginArray();
  for (const Candidate& c : response.candidates) {
    w.BeginObject()
        .Key("target").Int(c.target)
        .Key("name").String(c.name)
        .Key("score").Double(c.score)
        .EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

/// Builds a QueryRequest from a parsed request object. The "op" key has
/// already been consumed as "query".
Status BuildQuery(const std::map<std::string, std::string>& fields,
                  int32_t default_k, QueryRequest& request) {
  const auto entity_it = fields.find("entity");
  const auto name_it = fields.find("name");
  if ((entity_it == fields.end()) == (name_it == fields.end())) {
    return InvalidArgumentError(
        "query needs exactly one of \"entity\" or \"name\"");
  }
  if (entity_it != fields.end()) {
    request.kind = QueryRequest::Kind::kEntity;
    const std::string& text = entity_it->second;
    int64_t id = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), id);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return InvalidArgumentError("\"entity\" is not an integer: " + text);
    }
    request.entity = static_cast<EntityId>(id);
  } else {
    request.kind = QueryRequest::Kind::kName;
    request.name = name_it->second;
  }
  request.k = default_k;
  if (const auto it = fields.find("k"); it != fields.end()) {
    const std::string& text = it->second;
    int32_t k = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), k);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return InvalidArgumentError("\"k\" is not an integer: " + text);
    }
    request.k = k;
  }
  if (const auto it = fields.find("exact"); it != fields.end()) {
    if (it->second != "true" && it->second != "false") {
      return InvalidArgumentError("\"exact\" must be true or false");
    }
    request.exact = it->second == "true";
  }
  return OkStatus();
}

}  // namespace

ServeLoop::ServeLoop(IndexManager* manager, const ServeLoopOptions& options)
    : manager_(manager), engine_(manager), options_(options) {
  LARGEEA_CHECK(manager != nullptr);
  LARGEEA_CHECK_GT(options.batch_size, 0);
}

ServeLoopStats ServeLoop::Run(std::istream& in, std::ostream& out,
                              const std::atomic<int>* stop) {
  ServeLoopStats stats;
  std::vector<std::string> pending;
  pending.reserve(options_.batch_size);

  // Executes the pending query lines as one ParallelFor batch and emits
  // responses in input order. Each query snapshots the index manager
  // independently inside the engine.
  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<std::string> lines;
    lines.swap(pending);
    std::vector<std::string> responses(lines.size());
    par::ParallelFor(
        0, static_cast<int64_t>(lines.size()), /*grain=*/1,
        [&](par::ChunkRange range) {
          for (int64_t i = range.begin; i < range.end; ++i) {
            const auto fields = ParseFlatObject(lines[i]);
            if (!fields.ok()) {
              responses[i] = ErrorLine(fields.status());
              continue;
            }
            QueryRequest request;
            const Status built =
                BuildQuery(fields.value(), options_.default_k, request);
            if (!built.ok()) {
              responses[i] = ErrorLine(built);
              continue;
            }
            responses[i] = ResponseLine(engine_.Execute(request));
          }
        });
    for (const std::string& response : responses) {
      out << response << '\n';
      if (response.starts_with("{\"ok\":false")) ++stats.failed;
    }
    stats.queries += static_cast<int64_t>(lines.size());
    ++stats.batches;
    out.flush();
  };

  const auto stopped = [&] {
    return stop != nullptr && stop->load(std::memory_order_relaxed) != 0;
  };

  std::string line;
  while (!stopped() && std::getline(in, line)) {
    if (line.empty()) continue;

    // Peek at the op without committing to a full parse: control ops
    // are rare, so queries go straight into the batch and any parse
    // error is reported from the worker, in order.
    const auto fields = ParseFlatObject(line);
    const std::string op = [&] {
      if (!fields.ok()) return std::string("query");
      const auto it = fields.value().find("op");
      return it == fields.value().end() ? std::string("query") : it->second;
    }();

    if (op == "query") {
      pending.push_back(line);
      // Batch only what is already buffered: a lone request executes
      // immediately, a burst amortises pool wakeups.
      if (static_cast<int32_t>(pending.size()) >= options_.batch_size ||
          in.rdbuf()->in_avail() <= 0) {
        flush();
      }
      continue;
    }

    // Control ops are barriers: drain queries accepted before this line
    // so version-swap ordering is exact.
    flush();
    if (op == "quit") {
      obs::JsonWriter w;
      w.BeginObject().Key("ok").Bool(true).Key("bye").Bool(true).EndObject();
      out << w.str() << '\n';
      out.flush();
      stats.saw_quit = true;
      break;
    }
    if (op == "swap") {
      const auto it = fields.value().find("index");
      if (it == fields.value().end()) {
        out << ErrorLine(InvalidArgumentError("swap needs \"index\" (path)"))
            << '\n';
        ++stats.failed;
      } else {
        const Status swapped = manager_->LoadAndSwap(it->second);
        if (!swapped.ok()) {
          out << ErrorLine(swapped) << '\n';
          ++stats.failed;
        } else {
          const auto index = manager_->Current();
          obs::JsonWriter w;
          w.BeginObject()
              .Key("ok").Bool(true)
              .Key("version").Int(manager_->version())
              .Key("fingerprint").String(Hex64(index->fingerprint()))
              .EndObject();
          out << w.str() << '\n';
          ++stats.swaps;
        }
      }
      out.flush();
      continue;
    }
    if (op == "stats") {
      auto& registry = obs::MetricsRegistry::Get();
      obs::JsonWriter w;
      w.BeginObject()
          .Key("ok").Bool(true)
          .Key("queries").Int(stats.queries)
          .Key("failed").Int(stats.failed)
          .Key("version_swaps").Int(stats.swaps)
          .Key("version").Int(manager_->version())
          .Key("p50_us").Double(registry.GetHistogram("serve.query_us")
                                    .Percentile(0.5))
          .Key("p99_us").Double(registry.GetHistogram("serve.query_us")
                                    .Percentile(0.99))
          .EndObject();
      out << w.str() << '\n';
      out.flush();
      continue;
    }
    out << ErrorLine(InvalidArgumentError("unknown op \"" + op + "\""))
        << '\n';
    ++stats.failed;
    out.flush();
  }

  // Drain: whatever was accepted before EOF / signal still answers.
  if (stopped()) stats.saw_stop = true;
  flush();
  return stats;
}

}  // namespace largeea::serve
