#include "src/serve/index_manager.h"

#include <utility>

#include "src/common/macros.h"
#include "src/obs/metrics.h"

namespace largeea::serve {

std::shared_ptr<const ServeIndex> IndexManager::Swap(
    std::shared_ptr<const ServeIndex> next) {
  LARGEEA_CHECK(next != nullptr);
  std::shared_ptr<const ServeIndex> prev;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    prev = std::move(current_);
    current_ = std::move(next);
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  obs::MetricsRegistry::Get().GetCounter("serve.version_swaps").Add(1);
  return prev;
}

Status IndexManager::LoadAndSwap(
    const std::string& path, std::optional<uint64_t> expected_fingerprint) {
  auto loaded = ServeIndex::Load(path, expected_fingerprint);
  if (!loaded.ok()) return loaded.status();
  Swap(std::move(loaded).value());
  return OkStatus();
}

}  // namespace largeea::serve
