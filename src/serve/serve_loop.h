// The stdin/stdout serving loop behind `largeea_cli serve` (DESIGN.md
// §15).
//
// Protocol: line-delimited flat JSON objects, one request per line, one
// response line per request, responses in input order.
//
//   {"op":"query","entity":12,"k":5}
//   {"op":"query","name":"alan turing","k":5}
//   {"op":"query","name":"alan turing","exact":true}
//   {"op":"swap","index":"path/to/index.lea"}
//   {"op":"stats"}
//   {"op":"quit"}
//
// Query responses:
//   {"ok":true,"version":1,"fingerprint":"<hex16>",
//    "candidates":[{"target":7,"name":"...","score":0.91},...]}
// Failures carry the status: {"ok":false,"code":"...","error":"..."}.
//
// Execution model: the loop reads greedily while input is already
// buffered (up to `batch_size` lines), then executes the batch on the
// worker pool (par::ParallelFor) — queries against one IndexManager
// snapshot each — and emits responses in input order. Control ops
// (swap/stats/quit) act as barriers: the pending batch drains first, so
// "all queries before the swap line see the old version, all after see
// the new one" holds exactly.
//
// Shutdown: on EOF, `quit`, or `*stop` becoming non-zero (the CLI's
// SIGTERM/SIGINT handler sets it; the handler is installed without
// SA_RESTART so a blocking read wakes with EINTR), the loop drains the
// pending batch, emits its responses, and returns its stats — no
// accepted query is dropped.
#ifndef LARGEEA_SERVE_SERVE_LOOP_H_
#define LARGEEA_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "src/rt/status.h"
#include "src/serve/query_engine.h"

namespace largeea::serve {

/// Parses one flat (non-nested) JSON object into key -> decoded value.
/// String values are unescaped; numbers/booleans keep their literal
/// spelling. Nested objects/arrays and malformed input are
/// kInvalidArgument. Exposed for the protocol tests.
StatusOr<std::map<std::string, std::string>> ParseFlatObject(
    std::string_view line);

struct ServeLoopOptions {
  /// Max requests executed per ParallelFor batch. The loop only batches
  /// input that is already buffered; a lone request never waits.
  int32_t batch_size = 64;
  /// k used when a query line omits "k".
  int32_t default_k = 10;
};

/// What the loop did, for the run report's serve section.
struct ServeLoopStats {
  int64_t queries = 0;         ///< query ops executed (ok or failed)
  int64_t failed = 0;          ///< responses with ok:false (any op)
  int64_t swaps = 0;           ///< successful swap ops
  int64_t batches = 0;         ///< ParallelFor batches executed
  bool saw_quit = false;       ///< loop ended via the quit op
  bool saw_stop = false;       ///< loop ended via the stop flag (signal)
};

class ServeLoop {
 public:
  /// Both borrowed; must outlive the loop. The manager is mutated by
  /// swap ops.
  ServeLoop(IndexManager* manager, const ServeLoopOptions& options);

  /// Runs until EOF on `in`, a quit op, or `*stop` becomes non-zero.
  /// Pending requests are drained before returning. `stop` may be null.
  ServeLoopStats Run(std::istream& in, std::ostream& out,
                     const std::atomic<int>* stop = nullptr);

 private:
  IndexManager* manager_;
  QueryEngine engine_;
  ServeLoopOptions options_;
};

}  // namespace largeea::serve

#endif  // LARGEEA_SERVE_SERVE_LOOP_H_
