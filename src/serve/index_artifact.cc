#include "src/serve/index_artifact.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/common/macros.h"
#include "src/name/tokenizer.h"
#include "src/obs/trace.h"
#include "src/rt/binary_io.h"
#include "src/rt/io_util.h"
#include "src/sim/sim_io.h"
#include "src/sim/topk_util.h"
#include "src/simd/simd.h"

namespace largeea::serve {
namespace {

constexpr std::string_view kMagic = "largeea-index";
constexpr int kFormatVersion = 1;

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return std::string(buf);
}

void WriteTokenizer(rt::BinaryWriter& w, const TokenizerOptions& t) {
  w.I32(t.ngram_size);
  w.U32(t.include_words ? 1 : 0);
  w.U32(t.include_ngrams ? 1 : 0);
}

Status ReadTokenizer(rt::BinaryReader& r, TokenizerOptions* t) {
  uint32_t words = 0, ngrams = 0;
  LARGEEA_RETURN_IF_ERROR(r.I32(&t->ngram_size));
  LARGEEA_RETURN_IF_ERROR(r.U32(&words));
  LARGEEA_RETURN_IF_ERROR(r.U32(&ngrams));
  t->include_words = words != 0;
  t->include_ngrams = ngrams != 0;
  if (t->ngram_size <= 0 || t->ngram_size > 16) {
    return DataLossError("index: implausible tokenizer ngram size");
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::shared_ptr<const ServeIndex>> ServeIndex::Build(
    const SparseSimMatrix& fused, std::vector<std::string> source_names,
    std::vector<std::string> target_names, uint64_t pipeline_fingerprint,
    const ServeIndexOptions& options) {
  if (fused.num_rows() != static_cast<int32_t>(source_names.size())) {
    return InvalidArgumentError(
        "index build: fused matrix has " + std::to_string(fused.num_rows()) +
        " rows but " + std::to_string(source_names.size()) +
        " source names were given");
  }
  if (fused.num_cols() != static_cast<int32_t>(target_names.size())) {
    return InvalidArgumentError(
        "index build: fused matrix has " + std::to_string(fused.num_cols()) +
        " cols but " + std::to_string(target_names.size()) +
        " target names were given");
  }
  obs::Span span("serve/index_build");
  span.AddAttr("targets", static_cast<int64_t>(target_names.size()));

  // shared_ptr (not make_shared) keeps the private constructor usable
  // and the control block separate from the large payload.
  std::shared_ptr<ServeIndex> index(new ServeIndex());
  index->fingerprint_ = pipeline_fingerprint;
  index->options_ = options;
  index->fused_ = fused;
  index->source_names_ = std::move(source_names);
  index->target_names_ = std::move(target_names);

  // Target-side semantic embeddings: the space incoming query names are
  // encoded into. The encoder is refit in Finish(); encode there too so
  // Build and Load share one code path for everything derived.
  LARGEEA_RETURN_IF_ERROR(index->Finish());
  return std::shared_ptr<const ServeIndex>(std::move(index));
}

Status ServeIndex::Finish() {
  const int64_t num_targets = num_target_entities();

  // Exact-name lookup tables. Duplicate names keep the smallest id —
  // deterministic, and matches KnowledgeGraph::FindEntity semantics.
  source_by_name_.clear();
  source_by_name_.reserve(source_names_.size());
  for (size_t e = 0; e < source_names_.size(); ++e) {
    source_by_name_.emplace(source_names_[e], static_cast<EntityId>(e));
  }
  target_by_name_.clear();
  target_by_name_.reserve(target_names_.size());
  for (size_t e = 0; e < target_names_.size(); ++e) {
    target_by_name_.emplace(target_names_[e], static_cast<EntityId>(e));
  }

  // Query-side encoder: IDF is a multiset statistic over both name
  // tables, so refitting here reproduces the pipeline's fit exactly.
  encoder_ = std::make_unique<SemanticEncoder>(options_.encoder);
  encoder_->FitIdfFromNames({&source_names_, &target_names_});

  // Target embeddings: packed structures are rebuilt only when absent
  // (Build); Load keeps the deserialised bytes.
  if (target_embeddings_.rows() != num_targets) {
    Matrix embeddings(num_targets, encoder_->dim());
    for (int64_t e = 0; e < num_targets; ++e) {
      encoder_->EncodeName(target_names_[e], embeddings.Row(e));
    }
    target_embeddings_ = std::move(embeddings);
  }
  if (target_embeddings_.cols() != encoder_->dim()) {
    return DataLossError("index: embedding dim does not match encoder dim");
  }

  // MinHash signatures + LSH banding (string-channel shortlist).
  const int32_t num_perms = options_.num_bands * options_.rows_per_band;
  hasher_ = std::make_unique<MinHasher>(num_perms, options_.minhash_seed);
  if (target_signatures_.empty() && num_targets > 0) {
    target_signatures_.reserve(num_targets);
    for (int64_t e = 0; e < num_targets; ++e) {
      target_signatures_.push_back(hasher_->Signature(
          TokenizeName(target_names_[e], options_.minhash_tokenizer)));
    }
  }
  if (static_cast<int64_t>(target_signatures_.size()) != num_targets) {
    return DataLossError("index: signature count does not match targets");
  }
  lsh_ = std::make_unique<MinHashLsh>(options_.num_bands,
                                      options_.rows_per_band);
  for (int64_t e = 0; e < num_targets; ++e) {
    if (static_cast<int32_t>(target_signatures_[e].size()) != num_perms) {
      return DataLossError("index: signature length does not match banding");
    }
    lsh_->Insert(static_cast<int32_t>(e), target_signatures_[e]);
  }

  // Search objects over the (now address-stable) embedding matrix.
  target_ids_.resize(num_targets);
  for (int64_t e = 0; e < num_targets; ++e) {
    target_ids_[e] = static_cast<EntityId>(e);
  }
  SimilaritySearchOptions search_options;
  search_options.topk.metric = options_.metric;
  search_options.hnsw = options_.hnsw;
  if (!graph_.has_value()) {
    graph_.emplace(target_embeddings_, options_.metric, options_.hnsw);
  }
  ann_ = MakeHnswSimilaritySearch(target_embeddings_, target_ids_,
                                  search_options, *graph_);
  exact_ = MakeSimilaritySearch(target_embeddings_, target_ids_,
                                search_options);
  return OkStatus();
}

std::optional<EntityId> ServeIndex::SourceIdByName(
    const std::string& name) const {
  const auto it = source_by_name_.find(name);
  if (it == source_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EntityId> ServeIndex::TargetIdByName(
    const std::string& name) const {
  const auto it = target_by_name_.find(name);
  if (it == target_by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<int32_t> ServeIndex::StringShortlist(
    const std::string& name) const {
  return lsh_->Query(hasher_->Signature(
      TokenizeName(name, options_.minhash_tokenizer)));
}

std::vector<int32_t> ServeIndex::StringShortlist(const std::string& name,
                                                 int32_t limit) const {
  return lsh_->QueryTop(
      hasher_->Signature(TokenizeName(name, options_.minhash_tokenizer)),
      limit);
}

float ServeIndex::ScoreAgainstTarget(const float* query,
                                     EntityId target) const {
  return ScorePair(simd::Kernels(), query, target_embeddings_.Row(target),
                   target_embeddings_.cols(), options_.metric);
}

int64_t ServeIndex::MemoryBytes() const {
  int64_t bytes = fused_.MemoryBytes();
  bytes += target_embeddings_.rows() * target_embeddings_.cols() *
           static_cast<int64_t>(sizeof(float));
  for (const auto& sig : target_signatures_) {
    bytes += static_cast<int64_t>(sig.size() * sizeof(uint64_t));
  }
  for (const auto& name : source_names_) bytes += name.size();
  for (const auto& name : target_names_) bytes += name.size();
  return bytes;
}

std::string ServeIndex::SerializePayload() const {
  rt::BinaryWriter w;
  // Options (HNSW options travel inside the graph section).
  w.I32(options_.encoder.dim);
  w.I32(options_.encoder.active_slots_per_token);
  w.F32(options_.encoder.word_token_weight);
  WriteTokenizer(w, options_.encoder.tokenizer);
  w.U64(options_.encoder.seed);
  w.F32(options_.encoder.epsilon);
  w.I32(static_cast<int32_t>(options_.metric));
  w.I32(options_.num_bands);
  w.I32(options_.rows_per_band);
  w.U64(options_.minhash_seed);
  WriteTokenizer(w, options_.minhash_tokenizer);
  // Entity tables.
  w.StrArray(source_names_);
  w.StrArray(target_names_);
  // Fused matrix: the %.9g text format round-trips floats exactly and
  // is shared with the checkpoint layer.
  w.Str(SimMatrixToString(fused_));
  // Target embeddings, row-major.
  w.U64(static_cast<uint64_t>(target_embeddings_.rows()));
  w.U64(static_cast<uint64_t>(target_embeddings_.cols()));
  for (int64_t r = 0; r < target_embeddings_.rows(); ++r) {
    w.F32Array(target_embeddings_.Row(r), target_embeddings_.cols());
  }
  // HNSW graph.
  graph_->Serialize(w);
  // MinHash signatures.
  w.U64(target_signatures_.size());
  for (const auto& sig : target_signatures_) {
    w.U64Array(sig);
  }
  return w.TakeBytes();
}

Status ServeIndex::DeserializePayload(std::string_view payload) {
  rt::BinaryReader r(payload);
  LARGEEA_RETURN_IF_ERROR(r.I32(&options_.encoder.dim));
  LARGEEA_RETURN_IF_ERROR(r.I32(&options_.encoder.active_slots_per_token));
  LARGEEA_RETURN_IF_ERROR(r.F32(&options_.encoder.word_token_weight));
  LARGEEA_RETURN_IF_ERROR(ReadTokenizer(r, &options_.encoder.tokenizer));
  LARGEEA_RETURN_IF_ERROR(r.U64(&options_.encoder.seed));
  LARGEEA_RETURN_IF_ERROR(r.F32(&options_.encoder.epsilon));
  int32_t metric = 0;
  LARGEEA_RETURN_IF_ERROR(r.I32(&metric));
  if (metric != static_cast<int32_t>(SimMetric::kManhattan) &&
      metric != static_cast<int32_t>(SimMetric::kDot)) {
    return DataLossError("index: unknown similarity metric");
  }
  options_.metric = static_cast<SimMetric>(metric);
  LARGEEA_RETURN_IF_ERROR(r.I32(&options_.num_bands));
  LARGEEA_RETURN_IF_ERROR(r.I32(&options_.rows_per_band));
  if (options_.num_bands <= 0 || options_.rows_per_band <= 0) {
    return DataLossError("index: implausible banding shape");
  }
  LARGEEA_RETURN_IF_ERROR(r.U64(&options_.minhash_seed));
  LARGEEA_RETURN_IF_ERROR(ReadTokenizer(r, &options_.minhash_tokenizer));

  LARGEEA_RETURN_IF_ERROR(r.StrArray(&source_names_));
  LARGEEA_RETURN_IF_ERROR(r.StrArray(&target_names_));

  std::string fused_text;
  LARGEEA_RETURN_IF_ERROR(r.Str(&fused_text));
  auto fused = SimMatrixFromString(fused_text);
  if (!fused.ok()) {
    // The checksum already passed, so malformed embedded text is
    // corruption of the container, not a user-input problem.
    return DataLossError("index: embedded fused matrix unparsable: " +
                         fused.status().message());
  }
  fused_ = std::move(fused).value();
  if (fused_.num_rows() != static_cast<int32_t>(source_names_.size()) ||
      fused_.num_cols() != static_cast<int32_t>(target_names_.size())) {
    return DataLossError("index: fused matrix shape does not match tables");
  }

  uint64_t rows = 0, cols = 0;
  LARGEEA_RETURN_IF_ERROR(r.U64(&rows));
  LARGEEA_RETURN_IF_ERROR(r.U64(&cols));
  if (rows != target_names_.size() ||
      cols != static_cast<uint64_t>(options_.encoder.dim)) {
    return DataLossError("index: embedding shape does not match tables");
  }
  Matrix embeddings(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  std::vector<float> row;
  for (uint64_t i = 0; i < rows; ++i) {
    LARGEEA_RETURN_IF_ERROR(r.F32Array(&row));
    if (row.size() != cols) {
      return DataLossError("index: embedding row length mismatch");
    }
    std::copy(row.begin(), row.end(), embeddings.Row(static_cast<int64_t>(i)));
  }
  target_embeddings_ = std::move(embeddings);

  // The graph borrows target_embeddings_, whose address is final: this
  // object already lives at its heap home when Load calls us.
  LARGEEA_ASSIGN_OR_RETURN(HnswIndex graph,
                           HnswIndex::Deserialize(r, target_embeddings_,
                                                  options_.metric));
  graph_.emplace(std::move(graph));

  uint64_t num_signatures = 0;
  LARGEEA_RETURN_IF_ERROR(r.U64(&num_signatures));
  if (num_signatures != target_names_.size()) {
    return DataLossError("index: signature count mismatch");
  }
  target_signatures_.resize(num_signatures);
  for (uint64_t i = 0; i < num_signatures; ++i) {
    LARGEEA_RETURN_IF_ERROR(r.U64Array(&target_signatures_[i]));
  }
  if (!r.exhausted()) {
    return DataLossError("index: " + std::to_string(r.remaining()) +
                         " trailing bytes after payload");
  }
  return OkStatus();
}

Status ServeIndex::Save(const std::string& path) const {
  obs::Span span("serve/index_save");
  const std::string payload = SerializePayload();
  std::string content = std::string(kMagic) + " v" +
                        std::to_string(kFormatVersion) + " " +
                        Hex64(fingerprint_) + " " +
                        std::to_string(payload.size()) + " " +
                        Hex64(rt::Fnv1a64(payload)) + "\n";
  content += payload;
  return rt::AtomicallyWriteFile(path, content)
      .WithContext("serve index save: " + path);
}

StatusOr<std::shared_ptr<const ServeIndex>> ServeIndex::Load(
    const std::string& path, std::optional<uint64_t> expected_fingerprint) {
  obs::Span span("serve/index_load");
  auto content_or = rt::ReadFileToString(path);
  if (!content_or.ok()) {
    return content_or.status().WithContext("serve index load");
  }
  const std::string content = std::move(content_or).value();
  const size_t newline = content.find('\n');
  if (newline == std::string::npos) {
    return DataLossError("serve index " + path + ": missing header line");
  }
  const std::string_view header(content.data(), newline);
  char magic[24] = {0};
  int version = 0;
  uint64_t fingerprint = 0, hash = 0;
  uint64_t payload_bytes = 0;
  // Field widths: magic is 13 chars + NUL; hex fields are 16 digits.
  if (std::sscanf(std::string(header).c_str(),
                  "%23s v%d %16" SCNx64 " %" SCNu64 " %16" SCNx64, magic,
                  &version, &fingerprint, &payload_bytes, &hash) != 5 ||
      kMagic != magic) {
    return DataLossError("serve index " + path + ": malformed header");
  }
  if (version != kFormatVersion) {
    return FailedPreconditionError("serve index " + path +
                                   ": unsupported format version v" +
                                   std::to_string(version));
  }
  const std::string_view payload(content.data() + newline + 1,
                                 content.size() - newline - 1);
  if (payload.size() != payload_bytes) {
    return DataLossError("serve index " + path + ": payload is " +
                         std::to_string(payload.size()) +
                         " bytes, header promises " +
                         std::to_string(payload_bytes));
  }
  if (rt::Fnv1a64(payload) != hash) {
    return DataLossError("serve index " + path + ": payload checksum mismatch");
  }
  if (expected_fingerprint.has_value() &&
      fingerprint != *expected_fingerprint) {
    return FailedPreconditionError(
        "serve index " + path + ": pipeline fingerprint " +
        Hex64(fingerprint) + " does not match expected " +
        Hex64(*expected_fingerprint));
  }

  std::shared_ptr<ServeIndex> index(new ServeIndex());
  index->fingerprint_ = fingerprint;
  LARGEEA_RETURN_IF_ERROR(index->DeserializePayload(payload).WithContext(
      "serve index " + path));
  LARGEEA_RETURN_IF_ERROR(index->Finish().WithContext("serve index " + path));
  return std::shared_ptr<const ServeIndex>(std::move(index));
}

}  // namespace largeea::serve
